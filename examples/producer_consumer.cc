/**
 * @file
 * Domain example: a bounded-buffer pipeline built from SynCron's
 * semaphore and condition-variable primitives — producers in half of
 * the NDP units feed consumers in the other half through a ring buffer
 * in unit 0's memory.
 *
 *   $ ./example_producer_consumer
 */

#include <cstdio>
#include <deque>

#include "system/system.hh"

using namespace syncron;

namespace {

struct Pipeline
{
    std::deque<std::uint64_t> buffer; ///< host shadow of the ring
    Addr ringAddr = 0;
    unsigned capacity = 8;
    std::uint64_t produced = 0;
    std::uint64_t consumed = 0;
    std::uint64_t checksum = 0;
};

sim::Process
producer(core::Core &c, sync::SyncApi &api, Pipeline &p,
         sync::Semaphore slots, sync::Semaphore items, sync::Lock lock,
         unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        co_await c.compute(120); // produce an item
        co_await api.wait(c, slots); // free slot
        {
            sync::ScopedLock guard = co_await api.scoped(c, lock);
            const std::uint64_t item = c.id() * 1000 + i;
            p.buffer.push_back(item);
            ++p.produced;
            co_await c.store(p.ringAddr + (p.produced % p.capacity) * 8,
                             8, core::MemKind::SharedRW);
            co_await guard.unlock();
        }
        co_await api.post(c, items); // item available
    }
}

sim::Process
consumer(core::Core &c, sync::SyncApi &api, Pipeline &p,
         sync::Semaphore slots, sync::Semaphore items, sync::Lock lock,
         unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        co_await api.wait(c, items); // wait for an item
        {
            sync::ScopedLock guard = co_await api.scoped(c, lock);
            const std::uint64_t item = p.buffer.front();
            p.buffer.pop_front();
            ++p.consumed;
            p.checksum += item;
            co_await c.load(p.ringAddr + (p.consumed % p.capacity) * 8,
                            8, core::MemKind::SharedRW);
            co_await guard.unlock();
        }
        co_await api.post(c, slots); // slot freed
        co_await c.compute(150);     // consume the item
    }
}

} // namespace

int
main()
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron);
    NdpSystem sys(cfg);

    Pipeline p;
    p.ringAddr = sys.machine().addrSpace().allocIn(0, p.capacity * 8, 8);
    sync::Semaphore slots = sys.api().createSemaphore(0, p.capacity);
    sync::Semaphore items = sys.api().createSemaphore(0, 0);
    sync::Lock lock = sys.api().createLock(0);

    const unsigned perCore = 12;
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i) {
        if (i % 2 == 0) {
            sys.spawn(producer(sys.clientCore(i), sys.api(), p, slots,
                               items, lock, perCore));
        } else {
            sys.spawn(consumer(sys.clientCore(i), sys.api(), p, slots,
                               items, lock, perCore));
        }
    }
    sys.run();

    std::printf("pipeline on %s: produced %llu, consumed %llu, "
                "checksum %llu, %0.2f us simulated\n",
                sys.backend().name(),
                static_cast<unsigned long long>(p.produced),
                static_cast<unsigned long long>(p.consumed),
                static_cast<unsigned long long>(p.checksum),
                ticksToNs(sys.elapsed()) / 1000.0);
    const bool ok = p.produced == p.consumed
                    && p.produced == (n / 2) * perCore
                    && p.buffer.empty();
    std::printf("%s\n", ok ? "OK" : "MISMATCH");
    return ok ? 0 : 1;
}
