/**
 * @file
 * Domain example: near-data graph analytics — the workload class that
 * motivates the paper. Generates a power-law graph, partitions it
 * across the NDP units with the greedy min-cut partitioner, runs BFS
 * and PageRank with per-vertex locks + barriers on two schemes, and
 * compares them.
 *
 *   $ ./example_graph_analytics
 */

#include <cstdio>

#include "system/system.hh"
#include "workloads/graph/kernels.hh"

using namespace syncron;
using workloads::GraphApp;

namespace {

Tick
runOn(Scheme scheme, GraphApp app)
{
    SystemConfig cfg = SystemConfig::make(scheme);
    NdpSystem sys(cfg);

    workloads::Graph g = workloads::generatePowerLaw(1200, 8, 7);
    auto part = workloads::greedyPartition(g, cfg.numUnits);
    const std::uint64_t cut = workloads::crossingEdges(g, part);
    workloads::PlacedGraph placed(sys, std::move(g), std::move(part));

    auto result = workloads::runGraphApp(sys, placed, app);
    std::printf("  %-8s %-8s: %8.2f us, %6u iterations, %8llu locked "
                "updates, %llu crossing edges\n",
                schemeName(scheme), workloads::graphAppName(app),
                ticksToNs(result.time) / 1000.0, result.iterations,
                static_cast<unsigned long long>(result.updates),
                static_cast<unsigned long long>(cut));
    return result.time;
}

} // namespace

int
main()
{
    std::printf("near-data graph analytics on a 4-unit NDP system\n");
    for (GraphApp app : {GraphApp::Bfs, GraphApp::Pr}) {
        const Tick central = runOn(Scheme::Central, app);
        const Tick syncron = runOn(Scheme::SynCron, app);
        std::printf("  -> SynCron speedup over Central: %.2fx\n\n",
                    static_cast<double>(central)
                        / static_cast<double>(syncron));
    }
    return 0;
}
