/**
 * @file
 * Quickstart: build an NDP system, protect a shared counter with a
 * SynCron lock, and inspect time/energy/traffic.
 *
 *   $ ./example_quickstart
 *
 * Walkthrough:
 *   1. SystemConfig::make() picks a scheme and topology (Table 5
 *      defaults: 4 NDP units x 15 client cores, HBM).
 *   2. Workloads are C++20 coroutines issuing timed operations through
 *      core::Core and sync::SyncApi.
 *   3. sys.run() drives the discrete-event simulation to completion.
 */

#include <cstdio>

#include "system/energy.hh"
#include "system/system.hh"

using namespace syncron;

namespace {

/// Shared state lives on the host; its *accesses* are simulated.
struct Shared
{
    long counter = 0;
    Addr counterAddr = 0;
};

sim::Process
worker(core::Core &core, sync::SyncApi &api, sync::Lock lock,
       Shared &shared, int increments)
{
    for (int i = 0; i < increments; ++i) {
        co_await core.compute(100); // some private work
        sync::ScopedLock guard = co_await api.scoped(core, lock);
        // Critical section: read-modify-write the shared counter in the
        // owning unit's memory (shared read-write => uncacheable).
        co_await core.load(shared.counterAddr, 8,
                           core::MemKind::SharedRW);
        ++shared.counter;
        co_await core.store(shared.counterAddr, 8,
                            core::MemKind::SharedRW);
        co_await guard.unlock();
    }
}

} // namespace

int
main()
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron);
    NdpSystem sys(cfg);

    Shared shared;
    shared.counterAddr = sys.machine().addrSpace().allocIn(0, 8, 8);
    sync::Lock lock = sys.api().createLock(/*unit=*/0);

    const int increments = 20;
    for (unsigned i = 0; i < sys.numClientCores(); ++i) {
        sys.spawn(worker(sys.clientCore(i), sys.api(), lock, shared,
                         increments));
    }
    sys.run();

    const EnergyBreakdown energy = computeEnergy(sys.stats(), cfg);
    std::printf("scheme:            %s\n", sys.backend().name());
    std::printf("counter:           %ld (expected %u)\n", shared.counter,
                sys.numClientCores() * increments);
    std::printf("simulated time:    %.2f us\n",
                ticksToNs(sys.elapsed()) / 1000.0);
    std::printf("sync messages:     %llu local, %llu global\n",
                static_cast<unsigned long long>(
                    sys.stats().syncLocalMsgs),
                static_cast<unsigned long long>(
                    sys.stats().syncGlobalMsgs));
    std::printf("energy:            %.3f uJ (network %.3f, memory "
                "%.3f, cache %.3f)\n",
                energy.total() * 1e6, energy.networkJ * 1e6,
                energy.memoryJ * 1e6, energy.cacheJ * 1e6);
    return shared.counter
                   == static_cast<long>(sys.numClientCores())
                          * increments
               ? 0
               : 1;
}
