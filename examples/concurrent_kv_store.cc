/**
 * @file
 * Domain example: a near-data key-value store — a hash table with
 * per-bucket locks served by NDP cores, the pointer-chasing workload
 * class of the paper's Section 6.1.2. Compares the four schemes on the
 * same mixed lookup workload and prints a small scaling study.
 *
 *   $ ./example_concurrent_kv_store
 */

#include <cstdio>

#include "system/system.hh"
#include "workloads/datastructures/structures.hh"

using namespace syncron;

namespace {

double
throughput(Scheme scheme, unsigned units)
{
    SystemConfig cfg = SystemConfig::make(scheme, units, 15);
    NdpSystem sys(cfg);
    workloads::SimHashTable table(sys, /*initialSize=*/512);
    const unsigned opsPerCore = 40;
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(table.worker(sys.clientCore(i), opsPerCore));
    sys.run();
    const double ms = static_cast<double>(sys.elapsed()) / 1e9;
    return static_cast<double>(sys.numClientCores()) * opsPerCore / ms;
}

} // namespace

int
main()
{
    std::printf("near-data key-value store (hash table, per-bucket "
                "locks)\n\n");
    std::printf("%-10s", "cores");
    for (Scheme s : {Scheme::Central, Scheme::Hier, Scheme::SynCron,
                     Scheme::Ideal})
        std::printf("  %12s", schemeName(s));
    std::printf("   [lookups/ms]\n");

    for (unsigned units = 1; units <= 4; ++units) {
        std::printf("%-10u", units * 15);
        for (Scheme s : {Scheme::Central, Scheme::Hier, Scheme::SynCron,
                         Scheme::Ideal})
            std::printf("  %12.0f", throughput(s, units));
        std::printf("\n");
    }
    std::printf("\nSynCron keeps the per-bucket locks in the "
                "Synchronization Tables,\navoiding the server-core "
                "bottleneck (Central) and the cache/memory\naccesses "
                "for synchronization state (Hier).\n");
    return 0;
}
