/**
 * @file
 * Reproduces paper Fig. 14: cache / network / memory energy breakdown
 * for Central (C), Hier (H), SynCron (SC), and Ideal (I) on real
 * applications, normalized to Central's total for the same application.
 *
 * Expected shape: SynCron reduces total energy ~2.2x vs Central and
 * ~1.9x vs Hier on average, within ~6% of Ideal; network energy
 * dominates Central's overhead.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig14_energy_breakdown", opts);
    const double scale = 0.35 * opts.effectiveScale();

    const std::vector<harness::AppInput> combos = {
        {"bfs", "sl"}, {"cc", "sx"},  {"sssp", "co"}, {"pr", "wk"},
        {"tf", "sl"},  {"tc", "sx"},  {"ts", "air"},  {"ts", "pow"},
    };
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    const char *tag[] = {"C", "H", "SC", "I"};
    harness::SharedInputs inputs;
    inputs.prepare(combos, scale);
    inputs.preparePartitions(combos, 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : combos) {
        for (Scheme scheme : schemes) {
            tasks.push_back([&opts, &inputs, ai, scheme] {
                return harness::runAppInput(
                    opts.makeConfig(scheme, 4, 15), ai, inputs);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 14: energy breakdown normalized to Central's total",
        {"app.input", "scheme", "cache", "network", "memory", "total"});

    double sumCentralOverSynCron = 0, sumHierOverSynCron = 0;
    int n = 0;
    std::size_t i = 0;

    for (const harness::AppInput &ai : combos) {
        EnergyBreakdown e[4];
        for (int s = 0; s < 4; ++s, ++i) {
            e[s] = results[i].energy;
            report.add(ai.app + "." + ai.input + "/"
                           + schemeName(schemes[s]),
                       results[i]);
        }
        const double base = e[0].total();
        for (int s = 0; s < 4; ++s) {
            table.addRow({ai.app + "." + ai.input, tag[s],
                          fmt(e[s].cacheJ / base, 3),
                          fmt(e[s].networkJ / base, 3),
                          fmt(e[s].memoryJ / base, 3),
                          fmt(e[s].total() / base, 3)});
        }
        sumCentralOverSynCron += e[0].total() / e[2].total();
        sumHierOverSynCron += e[1].total() / e[2].total();
        ++n;
    }
    table.addNote("paper: SynCron 2.22x less energy than Central, "
                  "1.94x less than Hier");
    table.print(std::cout);

    std::cout << "energy reduction: Central/SynCron "
              << harness::fmtX(sumCentralOverSynCron / n)
              << ", Hier/SynCron "
              << harness::fmtX(sumHierOverSynCron / n) << "\n";
    report.finish(std::cout);
    return 0;
}
