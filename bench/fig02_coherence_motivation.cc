/**
 * @file
 * Reproduces paper Fig. 2: slowdown of a coarse-lock-protected stack
 * when the lock is a coherence-based TTAS lock (mesi-lock) over an ideal
 * zero-cost lock (ideal-lock), (a) scaling the cores inside one NDP
 * unit from 15 to 60 and (b) spreading 60 cores over 1-4 NDP units.
 *
 * This is the motivation experiment: a hypothetical MESI directory
 * protocol is layered over the NDP fabric (src/coherence). The stack's
 * data accesses are identical coherent accesses in both runs; only the
 * lock differs.
 *
 * Expected shape: ~2x slowdown at 60 cores in one unit, growing to
 * ~2.7x at 4 units (non-uniform lock-line transfers).
 */

#include <deque>
#include <functional>
#include <iostream>
#include <vector>

#include "coherence/mesi.hh"
#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "mem/allocator.hh"

using namespace syncron;
using coherence::MesiSystem;
using harness::fmt;

namespace {

/** Zero-cost lock: host FIFO of parked coroutines (the ideal-lock). */
struct IdealLock
{
    bool held = false;
    std::deque<sim::Gate *> waiters;
};

struct StackState
{
    Addr top;
    Addr nodes;
    std::uint64_t sp = 0; ///< host shadow of the stack pointer
};

sim::Process
stackWorker(MesiSystem &mesi, StackState &stack, unsigned core,
            unsigned ops, bool useMesiLock, Addr lockAddr,
            IdealLock &ideal, std::uint64_t *pushes)
{
    sim::EventQueue &eq = mesi.machineEq();
    for (unsigned i = 0; i < ops; ++i) {
        // -- Acquire
        if (useMesiLock) {
            Tick backoff = kCoreClock.cycles(32);
            for (;;) {
                Tick t = mesi.read(core, lockAddr, eq.now());
                co_await sim::Delay{eq, t - eq.now()};
                if (mesi.value(lockAddr) == 0) {
                    auto [done, old] =
                        mesi.rmwSwap(core, lockAddr, 1, eq.now());
                    co_await sim::Delay{eq, done - eq.now()};
                    if (old == 0)
                        break;
                }
                co_await sim::Delay{eq, backoff};
                backoff = std::min(backoff * 2, kCoreClock.cycles(2048));
            }
        } else {
            if (ideal.held) {
                sim::Gate gate(eq);
                ideal.waiters.push_back(&gate);
                co_await gate;
            }
            ideal.held = true;
        }

        // -- Critical section: push (same coherent accesses both ways)
        Tick t = mesi.read(core, stack.top, eq.now());
        co_await sim::Delay{eq, t - eq.now()};
        const Addr node = stack.nodes + (stack.sp % 4096) * 16;
        ++stack.sp;
        t = mesi.write(core, node, eq.now());
        co_await sim::Delay{eq, t - eq.now()};
        t = mesi.write(core, stack.top, eq.now());
        co_await sim::Delay{eq, t - eq.now()};
        ++*pushes;

        // -- Release
        if (useMesiLock) {
            const Tick rel =
                mesi.rmwSwap(core, lockAddr, 0, eq.now()).first;
            co_await sim::Delay{eq, rel - eq.now()};
        } else {
            ideal.held = false;
            if (!ideal.waiters.empty()) {
                sim::Gate *next = ideal.waiters.front();
                ideal.waiters.pop_front();
                ideal.held = true;
                next->open(0, 0);
            }
        }
        co_await sim::Delay{eq, kCoreClock.cycles(40)};
    }
}

struct StackRunResult
{
    Tick time = 0;
    std::uint64_t pushes = 0;
};

/** One configuration's runtime with the chosen lock. */
StackRunResult
runStack(unsigned numUnits, unsigned coresPerUnit, unsigned totalCores,
         unsigned ops, bool useMesiLock)
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Ideal;
    cfg.numUnits = numUnits;
    cfg.coresPerUnit = coresPerUnit; // up to 60 in-unit cores (Fig. 2a)
    cfg.clientCoresPerUnit = coresPerUnit;
    cfg.validate();
    Machine machine(cfg);
    MesiSystem mesi(machine, totalCores);

    StackState stack;
    stack.top = machine.addrSpace().allocIn(0, 64, 64);
    stack.nodes = machine.addrSpace().allocIn(0, 4096 * 16, 64);
    Addr lockAddr = machine.addrSpace().allocIn(0, 64, 64);
    IdealLock ideal;
    std::uint64_t pushes = 0;

    std::vector<sim::Process> procs;
    for (unsigned c = 0; c < totalCores; ++c) {
        procs.push_back(stackWorker(mesi, stack, c, ops, useMesiLock,
                                    lockAddr, ideal, &pushes));
        procs.back().start(machine.eq());
    }
    machine.eq().run();
    for (const auto &p : procs) {
        if (!p.done())
            SYNCRON_FATAL("fig02: worker deadlocked");
    }
    return StackRunResult{machine.eq().now(), pushes};
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig02_coherence_motivation", opts);
    const unsigned ops =
        static_cast<unsigned>(12 * opts.effectiveScale());
    const unsigned coreCounts[] = {15, 30, 45, 60};
    const unsigned unitCounts[] = {1, 2, 3, 4};

    // (a) cells (ideal, mesi per core count), then (b) cells.
    std::vector<std::function<StackRunResult()>> tasks;
    for (unsigned cores : coreCounts) {
        for (bool mesiLock : {false, true}) {
            tasks.push_back([cores, ops, mesiLock] {
                return runStack(1, cores, cores, ops, mesiLock);
            });
        }
    }
    for (unsigned units : unitCounts) {
        for (bool mesiLock : {false, true}) {
            tasks.push_back([units, ops, mesiLock] {
                return runStack(units, 60 / units, 60, ops, mesiLock);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    std::size_t i = 0;
    harness::TablePrinter a(
        "Fig. 2a: stack slowdown, mesi-lock vs ideal-lock, one NDP unit",
        {"cores", "ideal-lock", "mesi-lock slowdown"});
    for (unsigned cores : coreCounts) {
        const StackRunResult ideal = results[i++];
        const StackRunResult mesi = results[i++];
        report.addScalar(std::to_string(cores) + "cores/ideal-lock",
                         ideal.time, ideal.pushes);
        report.addScalar(std::to_string(cores) + "cores/mesi-lock",
                         mesi.time, mesi.pushes);
        a.addRow({std::to_string(cores), fmt(1.0, 2),
                  fmt(static_cast<double>(mesi.time)
                          / static_cast<double>(ideal.time),
                      2)});
    }
    a.addNote("paper: 2.03x slowdown at 60 cores");
    a.print(std::cout);

    harness::TablePrinter b(
        "Fig. 2b: stack slowdown at 60 cores, varying NDP units",
        {"units", "ideal-lock", "mesi-lock slowdown"});
    for (unsigned units : unitCounts) {
        const StackRunResult ideal = results[i++];
        const StackRunResult mesi = results[i++];
        report.addScalar(std::to_string(units) + "units/ideal-lock",
                         ideal.time, ideal.pushes);
        report.addScalar(std::to_string(units) + "units/mesi-lock",
                         mesi.time, mesi.pushes);
        b.addRow({std::to_string(units), fmt(1.0, 2),
                  fmt(static_cast<double>(mesi.time)
                          / static_cast<double>(ideal.time),
                      2)});
    }
    b.addNote("paper: slowdown grows to 2.66x at 4 units");
    b.print(std::cout);
    report.finish(std::cout);
    return 0;
}
