/**
 * @file
 * Reproduces paper Fig. 15: data movement (bytes transferred), split
 * into traffic inside NDP units and across NDP units, for C/H/SC/I on
 * real applications, normalized to Central's total.
 *
 * Expected shape: SynCron moves ~2x less data than Central and Hier on
 * average; Central is dominated by cross-unit traffic.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig15_data_movement", opts);
    const double scale = 0.35 * opts.effectiveScale();

    const std::vector<harness::AppInput> combos = {
        {"bfs", "sl"}, {"cc", "sx"},  {"sssp", "co"}, {"pr", "wk"},
        {"tf", "sl"},  {"tc", "sx"},  {"ts", "air"},  {"ts", "pow"},
    };
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    const char *tag[] = {"C", "H", "SC", "I"};
    harness::SharedInputs inputs;
    inputs.prepare(combos, scale);
    inputs.preparePartitions(combos, 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : combos) {
        for (Scheme scheme : schemes) {
            tasks.push_back([&opts, &inputs, ai, scheme] {
                return harness::runAppInput(
                    opts.makeConfig(scheme, 4, 15), ai, inputs);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 15: data movement normalized to Central's total",
        {"app.input", "scheme", "inside units", "across units",
         "total"});

    double sumCentralOverSynCron = 0;
    int n = 0;
    std::size_t i = 0;
    for (const harness::AppInput &ai : combos) {
        double inside[4], across[4];
        for (int s = 0; s < 4; ++s, ++i) {
            inside[s] =
                static_cast<double>(results[i].stats.bytesInsideUnits);
            across[s] =
                static_cast<double>(results[i].stats.bytesAcrossUnits);
            report.add(ai.app + "." + ai.input + "/"
                           + schemeName(schemes[s]),
                       results[i]);
        }
        const double base = inside[0] + across[0];
        for (int s = 0; s < 4; ++s) {
            table.addRow({ai.app + "." + ai.input, tag[s],
                          fmt(inside[s] / base, 3),
                          fmt(across[s] / base, 3),
                          fmt((inside[s] + across[s]) / base, 3)});
        }
        sumCentralOverSynCron += base / (inside[2] + across[2]);
        ++n;
    }
    table.addNote("paper: SynCron 2.08x less movement than Central, "
                  "2.04x less than Hier, 13.8% more than Ideal");
    table.print(std::cout);
    std::cout << "movement reduction Central/SynCron: "
              << harness::fmtX(sumCentralOverSynCron / n) << "\n";
    report.finish(std::cout);
    return 0;
}
