/**
 * @file
 * Reproduces paper Fig. 13: scalability of SynCron on real applications
 * from 1 to 4 NDP units (15 to 60 cores). Speedup is normalized to the
 * 1-unit run of the same application.
 *
 * Expected shape: average scaling ~2x at 4 units (paper: 2.03x average,
 * up to 3.03x, at least 1.32x).
 */

#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmtX;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig13_scalability", opts);
    const double scale = 0.35 * opts.effectiveScale();

    const std::vector<harness::AppInput> combos = {
        {"bfs", "sl"}, {"cc", "sx"},  {"sssp", "co"}, {"pr", "wk"},
        {"tf", "sl"},  {"tc", "sx"},  {"ts", "air"},  {"ts", "pow"},
    };
    harness::SharedInputs inputs;
    inputs.prepare(combos, scale);
    for (unsigned units = 1; units <= 4; ++units)
        inputs.preparePartitions(combos, units);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : combos) {
        for (unsigned units = 1; units <= 4; ++units) {
            tasks.push_back([&opts, &inputs, ai, units] {
                return harness::runAppInput(
                    opts.makeConfig(Scheme::SynCron, units, 15), ai,
                    inputs);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 13: SynCron scalability (speedup vs 1 NDP unit)",
        {"app.input", "1 unit", "2 units", "3 units", "4 units"});

    double geo4 = 0;
    int n = 0;
    std::size_t i = 0;
    for (const harness::AppInput &ai : combos) {
        double time[4];
        for (unsigned units = 1; units <= 4; ++units, ++i) {
            time[units - 1] = static_cast<double>(results[i].time);
            report.add(ai.app + "." + ai.input + "/"
                           + std::to_string(units * 15) + "cores",
                       results[i]);
        }
        table.addRow({ai.app + "." + ai.input, fmtX(1.0),
                      fmtX(time[0] / time[1]), fmtX(time[0] / time[2]),
                      fmtX(time[0] / time[3])});
        geo4 += std::log(time[0] / time[3]);
        ++n;
    }
    table.addNote("paper: 2.03x average scaling at 4 units");
    table.print(std::cout);
    std::cout << "geomean 4-unit scaling: " << fmtX(std::exp(geo4 / n))
              << "\n";
    report.finish(std::cout);
    return 0;
}
