/**
 * @file
 * Reproduces paper Fig. 16: throughput of the stack and the priority
 * queue (high contention) as the inter-unit link transfer latency grows
 * from 0.04 us to 9 us.
 *
 * Expected shape: Central collapses as the links slow down; SynCron and
 * Hier track Ideal (local messages dominate), with SynCron slightly
 * ahead of Hier (paper: 1.06x / 1.04x).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig16_high_contention_links", opts);
    const double latenciesUs[] = {0.04, 0.1, 0.2, 0.5, 1, 2, 4.5, 9};
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    const harness::DsKind kinds[] = {harness::DsKind::Stack,
                                     harness::DsKind::PriorityQueue};

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (harness::DsKind kind : kinds) {
        for (double us : latenciesUs) {
            for (Scheme scheme : schemes) {
                tasks.push_back([&opts, kind, us, scheme] {
                    const harness::DsParams params =
                        harness::dsDefaults(kind,
                                            opts.effectiveScale());
                    SystemConfig cfg = opts.makeConfig(scheme, 4, 15);
                    cfg.link.flightTicks =
                        static_cast<Tick>(us * kTicksPerUs);
                    return harness::runDataStructure(
                        cfg, kind, params.initialSize,
                        params.opsPerCore);
                });
            }
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    std::size_t i = 0;
    for (harness::DsKind kind : kinds) {
        harness::TablePrinter table(
            std::string("Fig. 16 (") + harness::dsName(kind)
                + "): throughput [ops/ms] vs link transfer latency",
            {"latency[us]", "Central", "Hier", "SynCron", "Ideal"});

        for (double us : latenciesUs) {
            std::vector<std::string> row{fmt(us, 2)};
            for (Scheme scheme : schemes) {
                const harness::RunOutput &out = results[i++];
                row.push_back(fmt(out.opsPerMs(), 1));
                report.add(std::string(harness::dsName(kind)) + "/"
                               + fmt(us, 2) + "us/"
                               + schemeName(scheme),
                           out);
            }
            table.addRow(std::move(row));
        }
        table.addNote("paper: SynCron best hides slow links; Central "
                      "collapses");
        table.print(std::cout);
    }
    report.finish(std::cout);
    return 0;
}
