/**
 * @file
 * Sharded-simulation scaling bench: host events/sec of one 16-unit
 * SynCron machine as --sim-shards grows.
 *
 * One simulation, not a grid: every row re-runs the same fine-grained
 * skip-list workload (per-node locks spread across all units, so every
 * shard carries sync and memory traffic) with the machine split across
 * 1, 2, 4, and 8 host threads. The bit-identity contract is asserted
 * inline — all rows must produce the same final tick, operation count,
 * and SystemStats — so the speedup column is guaranteed to measure the
 * identical simulation.
 *
 * Gate: >= 1.5x host events/sec at 4 shards vs 1, checked only when the
 * host has at least 4 hardware threads (single-core CI runners report
 * the sweep but skip the assertion).
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "system/system.hh"

using namespace syncron;
using harness::fmt;
using harness::fmtX;

namespace {

constexpr unsigned kUnits = 16;
constexpr unsigned kCoresPerUnit = 2;
constexpr unsigned kShardCounts[] = {1, 2, 4, 8};
constexpr double kGateSpeedup = 1.5;
constexpr unsigned kGateShards = 4;
constexpr unsigned kGateMinHostThreads = 4;

struct Row
{
    unsigned shards = 0;
    harness::RunOutput out;
};

void
assertIdentical(const Row &ref, const Row &row)
{
    SYNCRON_ASSERT(ref.out.time == row.out.time,
                   "sharded run diverged: simTicks " << row.out.time
                       << " @" << row.shards << " shards vs "
                       << ref.out.time << " @1");
    SYNCRON_ASSERT(ref.out.ops == row.out.ops,
                   "sharded run diverged: ops " << row.out.ops << " @"
                       << row.shards << " shards vs " << ref.out.ops
                       << " @1");
    std::vector<double> a;
    std::vector<double> b;
    ref.out.stats.forEach(
        [&](const std::string &, double v) { a.push_back(v); });
    row.out.stats.forEach(
        [&](const std::string &, double v) { b.push_back(v); });
    SYNCRON_ASSERT(a == b, "sharded run diverged: SystemStats differ @"
                               << row.shards << " shards");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const double scale = opts.effectiveScale();
    const auto initialSize = static_cast<unsigned>(2000 * scale);
    const auto opsPerCore = static_cast<unsigned>(24 * scale);
    const unsigned hostThreads = std::thread::hardware_concurrency();

    harness::BenchReport report("scale_units", opts);

    std::vector<Row> rows;
    for (unsigned shards : kShardCounts) {
        SystemConfig cfg =
            SystemConfig::make(Scheme::SynCron, kUnits, kCoresPerUnit);
        cfg.simShards = shards;
        Row row;
        row.shards = shards;
        row.out = harness::runDataStructure(
            cfg, harness::DsKind::SkipList, initialSize, opsPerCore);
        if (!rows.empty())
            assertIdentical(rows.front(), row);
        report.add("shards=" + std::to_string(shards), row.out);
        rows.push_back(std::move(row));
    }

    const double baseRate = rows.front().out.hostEventsPerSec();
    harness::TablePrinter table(
        "scale_units: one 16-unit machine, host threads vs events/sec",
        {"shards", "sim ticks", "host events", "host [ms]", "Mev/s",
         "speedup"});
    double gateSpeedup = 0.0;
    for (const Row &r : rows) {
        const double rate = r.out.hostEventsPerSec();
        const double speedup = baseRate > 0.0 ? rate / baseRate : 0.0;
        if (r.shards == kGateShards)
            gateSpeedup = speedup;
        report.addMetric("speedup.shards"
                             + std::to_string(r.shards),
                         speedup);
        table.addRow({std::to_string(r.shards),
                      std::to_string(r.out.time),
                      std::to_string(r.out.hostEvents),
                      fmt(static_cast<double>(r.out.hostNs) / 1e6, 2),
                      fmt(rate / 1e6, 2), fmtX(speedup)});
    }
    table.addNote("all rows bit-identical (asserted): same final tick, "
                  "ops, and stats");
    const bool gateActive = hostThreads >= kGateMinHostThreads;
    table.addNote(
        gateActive
            ? "gate: >= " + fmtX(kGateSpeedup) + " at "
                  + std::to_string(kGateShards) + " shards"
            : "gate skipped: host has " + std::to_string(hostThreads)
                  + " hardware thread(s), need "
                  + std::to_string(kGateMinHostThreads));
    table.print(std::cout);

    report.addMetric("gateActive", gateActive ? 1.0 : 0.0);
    report.addMetric("hostThreads", hostThreads);
    report.finish(std::cout);

    if (gateActive && gateSpeedup < kGateSpeedup) {
        std::cout << "scale_units gate FAILED: " << fmtX(gateSpeedup)
                  << " at " << kGateShards << " shards (need >= "
                  << fmtX(kGateSpeedup) << ")\n";
        return 1;
    }
    return 0;
}
