/**
 * @file
 * Reproduces paper Fig. 20: SynCron (hierarchical) vs its flat variant
 * on low-contention, synchronization-non-intensive graph workloads with
 * the default 40 ns links. Speedup of SynCron normalized to flat.
 *
 * Expected shape: hierarchical SynCron within ~1-2% of flat (paper:
 * 1.1% worse on average) — the hierarchy costs nothing here and pays
 * off elsewhere (Fig. 21).
 */

#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig20_flat_low_contention", opts);
    const double scale = 0.35 * opts.effectiveScale();
    const Scheme schemes[] = {Scheme::SynCronFlat, Scheme::SynCron};

    // Fig. 20 is the 24 graph combinations (no ts rows).
    std::vector<harness::AppInput> combos;
    for (const harness::AppInput &ai : harness::allAppInputs()) {
        if (ai.app != "ts")
            combos.push_back(ai);
    }

    harness::SharedInputs inputs;
    inputs.prepare(combos, scale);
    inputs.preparePartitions(combos, 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : combos) {
        for (Scheme scheme : schemes) {
            tasks.push_back([&opts, &inputs, ai, scheme] {
                return harness::runAppInput(
                    opts.makeConfig(scheme, 4, 15), ai, inputs);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 20: SynCron speedup normalized to flat (40 ns links)",
        {"app.input", "SynCron/flat"});

    double geo = 0;
    int n = 0;
    std::size_t i = 0;
    for (const harness::AppInput &ai : combos) {
        const harness::RunOutput &flat = results[i++];
        const harness::RunOutput &hier = results[i++];
        report.add(ai.app + "." + ai.input + "/SynCron-flat", flat);
        report.add(ai.app + "." + ai.input + "/SynCron", hier);
        const double ratio = static_cast<double>(flat.time)
                             / static_cast<double>(hier.time);
        table.addRow({ai.app + "." + ai.input, fmt(ratio, 3)});
        geo += std::log(ratio);
        ++n;
    }
    table.addNote("paper: SynCron within 1.1% of flat on average");
    table.print(std::cout);
    std::cout << "geomean SynCron/flat: " << fmt(std::exp(geo / n), 3)
              << "\n";
    report.finish(std::cout);
    return 0;
}
