/**
 * @file
 * Reproduces paper Fig. 20: SynCron (hierarchical) vs its flat variant
 * on low-contention, synchronization-non-intensive graph workloads with
 * the default 40 ns links. Speedup of SynCron normalized to flat.
 *
 * Expected shape: hierarchical SynCron within ~1-2% of flat (paper:
 * 1.1% worse on average) — the hierarchy costs nothing here and pays
 * off elsewhere (Fig. 21).
 */

#include <cmath>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const double scale = 0.35 * opts.effectiveScale();

    harness::TablePrinter table(
        "Fig. 20: SynCron speedup normalized to flat (40 ns links)",
        {"app.input", "SynCron/flat"});

    double geo = 0;
    int n = 0;
    for (const harness::AppInput &ai : harness::allAppInputs()) {
        if (ai.app == "ts")
            continue; // Fig. 20 is the 24 graph combinations
        SystemConfig flatCfg = SystemConfig::make(Scheme::SynCronFlat,
                                                  4, 15);
        SystemConfig hierCfg = SystemConfig::make(Scheme::SynCron, 4, 15);
        auto flat = harness::runAppInput(flatCfg, ai, scale);
        auto hier = harness::runAppInput(hierCfg, ai, scale);
        const double ratio = static_cast<double>(flat.time)
                             / static_cast<double>(hier.time);
        table.addRow({ai.app + "." + ai.input, fmt(ratio, 3)});
        geo += std::log(ratio);
        ++n;
    }
    table.addNote("paper: SynCron within 1.1% of flat on average");
    table.print(std::cout);
    std::cout << "geomean SynCron/flat: " << fmt(std::exp(geo / n), 3)
              << "\n";
    return 0;
}
