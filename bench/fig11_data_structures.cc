/**
 * @file
 * Reproduces paper Fig. 11: throughput (operations per millisecond of
 * simulated time) of the nine lock-based data structures, varying the
 * core count in steps of 15 by adding NDP units (15/30/45/60), for
 * Central / Hier / SynCron / Ideal.
 *
 * Expected shape: high-contention structures (stack, queue, array map,
 * priority queue) favor the hierarchical schemes, with SynCron above
 * Hier; BST_Drachsler is insensitive to the scheme.
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};

    for (harness::DsKind kind : harness::kAllDsKinds) {
        const harness::DsParams params =
            harness::dsDefaults(kind, opts.effectiveScale());
        harness::TablePrinter table(
            std::string("Fig. 11 (") + harness::dsName(kind)
                + "): throughput [ops/ms], size "
                + std::to_string(params.initialSize),
            {"cores", "Central", "Hier", "SynCron", "Ideal"});

        for (unsigned units = 1; units <= 4; ++units) {
            std::vector<std::string> row{
                std::to_string(units * 15)};
            for (Scheme scheme : schemes) {
                SystemConfig cfg = SystemConfig::make(scheme, units, 15);
                auto out = harness::runDataStructure(
                    cfg, kind, params.initialSize, params.opsPerCore);
                row.push_back(fmt(out.opsPerMs(), 1));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }
    return 0;
}
