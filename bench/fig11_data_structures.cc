/**
 * @file
 * Reproduces paper Fig. 11: throughput (operations per millisecond of
 * simulated time) of the nine lock-based data structures, varying the
 * core count in steps of 15 by adding NDP units (15/30/45/60), for
 * Central / Hier / SynCron / Ideal.
 *
 * Expected shape: high-contention structures (stack, queue, array map,
 * priority queue) favor the hierarchical schemes, with SynCron above
 * Hier; BST_Drachsler is insensitive to the scheme.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig11_data_structures", opts);
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};

    struct Cell
    {
        harness::DsKind kind;
        unsigned units;
        Scheme scheme;
    };
    std::vector<Cell> cells;
    for (harness::DsKind kind : harness::kAllDsKinds) {
        for (unsigned units = 1; units <= 4; ++units) {
            for (Scheme scheme : schemes)
                cells.push_back({kind, units, scheme});
        }
    }

    std::vector<std::function<harness::RunOutput()>> tasks;
    tasks.reserve(cells.size());
    for (const Cell &c : cells) {
        tasks.push_back([&opts, c] {
            const harness::DsParams params =
                harness::dsDefaults(c.kind, opts.effectiveScale());
            return harness::runDataStructure(
                opts.makeConfig(c.scheme, c.units, 15), c.kind,
                params.initialSize, params.opsPerCore);
        });
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    std::size_t i = 0;
    for (harness::DsKind kind : harness::kAllDsKinds) {
        const harness::DsParams params =
            harness::dsDefaults(kind, opts.effectiveScale());
        harness::TablePrinter table(
            std::string("Fig. 11 (") + harness::dsName(kind)
                + "): throughput [ops/ms], size "
                + std::to_string(params.initialSize),
            {"cores", "Central", "Hier", "SynCron", "Ideal"});

        for (unsigned units = 1; units <= 4; ++units) {
            std::vector<std::string> row{
                std::to_string(units * 15)};
            for (Scheme scheme : schemes) {
                const harness::RunOutput &out = results[i++];
                row.push_back(fmt(out.opsPerMs(), 1));
                report.add(std::string(harness::dsName(kind)) + "/"
                               + std::to_string(units * 15) + "cores/"
                               + schemeName(scheme),
                           out);
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }
    report.finish(std::cout);
    return 0;
}
