/**
 * @file
 * Reproduces paper Fig. 21: SynCron vs its flat variant while sweeping
 * the inter-unit link latency (40-500 ns).
 *   (a) low contention + synchronization-intensive: time series;
 *   (b) high contention: the queue with 30 and 60 cores.
 *
 * Expected shape: (a) flat slightly ahead (paper: SynCron 3.6-7.3%
 * worse); (b) SynCron ahead, growing with latency and core count
 * (paper: up to 2.14x at 500 ns / 60 cores).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig21_flat_sensitivity", opts);
    const unsigned latenciesNs[] = {40, 100, 200, 500};
    const Scheme schemes[] = {Scheme::SynCronFlat, Scheme::SynCron};
    const char *inputs[] = {"air", "pow"};
    const unsigned unitCounts[] = {2, 4};

    harness::SharedInputs shared;
    for (const char *input : inputs)
        shared.prepareSeries(input, 0.35 * opts.effectiveScale());

    // (a) time series cells, then (b) queue cells, flat before hier.
    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const char *input : inputs) {
        for (unsigned ns : latenciesNs) {
            for (Scheme scheme : schemes) {
                tasks.push_back([&opts, &shared, input, ns, scheme] {
                    SystemConfig cfg = opts.makeConfig(scheme, 4, 15);
                    cfg.link.flightTicks =
                        static_cast<Tick>(ns) * kTicksPerNs;
                    return harness::runTimeSeries(cfg,
                                                  shared.series(input));
                });
            }
        }
    }
    for (unsigned units : unitCounts) {
        for (unsigned ns : latenciesNs) {
            for (Scheme scheme : schemes) {
                tasks.push_back([&opts, units, ns, scheme] {
                    const harness::DsParams params =
                        harness::dsDefaults(harness::DsKind::Queue,
                                            opts.effectiveScale());
                    SystemConfig cfg =
                        opts.makeConfig(scheme, units, 15);
                    cfg.link.flightTicks =
                        static_cast<Tick>(ns) * kTicksPerNs;
                    return harness::runDataStructure(
                        cfg, harness::DsKind::Queue,
                        params.initialSize, params.opsPerCore);
                });
            }
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    std::size_t i = 0;
    harness::TablePrinter a(
        "Fig. 21a (ts): SynCron speedup normalized to flat",
        {"input", "40ns", "100ns", "200ns", "500ns"});
    for (const char *input : inputs) {
        std::vector<std::string> row{input};
        for (unsigned ns : latenciesNs) {
            const harness::RunOutput &flat = results[i++];
            const harness::RunOutput &hier = results[i++];
            report.add(std::string("ts.") + input + "/"
                           + std::to_string(ns) + "ns/SynCron-flat",
                       flat);
            report.add(std::string("ts.") + input + "/"
                           + std::to_string(ns) + "ns/SynCron",
                       hier);
            row.push_back(fmt(static_cast<double>(flat.time)
                                  / static_cast<double>(hier.time),
                              3));
        }
        a.addRow(std::move(row));
    }
    a.addNote("paper: SynCron 7.3% worse at 40ns, 3.6% worse at 500ns");
    a.print(std::cout);

    harness::TablePrinter b(
        "Fig. 21b (queue): SynCron speedup normalized to flat",
        {"cores", "40ns", "100ns", "200ns", "500ns"});
    for (unsigned units : unitCounts) {
        std::vector<std::string> row{std::to_string(units * 15)};
        for (unsigned ns : latenciesNs) {
            const harness::RunOutput &flat = results[i++];
            const harness::RunOutput &hier = results[i++];
            report.add("queue/" + std::to_string(units * 15) + "cores/"
                           + std::to_string(ns) + "ns/SynCron-flat",
                       flat);
            report.add("queue/" + std::to_string(units * 15) + "cores/"
                           + std::to_string(ns) + "ns/SynCron",
                       hier);
            row.push_back(fmt(static_cast<double>(flat.time)
                                  / static_cast<double>(hier.time),
                              2));
        }
        b.addRow(std::move(row));
    }
    b.addNote("paper: 30 cores 1.23x-1.76x; 60 cores up to 2.14x at "
              "500ns");
    b.print(std::cout);
    report.finish(std::cout);
    return 0;
}
