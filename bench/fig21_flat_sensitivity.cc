/**
 * @file
 * Reproduces paper Fig. 21: SynCron vs its flat variant while sweeping
 * the inter-unit link latency (40-500 ns).
 *   (a) low contention + synchronization-intensive: time series;
 *   (b) high contention: the queue with 30 and 60 cores.
 *
 * Expected shape: (a) flat slightly ahead (paper: SynCron 3.6-7.3%
 * worse); (b) SynCron ahead, growing with latency and core count
 * (paper: up to 2.14x at 500 ns / 60 cores).
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const unsigned latenciesNs[] = {40, 100, 200, 500};

    // (a) time series, 4 units.
    harness::TablePrinter a(
        "Fig. 21a (ts): SynCron speedup normalized to flat",
        {"input", "40ns", "100ns", "200ns", "500ns"});
    for (const char *input : {"air", "pow"}) {
        std::vector<std::string> row{input};
        for (unsigned ns : latenciesNs) {
            SystemConfig flatCfg =
                SystemConfig::make(Scheme::SynCronFlat, 4, 15);
            SystemConfig hierCfg =
                SystemConfig::make(Scheme::SynCron, 4, 15);
            flatCfg.link.flightTicks =
                static_cast<Tick>(ns) * kTicksPerNs;
            hierCfg.link.flightTicks =
                static_cast<Tick>(ns) * kTicksPerNs;
            auto flat = harness::runTimeSeries(
                flatCfg, input, 0.35 * opts.effectiveScale());
            auto hier = harness::runTimeSeries(
                hierCfg, input, 0.35 * opts.effectiveScale());
            row.push_back(fmt(static_cast<double>(flat.time)
                                  / static_cast<double>(hier.time),
                              3));
        }
        a.addRow(std::move(row));
    }
    a.addNote("paper: SynCron 7.3% worse at 40ns, 3.6% worse at 500ns");
    a.print(std::cout);

    // (b) queue under high contention, 2 and 4 units.
    harness::TablePrinter b(
        "Fig. 21b (queue): SynCron speedup normalized to flat",
        {"cores", "40ns", "100ns", "200ns", "500ns"});
    for (unsigned units : {2u, 4u}) {
        std::vector<std::string> row{std::to_string(units * 15)};
        const harness::DsParams params = harness::dsDefaults(
            harness::DsKind::Queue, opts.effectiveScale());
        for (unsigned ns : latenciesNs) {
            SystemConfig flatCfg =
                SystemConfig::make(Scheme::SynCronFlat, units, 15);
            SystemConfig hierCfg =
                SystemConfig::make(Scheme::SynCron, units, 15);
            flatCfg.link.flightTicks =
                static_cast<Tick>(ns) * kTicksPerNs;
            hierCfg.link.flightTicks =
                static_cast<Tick>(ns) * kTicksPerNs;
            auto flat = harness::runDataStructure(
                flatCfg, harness::DsKind::Queue, params.initialSize,
                params.opsPerCore);
            auto hier = harness::runDataStructure(
                hierCfg, harness::DsKind::Queue, params.initialSize,
                params.opsPerCore);
            row.push_back(fmt(static_cast<double>(flat.time)
                                  / static_cast<double>(hier.time),
                              2));
        }
        b.addRow(std::move(row));
    }
    b.addNote("paper: 30 cores 1.23x-1.76x; 60 cores up to 2.14x at "
              "500ns");
    b.print(std::cout);
    return 0;
}
