/**
 * @file
 * Reproduces paper Table 8: area and power of one Synchronization
 * Engine (SPU via Aladdin @40 nm, ST and indexing counters via CACTI)
 * compared against an ARM Cortex-A7, plus the Table 4 qualitative
 * comparison with prior hardware synchronization mechanisms. Also
 * reports the model's scaling across the Fig. 22/23 ST sizes.
 *
 * Purely analytic — no simulations run, so --jobs has nothing to
 * parallelize; --json still emits the (empty-config) bench record.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "syncron/area_model.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("tab08_area_power", opts);

    std::cout << engine::formatAreaPowerTable(engine::seAreaPower())
              << "\n";

    harness::TablePrinter scaling(
        "SE area/power scaling with ST size (analytic model)",
        {"ST entries", "ST [mm^2]", "total [mm^2]", "power [mW]"});
    for (unsigned entries : {8u, 16u, 32u, 48u, 64u, 128u, 256u}) {
        auto se = engine::seAreaPower(entries);
        scaling.addRow({std::to_string(entries), fmt(se.stMm2, 4),
                        fmt(se.totalMm2, 4), fmt(se.powerMw, 2)});
    }
    scaling.print(std::cout);

    harness::TablePrinter cmp(
        "Table 4: qualitative comparison with prior mechanisms",
        {"", "SSB", "LCU", "MiSAR", "SynCron"});
    cmp.addRow({"Supported primitives", "1", "1", "3", "4"});
    cmp.addRow({"ISA extensions", "2", "2", "7", "2"});
    cmp.addRow({"Spin-wait approach", "yes", "yes", "no", "no"});
    cmp.addRow({"Direct notification", "no", "yes", "yes", "yes"});
    cmp.addRow({"Target system", "uniform", "uniform", "uniform",
                "non-uniform"});
    cmp.addRow({"Overflow management", "partially integrated",
                "partially integrated", "handled by programmer",
                "fully integrated"});
    cmp.print(std::cout);
    report.finish(std::cout);
    return 0;
}
