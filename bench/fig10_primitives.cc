/**
 * @file
 * Reproduces paper Fig. 10: speedup of Central / Hier / SynCron / Ideal
 * for each synchronization primitive, sweeping the number of compute
 * instructions between synchronization points. Speedups are normalized
 * to Central at the same interval (the paper's baseline).
 *
 * Expected shape: at small intervals SynCron clearly beats Hier and
 * Central (paper: 3.05x vs Central and 1.40x vs Hier on average at 200
 * instructions) and approaches them as the interval grows.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "workloads/micro/primitives.hh"

using namespace syncron;
using harness::fmtX;
using workloads::Primitive;

namespace {

const std::vector<unsigned> &
intervalsFor(Primitive p)
{
    // The per-primitive x-axes of Fig. 10.
    static const std::vector<unsigned> lock = {50,  100, 200, 400,
                                               1000, 2000, 5000};
    static const std::vector<unsigned> barrier = {20,  50,  100, 200,
                                                  500, 1000, 2000};
    static const std::vector<unsigned> sem = {100,  200,  400, 1000,
                                              2000, 5000, 10000};
    static const std::vector<unsigned> cond = {200,  400,  1000, 2000,
                                               5000, 10000, 50000};
    switch (p) {
      case Primitive::Lock: return lock;
      case Primitive::Barrier: return barrier;
      case Primitive::Semaphore: return sem;
      case Primitive::CondVar: return cond;
    }
    return lock;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig10_primitives", opts);
    const unsigned ops =
        static_cast<unsigned>(16 * opts.effectiveScale());

    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    const Primitive prims[] = {Primitive::Lock, Primitive::Barrier,
                               Primitive::Semaphore, Primitive::CondVar};

    struct Cell
    {
        Primitive p;
        unsigned interval;
        Scheme scheme;
    };
    std::vector<Cell> cells;
    for (Primitive p : prims) {
        for (unsigned interval : intervalsFor(p)) {
            for (Scheme scheme : schemes)
                cells.push_back({p, interval, scheme});
        }
    }

    std::vector<std::function<harness::RunOutput()>> tasks;
    tasks.reserve(cells.size());
    for (const Cell &c : cells) {
        tasks.push_back([&opts, c, ops] {
            return harness::runPrimitive(opts.makeConfig(c.scheme), c.p,
                                         c.interval, ops);
        });
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    double sum200SynCronVsCentral = 0.0, sum200SynCronVsHier = 0.0;
    int count200 = 0;
    std::size_t i = 0; // results arrive in cell order

    for (Primitive p : prims) {
        harness::TablePrinter table(
            std::string("Fig. 10 (") + workloads::primitiveName(p)
                + "): speedup vs Central, 60 cores",
            {"interval", "Central", "Hier", "SynCron", "Ideal"});

        for (unsigned interval : intervalsFor(p)) {
            double time[4];
            for (int s = 0; s < 4; ++s, ++i) {
                time[s] = static_cast<double>(results[i].time);
                report.add(std::string(workloads::primitiveName(p)) + "/"
                               + std::to_string(interval) + "/"
                               + schemeName(schemes[s]),
                           results[i]);
            }
            table.addRow({std::to_string(interval), fmtX(1.0),
                          fmtX(time[0] / time[1]),
                          fmtX(time[0] / time[2]),
                          fmtX(time[0] / time[3])});
            if (interval == 200 && (p == Primitive::Lock)) {
                sum200SynCronVsCentral += time[0] / time[2];
                sum200SynCronVsHier += time[1] / time[2];
                ++count200;
            }
        }
        table.print(std::cout);
    }

    if (count200 > 0) {
        std::cout << "lock @200 instr: SynCron vs Central "
                  << fmtX(sum200SynCronVsCentral / count200)
                  << ", vs Hier "
                  << fmtX(sum200SynCronVsHier / count200)
                  << " (paper: ~3.05x / ~1.40x averaged over all "
                     "primitives)\n";
    }
    report.finish(std::cout);
    return 0;
}
