/**
 * @file
 * Async submission/batching sweep: the semaphore fan-out microbenchmark
 * (workloads::SemFanoutWorkload) over batch width x contention on the
 * schemes that opt into SE message coalescing (SynCron, Central) plus
 * the flat baseline running on the default per-op fallback.
 *
 * The point of the figure: with same-SE coalescing, synchronization
 * messages per operation fall as the batch widens — the Fig. 5 header
 * is paid once per batch instead of once per op — while a backend on
 * the default requestBatch() fallback stays flat. The bench exits
 * non-zero unless messages/op is strictly decreasing in batch width on
 * the SynCron backend at low contention (the coalescing guarantee this
 * PR pins down), and unless coalescing actually engaged (batchedOps /
 * messagesSaved counters advance) for every width >= 2.
 */

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

namespace {

double
msgsPerOp(const harness::RunOutput &out)
{
    const std::uint64_t msgs = out.stats.syncLocalMsgs
                               + out.stats.syncGlobalMsgs
                               + out.stats.syncOverflowMsgs;
    return out.ops == 0 ? 0.0
                        : static_cast<double>(msgs)
                              / static_cast<double>(out.ops);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig23_async_batching", opts);

    const unsigned widths[] = {1, 2, 4, 8};
    const bool contentions[] = {false, true};
    const Scheme schemes[] = {Scheme::SynCron, Scheme::Central,
                              Scheme::SynCronFlat};
    const unsigned rounds =
        std::max(1u, static_cast<unsigned>(12 * opts.effectiveScale()));

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (bool contended : contentions) {
        for (unsigned width : widths) {
            for (Scheme scheme : schemes) {
                tasks.push_back([&opts, width, rounds, contended,
                                 scheme] {
                    SystemConfig cfg = opts.makeConfig(scheme, 4, 15);
                    return harness::runSemFanout(cfg, width, rounds,
                                                 contended);
                });
            }
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Async batching (sem fan-out): sync messages per op",
        {"contention", "width", "SynCron", "msgs saved", "Central",
         "SynCron-flat"});

    std::size_t i = 0;
    for (bool contended : contentions) {
        const std::string cont = contended ? "high" : "low";
        double prevSyncron = 0.0;
        for (unsigned width : widths) {
            std::vector<std::string> row{cont, std::to_string(width)};
            for (Scheme scheme : schemes) {
                const harness::RunOutput &out = results[i++];
                const double mpo = msgsPerOp(out);
                if (scheme == Scheme::SynCron) {
                    // The tentpole guarantee: messages/op strictly
                    // decreasing with batch width at low contention.
                    if (!contended && width > 1 && mpo >= prevSyncron) {
                        SYNCRON_FATAL(
                            "SynCron messages/op not strictly "
                            "decreasing at low contention: width "
                            << width << " has " << mpo
                            << " msgs/op, previous width had "
                            << prevSyncron);
                    }
                    if (width > 1
                        && (out.stats.batchedOps == 0
                            || out.stats.messagesSaved == 0)) {
                        SYNCRON_FATAL("coalescing never engaged at "
                                      "width "
                                      << width << " (" << cont
                                      << " contention)");
                    }
                    if (!contended)
                        prevSyncron = mpo;
                }
                row.push_back(fmt(mpo, 3));
                if (scheme == Scheme::SynCron) {
                    row.push_back(
                        std::to_string(out.stats.messagesSaved));
                }
                report.add("fanout/" + cont + "/w"
                               + std::to_string(width) + "/"
                               + schemeName(scheme),
                           out);
            }
            table.addRow(std::move(row));
        }
    }
    table.addNote("SynCron/Central coalesce same-SE batch members into "
                  "one message; SynCron-flat runs the per-op fallback");
    table.addNote("checked: SynCron msgs/op strictly decreasing with "
                  "width at low contention");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
