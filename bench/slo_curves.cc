/**
 * @file
 * Open-loop latency-vs-offered-load curves and max sustainable
 * throughput under a p99 SLO, per backend.
 *
 * For each backend the bench sweeps a geometric grid of offered rates
 * (Poisson arrivals by default; --load= overrides the process), runs
 * the open-loop engine at each point, and reports the lock-acquire
 * tail percentiles — the curve whose knee closed-loop throughput bars
 * cannot show. It then binary-searches the highest offered rate whose
 * p99 stays within the SLO (--slo-p99=<ns>, default 2000), reported as
 * the per-backend "max sustainable rate" metric.
 *
 * Inline guarantees (the bench exits non-zero when violated):
 *   - determinism: the first curve point of every backend is re-run at
 *     --sim-shards=1 and must serialize to byte-identical curve JSON —
 *     which, when the sweep itself ran sharded, is also the PR 8
 *     cross-shard bit-identity check for the open-loop engine.
 *
 * Composes with --jobs (independent grid cells), --analyze (each cell
 * runs the sync-correctness analyses), and --sim-shards.
 */

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iostream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/units.hh"
#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "load/slo.hh"
#include "system/config.hh"

using namespace syncron;
using harness::fmt;

namespace {

constexpr Scheme kSchemes[] = {Scheme::SynCron, Scheme::Hier,
                               Scheme::Central, Scheme::SynCronFlat};

/// Offered-rate sweep, arrivals per core per us (geometric, x4).
constexpr double kRates[] = {0.1, 0.4, 1.6, 6.4};

/// Default p99 SLO when --slo-p99 is not given, ns.
constexpr double kDefaultSloP99Ns = 2000.0;

/// Bisection steps for the max-sustainable-rate search.
constexpr unsigned kSearchIters = 5;

load::SloPoint
pointFrom(const harness::RunOutput &out, double rate)
{
    return load::makeSloPoint(
        rate, out.time, out.offeredOps,
        load::LoadCounters{out.issuedOps, out.droppedOps, out.queuedOps,
                           out.queueDelayTicks},
        out.stats);
}

std::string
rateLabel(double rate)
{
    std::string s = "r" + fmt(rate, 3);
    while (s.size() > 2 && s.back() == '0')
        s.pop_back();
    if (s.back() == '.')
        s.pop_back();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const double scale = opts.effectiveScale();

    load::LoadSpec base;
    base.kind = load::ArrivalKind::Poisson;
    base.opsPerCore = std::max(16u, static_cast<unsigned>(64 * scale));
    base.window = 4;
    base.numLocks = 16;
    base.policy = load::OverloadPolicy::Queue;
    base.seed = 1;
    if (opts.hasLoad)
        base = opts.loadSpec;
    const double sloP99Ns =
        opts.sloP99Ns > 0.0 ? opts.sloP99Ns : kDefaultSloP99Ns;

    // --backend collapses the scheme sweep to one curve: every cell
    // would run the same registry backend anyway.
    std::vector<std::pair<Scheme, std::string>> backends;
    if (!opts.backend.empty()) {
        backends.emplace_back(Scheme::SynCron, opts.backend);
    } else {
        for (Scheme s : kSchemes)
            backends.emplace_back(s, schemeName(s));
    }

    harness::BenchReport report("slo_curves", opts);

    // One schedule expansion per rate, shared read-only by every
    // backend's cell at that rate (and by the SLO probes' rerun of the
    // same spec in spirit — probes expand their own rates).
    const unsigned numCores =
        opts.makeConfig(Scheme::SynCron).totalClientCores();
    std::vector<load::LoadSpec> specs;
    std::vector<load::ArrivalSchedule> schedules;
    for (double rate : kRates) {
        load::LoadSpec spec = base;
        spec.ratePerUs = rate;
        specs.push_back(spec);
        schedules.push_back(
            load::buildArrivalSchedule(spec, numCores));
    }

    struct Cell
    {
        unsigned backendIdx;
        unsigned rateIdx;
    };
    std::vector<Cell> cells;
    std::vector<std::function<harness::RunOutput()>> tasks;
    for (unsigned b = 0; b < backends.size(); ++b) {
        for (unsigned r = 0; r < std::size(kRates); ++r) {
            cells.push_back(Cell{b, r});
            const Scheme scheme = backends[b].first;
            tasks.push_back([&, scheme, r] {
                const SystemConfig cfg = opts.makeConfig(scheme);
                return harness::runOpenLoop(cfg, specs[r],
                                            schedules[r]);
            });
        }
    }
    const std::vector<harness::RunOutput> results =
        harness::runGrid(std::move(tasks), opts.jobs);

    // -- Assemble curves + BENCH records ------------------------------
    std::vector<load::SloCurve> curves(backends.size());
    for (unsigned b = 0; b < backends.size(); ++b)
        curves[b].backend = backends[b].second;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        curves[cell.backendIdx].points.push_back(
            pointFrom(results[i], kRates[cell.rateIdx]));
        report.add(backends[cell.backendIdx].second + "/"
                       + rateLabel(kRates[cell.rateIdx]),
                   results[i]);
    }

    // -- Inline determinism / cross-shard identity check --------------
    // Re-run the first rate point of every backend single-sharded; its
    // curve JSON must match the sweep's byte for byte.
    for (unsigned b = 0; b < backends.size(); ++b) {
        SystemConfig cfg = opts.makeConfig(backends[b].first);
        cfg.simShards = 1;
        const harness::RunOutput rerun =
            harness::runOpenLoop(cfg, specs[0], schedules[0]);
        load::SloCurve a{curves[b].backend, {curves[b].points[0]}};
        load::SloCurve c{curves[b].backend,
                         {pointFrom(rerun, kRates[0])}};
        if (load::curveToJson(a) != load::curveToJson(c)) {
            SYNCRON_FATAL(
                "open-loop run not deterministic for backend '"
                << curves[b].backend << "' at rate " << kRates[0]
                << (opts.simShards > 1
                        ? " (sharded sweep diverged from 1 shard)"
                        : "")
                << ":\n  sweep: " << load::curveToJson(a)
                << "\n  rerun: " << load::curveToJson(c));
        }
    }

    // -- Max sustainable rate under the p99 SLO -----------------------
    harness::TablePrinter summary(
        "max sustainable offered rate under p99 <= "
            + fmt(sloP99Ns, 0) + " ns ("
            + std::string(load::arrivalKindName(base.kind))
            + " arrivals, window " + std::to_string(base.window) + ")",
        {"backend", "max rate[/us/core]", "p99@max[ns]", "probes"});
    for (unsigned b = 0; b < backends.size(); ++b) {
        const Scheme scheme = backends[b].first;
        auto probe = [&](double rate) {
            load::LoadSpec spec = base;
            spec.ratePerUs = rate;
            const SystemConfig cfg = opts.makeConfig(scheme);
            return pointFrom(harness::runOpenLoop(cfg, spec), rate);
        };
        const load::SloSearchResult res = load::findMaxSustainableRate(
            probe, kRates[0], kRates[std::size(kRates) - 1], sloP99Ns,
            kSearchIters);
        summary.addRow(
            {backends[b].second,
             res.loFailed ? "< " + fmt(kRates[0], 3)
                          : fmt(res.maxRatePerUs, 3)
                                + (res.hiPassed ? "+" : ""),
             fmt(res.p99NsAtMax, 1), std::to_string(res.probes)});
        report.addMetric("maxRatePerUs." + backends[b].second,
                         res.maxRatePerUs);
        report.addMetric("p99AtMaxNs." + backends[b].second,
                         res.p99NsAtMax);
    }

    // -- Terminal output ----------------------------------------------
    harness::TablePrinter table(
        "open-loop latency vs offered load (lock acquire, ns)",
        {"backend", "rate[/us]", "issued", "drop", "queued", "p50",
         "p90", "p99", "p999"});
    for (const load::SloCurve &curve : curves) {
        for (const load::SloPoint &p : curve.points) {
            table.addRow({curve.backend, fmt(p.ratePerUs, 3),
                          std::to_string(p.issued),
                          std::to_string(p.dropped),
                          std::to_string(p.queued), fmt(p.p50Ns, 1),
                          fmt(p.p90Ns, 1), fmt(p.p99Ns, 1),
                          fmt(p.p999Ns, 1)});
        }
    }
    table.addNote("curves deterministic (checked): first point of "
                  "every backend re-run at --sim-shards=1, byte-equal "
                  "JSON");
    table.print(std::cout);
    summary.print(std::cout);

    for (const load::SloCurve &curve : curves)
        std::cout << "curve " << load::curveToJson(curve) << "\n";

    report.finish(std::cout);
    return 0;
}
