/**
 * @file
 * Durability sweep: the replication workload (per-partition ordered
 * apply) over persist granularity — no durability, eager per-op
 * persistence, and epoch-batched WAL flushes at two batch sizes — on
 * the SE-based backend (SynCron) and the server-core baseline
 * (Central).
 *
 * The point of the figure: eager persistence charges one modeled PM
 * write per acquire-type operation on the request path, so its
 * throughput overhead vs the no-durability baseline bounds the cost of
 * crash consistency; epoch batching amortizes the WAL writes and the
 * overhead shrinks with the batch. The JSON record carries the
 * overhead percentages as explicit metrics plus per-cell PM write
 * counters, feeding tools/perf_trend.py.
 *
 * With --crash-sweep=<n> the bench instead runs the crash-injection
 * sweep (harness::runCrashSweep) at every nth sync-op boundary on both
 * backends and exits non-zero unless every injection point recovers to
 * the clean run's final state.
 */

#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "durability/image.hh"
#include "durability/manager.hh"
#include "durability/pm_model.hh"
#include "durability/recovery.hh"
#include "harness/crash_sweep.hh"
#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "system/system.hh"
#include "workloads/replication/replication.hh"

using namespace syncron;
using harness::fmt;

namespace {

/** One persist-granularity grid column. */
struct ModeSpec
{
    const char *label;
    durability::PersistMode mode;
    unsigned epochOps;
};

constexpr ModeSpec kModes[] = {
    {"off", durability::PersistMode::Off, 64},
    {"eager", durability::PersistMode::Eager, 64},
    {"epoch:8", durability::PersistMode::Epoch, 8},
    {"epoch:64", durability::PersistMode::Epoch, 64},
};

workloads::ReplicationParams
benchParams(double scale)
{
    workloads::ReplicationParams p;
    p.epochs = 3;
    // Enough work per grid cell that host-side events/sec is a stable
    // perf_trend signal (tiny cells flap far beyond the CI threshold).
    p.opsPerEpoch =
        std::max(2u, static_cast<unsigned>(200 * scale));
    return p;
}

/**
 * --crash-at: one deterministic crash on SynCron. Runs the clean
 * reference for its WAL, reruns with the injected crash, then
 * recovers the persisted image and reports the rollback cut. A
 * crashed run has no finalized stats by design, so this never goes
 * through the throughput grid.
 */
int
runCrashOnce(const harness::BenchOptions &opts)
{
    const workloads::ReplicationParams params =
        benchParams(opts.effectiveScale());
    SystemConfig cfg = opts.makeConfig(Scheme::SynCron, 4, 15);
    if (cfg.persistMode == durability::PersistMode::Off)
        cfg.persistMode = durability::PersistMode::Eager;

    cfg.crashAtTick = 0;
    trace::Trace refWal;
    {
        NdpSystem ref(cfg);
        workloads::ReplicationWorkload w(ref, params);
        ref.run();
        refWal = ref.durability()->walTrace();
    }

    cfg.crashAtTick = opts.crashAt;
    NdpSystem sys(cfg);
    workloads::ReplicationWorkload w(sys, params);
    sys.run();
    if (!sys.crashed()) {
        std::cout << "crash-at " << opts.crashAt
                  << ": the run finished first (" << refWal.records.size()
                  << " ops); nothing to recover\n";
        return 0;
    }

    const durability::PersistedImage img = sys.durability()->snapshot();
    const durability::RecoveryResult rr =
        durability::RecoveryEngine(img, refWal).recover();
    std::cout << "crash-at " << opts.crashAt << " ["
              << durability::persistModeName(cfg.persistMode)
              << "]: " << img.records.size() << " durable of "
              << refWal.records.size() << " ops, rollback cut undoes "
              << rr.rolledBack << ", resume replays "
              << rr.resume.records.size() << ": "
              << (rr.violations.empty() ? "recoverable" : "FAIL")
              << "\n";
    for (const std::string &v : rr.violations)
        std::cerr << "  " << v << "\n";
    if (!rr.violations.empty())
        SYNCRON_FATAL("recovery failed at tick " << opts.crashAt);
    return 0;
}

int
runSweepMode(const harness::BenchOptions &opts)
{
    workloads::ReplicationParams params = benchParams(1.0);
    params.epochs = 2;
    params.opsPerEpoch = 2;
    for (Scheme scheme : {Scheme::SynCron, Scheme::Central}) {
        SystemConfig cfg = opts.makeConfig(scheme, 2, 3);
        cfg.persistMode = durability::PersistMode::Eager;
        const harness::CrashSweepResult r =
            harness::runCrashSweep(cfg, params, opts.crashSweepEvery);
        std::cout << "crash sweep [" << schemeName(scheme) << "]: "
                  << r.injections << " injections over " << r.boundaries
                  << " boundaries (" << r.referenceRecords
                  << " WAL records, " << r.totalRolledBack
                  << " rolled back total): "
                  << (r.passed() ? "pass" : "FAIL") << "\n";
        if (!r.passed()) {
            for (const std::string &v : r.violations)
                std::cerr << "  " << v << "\n";
            SYNCRON_FATAL("crash-injection sweep failed on "
                          << schemeName(scheme) << " ("
                          << r.violations.size() << " violations)");
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    if (opts.crashSweepEvery > 0)
        return runSweepMode(opts);
    if (opts.crashAt != 0)
        return runCrashOnce(opts);

    harness::BenchReport report("fig24_durability", opts);
    const Scheme schemes[] = {Scheme::SynCron, Scheme::Central};
    const workloads::ReplicationParams params =
        benchParams(opts.effectiveScale());

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (Scheme scheme : schemes) {
        for (const ModeSpec &m : kModes) {
            tasks.push_back([&opts, scheme, m, params] {
                SystemConfig cfg = opts.makeConfig(scheme, 4, 15);
                cfg.persistMode = m.mode;
                cfg.persistEpochOps = m.epochOps;
                return harness::runReplication(cfg, params);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Durability (replication): ops/ms by persist granularity",
        {"scheme", "mode", "ops/ms", "overhead%", "pmWrites",
         "pmFlushes"});

    std::size_t i = 0;
    for (Scheme scheme : schemes) {
        double baseline = 0.0;
        for (const ModeSpec &m : kModes) {
            const harness::RunOutput &out = results[i++];
            if (m.mode == durability::PersistMode::Off) {
                baseline = out.opsPerMs();
                if (out.stats.pmWrites != 0) {
                    SYNCRON_FATAL("persist mode off charged "
                                  << out.stats.pmWrites
                                  << " PM writes on "
                                  << schemeName(scheme));
                }
            } else if (out.stats.pmWrites == 0) {
                SYNCRON_FATAL("persist mode " << m.label
                                              << " charged no PM "
                                                 "writes on "
                                              << schemeName(scheme));
            }
            if (m.mode == durability::PersistMode::Epoch
                && out.stats.pmFlushes == 0) {
                SYNCRON_FATAL("epoch mode never flushed on "
                              << schemeName(scheme));
            }
            const double overhead =
                baseline > 0.0
                    ? (baseline - out.opsPerMs()) / baseline * 100.0
                    : 0.0;
            table.addRow({schemeName(scheme), m.label,
                          fmt(out.opsPerMs(), 1), fmt(overhead, 1),
                          std::to_string(out.stats.pmWrites),
                          std::to_string(out.stats.pmFlushes)});
            const std::string key = std::string("replication/")
                                    + schemeName(scheme) + "/" + m.label;
            report.add(key, out);
            if (m.mode != durability::PersistMode::Off)
                report.addMetric("overheadPct/"
                                     + std::string(schemeName(scheme))
                                     + "/" + m.label,
                                 overhead);
        }
    }
    table.addNote("overhead% is throughput lost vs the no-durability "
                  "baseline of the same scheme");
    table.addNote("eager: one modeled PM write per acquire-type op on "
                  "the request path; epoch:N batches N WAL records per "
                  "flush");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
