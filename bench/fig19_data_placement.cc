/**
 * @file
 * Reproduces paper Fig. 19: effect of better data placement (the METIS
 * 4-way partitioning, here a greedy min-edge-cut partitioner) on
 * pagerank over the four graph inputs. All values are normalized to
 * Central without partitioning; the second table reports SynCron's
 * maximum ST occupancy, which drops with better placement because
 * fewer variables need both a local-SE and a Master-SE entry.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmtPct;
using harness::fmtX;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig19_data_placement", opts);
    const double scale = 0.35 * opts.effectiveScale();
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    const char *inputs[] = {"wk", "sl", "sx", "co"};

    harness::SharedInputs shared;
    for (const char *input : inputs) {
        shared.prepareGraph(input, scale);
        for (bool metis : {false, true})
            shared.preparePartition(input, 4, metis);
    }

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const char *input : inputs) {
        for (bool metis : {false, true}) {
            for (Scheme scheme : schemes) {
                tasks.push_back([&opts, &shared, input, metis, scheme] {
                    return harness::runGraph(
                        opts.makeConfig(scheme, 4, 15),
                        shared.graph(input), workloads::GraphApp::Pr,
                        shared.partition(input, 4, metis));
                });
            }
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter speed(
        "Fig. 19: pr speedup vs Central/no-partitioning",
        {"input", "partition", "Central", "Hier", "SynCron", "Ideal"});
    harness::TablePrinter occ(
        "Fig. 19 (bottom): SynCron max ST occupancy",
        {"input", "no partition", "partitioned"});

    std::size_t i = 0;
    for (const char *input : inputs) {
        double base = 0;
        double occNo = 0, occYes = 0;
        for (bool metis : {false, true}) {
            double time[4];
            for (int s = 0; s < 4; ++s, ++i) {
                time[s] = static_cast<double>(results[i].time);
                if (schemes[s] == Scheme::SynCron)
                    (metis ? occYes : occNo) = results[i].stMaxFrac;
                report.add(std::string("pr.") + input + "/"
                               + (metis ? "greedy" : "range") + "/"
                               + schemeName(schemes[s]),
                           results[i]);
            }
            if (!metis)
                base = time[0];
            speed.addRow({input, metis ? "greedy(min-cut)" : "range",
                          fmtX(base / time[0]), fmtX(base / time[1]),
                          fmtX(base / time[2]), fmtX(base / time[3])});
        }
        occ.addRow({input, fmtPct(occNo), fmtPct(occYes)});
    }
    speed.addNote("paper: with METIS all schemes improve ~1.47x; "
                  "SynCron stays best");
    speed.print(std::cout);
    occ.addNote("paper: max ST occupancy drops (e.g. pr.wk 62% -> 39%)");
    occ.print(std::cout);
    report.finish(std::cout);
    return 0;
}
