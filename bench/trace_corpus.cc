/**
 * @file
 * Corpus replay: zero-copy scan + cross-backend replay of a directory
 * of traces.
 *
 * Stages:
 *
 *   1. Corpus. With --trace-corpus=<dir>, the existing directory is
 *      used as-is. Otherwise the bench generates its own: every
 *      scenario family (trace::kAllScenarioFamilies) at two scales —
 *      ten traces — written into a fresh temporary directory.
 *   2. Zero-copy scan. Every trace is mmap-read through
 *      trace::MappedTraceReader and scanned record-by-record; the
 *      steady-state record loop is asserted allocation-free with a
 *      counting global operator new (the zero-copy contract: views
 *      into the mapping, no per-record heap traffic).
 *   3. Replay. harness::runCorpus replays the whole corpus
 *      back-to-back on SynCron, Central, and SynCron-flat; every
 *      replay must reproduce its trace's per-OpKind operation counts
 *      exactly (fatal otherwise).
 *
 * Emits BENCH_trace_corpus.json with --json; CI smokes a small corpus
 * and gates host-side scan/replay speed with tools/perf_trend.py.
 */

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "trace/corpus.hh"
#include "trace/format.hh"
#include "trace/mmap_reader.hh"
#include "trace/scenario.hh"

// -- Counting allocator ------------------------------------------------
// Counts every global allocation in this binary; the mmap scan stage
// asserts the delta across each record loop is zero. The full
// replacement set (throwing, nothrow, array, sized) keeps one
// malloc/free pool, which AddressSanitizer requires.
//
// GCC cannot see that this operator new (malloc) pairs with this
// operator delete (free) and warns at every inlined call site.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> gAllocCount{0};
} // namespace

void *
operator new(std::size_t n)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

using namespace syncron;
using harness::fmt;

namespace {

/** Replay schemes, in table-column order. */
constexpr Scheme kReplaySchemes[] = {Scheme::SynCron, Scheme::Central,
                                     Scheme::SynCronFlat};

/** Generates the default corpus: every family at two scales. */
std::string
generateCorpus(double scale, std::uint64_t seed)
{
    char tmpl[] = "trace_corpus_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr)
        SYNCRON_FATAL("cannot create corpus directory " << tmpl);
    const std::string dir = tmpl;

    for (trace::ScenarioFamily family : trace::kAllScenarioFamilies) {
        for (unsigned step = 0; step < 2; ++step) {
            trace::ScenarioSpec spec;
            spec.family = family;
            spec.numUnits = 2;
            spec.clientCoresPerUnit = 4;
            spec.opsPerCore = static_cast<unsigned>(
                16.0 * (step + 1) * scale);
            if (spec.opsPerCore == 0)
                spec.opsPerCore = 1;
            spec.seed = seed + step;
            const std::string path =
                dir + "/" + trace::scenarioFamilyName(family) + "_s"
                + std::to_string(step + 1) + ".trc";
            trace::writeTraceFile(
                trace::ScenarioGenerator(spec).generate(), path);
        }
    }
    return dir;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("trace_corpus", opts);
    const double scale = opts.effectiveScale();

    // -- Stage 1: the corpus -------------------------------------------
    std::string dir = opts.traceCorpus;
    if (dir.empty()) {
        dir = generateCorpus(scale, 1);
        std::cout << "generated corpus -> " << dir << "\n";
    }
    const trace::Corpus corpus = trace::Corpus::open(dir);
    std::cout << "corpus " << corpus.dir() << ": " << corpus.size()
              << " traces, " << corpus.totalBytes() << " bytes\n";

    // -- Stage 2: zero-copy scan (allocation-free record loop) ---------
    std::uint64_t scannedRecords = 0;
    for (const trace::CorpusFile &file : corpus.files()) {
        trace::MappedTraceReader reader(file.path);
        auto cursor = reader.records();
        trace::TraceRecord rec;
        std::uint64_t n = 0;
        const std::uint64_t before =
            gAllocCount.load(std::memory_order_relaxed);
        while (cursor.next(rec))
            ++n;
        const std::uint64_t after =
            gAllocCount.load(std::memory_order_relaxed);
        if (after != before) {
            SYNCRON_FATAL("mmap record loop over "
                          << file.name << " allocated "
                          << (after - before)
                          << " times (zero-copy contract)");
        }
        if (n != reader.recordCount()) {
            SYNCRON_FATAL("mmap scan of " << file.name << " yielded "
                                          << n << " of "
                                          << reader.recordCount()
                                          << " records");
        }
        scannedRecords += n;
    }
    std::cout << "scanned " << scannedRecords << " records across "
              << corpus.size()
              << " traces; record loops allocation-free\n";

    // -- Stage 3: replay the corpus on every backend -------------------
    harness::TablePrinter table(
        "Corpus replay: throughput [ops/ms] per backend",
        {"trace", "records", "SynCron", "Central", "SynCron-flat"});
    std::vector<std::vector<std::string>> rows;
    for (const trace::CorpusFile &file : corpus.files())
        rows.push_back({file.name, ""});

    for (Scheme scheme : kReplaySchemes) {
        const SystemConfig base = opts.makeConfig(scheme);
        const std::vector<harness::CorpusRunOutput> outs =
            harness::runCorpus(base, scheme, corpus);
        for (std::size_t i = 0; i < outs.size(); ++i) {
            const harness::CorpusRunOutput &out = outs[i];
            rows[i][1] = std::to_string(out.run.ops);
            rows[i].push_back(fmt(out.run.opsPerMs(), 1));
            report.add(out.file.name + "/" + schemeName(scheme),
                       out.run);

            // The round-trip guarantee: a correct backend executes
            // exactly the operation mix the mmap scan counted.
            std::uint64_t records = 0;
            for (unsigned k = 0; k < kNumSyncOpKinds; ++k)
                records += out.opCounts[k];
            if (out.run.ops != records) {
                SYNCRON_FATAL("replay of '"
                              << out.file.name << "' on "
                              << schemeName(scheme) << " executed "
                              << out.run.ops << " of " << records
                              << " records");
            }
            for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
                const std::uint64_t got =
                    out.run.stats.syncLatency[k].count;
                if (got != out.opCounts[k]) {
                    SYNCRON_FATAL(
                        "replay of '"
                        << out.file.name << "' on "
                        << schemeName(scheme) << " performed " << got
                        << " "
                        << sync::opKindName(
                               static_cast<sync::OpKind>(k))
                        << " ops, trace has " << out.opCounts[k]);
                }
            }
        }
    }

    for (auto &row : rows)
        table.addRow(std::move(row));
    table.addNote("every replay reproduces its trace's per-OpKind "
                  "counts on every backend (checked); mmap record "
                  "loops are allocation-free (counted)");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
