/**
 * @file
 * Reproduces paper Fig. 12: speedup of Hier / SynCron / Ideal over
 * Central for all 26 real application-input combinations (six graph
 * apps x four graph inputs, plus time-series analysis on two inputs).
 *
 * Expected shape: SynCron ~1.47x over Central and ~1.23x over Hier on
 * average, within ~10% of Ideal; the ts rows show the largest gains
 * (highest synchronization intensity).
 */

#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmtX;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig12_real_apps", opts);
    // Graphs are already scaled-down proxies; keep default runs brisk.
    const double scale = 0.35 * opts.effectiveScale();

    harness::TablePrinter table(
        "Fig. 12: real-application speedup vs Central",
        {"app.input", "Central", "Hier", "SynCron", "Ideal"});

    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    const auto appInputs = harness::allAppInputs();
    harness::SharedInputs inputs;
    inputs.prepare(appInputs, scale);
    inputs.preparePartitions(appInputs, 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : appInputs) {
        for (Scheme scheme : schemes) {
            tasks.push_back([&opts, &inputs, ai, scheme] {
                return harness::runAppInput(
                    opts.makeConfig(scheme, 4, 15), ai, inputs);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    double geoHier = 0, geoSynCron = 0, geoIdeal = 0;
    int n = 0;
    std::size_t i = 0;

    for (const harness::AppInput &ai : appInputs) {
        double time[4];
        for (int s = 0; s < 4; ++s, ++i) {
            time[s] = static_cast<double>(results[i].time);
            report.add(ai.app + "." + ai.input + "/"
                           + schemeName(schemes[s]),
                       results[i]);
        }
        table.addRow({ai.app + "." + ai.input, fmtX(1.0),
                      fmtX(time[0] / time[1]), fmtX(time[0] / time[2]),
                      fmtX(time[0] / time[3])});
        geoHier += std::log(time[0] / time[1]);
        geoSynCron += std::log(time[0] / time[2]);
        geoIdeal += std::log(time[0] / time[3]);
        ++n;
    }

    table.addNote("paper averages: Hier 1.19x, SynCron 1.47x, "
                  "SynCron within 9.5% of Ideal");
    table.print(std::cout);

    std::cout << "geomean speedup vs Central: Hier "
              << fmtX(std::exp(geoHier / n)) << ", SynCron "
              << fmtX(std::exp(geoSynCron / n)) << ", Ideal "
              << fmtX(std::exp(geoIdeal / n)) << "\n";
    std::cout << "SynCron / Ideal gap: "
              << harness::fmtPct(std::exp(geoIdeal / n)
                                     / std::exp(geoSynCron / n)
                                 - 1.0)
              << " (paper: 9.5%)\n";
    report.finish(std::cout);
    return 0;
}
