/**
 * @file
 * Reproduces paper Fig. 12: speedup of Hier / SynCron / Ideal over
 * Central for all 26 real application-input combinations (six graph
 * apps x four graph inputs, plus time-series analysis on two inputs).
 *
 * Expected shape: SynCron ~1.47x over Central and ~1.23x over Hier on
 * average, within ~10% of Ideal; the ts rows show the largest gains
 * (highest synchronization intensity).
 */

#include <cmath>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmtX;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    // Graphs are already scaled-down proxies; keep default runs brisk.
    const double scale = 0.35 * opts.effectiveScale();

    harness::TablePrinter table(
        "Fig. 12: real-application speedup vs Central",
        {"app.input", "Central", "Hier", "SynCron", "Ideal"});

    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    double geoHier = 0, geoSynCron = 0, geoIdeal = 0;
    int n = 0;

    for (const harness::AppInput &ai : harness::allAppInputs()) {
        double time[4];
        for (int s = 0; s < 4; ++s) {
            SystemConfig cfg = SystemConfig::make(schemes[s], 4, 15);
            auto out = harness::runAppInput(cfg, ai, scale);
            time[s] = static_cast<double>(out.time);
        }
        table.addRow({ai.app + "." + ai.input, fmtX(1.0),
                      fmtX(time[0] / time[1]), fmtX(time[0] / time[2]),
                      fmtX(time[0] / time[3])});
        geoHier += std::log(time[0] / time[1]);
        geoSynCron += std::log(time[0] / time[2]);
        geoIdeal += std::log(time[0] / time[3]);
        ++n;
    }

    table.addNote("paper averages: Hier 1.19x, SynCron 1.47x, "
                  "SynCron within 9.5% of Ideal");
    table.print(std::cout);

    std::cout << "geomean speedup vs Central: Hier "
              << fmtX(std::exp(geoHier / n)) << ", SynCron "
              << fmtX(std::exp(geoSynCron / n)) << ", Ideal "
              << fmtX(std::exp(geoIdeal / n)) << "\n";
    std::cout << "SynCron / Ideal gap: "
              << harness::fmtPct(std::exp(geoIdeal / n)
                                     / std::exp(geoSynCron / n)
                                 - 1.0)
              << " (paper: 9.5%)\n";
    return 0;
}
