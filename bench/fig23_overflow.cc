/**
 * @file
 * Reproduces paper Fig. 23: BST_FG throughput under the three overflow
 * schemes — SynCron's integrated hardware-only scheme vs MiSAR-style
 * aborts to a central (SynCron_CentralOvrfl) or distributed
 * (SynCron_DistribOvrfl) software fallback — sweeping the ST size.
 *
 * Expected shape: with heavy overflow (small STs) the integrated scheme
 * degrades by only a few percent while the MiSAR-style schemes lose
 * ~10-12% (paper, at 30.5% overflowed requests with a 64-entry ST).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;
using harness::fmtPct;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig23_overflow", opts);
    const unsigned sizes[] = {16, 32, 48, 64, 128, 256};
    const Scheme schemes[] = {Scheme::SynCron,
                              Scheme::SynCronCentralOvrfl,
                              Scheme::SynCronDistribOvrfl};

    const harness::DsParams params = harness::dsDefaults(
        harness::DsKind::BstFg, opts.effectiveScale());

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (unsigned entries : sizes) {
        for (Scheme scheme : schemes) {
            tasks.push_back([&opts, entries, scheme, params] {
                SystemConfig cfg = opts.makeConfig(scheme, 4, 15);
                cfg.stEntries = entries;
                return harness::runDataStructure(
                    cfg, harness::DsKind::BstFg, params.initialSize,
                    params.opsPerCore);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 23 (BST_FG): throughput [ops/ms] per overflow scheme",
        {"ST size", "overflowed", "SynCron", "CentralOvrfl",
         "DistribOvrfl"});

    std::size_t i = 0;
    for (unsigned entries : sizes) {
        std::vector<std::string> row{std::to_string(entries)};
        double overflowFrac = 0;
        std::vector<std::string> cells;
        for (Scheme scheme : schemes) {
            const harness::RunOutput &out = results[i++];
            if (scheme == Scheme::SynCron)
                overflowFrac = out.overflowFrac();
            cells.push_back(fmt(out.opsPerMs(), 1));
            report.add("BST_FG/ST_" + std::to_string(entries) + "/"
                           + schemeName(scheme),
                       out);
        }
        row.push_back(fmtPct(overflowFrac));
        row.insert(row.end(), cells.begin(), cells.end());
        table.addRow(std::move(row));
    }
    table.addNote("paper @64 entries: 30.5% overflowed; integrated "
                  "-3.2% vs CentralOvrfl -12.3% / DistribOvrfl -10.4%");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
