/**
 * @file
 * Reproduces paper Fig. 23: BST_FG throughput under the three overflow
 * schemes — SynCron's integrated hardware-only scheme vs MiSAR-style
 * aborts to a central (SynCron_CentralOvrfl) or distributed
 * (SynCron_DistribOvrfl) software fallback — sweeping the ST size.
 *
 * Expected shape: with heavy overflow (small STs) the integrated scheme
 * degrades by only a few percent while the MiSAR-style schemes lose
 * ~10-12% (paper, at 30.5% overflowed requests with a 64-entry ST).
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;
using harness::fmtPct;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const unsigned sizes[] = {16, 32, 48, 64, 128, 256};
    const Scheme schemes[] = {Scheme::SynCron,
                              Scheme::SynCronCentralOvrfl,
                              Scheme::SynCronDistribOvrfl};

    const harness::DsParams params = harness::dsDefaults(
        harness::DsKind::BstFg, opts.effectiveScale());

    harness::TablePrinter table(
        "Fig. 23 (BST_FG): throughput [ops/ms] per overflow scheme",
        {"ST size", "overflowed", "SynCron", "CentralOvrfl",
         "DistribOvrfl"});

    for (unsigned entries : sizes) {
        std::vector<std::string> row{std::to_string(entries)};
        double overflowFrac = 0;
        std::vector<std::string> cells;
        for (Scheme scheme : schemes) {
            SystemConfig cfg = SystemConfig::make(scheme, 4, 15);
            cfg.stEntries = entries;
            auto out = harness::runDataStructure(
                cfg, harness::DsKind::BstFg, params.initialSize,
                params.opsPerCore);
            if (scheme == Scheme::SynCron)
                overflowFrac = out.overflowFrac();
            cells.push_back(fmt(out.opsPerMs(), 1));
        }
        row.push_back(fmtPct(overflowFrac));
        row.insert(row.end(), cells.begin(), cells.end());
        table.addRow(std::move(row));
    }
    table.addNote("paper @64 entries: 30.5% overflowed; integrated "
                  "-3.2% vs CentralOvrfl -12.3% / DistribOvrfl -10.4%");
    table.print(std::cout);
    return 0;
}
