/**
 * @file
 * Reproduces paper Fig. 18: speedup over Central (per memory) for
 * cc.wk / pr.wk / ts.pow on the three memory technologies — HBM (2.5D),
 * HMC (3D), DDR4 (2D).
 *
 * Expected shape: SynCron's improvement over Hier grows as memory
 * latency grows (DDR4 > HMC > HBM), because direct ST buffering avoids
 * memory accesses entirely (paper ts.pow: 1.41x on HBM vs 2.49x on
 * DDR4).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmtX;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig18_memory_technologies", opts);
    const double scale = 0.35 * opts.effectiveScale();

    const std::vector<harness::AppInput> combos = {
        {"cc", "wk"}, {"pr", "wk"}, {"ts", "pow"}};
    const mem::DramTech techs[] = {mem::DramTech::Hbm,
                                   mem::DramTech::Hmc,
                                   mem::DramTech::Ddr4};
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};

    harness::SharedInputs inputs;
    inputs.prepare(combos, scale);
    inputs.preparePartitions(combos, 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : combos) {
        for (mem::DramTech tech : techs) {
            for (Scheme scheme : schemes) {
                tasks.push_back([&opts, &inputs, ai, tech, scheme] {
                    SystemConfig cfg = opts.makeConfig(scheme, 4, 15);
                    cfg.dramTech = tech;
                    return harness::runAppInput(cfg, ai, inputs);
                });
            }
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 18: speedup vs Central per memory technology",
        {"app.input", "memory", "Hier", "SynCron", "Ideal",
         "SynCron/Hier"});

    std::size_t i = 0;
    for (const harness::AppInput &ai : combos) {
        for (mem::DramTech tech : techs) {
            double time[4];
            for (int s = 0; s < 4; ++s, ++i) {
                time[s] = static_cast<double>(results[i].time);
                report.add(ai.app + "." + ai.input + "/"
                               + mem::dramTechName(tech) + "/"
                               + schemeName(schemes[s]),
                           results[i]);
            }
            table.addRow({ai.app + "." + ai.input,
                          mem::dramTechName(tech),
                          fmtX(time[0] / time[1]),
                          fmtX(time[0] / time[2]),
                          fmtX(time[0] / time[3]),
                          fmtX(time[1] / time[2])});
        }
    }
    table.addNote("paper ts.pow SynCron/Hier: HBM 1.41x, DDR4 2.49x — "
                  "the gap widens with slower memory");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
