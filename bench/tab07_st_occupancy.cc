/**
 * @file
 * Reproduces paper Table 7: maximum and average Synchronization Table
 * occupancy of SynCron across all real application-input combinations.
 *
 * Expected shape: graph applications occupy few entries on average
 * (paper: 1.2-6.1%) with max below ~63%; time-series analysis reaches
 * ~44% average / ~84-89% max without ever overflowing the 64-entry ST.
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmtPct;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const double scale = 0.35 * opts.effectiveScale();

    harness::TablePrinter table(
        "Table 7: ST occupancy (SynCron, 64-entry STs)",
        {"app.input", "max", "avg", "overflowed"});

    for (const harness::AppInput &ai : harness::allAppInputs()) {
        SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 15);
        auto out = harness::runAppInput(cfg, ai, scale);
        table.addRow({ai.app + "." + ai.input, fmtPct(out.stMaxFrac),
                      fmtPct(out.stAvgFrac, 2),
                      fmtPct(out.overflowFrac())});
    }
    table.addNote("paper: graphs avg 1.2-6.1% / max <= 63%; "
                  "ts avg ~44% / max 84-89%; no overflow at 64 entries");
    table.print(std::cout);
    return 0;
}
