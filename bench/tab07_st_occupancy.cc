/**
 * @file
 * Reproduces paper Table 7: maximum and average Synchronization Table
 * occupancy of SynCron across all real application-input combinations.
 *
 * Expected shape: graph applications occupy few entries on average
 * (paper: 1.2-6.1%) with max below ~63%; time-series analysis reaches
 * ~44% average / ~84-89% max without ever overflowing the 64-entry ST.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmtPct;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("tab07_st_occupancy", opts);
    const double scale = 0.35 * opts.effectiveScale();
    const auto appInputs = harness::allAppInputs();
    harness::SharedInputs inputs;
    inputs.prepare(appInputs, scale);
    inputs.preparePartitions(appInputs, 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : appInputs) {
        tasks.push_back([&opts, &inputs, ai] {
            return harness::runAppInput(
                opts.makeConfig(Scheme::SynCron, 4, 15), ai, inputs);
        });
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Table 7: ST occupancy (SynCron, 64-entry STs)",
        {"app.input", "max", "avg", "overflowed"});

    std::size_t i = 0;
    for (const harness::AppInput &ai : appInputs) {
        const harness::RunOutput &out = results[i++];
        table.addRow({ai.app + "." + ai.input, fmtPct(out.stMaxFrac),
                      fmtPct(out.stAvgFrac, 2),
                      fmtPct(out.overflowFrac())});
        report.add(ai.app + "." + ai.input, out);
    }
    table.addNote("paper: graphs avg 1.2-6.1% / max <= 63%; "
                  "ts avg ~44% / max 84-89%; no overflow at 64 entries");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
