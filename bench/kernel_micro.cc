/**
 * @file
 * Kernel microbenchmark: host-side events/sec of the timing-wheel
 * simulation kernel (sim::EventQueue) against the seed kernel it
 * replaced — std::function callbacks in a binary-heap
 * std::priority_queue, reimplemented here verbatim as LegacyEventQueue
 * so the comparison stays honest as the real kernel evolves.
 *
 * Three scenarios bracket the kernel's real workload:
 *   resume  — 8-byte captures (a coroutine handle), the common case for
 *             core resumes; fits the legacy std::function's SSO, so the
 *             delta is pure queue-structure cost.
 *   device  — 56-byte captures (engine/overflow-style callbacks: this,
 *             station, typed request, gate); the legacy kernel heap-
 *             allocates every one of these.
 *   far     — half the events land beyond the near wheel's horizon,
 *             exercising the overflow heap and epoch promotion.
 *
 * The overall events/sec ratio is the PR-gating number (>= 2x).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "harness/json.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "sim/event_queue.hh"

using namespace syncron;
using harness::fmt;
using harness::fmtX;

namespace {

/** The seed kernel, kept as the measurement baseline. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        events_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    void scheduleIn(Tick delta, Callback cb) { schedule(now_ + delta, std::move(cb)); }

    Tick
    run(Tick until = kTickNever)
    {
        while (!events_.empty() && events_.top().when <= until) {
            Event ev = std::move(const_cast<Event &>(events_.top()));
            events_.pop();
            now_ = ev.when;
            ev.cb();
        }
        return now_;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** 8-byte capture: the shape of a coroutine-resume event. */
template <typename Q>
struct ResumeState
{
    Q *q;
    std::uint64_t *remaining;
    Tick delta;
};

template <typename Q>
void
resumeEvent(ResumeState<Q> *s)
{
    if (*s->remaining == 0)
        return;
    --*s->remaining;
    s->q->scheduleIn(s->delta, [s] { resumeEvent(s); });
}

/** 56-byte capture: the shape of an engine/overflow device callback. */
struct DevicePayload
{
    std::uint64_t words[4];
};

template <typename Q>
void
deviceEvent(Q &q, std::uint64_t &remaining, Tick delta,
            DevicePayload payload)
{
    if (remaining == 0)
        return;
    --remaining;
    payload.words[0] += payload.words[1] ^ q.now();
    q.scheduleIn(delta, [&q, &remaining, delta, payload] {
        deviceEvent(q, remaining, delta, payload);
    });
}

struct ScenarioResult
{
    std::uint64_t events = 0;
    double seconds = 0.0;

    double
    eventsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(events) / seconds
                             : 0.0;
    }
};

/** Concurrent event population (heap depth / wheel load). */
constexpr unsigned kDevices = 1024;

/** Device-model latencies in ticks (core cycle, SPU cycle, xbar hop,
 *  pipelined DRAM, row miss); all within the near wheel's horizon. */
constexpr Tick kNearDeltas[] = {400, 1000, 1600, 2800, 12000};

/** Beyond the 2^16-tick near horizon: overflow-heap territory. */
constexpr Tick kFarDelta = 300000;

template <typename Q, typename Seed>
ScenarioResult
runScenario(std::uint64_t events, Seed seed)
{
    Q q;
    std::uint64_t remaining = events;
    seed(q, remaining);
    const auto start = std::chrono::steady_clock::now();
    q.run();
    const auto stop = std::chrono::steady_clock::now();
    SYNCRON_ASSERT(remaining == 0, "scenario ended early");

    ScenarioResult r;
    r.events = events;
    r.seconds =
        std::chrono::duration<double>(stop - start).count();
    return r;
}

template <typename Q>
ScenarioResult
runResume(std::uint64_t events)
{
    std::vector<ResumeState<Q>> states(kDevices);
    return runScenario<Q>(events, [&](Q &q, std::uint64_t &remaining) {
        for (unsigned i = 0; i < kDevices; ++i) {
            states[i] = ResumeState<Q>{
                &q, &remaining,
                kNearDeltas[i % std::size(kNearDeltas)]};
            resumeEvent(&states[i]);
        }
    });
}

template <typename Q>
ScenarioResult
runDevice(std::uint64_t events)
{
    return runScenario<Q>(events, [&](Q &q, std::uint64_t &remaining) {
        for (unsigned i = 0; i < kDevices; ++i) {
            deviceEvent(q, remaining,
                        kNearDeltas[i % std::size(kNearDeltas)],
                        DevicePayload{{i, i + 1, i + 2, i + 3}});
        }
    });
}

template <typename Q>
ScenarioResult
runFar(std::uint64_t events)
{
    return runScenario<Q>(events, [&](Q &q, std::uint64_t &remaining) {
        for (unsigned i = 0; i < kDevices; ++i) {
            const Tick delta =
                i % 2 == 0 ? kNearDeltas[i % std::size(kNearDeltas)]
                           : kFarDelta + 1000 * (i % 7);
            deviceEvent(q, remaining, delta,
                        DevicePayload{{i, i + 1, i + 2, i + 3}});
        }
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const auto events = static_cast<std::uint64_t>(
        2'000'000 * opts.effectiveScale());

    struct Scenario
    {
        const char *name;
        ScenarioResult (*legacy)(std::uint64_t);
        ScenarioResult (*wheel)(std::uint64_t);
    };
    const Scenario scenarios[] = {
        {"resume (8B capture)", runResume<LegacyEventQueue>,
         runResume<sim::EventQueue>},
        {"device (56B capture)", runDevice<LegacyEventQueue>,
         runDevice<sim::EventQueue>},
        {"far (overflow heap)", runFar<LegacyEventQueue>,
         runFar<sim::EventQueue>},
    };

    harness::TablePrinter table(
        "kernel_micro: host events/sec, seed kernel vs timing wheel",
        {"scenario", "legacy [Mev/s]", "wheel [Mev/s]", "speedup"});

    struct Row
    {
        const char *name;
        ScenarioResult legacy, wheel;
    };
    std::vector<Row> rows;
    double legacySec = 0, wheelSec = 0;
    std::uint64_t totalEvents = 0;

    for (const Scenario &s : scenarios) {
        // Warm each kernel once (page-faults, pool growth), then time.
        s.legacy(events / 10);
        s.wheel(events / 10);
        const ScenarioResult l = s.legacy(events);
        const ScenarioResult w = s.wheel(events);
        rows.push_back(Row{s.name, l, w});
        legacySec += l.seconds;
        wheelSec += w.seconds;
        totalEvents += events;
        table.addRow({s.name, fmt(l.eventsPerSec() / 1e6, 2),
                      fmt(w.eventsPerSec() / 1e6, 2),
                      fmtX(l.seconds / w.seconds)});
    }

    const double legacyRate =
        static_cast<double>(totalEvents) / legacySec;
    const double wheelRate = static_cast<double>(totalEvents) / wheelSec;
    table.addNote("overall: legacy " + fmt(legacyRate / 1e6, 2)
                  + " Mev/s, wheel " + fmt(wheelRate / 1e6, 2)
                  + " Mev/s");
    table.print(std::cout);
    std::cout << "kernel_micro overall speedup: "
              << fmtX(wheelRate / legacyRate) << " (gate: >= 2.00x)\n";

    if (!opts.json.empty()) {
        std::ofstream f(opts.json);
        if (!f)
            SYNCRON_FATAL("cannot write --json file '" << opts.json
                                                       << "'");
        harness::JsonWriter j(f);
        j.beginObject();
        j.field("bench", "kernel_micro");
        j.key("options");
        j.beginObject()
            .field("scale", opts.scale)
            .field("full", opts.full)
            .endObject();
        j.field("eventsPerScenario", events);
        j.key("scenarios");
        j.beginArray();
        for (const Row &r : rows) {
            j.beginObject()
                .field("name", r.name)
                .field("legacyEventsPerSec", r.legacy.eventsPerSec())
                .field("wheelEventsPerSec", r.wheel.eventsPerSec())
                .field("speedup", r.legacy.seconds / r.wheel.seconds)
                .endObject();
        }
        j.endArray();
        j.key("overall");
        j.beginObject()
            .field("legacyEventsPerSec", legacyRate)
            .field("wheelEventsPerSec", wheelRate)
            .field("speedup", wheelRate / legacyRate)
            .endObject();
        j.endObject();
        f << "\n";
        std::cout << "wrote " << opts.json << "\n";
    }
    return wheelRate / legacyRate >= 2.0 ? 0 : 1;
}
