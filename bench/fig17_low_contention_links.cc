/**
 * @file
 * Reproduces paper Fig. 17: slowdown (vs Ideal at the same latency) of
 * pagerank on the wk proxy as the inter-unit link transfer latency grows
 * from 40 ns to 500 ns.
 *
 * Expected shape (paper numbers at 40/100/200/500 ns):
 *   SynCron 1.07/1.11/1.15/1.17, Hier 1.29/1.33/1.36/1.37,
 *   Central 1.61/1.87/2.23/2.67.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig17_low_contention_links", opts);
    const double scale = 0.35 * opts.effectiveScale();
    const unsigned latenciesNs[] = {40, 100, 200, 500};
    const Scheme schemes[] = {Scheme::Ideal, Scheme::SynCron,
                              Scheme::Hier, Scheme::Central};

    harness::SharedInputs inputs;
    inputs.prepareGraph("wk", scale);
    inputs.preparePartition("wk", 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (unsigned ns : latenciesNs) {
        for (Scheme scheme : schemes) {
            tasks.push_back([&opts, &inputs, ns, scheme] {
                SystemConfig cfg = opts.makeConfig(scheme, 4, 15);
                cfg.link.flightTicks =
                    static_cast<Tick>(ns) * kTicksPerNs;
                return harness::runGraph(cfg, inputs.graph("wk"),
                                         workloads::GraphApp::Pr,
                                         inputs.partition("wk", 4));
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 17 (pr.wk): slowdown vs Ideal at the same link latency",
        {"latency[ns]", "Ideal", "SynCron", "Hier", "Central"});

    std::size_t i = 0;
    for (unsigned ns : latenciesNs) {
        double time[4];
        for (int s = 0; s < 4; ++s, ++i) {
            time[s] = static_cast<double>(results[i].time);
            report.add("pr.wk/" + std::to_string(ns) + "ns/"
                           + schemeName(schemes[s]),
                       results[i]);
        }
        table.addRow({std::to_string(ns), fmt(1.0, 2),
                      fmt(time[1] / time[0], 2),
                      fmt(time[2] / time[0], 2),
                      fmt(time[3] / time[0], 2)});
    }
    table.addNote("paper @500ns: SynCron 1.17, Hier 1.37, Central 2.67");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
