/**
 * @file
 * Reproduces paper Fig. 22: sensitivity to the Synchronization Table
 * size (8..64 entries) for cc.wk, pr.wk, ts.air, ts.pow. Slowdown is
 * normalized to the 64-entry ST; the overflow column is the percentage
 * of requests serviced via main memory.
 *
 * Expected shape: the 64-entry ST never overflows; graph apps barely
 * react to smaller STs; ts overflows heavily below 48 entries and slows
 * down gracefully (integrated overflow).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace syncron;
using harness::fmt;
using harness::fmtPct;

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("fig22_st_size", opts);
    const double scale = 0.35 * opts.effectiveScale();
    const unsigned sizes[] = {64, 48, 32, 16, 8};
    const std::vector<harness::AppInput> combos = {
        {"cc", "wk"}, {"pr", "wk"}, {"ts", "air"}, {"ts", "pow"}};
    harness::SharedInputs inputs;
    inputs.prepare(combos, scale);
    inputs.preparePartitions(combos, 4);

    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const harness::AppInput &ai : combos) {
        for (unsigned entries : sizes) {
            tasks.push_back([&opts, &inputs, ai, entries] {
                SystemConfig cfg =
                    opts.makeConfig(Scheme::SynCron, 4, 15);
                cfg.stEntries = entries;
                return harness::runAppInput(cfg, ai, inputs);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Fig. 22: slowdown vs 64-entry ST (overflowed requests in "
        "parentheses)",
        {"app.input", "ST_64", "ST_48", "ST_32", "ST_16", "ST_8"});

    std::size_t i = 0;
    for (const harness::AppInput &ai : combos) {
        std::vector<std::string> row{ai.app + "." + ai.input};
        double base = 0;
        for (unsigned entries : sizes) {
            const harness::RunOutput &out = results[i++];
            if (entries == 64)
                base = static_cast<double>(out.time);
            row.push_back(fmt(static_cast<double>(out.time) / base, 2)
                          + " (" + fmtPct(out.overflowFrac()) + ")");
            report.add(ai.app + "." + ai.input + "/ST_"
                           + std::to_string(entries),
                       out);
        }
        table.addRow(std::move(row));
    }
    table.addNote("paper: 64-entry ST never overflows; ts.pow reaches "
                  "83.7% overflowed requests at ST_8");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
