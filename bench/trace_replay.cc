/**
 * @file
 * Trace-driven evaluation: capture → generate → cross-backend replay.
 *
 * Three stages, all funneled through harness::runGrid / BenchReport
 * like every other bench:
 *
 *   1. Capture. A small fig11-style data-structure run (Queue, the
 *      hot-lock structure) executes on SynCron with the trace capture
 *      hook enabled and writes its operation stream to --trace-out
 *      (default trace_replay_capture.trc). With --trace-in=<path>, an
 *      existing trace file is loaded instead and no capture runs.
 *   2. Generation. trace::ScenarioGenerator synthesizes the scenario
 *      families (Zipfian lock contention, bursty open-loop arrivals,
 *      phased barrier/lock mix, reader-heavy semaphore) — contention
 *      regimes no Table 6 structure exercises.
 *   3. Replay. Every trace replays through the typed api on SynCron,
 *      Central, and SynCron-flat; the capture trace is additionally
 *      checked to reproduce the original per-OpKind operation counts
 *      exactly on the capturing backend (exit non-zero otherwise).
 *
 * Emits BENCH_trace_replay.json with --json; CI smokes a small
 * generate+replay grid and gates it with tools/perf_trend.py.
 */

#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "trace/scenario.hh"

using namespace syncron;
using harness::fmt;

namespace {

/** Replay schemes, in table-column order. */
constexpr Scheme kReplaySchemes[] = {Scheme::SynCron, Scheme::Central,
                                     Scheme::SynCronFlat};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("trace_replay", opts);
    const double scale = opts.effectiveScale();

    // -- Stage 1: capture (or load) a real run's stream ----------------
    std::vector<std::pair<std::string, trace::Trace>> traces;
    if (!opts.traceIn.empty()) {
        traces.emplace_back("file", trace::readTraceFile(opts.traceIn));
    } else {
        const std::string capPath = opts.traceOut.empty()
                                        ? "trace_replay_capture.trc"
                                        : opts.traceOut;
        SystemConfig capCfg = opts.makeConfig(Scheme::SynCron, 2, 4);
        capCfg.tracePath = capPath;
        // --backend overrides the capture scheme like any other cell;
        // label the run with the backend that actually executed it.
        const std::string capBackend = opts.backend.empty()
                                           ? schemeName(capCfg.scheme)
                                           : opts.backend;
        const harness::DsParams params =
            harness::dsDefaults(harness::DsKind::Queue, 0.05 * scale);
        const harness::RunOutput capOut = harness::runDataStructure(
            capCfg, harness::DsKind::Queue, params.initialSize,
            params.opsPerCore);
        // "capture.run" (not "capture.queue") so the label can never
        // collide with the replay cells of the same trace below.
        report.add("capture.run/" + capBackend, capOut);

        trace::Trace captured = trace::readTraceFile(capPath);
        std::cout << "captured " << captured.records.size()
                  << " sync ops (" << captured.primitives.size()
                  << " primitives) from a Queue run on " << capBackend
                  << " -> " << capPath << "\n";
        traces.emplace_back("capture.queue", std::move(captured));
    }

    // -- Stage 2: synthesize the scenario families ---------------------
    for (const trace::ScenarioSpec &spec :
         trace::benchScenarioSpecs(scale)) {
        traces.emplace_back(trace::scenarioFamilyName(spec.family),
                            trace::ScenarioGenerator(spec).generate());
    }

    // -- Stage 3: replay everything on every backend -------------------
    std::vector<std::function<harness::RunOutput()>> tasks;
    for (const auto &[name, trc] : traces) {
        (void)name;
        for (Scheme scheme : kReplaySchemes) {
            const trace::Trace *t = &trc;
            tasks.push_back([&opts, t, scheme] {
                SystemConfig cfg = trace::replayConfig(*t, scheme);
                cfg.backendName = opts.backend;
                return harness::runTrace(cfg, *t);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Trace replay: throughput [ops/ms] per backend",
        {"trace", "records", "SynCron", "Central", "SynCron-flat"});
    std::size_t i = 0;
    for (const auto &[name, trc] : traces) {
        std::vector<std::string> row{
            name, std::to_string(trc.records.size())};
        for (Scheme scheme : kReplaySchemes) {
            const harness::RunOutput &out = results[i++];
            row.push_back(fmt(out.opsPerMs(), 1));
            report.add(name + "/" + schemeName(scheme), out);

            if (out.ops != trc.records.size()) {
                SYNCRON_FATAL("replay of '"
                              << name << "' on " << schemeName(scheme)
                              << " executed " << out.ops << " of "
                              << trc.records.size() << " records");
            }
            // Any correct backend executes exactly the trace's
            // operation mix — the round-trip guarantee.
            const auto want = trc.opCounts();
            for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
                const std::uint64_t got =
                    out.stats.syncLatency[k].count;
                if (got != want[k]) {
                    SYNCRON_FATAL(
                        "replay of '"
                        << name << "' on " << schemeName(scheme)
                        << " performed " << got << " "
                        << sync::opKindName(
                               static_cast<sync::OpKind>(k))
                        << " ops, trace has " << want[k]);
                }
            }
        }
        table.addRow(std::move(row));
    }
    table.addNote("every replay reproduces its trace's per-OpKind "
                  "counts on every backend (checked)");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
