/**
 * @file
 * Reproduces paper Table 1 (substituted): throughput of two
 * coherence-based lock algorithms — TTAS and the Hierarchical Ticket
 * Lock — on a simulated two-socket coherent CPU (two NDP units as NUMA
 * sockets over the MESI model), instead of the paper's real Intel Xeon
 * Gold measurement.
 *
 * Expected shape (the two effects the paper demonstrates):
 *   1. throughput collapses from 1 to 14 threads in one socket;
 *   2. two threads on different sockets are slower than on the same
 *      socket (non-uniform lock-line transfers).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "coherence/mesi.hh"
#include "harness/grid.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "mem/allocator.hh"

using namespace syncron;
using coherence::HierTicketLock;
using coherence::MesiSystem;
using harness::fmt;

namespace {

struct LockBenchResult
{
    double mopsPerSec = 0.0;
    Tick time = 0;
    std::uint64_t acquired = 0;
};

/**
 * @param threads    worker count
 * @param sameSocket false: spread threads over both sockets
 */
LockBenchResult
runLockBench(bool ttas, unsigned threads, bool sameSocket, unsigned ops)
{
    // Two sockets, 14 "hardware threads" each.
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);

    const unsigned totalCores = 28;
    MesiSystem mesi(machine, totalCores);
    Addr lockAddr = machine.addrSpace().allocIn(0, 64, 64);
    HierTicketLock htl = HierTicketLock::make(machine);

    std::uint64_t acquired = 0;
    std::vector<sim::Process> procs;
    for (unsigned i = 0; i < threads; ++i) {
        // Same socket: cores 0..13 live in unit 0. Different sockets:
        // alternate units (core 14 is the first core of unit 1).
        const unsigned core = sameSocket ? i : (i % 2 == 0 ? i / 2
                                                           : 14 + i / 2);
        if (ttas) {
            procs.push_back(coherence::ttasLockLoop(
                mesi, core, lockAddr, ops, 30, &acquired));
        } else {
            procs.push_back(coherence::hierTicketLockLoop(
                mesi, htl, core, ops, 30, &acquired));
        }
        procs.back().start(machine.eq());
    }
    machine.eq().run();

    const double seconds = ticksToSeconds(machine.eq().now());
    LockBenchResult r;
    r.time = machine.eq().now();
    r.acquired = acquired;
    r.mopsPerSec = static_cast<double>(acquired) / seconds / 1e6;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    harness::BenchReport report("tab01_coherence_locks", opts);
    const unsigned ops =
        static_cast<unsigned>(60 * opts.effectiveScale());

    struct Cell
    {
        const char *label;
        unsigned threads;
        bool sameSocket;
    };
    const Cell variants[] = {
        {"1thr", 1, true},
        {"14thr-same-socket", 14, true},
        {"2thr-same-socket", 2, true},
        {"2thr-diff-socket", 2, false},
    };

    std::vector<std::function<LockBenchResult()>> tasks;
    for (bool ttas : {true, false}) {
        for (const Cell &c : variants) {
            tasks.push_back([ttas, c, ops] {
                return runLockBench(ttas, c.threads, c.sameSocket, ops);
            });
        }
    }
    const auto results = harness::runGrid(std::move(tasks), opts.jobs);

    harness::TablePrinter table(
        "Table 1 (simulated substitute): coherence-lock throughput "
        "[M ops/s]",
        {"lock", "1 thread", "14 thr same-socket", "2 thr same-socket",
         "2 thr diff-socket"});

    std::size_t i = 0;
    for (bool ttas : {true, false}) {
        std::vector<std::string> row{ttas ? "TTAS" : "Hier. Ticket"};
        for (const Cell &c : variants) {
            const LockBenchResult &r = results[i++];
            row.push_back(fmt(r.mopsPerSec, 2));
            report.addScalar(std::string(ttas ? "TTAS" : "HTL") + "/"
                                 + c.label,
                             r.time, r.acquired);
        }
        table.addRow(std::move(row));
    }
    table.addNote("paper (real Xeon): TTAS 8.92 / 2.28 / 9.91 / 4.32; "
                  "HTL 8.06 / 2.91 / 9.01 / 6.79 — shape, not absolute "
                  "values, is the target");
    table.print(std::cout);
    report.finish(std::cout);
    return 0;
}
