/**
 * @file
 * Reproduces paper Table 1 (substituted): throughput of two
 * coherence-based lock algorithms — TTAS and the Hierarchical Ticket
 * Lock — on a simulated two-socket coherent CPU (two NDP units as NUMA
 * sockets over the MESI model), instead of the paper's real Intel Xeon
 * Gold measurement.
 *
 * Expected shape (the two effects the paper demonstrates):
 *   1. throughput collapses from 1 to 14 threads in one socket;
 *   2. two threads on different sockets are slower than on the same
 *      socket (non-uniform lock-line transfers).
 */

#include <iostream>

#include "coherence/mesi.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "mem/allocator.hh"

using namespace syncron;
using coherence::HierTicketLock;
using coherence::MesiSystem;
using harness::fmt;

namespace {

struct LockBenchResult
{
    double mopsPerSec;
};

/**
 * @param threads    worker count
 * @param sameSocket false: spread threads over both sockets
 */
LockBenchResult
runLockBench(bool ttas, unsigned threads, bool sameSocket, unsigned ops)
{
    // Two sockets, 14 "hardware threads" each.
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);

    const unsigned totalCores = 28;
    MesiSystem mesi(machine, totalCores);
    Addr lockAddr = machine.addrSpace().allocIn(0, 64, 64);
    HierTicketLock htl = HierTicketLock::make(machine);

    std::uint64_t acquired = 0;
    std::vector<sim::Process> procs;
    for (unsigned i = 0; i < threads; ++i) {
        // Same socket: cores 0..13 live in unit 0. Different sockets:
        // alternate units (core 14 is the first core of unit 1).
        const unsigned core = sameSocket ? i : (i % 2 == 0 ? i / 2
                                                           : 14 + i / 2);
        if (ttas) {
            procs.push_back(coherence::ttasLockLoop(
                mesi, core, lockAddr, ops, 30, &acquired));
        } else {
            procs.push_back(coherence::hierTicketLockLoop(
                mesi, htl, core, ops, 30, &acquired));
        }
        procs.back().start(machine.eq());
    }
    machine.eq().run();

    const double seconds = ticksToSeconds(machine.eq().now());
    LockBenchResult r;
    r.mopsPerSec = static_cast<double>(acquired) / seconds / 1e6;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = harness::BenchOptions::parse(argc, argv);
    const unsigned ops =
        static_cast<unsigned>(60 * opts.effectiveScale());

    harness::TablePrinter table(
        "Table 1 (simulated substitute): coherence-lock throughput "
        "[M ops/s]",
        {"lock", "1 thread", "14 thr same-socket", "2 thr same-socket",
         "2 thr diff-socket"});

    for (bool ttas : {true, false}) {
        const double one = runLockBench(ttas, 1, true, ops).mopsPerSec;
        const double fourteen =
            runLockBench(ttas, 14, true, ops).mopsPerSec;
        const double twoSame =
            runLockBench(ttas, 2, true, ops).mopsPerSec;
        const double twoDiff =
            runLockBench(ttas, 2, false, ops).mopsPerSec;
        table.addRow({ttas ? "TTAS" : "Hier. Ticket", fmt(one, 2),
                      fmt(fourteen, 2), fmt(twoSame, 2),
                      fmt(twoDiff, 2)});
    }
    table.addNote("paper (real Xeon): TTAS 8.92 / 2.28 / 9.91 / 4.32; "
                  "HTL 8.06 / 2.91 / 9.01 / 6.79 — shape, not absolute "
                  "values, is the target");
    table.print(std::cout);
    return 0;
}
