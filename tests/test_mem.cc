/**
 * @file
 * Unit tests for the DRAM timing model and the partitioned address
 * space: technology parameters, row-buffer behaviour, bank queueing,
 * and allocation invariants.
 */

#include <gtest/gtest.h>

#include "mem/allocator.hh"
#include "mem/dram.hh"

namespace syncron::mem {
namespace {

TEST(DramParams, TechnologiesMatchTable5)
{
    const DramParams hbm = DramParams::hbm();
    EXPECT_EQ(hbm.tRcdRead, 7000u);
    EXPECT_EQ(hbm.tRas, 17000u);
    EXPECT_EQ(hbm.channels, 8u);
    EXPECT_DOUBLE_EQ(hbm.pjPerBit, 7.0);

    const DramParams hmc = DramParams::hmc();
    EXPECT_EQ(hmc.tRcdRead, 17000u);
    EXPECT_EQ(hmc.channels, 32u);

    const DramParams ddr4 = DramParams::ddr4();
    EXPECT_EQ(ddr4.tRas, 39000u);
    EXPECT_EQ(ddr4.channels, 1u);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    SystemStats stats;
    Dram dram(DramParams::hbm(), stats);
    const Tick missDone = dram.access(0, 0x1000, false, 8);
    // Same row, bank now open (and idle after the first access).
    const Tick hitStart = missDone;
    const Tick hitDone = dram.access(hitStart, 0x1000, false, 8);
    EXPECT_GT(missDone - 0, hitDone - hitStart);
    EXPECT_EQ(stats.dramRowMisses, 1u);
    EXPECT_EQ(stats.dramRowHits, 1u);
}

TEST(Dram, BankConflictsSerialize)
{
    SystemStats stats;
    Dram dram(DramParams::hbm(), stats);
    // Two simultaneous requests to the same line queue behind each other.
    const Tick t1 = dram.access(0, 0x2000, false, 8);
    const Tick t2 = dram.access(0, 0x2000, false, 8);
    EXPECT_GT(t2, t1);
}

TEST(Dram, TechnologiesOrderByLatency)
{
    SystemStats s1, s2, s3;
    Dram hbm(DramParams::hbm(), s1);
    Dram hmc(DramParams::hmc(), s2);
    Dram ddr4(DramParams::ddr4(), s3);
    const Tick a = hbm.access(0, 0x40, false, 8);
    const Tick b = hmc.access(0, 0x40, false, 8);
    const Tick c = ddr4.access(0, 0x40, false, 8);
    EXPECT_LT(a, b); // HBM faster than HMC
    EXPECT_LT(b, c); // HMC faster than DDR4
}

TEST(Dram, WritesIncludeRecovery)
{
    SystemStats stats;
    Dram dram(DramParams::hbm(), stats);
    const Tick r = dram.access(0, 0x40, false, 8);
    SystemStats stats2;
    Dram dram2(DramParams::hbm(), stats2);
    const Tick w = dram2.access(0, 0x40, true, 8);
    EXPECT_GT(w, r); // nWR makes writes occupy the bank longer
}

TEST(Dram, MultiLineAccessTouchesAllLines)
{
    SystemStats stats;
    Dram dram(DramParams::hbm(), stats);
    dram.access(0, 0x40, false, 256); // 4 lines
    EXPECT_EQ(stats.dramReads, 4u);
}

TEST(AddressSpace, UnitsOwnDisjointWindows)
{
    AddressSpace space(4);
    const Addr a0 = space.allocIn(0, 64);
    const Addr a1 = space.allocIn(1, 64);
    const Addr a3 = space.allocIn(3, 64);
    EXPECT_EQ(unitOfAddr(a0), 0u);
    EXPECT_EQ(unitOfAddr(a1), 1u);
    EXPECT_EQ(unitOfAddr(a3), 3u);
    EXPECT_NE(a0, 0u); // address 0 is reserved as "null"
}

TEST(AddressSpace, AllocationsDoNotOverlapAndAlign)
{
    AddressSpace space(2);
    Addr prevEnd = 0;
    for (int i = 0; i < 100; ++i) {
        const Addr a = space.allocIn(0, 24, 16);
        EXPECT_EQ(a % 16, 0u);
        EXPECT_GE(a, prevEnd);
        prevEnd = a + 24;
    }
    EXPECT_EQ(space.usedIn(1), 0u);
    EXPECT_GT(space.usedIn(0), 100u * 24);
}

TEST(AddressSpace, InterleavedRoundRobins)
{
    AddressSpace space(4);
    UnitId expect = 0;
    for (int i = 0; i < 8; ++i) {
        const Addr a = space.allocInterleaved(8);
        EXPECT_EQ(unitOfAddr(a), expect);
        expect = (expect + 1) % 4;
    }
}

} // namespace
} // namespace syncron::mem
