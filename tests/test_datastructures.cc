/**
 * @file
 * Typed-handle coverage for the nine Table 6 data structures: every
 * structure runs a short burst on two backends (SynCron and Central),
 * the host-side shadow state must stay consistent, and the per-OpKind
 * latency histograms must balance — every lock acquire recorded through
 * the typed handles has a matching release, and each histogram's bucket
 * sum equals its operation count.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "system/system.hh"
#include "workloads/datastructures/structures.hh"

namespace syncron {
namespace {

constexpr unsigned kOpsPerCore = 6;

class DsBackendTest : public ::testing::TestWithParam<Scheme>
{
  protected:
    SystemConfig
    cfg() const
    {
        return SystemConfig::make(GetParam(), 4, 4);
    }

    /**
     * Checks the per-OpKind accounting after a lock-based run: acquire
     * and release counts balance at >= @p minEpisodes episodes, no
     * other operation kind fired, and every histogram is internally
     * consistent (bucket sum == count, min <= avg <= max).
     */
    static void
    checkLockStats(const NdpSystem &sys, std::uint64_t minEpisodes)
    {
        const auto &lat = sys.stats().syncLatency;
        const SyncOpLatency &acq =
            lat[static_cast<unsigned>(sync::OpKind::LockAcquire)];
        const SyncOpLatency &rel =
            lat[static_cast<unsigned>(sync::OpKind::LockRelease)];
        EXPECT_EQ(acq.count, rel.count)
            << "unbalanced lock episodes (leaked guard?)";
        EXPECT_GE(acq.count, minEpisodes);

        for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
            const SyncOpLatency &l = lat[k];
            if (k != static_cast<unsigned>(sync::OpKind::LockAcquire)
                && k != static_cast<unsigned>(sync::OpKind::LockRelease)) {
                EXPECT_EQ(l.count, 0u)
                    << "unexpected " << sync::opKindName(
                           static_cast<sync::OpKind>(k));
                continue;
            }
            const std::uint64_t bucketSum = std::accumulate(
                l.hist.begin(), l.hist.end(), std::uint64_t{0});
            EXPECT_EQ(bucketSum, l.count);
            EXPECT_LE(static_cast<double>(l.minTicks), l.avgTicks());
            EXPECT_LE(l.avgTicks(), static_cast<double>(l.maxTicks));
        }
    }
};

TEST_P(DsBackendTest, Stack)
{
    NdpSystem sys(cfg());
    workloads::SimStack stack(sys, 64);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(stack.worker(sys.clientCore(i), kOpsPerCore));
    sys.run();
    EXPECT_EQ(stack.size(), 64 + n * kOpsPerCore);
    // One coarse-lock episode per push.
    checkLockStats(sys, static_cast<std::uint64_t>(n) * kOpsPerCore);
}

TEST_P(DsBackendTest, Queue)
{
    NdpSystem sys(cfg());
    workloads::SimQueue queue(sys, 48);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(queue.worker(sys.clientCore(i), kOpsPerCore));
    sys.run();
    // Pops beyond the initial population observe an empty queue.
    EXPECT_EQ(queue.emptyPops(),
              static_cast<std::uint64_t>(n) * kOpsPerCore - 48);
    EXPECT_EQ(queue.size(), 48u); // shadow keeps popped entries' history
    checkLockStats(sys, static_cast<std::uint64_t>(n) * kOpsPerCore);
}

TEST_P(DsBackendTest, ArrayMap)
{
    NdpSystem sys(cfg());
    workloads::SimArrayMap map(sys, 10);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(map.worker(sys.clientCore(i), kOpsPerCore));
    sys.run();
    checkLockStats(sys, static_cast<std::uint64_t>(n) * kOpsPerCore);
}

TEST_P(DsBackendTest, PriorityQueue)
{
    NdpSystem sys(cfg());
    workloads::SimPriorityQueue pq(sys, 400);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(pq.worker(sys.clientCore(i), kOpsPerCore));
    sys.run();
    EXPECT_TRUE(pq.popsWereOrdered())
        << "deleteMin order violated => coarse lock broken";
    EXPECT_EQ(pq.size(), 400 - n * kOpsPerCore);
    checkLockStats(sys, static_cast<std::uint64_t>(n) * kOpsPerCore);
}

TEST_P(DsBackendTest, SkipList)
{
    NdpSystem sys(cfg());
    workloads::SimSkipList sl(sys, 256);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(sl.worker(sys.clientCore(i), 4));
    sys.run();
    // Colliding deleters retry-and-back-off, so at most n*ops removals.
    EXPECT_LT(sl.size(), 256u);
    EXPECT_GE(sl.size(), 256u - n * 4);
    checkLockStats(sys, static_cast<std::uint64_t>(n) * 4);
}

TEST_P(DsBackendTest, HashTable)
{
    NdpSystem sys(cfg());
    workloads::SimHashTable ht(sys, 128);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(ht.worker(sys.clientCore(i), kOpsPerCore));
    sys.run();
    EXPECT_GT(ht.hits(), 0u);
    // One per-bucket lock episode per lookup.
    checkLockStats(sys, static_cast<std::uint64_t>(n) * kOpsPerCore);
}

TEST_P(DsBackendTest, LinkedList)
{
    NdpSystem sys(cfg());
    workloads::SimLinkedList ll(sys, 48);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(ll.worker(sys.clientCore(i), 3));
    sys.run();
    EXPECT_GT(ll.size(), 0u);
    // Hand-over-hand: at least one episode per lookup, usually many.
    checkLockStats(sys, static_cast<std::uint64_t>(n) * 3);
}

TEST_P(DsBackendTest, BstFg)
{
    NdpSystem sys(cfg());
    workloads::SimBstFg bst(sys, 200);
    const unsigned n = sys.numClientCores();
    EXPECT_GE(bst.depth(), 7u); // ~log2(200) at minimum
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(bst.worker(sys.clientCore(i), 4));
    sys.run();
    EXPECT_EQ(bst.size(), 200u); // lookups never mutate
    checkLockStats(sys, static_cast<std::uint64_t>(n) * 4);
}

TEST_P(DsBackendTest, BstDrachsler)
{
    NdpSystem sys(cfg());
    workloads::SimBstDrachsler bst(sys, 200);
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(bst.worker(sys.clientCore(i), 3));
    sys.run();
    EXPECT_LT(bst.size(), 200u);
    EXPECT_GE(bst.size(), 200u - n * 3);
    // Victim (+ predecessor when present) per successful delete.
    checkLockStats(sys, static_cast<std::uint64_t>(n) * 3);
}

INSTANTIATE_TEST_SUITE_P(TwoBackends, DsBackendTest,
                         ::testing::Values(Scheme::SynCron,
                                           Scheme::Central),
                         [](const ::testing::TestParamInfo<Scheme> &info) {
                             return schemeName(info.param);
                         });

} // namespace
} // namespace syncron
