/**
 * @file
 * Zero-copy trace reading and corpus tests: MappedTraceReader
 * equivalence with the streaming TraceReader on every scenario family,
 * the full rejection surface at mmap boundaries (truncation at every
 * byte, bad magic/version, trailing bytes, dangling refs, empty and
 * short files), and corpus enumeration/validation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.hh"
#include "trace/corpus.hh"
#include "trace/format.hh"
#include "trace/mmap_reader.hh"
#include "trace/scenario.hh"

namespace syncron::trace {
namespace {

std::string
encode(const Trace &t)
{
    std::ostringstream os;
    TraceWriter(os).write(t);
    return os.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << "cannot write " << path;
}

/** Opens + fully validates @p path through the mmap reader. */
void
mmapDecode(const std::string &path)
{
    MappedTraceReader reader(path);
    reader.validateAll();
}

/** A small but fully populated scenario trace. */
Trace
familyTrace(ScenarioFamily family)
{
    ScenarioSpec spec;
    spec.family = family;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 3;
    spec.opsPerCore = 8;
    return ScenarioGenerator(spec).generate();
}

/** RAII temp file that cleans up after the test. */
class TempFile
{
  public:
    explicit TempFile(std::string path) : path_(std::move(path)) {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(MmapReader, MatchesStreamingReaderOnEveryFamily)
{
    for (ScenarioFamily family : kAllScenarioFamilies) {
        const Trace t = familyTrace(family);
        TempFile file(std::string("test_mmap_")
                      + scenarioFamilyName(family) + ".trc");
        writeTraceFile(t, file.path());

        MappedTraceReader reader(file.path());
        EXPECT_EQ(reader.numUnits(), t.numUnits);
        EXPECT_EQ(reader.clientCoresPerUnit(), t.clientCoresPerUnit);
        EXPECT_EQ(reader.recordCount(), t.records.size());
        EXPECT_EQ(reader.primitives(), t.primitives);

        // materialize() must equal both the original trace and what
        // the streaming reader produces from the same bytes.
        EXPECT_EQ(reader.materialize(), t)
            << scenarioFamilyName(family);
        EXPECT_EQ(reader.materialize(), readTraceFile(file.path()))
            << scenarioFamilyName(family);

        // The validation walk counts exactly the trace's op mix.
        EXPECT_EQ(reader.validateAll(), t.opCounts())
            << scenarioFamilyName(family);
    }
}

TEST(MmapReader, CursorYieldsRecordsInOrder)
{
    const Trace t = familyTrace(ScenarioFamily::Replication);
    TempFile file("test_mmap_cursor.trc");
    writeTraceFile(t, file.path());

    MappedTraceReader reader(file.path());
    auto cursor = reader.records();
    TraceRecord rec;
    std::size_t i = 0;
    while (cursor.next(rec)) {
        ASSERT_LT(i, t.records.size());
        EXPECT_EQ(rec, t.records[i]) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, t.records.size());
    EXPECT_EQ(cursor.index(), t.records.size());
    // The cursor is exhausted; further calls keep returning false.
    EXPECT_FALSE(cursor.next(rec));
}

TEST(MmapReader, RejectsTruncationAtEveryBoundary)
{
    const Trace t = familyTrace(ScenarioFamily::ZipfLock);
    const std::string good = encode(t);
    ASSERT_FALSE(t.records.empty());

    // Every proper prefix must be rejected — header truncation at
    // open, record truncation during the walk, never a silent accept.
    TempFile file("test_mmap_trunc.trc");
    for (std::size_t len = 0; len < good.size();
         len += (len < 64 ? 1 : 97)) {
        writeBytes(file.path(), good.substr(0, len));
        EXPECT_THROW(mmapDecode(file.path()), std::runtime_error)
            << "prefix of " << len << " bytes accepted";
    }
}

TEST(MmapReader, RejectsBadMagicAndVersions)
{
    const std::string good = encode(familyTrace(ScenarioFamily::BurstyLock));
    TempFile file("test_mmap_magic.trc");

    std::string badMagic = good;
    badMagic[0] = 'X';
    writeBytes(file.path(), badMagic);
    EXPECT_THROW(mmapDecode(file.path()), std::runtime_error);

    // Version varint sits right after the 8-byte magic.
    std::string badVersion = good;
    badVersion[8] = '\x7f';
    writeBytes(file.path(), badVersion);
    EXPECT_THROW(mmapDecode(file.path()), std::runtime_error);

    // v1 must be rejected with the recapture hint, like the streaming
    // reader.
    std::string v1 = good;
    v1[8] = '\x01';
    writeBytes(file.path(), v1);
    try {
        mmapDecode(file.path());
        FAIL() << "a version-1 trace was accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("recapture"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MmapReader, RejectsTrailingBytes)
{
    const std::string good =
        encode(familyTrace(ScenarioFamily::ReaderSemaphore));
    TempFile file("test_mmap_trailing.trc");
    writeBytes(file.path(), good + "junk");
    EXPECT_THROW(mmapDecode(file.path()), std::runtime_error);
}

TEST(MmapReader, RejectsDanglingReferences)
{
    // The writer serializes whatever it is given; the reader is the
    // validation boundary — same contract as the streaming reader.
    Trace t = familyTrace(ScenarioFamily::ZipfLock);
    ASSERT_FALSE(t.records.empty());
    TempFile file("test_mmap_dangling.trc");

    Trace badPrim = t;
    badPrim.records[0].prim =
        static_cast<std::uint32_t>(badPrim.primitives.size());
    writeBytes(file.path(), encode(badPrim));
    EXPECT_THROW(mmapDecode(file.path()), std::runtime_error);

    Trace badCore = t;
    badCore.records[0].core = badCore.numClientCores();
    writeBytes(file.path(), encode(badCore));
    EXPECT_THROW(mmapDecode(file.path()), std::runtime_error);
}

TEST(MmapReader, RejectsEmptyAndShortFiles)
{
    TempFile file("test_mmap_empty.trc");
    writeBytes(file.path(), "");
    EXPECT_THROW(MappedTraceReader reader(file.path()),
                 std::runtime_error);

    writeBytes(file.path(), "SYN"); // shorter than the magic
    EXPECT_THROW(MappedTraceReader reader(file.path()),
                 std::runtime_error);

    EXPECT_THROW(MappedTraceReader reader("no_such_trace_file.trc"),
                 std::runtime_error);
}

// --------------------------------------------------------------------
// Corpus
// --------------------------------------------------------------------

/** RAII temp directory removed recursively after the test. */
class TempDir
{
  public:
    explicit TempDir(std::string path) : path_(std::move(path))
    {
        std::filesystem::create_directory(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(Corpus, EnumeratesSortedAndValidates)
{
    TempDir dir("test_corpus_dir");
    const Trace a = familyTrace(ScenarioFamily::ZipfLock);
    const Trace b = familyTrace(ScenarioFamily::PhasedBarrierLock);
    // Written out of name order: enumeration must sort by name, not
    // by directory order.
    writeTraceFile(b, dir.path() + "/b.trc");
    writeTraceFile(a, dir.path() + "/a.trc");
    // A corrupt member and a non-trace file.
    writeBytes(dir.path() + "/c.trc", "not a trace at all");
    writeBytes(dir.path() + "/notes.txt", "ignored");

    const Corpus corpus = Corpus::open(dir.path());
    ASSERT_EQ(corpus.size(), 3u);
    EXPECT_EQ(corpus.files()[0].name, "a.trc");
    EXPECT_EQ(corpus.files()[1].name, "b.trc");
    EXPECT_EQ(corpus.files()[2].name, "c.trc");
    EXPECT_GT(corpus.totalBytes(), 0u);

    const auto statuses = corpus.validate();
    ASSERT_EQ(statuses.size(), 3u);
    EXPECT_TRUE(statuses[0].ok);
    EXPECT_EQ(statuses[0].records, a.records.size());
    EXPECT_EQ(statuses[0].opCounts, a.opCounts());
    EXPECT_TRUE(statuses[1].ok);
    EXPECT_EQ(statuses[1].records, b.records.size());
    EXPECT_FALSE(statuses[2].ok);
    EXPECT_FALSE(statuses[2].error.empty());
}

TEST(Corpus, RejectsMissingAndEmptyDirectories)
{
    EXPECT_THROW(Corpus::open("no_such_corpus_dir"),
                 std::runtime_error);

    TempDir dir("test_corpus_empty");
    EXPECT_THROW(Corpus::open(dir.path()), std::runtime_error);

    EXPECT_TRUE(Corpus::isDirectory(dir.path()));
    EXPECT_FALSE(Corpus::isDirectory("no_such_corpus_dir"));
}

} // namespace
} // namespace syncron::trace
