/**
 * @file
 * Tests for the typed synchronization API: typed primitive handles,
 * the ScopedLock guard, the asynchronous SyncFuture/SyncBatch surface
 * (pipelined submission, batch coalescing accounting, destroy() safety
 * under in-flight batches), per-op latency observability, the
 * generation-tagged destroy() safety net, lock-placement cursors, and
 * the string-keyed BackendRegistry.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "sync/registry.hh"
#include "system/system.hh"
#include "workloads/micro/primitives.hh"

namespace syncron {
namespace {

using core::Core;
using sync::BackendRegistry;
using sync::BarrierScope;
using sync::SyncApi;

// ----------------------------------------------------------------------
// Typed handles
// ----------------------------------------------------------------------

struct Counter
{
    int value = 0;
    bool inCritical = false;
    bool violated = false;
};

sim::Process
typedLockWorker(Core &c, SyncApi &api, sync::Lock lock, int iters,
                Counter &shared)
{
    for (int i = 0; i < iters; ++i) {
        co_await api.acquire(c, lock);
        if (shared.inCritical)
            shared.violated = true;
        shared.inCritical = true;
        co_await c.compute(10);
        ++shared.value;
        shared.inCritical = false;
        co_await api.release(c, lock);
    }
}

TEST(TypedApi, LockHandleEnforcesMutualExclusion)
{
    NdpSystem sys(SystemConfig::make(Scheme::SynCron, 2, 4));
    sync::Lock lock = sys.api().createLock(1);
    EXPECT_TRUE(lock.valid());
    EXPECT_EQ(lock.home(), 1u);

    Counter shared;
    for (unsigned i = 0; i < sys.numClientCores(); ++i) {
        sys.spawn(typedLockWorker(sys.clientCore(i), sys.api(), lock, 5,
                                  shared));
    }
    sys.run();
    EXPECT_FALSE(shared.violated);
    EXPECT_EQ(shared.value,
              static_cast<int>(sys.numClientCores()) * 5);
}

sim::Process
typedBarrierWorker(Core &c, SyncApi &api, sync::Barrier bar, int phases,
                   std::vector<int> &phase, unsigned idx, bool &violated)
{
    for (int p = 0; p < phases; ++p) {
        co_await c.compute(10 + c.rng().below(100));
        phase[idx] = p;
        co_await api.wait(c, bar);
        for (int other : phase) {
            if (other < p)
                violated = true;
        }
    }
}

TEST(TypedApi, BarrierHandleCarriesParticipantCount)
{
    NdpSystem sys(SystemConfig::make(Scheme::SynCron, 2, 4));
    const unsigned n = sys.numClientCores();
    sync::Barrier bar = sys.api().createBarrier(0, n);
    EXPECT_EQ(bar.participants, n);

    std::vector<int> phase(n, -1);
    bool violated = false;
    for (unsigned i = 0; i < n; ++i) {
        sys.spawn(typedBarrierWorker(sys.clientCore(i), sys.api(), bar, 4,
                                     phase, i, violated));
    }
    sys.run();
    EXPECT_FALSE(violated);
}

sim::Process
typedSemProducer(Core &c, SyncApi &api, sync::Semaphore items, int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await c.compute(30);
        co_await api.post(c, items);
    }
}

sim::Process
typedSemConsumer(Core &c, SyncApi &api, sync::Semaphore items, int iters,
                 int &consumed)
{
    for (int i = 0; i < iters; ++i) {
        co_await api.wait(c, items);
        ++consumed;
    }
}

TEST(TypedApi, SemaphoreHandleFixesInitialResources)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 2, 4));
    sync::Semaphore items = sys.api().createSemaphore(0, 0);
    int consumed = 0;
    const int iters = 6;
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n / 2; ++i)
        sys.spawn(typedSemConsumer(sys.clientCore(i), sys.api(), items,
                                   iters, consumed));
    for (unsigned i = n / 2; i < n; ++i)
        sys.spawn(typedSemProducer(sys.clientCore(i), sys.api(), items,
                                   iters));
    sys.run();
    EXPECT_EQ(consumed, static_cast<int>(n / 2) * iters);
}

sim::Process
typedCondConsumer(Core &c, SyncApi &api, sync::CondVar cond,
                  sync::Lock lock, int want, int &items, int &consumed)
{
    int got = 0;
    while (got < want) {
        co_await api.acquire(c, lock);
        while (items == 0)
            co_await api.wait(c, cond, lock);
        --items;
        ++consumed;
        ++got;
        co_await api.release(c, lock);
    }
}

sim::Process
typedCondProducer(Core &c, SyncApi &api, sync::CondVar cond,
                  sync::Lock lock, int iters, int &items)
{
    for (int i = 0; i < iters; ++i) {
        co_await c.compute(40);
        co_await api.acquire(c, lock);
        ++items;
        co_await api.signal(c, cond);
        co_await api.release(c, lock);
    }
}

TEST(TypedApi, CondVarHandleNamesItsLock)
{
    NdpSystem sys(SystemConfig::make(Scheme::SynCron, 2, 4));
    sync::Lock lock = sys.api().createLock(0);
    sync::CondVar cond = sys.api().createCondVar(1);
    int items = 0, consumed = 0;
    const int iters = 4;
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n / 2; ++i)
        sys.spawn(typedCondConsumer(sys.clientCore(i), sys.api(), cond,
                                    lock, iters, items, consumed));
    for (unsigned i = n / 2; i < n; ++i)
        sys.spawn(typedCondProducer(sys.clientCore(i), sys.api(), cond,
                                    lock, iters, items));
    sys.run();
    EXPECT_EQ(consumed, static_cast<int>(n / 2) * iters);
    EXPECT_EQ(items, 0);
}

// ----------------------------------------------------------------------
// ScopedLock
// ----------------------------------------------------------------------

sim::Process
scopedWorker(Core &c, SyncApi &api, sync::Lock lock, int iters,
             Counter &shared, bool explicitUnlock)
{
    for (int i = 0; i < iters; ++i) {
        sync::ScopedLock guard = co_await api.scoped(c, lock);
        EXPECT_TRUE(guard.owns());
        if (shared.inCritical)
            shared.violated = true;
        shared.inCritical = true;
        co_await c.compute(10);
        ++shared.value;
        shared.inCritical = false;
        if (explicitUnlock) {
            co_await guard.unlock();
            EXPECT_FALSE(guard.owns());
        }
        // Otherwise: scope exit releases.
    }
}

TEST(ScopedLockTest, ReleasesOnScopeExit)
{
    NdpSystem sys(SystemConfig::make(Scheme::SynCron, 2, 4));
    sync::Lock lock = sys.api().createLock(0);
    Counter shared;
    for (unsigned i = 0; i < sys.numClientCores(); ++i) {
        sys.spawn(scopedWorker(sys.clientCore(i), sys.api(), lock, 5,
                               shared, /*explicitUnlock=*/i % 2 == 0));
    }
    sys.run(); // would deadlock if a scope exit ever leaked the lock
    EXPECT_FALSE(shared.violated);
    EXPECT_EQ(shared.value,
              static_cast<int>(sys.numClientCores()) * 5);
    // Every critical section entered and left => lock is free again.
    EXPECT_TRUE(sys.backend().idleVar(lock.addr));
}

// ----------------------------------------------------------------------
// SyncFuture / SyncBatch (asynchronous submission)
// ----------------------------------------------------------------------

sim::Process
pipelinedWorker(Core &c, SyncApi &api, const sync::LockSet &locks,
                int &done)
{
    // Two acquires to different locks in flight at once from one core —
    // the pipelining the blocking SyncOp form cannot express.
    sync::SyncFuture a = api.submitAcquire(c, locks[0]);
    sync::SyncFuture b = api.submitAcquire(c, locks[1]);
    EXPECT_TRUE(a.valid());
    const sync::SyncResponse ra = co_await a;
    const sync::SyncResponse rb = co_await b;
    EXPECT_EQ(ra.kind, sync::OpKind::LockAcquire);
    EXPECT_EQ(rb.kind, sync::OpKind::LockAcquire);
    EXPECT_LE(ra.issuedAt, ra.completedAt);
    EXPECT_LE(rb.issuedAt, rb.completedAt);
    // Fire-and-forget releases: a resolved future may be dropped
    // without being awaited and must still be recorded.
    api.submitRelease(c, locks[0]);
    api.submitRelease(c, locks[1]);
    ++done;
}

TEST(SyncFutureTest, PipelinesAcquiresAndRecordsDroppedFutures)
{
    for (Scheme s : {Scheme::Ideal, Scheme::Central, Scheme::SynCron}) {
        NdpSystem sys(SystemConfig::make(s, 2, 4));
        SyncApi &api = sys.api();
        const sync::LockSet locks = api.createLockSet(2, {0u, 1u});
        int done = 0;
        sys.spawn(pipelinedWorker(sys.clientCore(0), api, locks, done));
        sys.run();
        EXPECT_EQ(done, 1) << schemeName(s);

        const unsigned acq =
            static_cast<unsigned>(sync::OpKind::LockAcquire);
        const unsigned rel =
            static_cast<unsigned>(sync::OpKind::LockRelease);
        // Every op recorded exactly once — including the two release
        // futures that were dropped instead of awaited.
        EXPECT_EQ(sys.stats().syncLatency[acq].count, 2u)
            << schemeName(s);
        EXPECT_EQ(sys.stats().syncLatency[rel].count, 2u)
            << schemeName(s);
        EXPECT_TRUE(sys.backend().idleVar(locks[0].addr))
            << schemeName(s);
        EXPECT_TRUE(sys.backend().idleVar(locks[1].addr))
            << schemeName(s);
    }
}

TEST(SyncBatchTest, CoalescingEngagesOnOptedInBackends)
{
    for (Scheme s : {Scheme::SynCron, Scheme::Central}) {
        NdpSystem sys(SystemConfig::make(s, 2, 4));
        workloads::SemFanoutWorkload w(sys, /*width=*/4, /*rounds=*/2,
                                       /*contended=*/false);
        sys.run();
        // Per core: 2 rounds x (one 4-post batch + one 4-wait batch).
        const std::uint64_t ops =
            static_cast<std::uint64_t>(sys.numClientCores()) * 2 * 8;
        EXPECT_EQ(sys.stats().syncOps, ops) << schemeName(s);
        EXPECT_EQ(sys.stats().batchedOps, ops) << schemeName(s);
        // Each 4-op batch travels as one message instead of four.
        EXPECT_EQ(sys.stats().messagesSaved, ops / 4 * 3)
            << schemeName(s);
        const unsigned wait = static_cast<unsigned>(sync::OpKind::SemWait);
        const unsigned post = static_cast<unsigned>(sync::OpKind::SemPost);
        EXPECT_EQ(sys.stats().syncLatency[wait].count, ops / 2)
            << schemeName(s);
        EXPECT_EQ(sys.stats().syncLatency[post].count, ops / 2)
            << schemeName(s);
    }
}

TEST(SyncBatchTest, DefaultFallbackLeavesBackendsUnmodified)
{
    // Backends that never overrode requestBatch() must behave exactly
    // as if every member had been issued through request().
    for (Scheme s : {Scheme::Ideal, Scheme::SynCronFlat}) {
        NdpSystem sys(SystemConfig::make(s, 2, 4));
        workloads::SemFanoutWorkload w(sys, 4, 2, false);
        sys.run();
        const std::uint64_t ops =
            static_cast<std::uint64_t>(sys.numClientCores()) * 2 * 8;
        EXPECT_EQ(sys.stats().syncOps, ops) << schemeName(s);
        EXPECT_EQ(sys.stats().batchedOps, 0u) << schemeName(s);
        EXPECT_EQ(sys.stats().messagesSaved, 0u) << schemeName(s);
        const unsigned wait = static_cast<unsigned>(sync::OpKind::SemWait);
        EXPECT_EQ(sys.stats().syncLatency[wait].count, ops / 2)
            << schemeName(s);
    }
}

sim::Process
holdAwhile(Core &c, SyncApi &api, sync::Lock lock)
{
    co_await api.acquire(c, lock);
    co_await c.compute(5000);
    co_await api.release(c, lock);
}

sim::Process
batchWhileHeld(NdpSystem &sys, Core &c, SyncApi &api, sync::Lock lock,
               sync::Semaphore sem, bool &checked)
{
    co_await c.compute(100);
    sync::SyncBatch batch(api, c);
    batch.acquire(lock).post(sem);
    std::vector<sync::SyncFuture> futures = batch.submit();
    // The acquire is outstanding (the other core holds the lock, or at
    // minimum our own message is in flight): the backend tracks live
    // state for the variable, so destroy() must panic — and must leave
    // the handle usable (the generation is only bumped on success).
    EXPECT_FALSE(sys.backend().idleVar(lock.addr));
    EXPECT_THROW(api.destroy(lock), std::logic_error);
    checked = true;
    for (sync::SyncFuture &f : futures)
        co_await f;
    co_await api.wait(c, sem); // drain our own post
    co_await api.release(c, lock);
}

TEST(IdleVarTest, OutstandingBatchBlocksDestroyOnEveryBackend)
{
    for (const std::string &name :
         BackendRegistry::instance().names()) {
        SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
        cfg.backendName = name;
        NdpSystem sys(cfg);
        SyncApi &api = sys.api();
        sync::Lock lock = api.createLock(0);
        sync::Semaphore sem = api.createSemaphore(1, 0);
        bool checked = false;
        sys.spawn(holdAwhile(sys.clientCore(0), api, lock));
        sys.spawn(batchWhileHeld(sys, sys.clientCore(4), api, lock, sem,
                                 checked));
        sys.run();
        EXPECT_TRUE(checked) << name;
        // Once every future resolved (and the lock was released),
        // destroy() must succeed on the very same handle. (The
        // semaphore is not destroyed: a used semaphore's resource
        // count is persistent state, so SE backends keep its ST entry
        // live for the primitive's lifetime by design.)
        EXPECT_TRUE(sys.backend().idleVar(lock.addr)) << name;
        api.destroy(lock);
    }
}

// ----------------------------------------------------------------------
// Lock-placement cursors
// ----------------------------------------------------------------------

TEST(LockPlacement, SetCursorIsIndependentOfInterleavedSingles)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 4, 2));
    SyncApi &api = sys.api();

    // A single interleaved lock advances rr_ to unit 1...
    sync::Lock s0 = api.createLockInterleaved();
    EXPECT_EQ(s0.home(), 0u);

    // ...but the first set still starts the set cursor at unit 0 and
    // stays perfectly balanced.
    const sync::LockSet a = api.createLockSet(6);
    std::array<unsigned, 4> homesA{};
    for (const sync::Lock &l : a)
        ++homesA[l.home()];
    EXPECT_EQ(a[0].home(), 0u);
    EXPECT_EQ(a[5].home(), 1u);
    EXPECT_EQ(homesA, (std::array<unsigned, 4>{2, 2, 1, 1}));

    // The set did not disturb the singles cursor: the next interleaved
    // single lands exactly where it would have without the set.
    sync::Lock s1 = api.createLockInterleaved();
    EXPECT_EQ(s1.home(), 1u);

    // And the second set continues the set cursor where the first set
    // stopped (unit 2), unaffected by the singles in between.
    const sync::LockSet b = api.createLockSet(4);
    EXPECT_EQ(b[0].home(), 2u);
    EXPECT_EQ(b[1].home(), 3u);
    EXPECT_EQ(b[2].home(), 0u);
    EXPECT_EQ(b[3].home(), 1u);
}

// ----------------------------------------------------------------------
// Per-op latency observability
// ----------------------------------------------------------------------

TEST(SyncLatency, EverySchemeRecordsPerOpLatencies)
{
    for (Scheme s : {Scheme::Ideal, Scheme::Central, Scheme::Hier,
                     Scheme::SynCron, Scheme::SynCronFlat}) {
        NdpSystem sys(SystemConfig::make(s, 2, 4));
        sync::Lock lock = sys.api().createLock(0);
        Counter shared;
        const int iters = 5;
        for (unsigned i = 0; i < sys.numClientCores(); ++i) {
            sys.spawn(typedLockWorker(sys.clientCore(i), sys.api(), lock,
                                      iters, shared));
        }
        sys.run();

        const unsigned acq =
            static_cast<unsigned>(sync::OpKind::LockAcquire);
        const unsigned rel =
            static_cast<unsigned>(sync::OpKind::LockRelease);
        const SyncOpLatency &acqLat = sys.stats().syncLatency[acq];
        const SyncOpLatency &relLat = sys.stats().syncLatency[rel];
        const std::uint64_t ops =
            static_cast<std::uint64_t>(sys.numClientCores()) * iters;
        EXPECT_EQ(acqLat.count, ops) << schemeName(s);
        EXPECT_EQ(relLat.count, ops) << schemeName(s);
        if (s != Scheme::Ideal) {
            EXPECT_GT(acqLat.totalTicks, 0u) << schemeName(s);
            // Acquires block until granted; releases commit at issue.
            EXPECT_GT(acqLat.avgTicks(), relLat.avgTicks())
                << schemeName(s);
        }
    }
}

TEST(SyncLatency, HistogramBucketsAndMergeAreConsistent)
{
    SyncOpLatency a;
    a.record(0);
    a.record(1);
    a.record(1000);
    EXPECT_EQ(a.count, 3u);
    EXPECT_EQ(a.minTicks, 0);
    EXPECT_EQ(a.maxTicks, 1000);
    EXPECT_EQ(a.hist[0], 1u);  // 0 ticks
    EXPECT_EQ(a.hist[1], 1u);  // 1 tick
    EXPECT_EQ(a.hist[10], 1u); // 512 <= 1000 < 1024

    SyncOpLatency b;
    b.record(4);
    b += a;
    EXPECT_EQ(b.count, 4u);
    EXPECT_EQ(b.minTicks, 0);
    EXPECT_EQ(b.maxTicks, 1000);
    EXPECT_DOUBLE_EQ(b.avgTicks(), (0.0 + 1 + 1000 + 4) / 4);
}

// ----------------------------------------------------------------------
// destroy() safety
// ----------------------------------------------------------------------

TEST(DestroyPrimitive, RecycledLineGetsNewGeneration)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 2, 4));
    sync::Lock a = sys.api().createLock(1);
    sys.api().destroy(a);
    sync::Lock b = sys.api().createLock(1);
    EXPECT_EQ(b.addr, a.addr); // line recycled...
    EXPECT_NE(b.gen, a.gen);   // ...under a fresh generation
}

TEST(DestroyPrimitive, StaleHandleUseIsCaught)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 2, 4));
    sync::Lock a = sys.api().createLock(0);
    sys.api().destroy(a);
    // The stale handle must not alias the recycled line's new user.
    EXPECT_THROW(sys.api().acquire(sys.clientCore(0), a),
                 std::logic_error);
    EXPECT_THROW(sys.api().destroy(a), std::logic_error);
}

sim::Process
holdLock(Core &c, SyncApi &api, sync::Lock lock)
{
    co_await api.acquire(c, lock);
    // Never released: the variable stays live in the backend.
}

TEST(DestroyPrimitive, RefusedWhileBackendTracksState)
{
    for (Scheme s : {Scheme::Ideal, Scheme::SynCron}) {
        NdpSystem sys(SystemConfig::make(s, 2, 4));
        sync::Lock lock = sys.api().createLock(0);
        sys.spawn(holdLock(sys.clientCore(0), sys.api(), lock));
        sys.run();
        EXPECT_FALSE(sys.backend().idleVar(lock.addr))
            << schemeName(s);
        EXPECT_THROW(sys.api().destroy(lock), std::logic_error)
            << schemeName(s);
    }
}

// ----------------------------------------------------------------------
// BackendRegistry
// ----------------------------------------------------------------------

TEST(Registry, AllSevenSchemesConstructibleByName)
{
    for (Scheme s : {Scheme::Ideal, Scheme::Central, Scheme::Hier,
                     Scheme::SynCron, Scheme::SynCronFlat,
                     Scheme::SynCronCentralOvrfl,
                     Scheme::SynCronDistribOvrfl}) {
        const std::string name = schemeName(s);
        EXPECT_TRUE(BackendRegistry::instance().contains(name)) << name;

        // Round trip: name -> create -> name().
        SystemConfig cfg = SystemConfig::make(s, 2, 4);
        Machine machine(cfg);
        auto backend =
            BackendRegistry::instance().tryCreate(name, machine);
        ASSERT_NE(backend, nullptr) << name;
        EXPECT_EQ(backend->name(), name);
    }
}

TEST(Registry, UnknownNamesAreRejected)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 4);
    Machine machine(cfg);
    EXPECT_EQ(BackendRegistry::instance().tryCreate("NoSuchScheme",
                                                    machine),
              nullptr);
    EXPECT_THROW(BackendRegistry::instance().create("NoSuchScheme",
                                                    machine),
                 std::runtime_error);

    cfg.backendName = "NoSuchScheme";
    EXPECT_THROW(NdpSystem sys(cfg), std::runtime_error);
}

TEST(Registry, ConfigBackendNameOverridesScheme)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 4);
    cfg.backendName = "SynCron";
    NdpSystem sys(cfg);
    EXPECT_STREQ(sys.backend().name(), "SynCron");
    EXPECT_NE(sys.syncronBackend(), nullptr);
}

TEST(Registry, SchemeFromNameIsInverseOfSchemeName)
{
    for (Scheme s : {Scheme::Ideal, Scheme::Central, Scheme::Hier,
                     Scheme::SynCron, Scheme::SynCronFlat,
                     Scheme::SynCronCentralOvrfl,
                     Scheme::SynCronDistribOvrfl}) {
        Scheme parsed{};
        EXPECT_TRUE(schemeFromName(schemeName(s), parsed));
        EXPECT_EQ(parsed, s);
    }
    Scheme parsed{};
    EXPECT_FALSE(schemeFromName("NoSuchScheme", parsed));
}

} // namespace
} // namespace syncron
