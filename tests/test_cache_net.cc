/**
 * @file
 * Unit tests for the L1 cache model and the interconnect (M/D/1
 * estimator, crossbar, inter-unit links, message routing).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "net/crossbar.hh"
#include "net/link.hh"
#include "net/md1.hh"
#include "system/machine.hh"

namespace syncron {
namespace {

TEST(Cache, HitAfterFill)
{
    SystemStats stats;
    cache::Cache l1({}, stats);
    EXPECT_FALSE(l1.access(0x1000, false).hit);
    EXPECT_TRUE(l1.access(0x1000, false).hit);
    EXPECT_TRUE(l1.access(0x1020, false).hit); // same line
    EXPECT_EQ(stats.l1Hits, 2u);
    EXPECT_EQ(stats.l1Misses, 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    SystemStats stats;
    cache::CacheParams params;
    cache::Cache l1(params, stats);
    const std::uint32_t setStride =
        l1.numSets() * params.lineBytes; // same set, different tags
    l1.access(0, false);
    l1.access(setStride, false);
    l1.access(0, false);              // 0 is now MRU
    l1.access(2 * setStride, false);  // evicts setStride (LRU)
    EXPECT_TRUE(l1.contains(0));
    EXPECT_FALSE(l1.contains(setStride));
    EXPECT_TRUE(l1.contains(2 * setStride));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    SystemStats stats;
    cache::CacheParams params;
    cache::Cache l1(params, stats);
    const std::uint32_t setStride = l1.numSets() * params.lineBytes;
    l1.access(0, true); // dirty
    l1.access(setStride, false);
    const auto res = l1.access(2 * setStride, false); // evicts line 0
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, 0u);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    SystemStats stats;
    cache::Cache l1({}, stats);
    l1.access(0x40, true);
    EXPECT_TRUE(l1.invalidate(0x40));
    EXPECT_FALSE(l1.contains(0x40));
    EXPECT_FALSE(l1.invalidate(0x40)); // already gone
}

TEST(Md1, DelayGrowsWithUtilization)
{
    net::Md1Estimator md1(1000); // 1 ns service
    // Sparse arrivals: negligible queueing.
    Tick t = 0;
    for (int i = 0; i < 200; ++i)
        md1.onArrival(t += 100000);
    const Tick sparse = md1.currentDelay();
    // Dense arrivals approaching saturation.
    for (int i = 0; i < 500; ++i)
        md1.onArrival(t += 1100);
    const Tick dense = md1.currentDelay();
    EXPECT_GT(dense, sparse);
    EXPECT_LE(md1.rho(), 0.95);
}

TEST(Crossbar, LatencyScalesWithMessageSize)
{
    SystemStats stats;
    net::Crossbar xbar({}, stats);
    const Tick small = xbar.unloadedLatency(128);
    const Tick big = xbar.unloadedLatency(512 + 8);
    EXPECT_GT(big, small);
}

TEST(Crossbar, ArrivalsAreMonotonic)
{
    SystemStats stats;
    net::Crossbar xbar({}, stats);
    Tick last = 0;
    // Burst then quiet: the M/D/1 estimate shrinks, but deliveries must
    // never reorder (FIFO clamp).
    for (int i = 0; i < 50; ++i) {
        const Tick a = xbar.transfer(i * 100, 140);
        EXPECT_GE(a, last);
        last = a;
    }
    EXPECT_EQ(stats.xbarMessages, 50u);
    EXPECT_GT(stats.bytesInsideUnits, 0u);
}

TEST(Link, FlightLatencyAndSerialization)
{
    SystemStats stats;
    net::LinkParams params;
    net::LinkFabric links(4, params, stats);
    const Tick t = links.send(0, 0, 1, 64);
    // 20 cycles * 400 ps + serialization (~5 ns) + 40 ns flight.
    EXPECT_GT(t, params.flightTicks);
    EXPECT_EQ(stats.bytesAcrossUnits, 64u);

    // Back-to-back messages on one direction serialize.
    const Tick t2 = links.send(0, 0, 1, 64);
    EXPECT_GT(t2, t);
    // The reverse direction is independent.
    const Tick t3 = links.send(0, 1, 0, 64);
    EXPECT_LT(t3, t2);
}

TEST(Machine, SameUnitVsCrossUnitRouting)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 4, 15);
    Machine machine(cfg);
    const Tick local = machine.routeMessage(0, 0, 0, 140);
    const Tick remote = machine.routeMessage(0, 0, 2, 140);
    EXPECT_LT(local, remote);
    EXPECT_GT(machine.stats().linkMessages, 0u);
}

TEST(Machine, MemoryAccessRoundTrip)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 4, 15);
    Machine machine(cfg);
    const Addr localAddr = machine.addrSpace().allocIn(0, 64);
    const Addr remoteAddr = machine.addrSpace().allocIn(3, 64);
    const Tick localDone = machine.memoryAccess(0, 0, localAddr, false, 8);
    const Tick remoteDone =
        machine.memoryAccess(0, 0, remoteAddr, false, 8);
    EXPECT_LT(localDone, remoteDone)
        << "remote accesses must pay the inter-unit links";
}

} // namespace
} // namespace syncron
