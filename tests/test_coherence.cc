/**
 * @file
 * Tests for the MESI directory model used by the motivation
 * experiments: state transitions, invalidation, RMW atomicity, and the
 * two lock algorithms' correctness.
 */

#include <gtest/gtest.h>

#include "coherence/mesi.hh"
#include "mem/allocator.hh"

namespace syncron::coherence {
namespace {

TEST(Mesi, ReadsHitAfterFirstFill)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);
    MesiSystem mesi(machine, 4);
    const Addr a = machine.addrSpace().allocIn(0, 64, 64);

    const Tick miss = mesi.read(0, a, 0);
    const Tick hit = mesi.read(0, a, miss) - miss;
    EXPECT_GT(miss, hit);
    EXPECT_EQ(hit, mesi.hitLatency());
}

TEST(Mesi, WriteInvalidatesSharers)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);
    MesiSystem mesi(machine, 4);
    const Addr a = machine.addrSpace().allocIn(0, 64, 64);

    Tick t = mesi.read(0, a, 0);
    t = mesi.read(1, a, t);
    t = mesi.write(2, a, t); // invalidates 0 and 1
    // Core 0 must now miss again.
    const Tick reread = mesi.read(0, a, t) - t;
    EXPECT_GT(reread, mesi.hitLatency());
}

TEST(Mesi, RemoteOwnerTransferCostsMoreThanLocal)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);
    MesiSystem mesi(machine, 28); // 14 per socket
    const Addr a = machine.addrSpace().allocIn(0, 64, 64);

    // Core 1 (socket 0) owns the line Modified.
    Tick t = mesi.write(1, a, 0);
    // Same-socket transfer to core 2 vs cross-socket to core 20.
    const Tick same = mesi.read(2, a, t) - t;
    Tick t2 = mesi.write(1, a, same + t);
    const Tick cross = mesi.read(20, a, t2) - t2;
    EXPECT_GT(cross, same)
        << "cross-socket transfers must pay the links (Table 1 effect)";
}

TEST(Mesi, RmwAppliesInSerializationOrder)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);
    MesiSystem mesi(machine, 4);
    const Addr a = machine.addrSpace().allocIn(0, 64, 64);

    auto r1 = mesi.rmwSwap(0, a, 1, 0);
    auto r2 = mesi.rmwSwap(1, a, 1, 0);
    // Exactly one swap observed 0 (won the lock).
    EXPECT_EQ(r1.second, 0u);
    EXPECT_EQ(r2.second, 1u);
    EXPECT_EQ(mesi.value(a), 1u);

    auto f1 = mesi.rmwFetchAdd(2, a, 5, std::max(r1.first, r2.first));
    EXPECT_EQ(f1.second, 1u);
    EXPECT_EQ(mesi.value(a), 6u);
}

TEST(Mesi, TtasLockEnforcesMutualProgress)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);
    MesiSystem mesi(machine, 8);
    const Addr lock = machine.addrSpace().allocIn(0, 64, 64);

    std::uint64_t acquired = 0;
    std::vector<sim::Process> procs;
    for (unsigned c = 0; c < 8; ++c) {
        procs.push_back(
            ttasLockLoop(mesi, c, lock, 5, 25, &acquired));
        procs.back().start(machine.eq());
    }
    machine.eq().run();
    for (const auto &p : procs)
        EXPECT_TRUE(p.done());
    EXPECT_EQ(acquired, 40u);
    EXPECT_EQ(mesi.value(lock), 0u); // released at the end
}

TEST(Mesi, HierTicketLockCompletesAllAcquisitions)
{
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 2, 14);
    cfg.coresPerUnit = 14;
    Machine machine(cfg);
    MesiSystem mesi(machine, 28);
    HierTicketLock lock = HierTicketLock::make(machine);

    std::uint64_t acquired = 0;
    std::vector<sim::Process> procs;
    // Threads on both sockets.
    for (unsigned c : {0u, 1u, 14u, 15u}) {
        procs.push_back(
            hierTicketLockLoop(mesi, lock, c, 6, 25, &acquired));
        procs.back().start(machine.eq());
    }
    machine.eq().run();
    for (const auto &p : procs)
        EXPECT_TRUE(p.done());
    EXPECT_EQ(acquired, 24u);
}

} // namespace
} // namespace syncron::coherence
