/**
 * @file
 * Unit tests for the simulation kernel: event ordering, coroutine
 * processes, delays, and completion gates.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/process.hh"

namespace syncron::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsRunFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NestedSchedulingFromCallbacks)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        eq.scheduleIn(5, [&] { fired = 2; });
        fired = 1;
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

Process
delayTwice(EventQueue &eq, std::vector<Tick> &trace)
{
    trace.push_back(eq.now());
    co_await Delay{eq, 100};
    trace.push_back(eq.now());
    co_await Delay{eq, 250};
    trace.push_back(eq.now());
}

TEST(Process, DelaysAdvanceSimulatedTime)
{
    EventQueue eq;
    std::vector<Tick> trace;
    Process p = delayTwice(eq, trace);
    EXPECT_FALSE(p.done());
    p.start(eq);
    eq.run();
    EXPECT_TRUE(p.done());
    EXPECT_EQ(trace, (std::vector<Tick>{0, 100, 350}));
}

Process
waitOnGate(EventQueue &eq, Gate &gate, std::uint64_t &got, Tick &when)
{
    got = co_await gate;
    when = eq.now();
}

TEST(Gate, OpenAfterAwaitResumesWaiter)
{
    EventQueue eq;
    Gate gate(eq);
    std::uint64_t got = 0;
    Tick when = 0;
    Process p = waitOnGate(eq, gate, got, when);
    p.start(eq);
    eq.schedule(500, [&] { gate.open(42, 25); });
    eq.run();
    EXPECT_TRUE(p.done());
    EXPECT_EQ(got, 42u);
    EXPECT_EQ(when, 525u);
}

TEST(Gate, OpenBeforeAwaitCompletesImmediately)
{
    EventQueue eq;
    Gate gate(eq);
    gate.open(7, 0);
    std::uint64_t got = 0;
    Tick when = 1234;
    Process p = waitOnGate(eq, gate, got, when);
    p.start(eq);
    eq.run();
    EXPECT_TRUE(p.done());
    EXPECT_EQ(got, 7u);
    EXPECT_EQ(when, 0u);
}

TEST(Gate, DoubleOpenPanics)
{
    EventQueue eq;
    Gate gate(eq);
    gate.open(1);
    EXPECT_THROW(gate.open(2), std::logic_error);
}

Process
spawnChildren(EventQueue &eq, int &counter)
{
    // A process that completes without any awaits still works.
    ++counter;
    co_await Delay{eq, 0};
    ++counter;
}

TEST(Process, ZeroDelayAndImmediateCompletion)
{
    EventQueue eq;
    int counter = 0;
    Process p = spawnChildren(eq, counter);
    p.start(eq);
    eq.run();
    EXPECT_TRUE(p.done());
    EXPECT_EQ(counter, 2);
}

TEST(Process, MoveTransfersOwnership)
{
    EventQueue eq;
    int counter = 0;
    Process p = spawnChildren(eq, counter);
    Process q = std::move(p);
    EXPECT_FALSE(p.valid());
    q.start(eq);
    eq.run();
    EXPECT_TRUE(q.done());
}

} // namespace
} // namespace syncron::sim
