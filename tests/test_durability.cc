/**
 * @file
 * Durability tests: the SYNCDUR persisted-image container, the shadow
 * oracle, the WAL/PM accounting of the durability manager, the crash
 * lifecycle, and the end-to-end crash-injection sweep — recovery at
 * every sync-op boundary on multiple backends, with the recovered +
 * resumed state matching the clean run's final state.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "durability/image.hh"
#include "durability/manager.hh"
#include "durability/oracle.hh"
#include "durability/pm_model.hh"
#include "durability/recovery.hh"
#include "harness/crash_sweep.hh"
#include "system/energy.hh"
#include "system/system.hh"
#include "workloads/replication/replication.hh"

namespace syncron::durability {
namespace {

using trace::PrimKind;
using trace::TracePrimitive;
using trace::TraceRecord;

// --------------------------------------------------------------------
// PM model / container
// --------------------------------------------------------------------

TEST(PmModel, ModeNamesRoundTrip)
{
    for (PersistMode m :
         {PersistMode::Off, PersistMode::Eager, PersistMode::Epoch}) {
        PersistMode parsed = PersistMode::Off;
        ASSERT_TRUE(persistModeFromName(persistModeName(m), parsed));
        EXPECT_EQ(parsed, m);
    }
    PersistMode parsed = PersistMode::Off;
    EXPECT_FALSE(persistModeFromName("bogus", parsed));
    EXPECT_FALSE(persistModeFromName("", parsed));
}

TraceRecord
rec(sync::OpKind kind, std::uint32_t core, std::uint32_t prim, Tick t)
{
    TraceRecord r;
    r.issued = t;
    r.completed = t + 5;
    r.core = core;
    r.kind = kind;
    r.prim = prim;
    return r;
}

PersistedImage
sampleImage()
{
    PersistedImage img;
    img.numUnits = 2;
    img.clientCoresPerUnit = 3;
    img.mode = PersistMode::Eager;
    img.epochOps = 8;
    img.crashTick = 123456;
    img.primitives.push_back(
        TracePrimitive{PrimKind::Lock, 0, 0,
                       sync::BarrierScope::AcrossUnits});
    img.primitives.push_back(
        TracePrimitive{PrimKind::Semaphore, 1, 4,
                       sync::BarrierScope::AcrossUnits});
    img.records.push_back(rec(sync::OpKind::SemWait, 0, 1, 100));
    img.records.push_back(rec(sync::OpKind::LockAcquire, 0, 0, 200));
    img.records.push_back(rec(sync::OpKind::LockRelease, 0, 0, 300));
    img.appended = img.records.size() + 2; // a lost staged tail
    return img;
}

TEST(PersistedImage, RoundTripsThroughContainer)
{
    const PersistedImage img = sampleImage();
    std::stringstream ss;
    writeImage(ss, img);
    const PersistedImage back = readImage(ss);
    EXPECT_EQ(back, img);
    EXPECT_EQ(back.durable(), 3u);
    EXPECT_EQ(back.appended, 5u);
}

TEST(PersistedImage, ReaderRejectsCorruption)
{
    const PersistedImage img = sampleImage();
    std::stringstream ss;
    writeImage(ss, img);
    const std::string good = ss.str();

    {
        // Bad magic.
        std::string bad = good;
        bad[0] = 'X';
        std::stringstream in(bad);
        EXPECT_THROW(readImage(in), std::runtime_error);
    }
    {
        // Truncation.
        std::stringstream in(good.substr(0, good.size() - 1));
        EXPECT_THROW(readImage(in), std::runtime_error);
    }
    {
        // Trailing garbage.
        std::stringstream in(good + "z");
        EXPECT_THROW(readImage(in), std::runtime_error);
    }
    {
        // appended must cover the durable records: the writer refuses
        // to emit such an image in the first place...
        PersistedImage bad = img;
        bad.appended = 1;
        std::stringstream rt;
        EXPECT_THROW(writeImage(rt, bad), std::logic_error);
    }
    {
        // ...and the reader rejects one forged behind its back.
        // Locate the appended varint by diffing against a copy that
        // changes only that field, then patch it below the durable
        // record count.
        PersistedImage big = img;
        big.appended = img.appended + 1;
        std::stringstream bs;
        writeImage(bs, big);
        const std::string other = bs.str();
        std::size_t at = 0;
        while (at < good.size() && good[at] == other[at])
            ++at;
        ASSERT_LT(at, good.size());
        std::string forged = good;
        forged[at] = 1; // appended = 1 < 3 durable records
        std::stringstream in(forged);
        EXPECT_THROW(readImage(in), std::runtime_error);
    }
}

// --------------------------------------------------------------------
// Shadow oracle
// --------------------------------------------------------------------

TEST(ShadowOracle, CleanLockStreamIsIdleAndSelfEqual)
{
    std::vector<TracePrimitive> prims{
        TracePrimitive{PrimKind::Lock, 0, 0,
                       sync::BarrierScope::AcrossUnits}};
    ShadowOracle a(prims);
    a.apply(rec(sync::OpKind::LockAcquire, 0, 0, 10));
    a.apply(rec(sync::OpKind::LockRelease, 0, 0, 20));
    a.apply(rec(sync::OpKind::LockAcquire, 1, 0, 30));
    a.apply(rec(sync::OpKind::LockRelease, 1, 0, 40));
    a.checkInvariants(2);
    EXPECT_TRUE(a.violations().empty());
    EXPECT_TRUE(a.idle());

    ShadowOracle b(prims);
    b.apply(rec(sync::OpKind::LockAcquire, 1, 0, 5));
    b.apply(rec(sync::OpKind::LockRelease, 1, 0, 6));
    EXPECT_TRUE(a.sameStateAs(b)) << "ticks must not affect equality";

    ShadowOracle held(prims);
    held.apply(rec(sync::OpKind::LockAcquire, 0, 0, 10));
    EXPECT_FALSE(held.idle());
    EXPECT_FALSE(a.sameStateAs(held));
}

TEST(ShadowOracle, DetectsSemaphoreUnderflow)
{
    std::vector<TracePrimitive> prims{
        TracePrimitive{PrimKind::Semaphore, 0, 0,
                       sync::BarrierScope::AcrossUnits}};
    ShadowOracle o(prims);
    // A wait granted against zero initial resources and no post.
    o.apply(rec(sync::OpKind::SemWait, 0, 0, 10));
    o.checkInvariants(2);
    EXPECT_FALSE(o.violations().empty());
}

// --------------------------------------------------------------------
// Live WAL / PM accounting
// --------------------------------------------------------------------

SystemConfig
smallCfg(Scheme scheme, PersistMode mode, std::uint32_t epochOps = 8)
{
    SystemConfig cfg = SystemConfig::make(scheme, 2, 3);
    cfg.persistMode = mode;
    cfg.persistEpochOps = epochOps;
    return cfg;
}

workloads::ReplicationParams
smallParams()
{
    workloads::ReplicationParams p;
    p.epochs = 2;
    p.opsPerEpoch = 2;
    return p;
}

TEST(Durability, EagerWalIsDurableAndChargesPm)
{
    NdpSystem sys(smallCfg(Scheme::SynCron, PersistMode::Eager));
    workloads::ReplicationWorkload w(sys, smallParams());
    sys.run();

    DurabilityManager *dm = sys.durability();
    ASSERT_NE(dm, nullptr);
    EXPECT_GT(dm->appended(), 0u);
    EXPECT_EQ(dm->durable(), dm->appended())
        << "eager mode persists every record as it lands";
    EXPECT_GE(sys.stats().pmWrites, dm->appended());
    EXPECT_GT(sys.stats().pmBitsWritten, 0u);
    EXPECT_GT(dm->stationPersists(), 0u)
        << "the SE engine must mirror station transitions";
    EXPECT_GT(computeEnergy(sys.stats(), sys.config()).pmJ, 0.0);

    // The clean image records a clean shutdown covering the whole WAL.
    const PersistedImage img = dm->snapshot();
    EXPECT_EQ(img.crashTick, Tick{0});
    EXPECT_EQ(img.durable(), dm->appended());
}

TEST(Durability, OffModeChargesNothing)
{
    NdpSystem sys(smallCfg(Scheme::SynCron, PersistMode::Off));
    workloads::ReplicationWorkload w(sys, smallParams());
    sys.run();
    EXPECT_EQ(sys.durability(), nullptr);
    EXPECT_EQ(sys.stats().pmWrites, 0u);
    EXPECT_EQ(sys.stats().pmBitsWritten, 0u);
}

TEST(Durability, EagerPersistSlowsTheRunDown)
{
    Tick off = 0;
    {
        NdpSystem sys(smallCfg(Scheme::SynCron, PersistMode::Off));
        workloads::ReplicationWorkload w(sys, smallParams());
        sys.run();
        off = sys.elapsed();
    }
    NdpSystem sys(smallCfg(Scheme::SynCron, PersistMode::Eager));
    workloads::ReplicationWorkload w(sys, smallParams());
    sys.run();
    EXPECT_GT(sys.elapsed(), off)
        << "eager mode charges a PM write on every acquire-type op";
}

TEST(Durability, EpochModeFlushesStagedTailOnCleanShutdown)
{
    NdpSystem sys(smallCfg(Scheme::SynCron, PersistMode::Epoch, 8));
    workloads::ReplicationWorkload w(sys, smallParams());
    sys.run();
    DurabilityManager *dm = sys.durability();
    ASSERT_NE(dm, nullptr);
    EXPECT_EQ(dm->durable(), dm->appended())
        << "clean shutdown flushes the staged tail";
    EXPECT_GE(sys.stats().pmFlushes, 1u);
    EXPECT_LT(sys.stats().pmWrites, dm->appended())
        << "epoch batching must write fewer PM lines than records";
}

// --------------------------------------------------------------------
// Crash lifecycle
// --------------------------------------------------------------------

TEST(Durability, CrashInjectionFreezesTheDurableImage)
{
    // Find a mid-run tick from a clean reference, then crash there.
    Tick end = 0;
    std::uint64_t cleanRecords = 0;
    {
        NdpSystem ref(smallCfg(Scheme::SynCron, PersistMode::Eager));
        workloads::ReplicationWorkload w(ref, smallParams());
        ref.run();
        end = ref.elapsed();
        cleanRecords = ref.durability()->appended();
    }
    ASSERT_GT(end, Tick{2});

    SystemConfig cfg = smallCfg(Scheme::SynCron, PersistMode::Eager);
    cfg.crashAtTick = end / 2;
    NdpSystem sys(cfg);
    workloads::ReplicationWorkload w(sys, smallParams());
    sys.run();
    EXPECT_TRUE(sys.crashed());
    EXPECT_LE(sys.elapsed(), cfg.crashAtTick);

    const PersistedImage img = sys.durability()->snapshot();
    EXPECT_GT(img.crashTick, Tick{0});
    EXPECT_LT(img.durable(), cleanRecords)
        << "a mid-run crash must capture a strict WAL prefix";
    EXPECT_EQ(img.appended, img.durable())
        << "eager mode never has a staged tail to lose";
}

TEST(Durability, EpochCrashLosesOnlyTheStagedTail)
{
    // A huge epoch means nothing flushes before the crash: everything
    // appended is still volatile, and the image must say so.
    Tick end = 0;
    {
        NdpSystem ref(smallCfg(Scheme::SynCron, PersistMode::Eager));
        workloads::ReplicationWorkload w(ref, smallParams());
        ref.run();
        end = ref.elapsed();
    }
    SystemConfig cfg =
        smallCfg(Scheme::SynCron, PersistMode::Epoch, 100000);
    cfg.crashAtTick = end / 2;
    NdpSystem sys(cfg);
    workloads::ReplicationWorkload w(sys, smallParams());
    sys.run();
    ASSERT_TRUE(sys.crashed());
    const PersistedImage img = sys.durability()->snapshot();
    EXPECT_GT(img.appended, img.durable())
        << "the staged tail must be reported as lost";
    EXPECT_EQ(img.durable(), 0u);
}

// --------------------------------------------------------------------
// Recovery engine
// --------------------------------------------------------------------

TEST(RecoveryEngine, RejectsShapeMismatch)
{
    const PersistedImage img = sampleImage();
    trace::Trace ref;
    ref.numUnits = 4; // image says 2
    ref.clientCoresPerUnit = 3;
    ref.primitives = img.primitives;
    const RecoveryResult rr = RecoveryEngine(img, ref).recover();
    EXPECT_FALSE(rr.violations.empty());
}

TEST(RecoveryEngine, RejectsNonPrefixRecords)
{
    PersistedImage img = sampleImage();
    trace::Trace ref;
    ref.numUnits = img.numUnits;
    ref.clientCoresPerUnit = img.clientCoresPerUnit;
    ref.primitives = img.primitives;
    ref.records = img.records;
    // The durable stream diverges from the reference: deterministic
    // simulation guarantees a strict prefix, so this is corruption.
    img.records[1].core = 5;
    const RecoveryResult rr = RecoveryEngine(img, ref).recover();
    EXPECT_FALSE(rr.violations.empty());
}

// --------------------------------------------------------------------
// End-to-end crash-injection sweeps
// --------------------------------------------------------------------

TEST(CrashSweep, SynCronEagerRecoversAtEveryBoundary)
{
    const harness::CrashSweepResult r = harness::runCrashSweep(
        smallCfg(Scheme::SynCron, PersistMode::Eager), smallParams());
    EXPECT_GT(r.injections, 0u);
    EXPECT_GT(r.referenceRecords, 0u);
    EXPECT_TRUE(r.passed()) << r.violations.size() << " violations; first: "
                            << r.violations.front();
}

TEST(CrashSweep, CentralEagerRecoversAtEveryBoundary)
{
    const harness::CrashSweepResult r = harness::runCrashSweep(
        smallCfg(Scheme::Central, PersistMode::Eager), smallParams());
    EXPECT_GT(r.injections, 0u);
    EXPECT_TRUE(r.passed()) << r.violations.size() << " violations; first: "
                            << r.violations.front();
}

TEST(CrashSweep, SynCronEpochRecoversWithStagedLoss)
{
    // Epoch mode loses the staged tail at each crash point; recovery
    // must still reach the reference final state from the shorter
    // durable prefix (the rollback cut just moves further back).
    const harness::CrashSweepResult r = harness::runCrashSweep(
        smallCfg(Scheme::SynCron, PersistMode::Epoch, 4), smallParams(),
        2);
    EXPECT_GT(r.injections, 0u);
    EXPECT_TRUE(r.passed()) << r.violations.size() << " violations; first: "
                            << r.violations.front();
}

} // namespace
} // namespace syncron::durability
