/**
 * @file
 * System-level tests: configuration validation, NdpSystem assembly,
 * SyncApi variable management, deadlock detection, energy model, and
 * core memory-kind policies.
 */

#include <gtest/gtest.h>

#include "system/energy.hh"
#include "system/system.hh"

namespace syncron {
namespace {

TEST(SystemConfig, ValidationRejectsBadTopologies)
{
    SystemConfig cfg;
    cfg.numUnits = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg = SystemConfig{};
    cfg.clientCoresPerUnit = cfg.coresPerUnit + 1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg = SystemConfig{};
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.totalClientCores(), 60u);
    EXPECT_EQ(cfg.totalCores(), 64u);
}

TEST(SystemConfig, SchemeNamesAreDistinct)
{
    EXPECT_STREQ(schemeName(Scheme::SynCron), "SynCron");
    EXPECT_STRNE(schemeName(Scheme::Hier), schemeName(Scheme::Central));
}

TEST(NdpSystem, CoresAreDistributedRoundRobinByUnit)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 4, 15));
    EXPECT_EQ(sys.numClientCores(), 60u);
    for (unsigned i = 0; i < 60; ++i) {
        EXPECT_EQ(sys.clientCore(i).unit(), i / 15);
        EXPECT_EQ(sys.clientCore(i).localId(), i % 15);
        EXPECT_EQ(sys.clientCore(i).id(),
                  (i / 15) * 16 + (i % 15)); // 16 cores per unit
    }
}

TEST(NdpSystem, BackendMatchesScheme)
{
    for (Scheme s : {Scheme::Ideal, Scheme::Central, Scheme::Hier,
                     Scheme::SynCron, Scheme::SynCronFlat}) {
        NdpSystem sys(SystemConfig::make(s, 2, 4));
        EXPECT_STREQ(sys.backend().name(), schemeName(s));
        const bool engineBased =
            s == Scheme::SynCron || s == Scheme::Hier;
        EXPECT_EQ(sys.syncronBackend() != nullptr, engineBased);
    }
}

TEST(SyncApi, PrimitivesAreLineAlignedAndHomed)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 4, 4));
    sync::Lock a = sys.api().createLock(2);
    EXPECT_EQ(a.home(), 2u);
    EXPECT_EQ(a.addr % kCacheLineBytes, 0u);

    // destroy + create recycles the line.
    sys.api().destroy(a);
    sync::Lock b = sys.api().createLock(2);
    EXPECT_EQ(b.addr, a.addr);

    // interleaved creation round-robins homes.
    UnitId expect = 0;
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(sys.api().createLockInterleaved().home(), expect);
        expect = (expect + 1) % 4;
    }
}

TEST(SyncApi, LockSetPlacementPolicies)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 4, 4));

    // Empty homes: round-robin across all units.
    sync::LockSet rr = sys.api().createLockSet(8);
    ASSERT_EQ(rr.size(), 8u);
    for (std::size_t i = 0; i < rr.size(); ++i)
        EXPECT_EQ(rr[i].home(), i % 4);

    // Explicit homes are cycled.
    sync::LockSet homed = sys.api().createLockSet(4, {3, 1});
    EXPECT_EQ(homed[0].home(), 3u);
    EXPECT_EQ(homed[1].home(), 1u);
    EXPECT_EQ(homed[2].home(), 3u);
    EXPECT_EQ(homed[3].home(), 1u);

    // By-address: each lock homed with the datum it protects.
    std::vector<Addr> data;
    for (UnitId u : {2u, 0u, 3u})
        data.push_back(sys.machine().addrSpace().allocIn(u, 8, 8));
    sync::LockSet byAddr = sys.api().createLockSetByAddr(data);
    ASSERT_EQ(byAddr.size(), 3u);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(byAddr[i].home(), mem::unitOfAddr(data[i]));

    // destroy(LockSet&) releases every line and empties the set.
    sys.api().destroy(byAddr);
    EXPECT_TRUE(byAddr.empty());
}

sim::Process
neverGranted(core::Core &c, sync::SyncApi &api, sync::Lock lock)
{
    co_await api.acquire(c, lock);
    co_await api.acquire(c, lock); // self-deadlock: never granted
}

TEST(NdpSystem, DeadlockIsDetectedNotHung)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 1, 2));
    sync::Lock lock = sys.api().createLock(0);
    sys.spawn(neverGranted(sys.clientCore(0), sys.api(), lock));
    EXPECT_THROW(sys.run(), std::runtime_error);
}

sim::Process
memKinds(core::Core &c, Addr privAddr, Addr rwAddr, Tick *privT,
         Tick *rwT)
{
    // Warm the cacheable private line, then time a hit vs an uncached
    // shared-RW access.
    co_await c.load(privAddr, 8, core::MemKind::Private);
    const Tick t0 = c.machine().eq().now();
    co_await c.load(privAddr, 8, core::MemKind::Private);
    *privT = c.machine().eq().now() - t0;
    const Tick t1 = c.machine().eq().now();
    co_await c.load(rwAddr, 8, core::MemKind::SharedRW);
    *rwT = c.machine().eq().now() - t1;
}

TEST(Core, SharedRwBypassesTheL1)
{
    NdpSystem sys(SystemConfig::make(Scheme::Ideal, 1, 2));
    Addr privAddr = sys.machine().addrSpace().allocIn(0, 64);
    Addr rwAddr = sys.machine().addrSpace().allocIn(0, 64);
    Tick privT = 0, rwT = 0;
    sys.spawn(memKinds(sys.clientCore(0), privAddr, rwAddr, &privT,
                       &rwT));
    sys.run();
    // Cached hit: 4 core cycles = 1.6 ns. Uncached: full DRAM round
    // trip, at least several ns.
    EXPECT_EQ(privT, 4 * 400u);
    EXPECT_GT(rwT, privT * 3);
    EXPECT_GT(sys.stats().l1Hits, 0u);
}

TEST(Energy, BreakdownTracksConfigCoefficients)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 2);
    SystemStats stats;
    stats.l1Hits = 1000;
    stats.l1Misses = 100;
    stats.xbarBitHops = 1'000'000;
    stats.linkBits = 10'000;
    stats.dramReads = 50;
    stats.dramWrites = 50;

    EnergyBreakdown e = computeEnergy(stats, cfg);
    EXPECT_DOUBLE_EQ(e.cacheJ, (1000 * 23.0 + 100 * 47.0) * 1e-12);
    EXPECT_DOUBLE_EQ(e.networkJ,
                     (1'000'000 * 0.4 + 10'000 * 4.0) * 1e-12);
    EXPECT_DOUBLE_EQ(e.memoryJ, 100 * 64 * 8 * 7.0 * 1e-12);
    EXPECT_DOUBLE_EQ(e.total(), e.cacheJ + e.networkJ + e.memoryJ);

    // DDR4 memory energy per access is higher.
    cfg.dramTech = mem::DramTech::Ddr4;
    EXPECT_GT(computeEnergy(stats, cfg).memoryJ, e.memoryJ);
}

TEST(Opcodes, ClassificationIsConsistent)
{
    using namespace sync;
    EXPECT_TRUE(isAcquireType(OpKind::LockAcquire));
    EXPECT_TRUE(isReleaseType(OpKind::LockRelease));
    EXPECT_TRUE(isAcquireType(OpKind::CondWait));
    EXPECT_TRUE(isReleaseType(OpKind::CondBroadcast));
    EXPECT_TRUE(isGlobalOp(Op::LockAcquireGlobal));
    EXPECT_TRUE(isOverflowOp(Op::SemGrantOverflow));
    EXPECT_FALSE(isOverflowOp(Op::SemGrantGlobal));
    EXPECT_TRUE(isAcquireOp(Op::BarrierWaitOverflow));
    EXPECT_TRUE(isReleaseOp(Op::CondBroadOverflow));
    // Every opcode has a printable, non-"?" name.
    for (int op = 0;
         op <= static_cast<int>(Op::DecreaseIndexingCounter); ++op)
        EXPECT_STRNE(opName(static_cast<Op>(op)), "?");
}

} // namespace
} // namespace syncron
