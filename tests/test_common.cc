/**
 * @file
 * Unit tests for common utilities: bit helpers, RNG determinism, unit
 * conversions, stats aggregation.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/units.hh"

namespace syncron {
namespace {

TEST(Bits, BasicOperations)
{
    EXPECT_TRUE(bitSet(0b1010, 1));
    EXPECT_FALSE(bitSet(0b1010, 0));
    EXPECT_EQ(withBit(0, 5), 32u);
    EXPECT_EQ(withoutBit(0b111, 1), 0b101u);
    EXPECT_EQ(popCount(0xFF), 8u);
    EXPECT_EQ(lowestSetBit(0b1000), 3u);
    EXPECT_EQ(lowestSetBit(1), 0u);
}

TEST(Bits, PowerOfTwoAndLog)
{
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(63));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_EQ(log2Exact(256), 8u);
    EXPECT_EQ(bitsOf(0xABCD, 7, 4), 0xCu);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs = differs || (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        const auto v = rng.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Units, ClockConversions)
{
    EXPECT_EQ(kCoreClock.period(), 400u);  // 2.5 GHz
    EXPECT_EQ(kSpuClock.period(), 1000u);  // 1 GHz
    EXPECT_EQ(kCoreClock.cycles(10), 4000u);
    EXPECT_EQ(nsToTicks(40), 40000u);
    EXPECT_DOUBLE_EQ(ticksToNs(1500), 1.5);
    EXPECT_EQ(kCoreClock.nextEdge(401), 800u);
    EXPECT_EQ(kCoreClock.nextEdge(800), 800u);
}

TEST(Stats, AggregationAndOccupancy)
{
    SystemStats a, b;
    a.l1Hits = 10;
    a.stMaxOccupied = 5;
    a.stOccupancyIntegral = 100;
    a.stOccupancyTime = 50;
    b.l1Hits = 7;
    b.stMaxOccupied = 9;
    b.stOccupancyIntegral = 20;
    b.stOccupancyTime = 10;
    a += b;
    EXPECT_EQ(a.l1Hits, 17u);
    EXPECT_EQ(a.stMaxOccupied, 9u);
    EXPECT_DOUBLE_EQ(a.avgStOccupancy(), 120.0 / 60.0);

    int fields = 0;
    a.forEach([&](const std::string &, double) { ++fields; });
    EXPECT_GT(fields, 20);
}

} // namespace
} // namespace syncron
