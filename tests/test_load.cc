/**
 * @file
 * Tests for the open-loop load subsystem (src/load/) and its
 * supporting pieces: the M/D/1 estimator's closed-form behavior, the
 * log-interpolated latency percentiles, arrival-schedule generation,
 * the OpenLoopWorkload's accounting and determinism (including sharded
 * bit-identity and analyzer cleanliness), curve JSON byte-identity,
 * and the max-sustainable-rate search.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "harness/runner.hh"
#include "load/arrival.hh"
#include "load/openloop.hh"
#include "load/slo.hh"
#include "net/md1.hh"
#include "sync/opcodes.hh"
#include "system/config.hh"
#include "system/system.hh"

using namespace syncron;

// ------------------------------------------------------------------
// Md1Estimator (satellite: closed form, clamp, first arrival)
// ------------------------------------------------------------------

TEST(Md1, FirstArrivalReturnsZeroDelay)
{
    net::Md1Estimator md1(1000);
    EXPECT_EQ(md1.onArrival(123456), 0u);
    EXPECT_EQ(md1.rho(), 0.0);
}

TEST(Md1, EwmaConvergesToClosedFormForDeterministicArrivals)
{
    // Deterministic stream with inter-arrival 2000 ticks against a
    // 1000-tick service: rho = 0.5 exactly. The EWMA sees the same
    // gap every time, so it converges to it and the online estimate
    // must match Md1Estimator::waitingTicks at the implied rho.
    constexpr Tick kService = 1000;
    constexpr Tick kGap = 2000;
    net::Md1Estimator md1(kService);
    Tick t = 0;
    for (int i = 0; i < 2000; ++i)
        md1.onArrival(t += kGap);
    EXPECT_NEAR(md1.rho(), 0.5, 1e-9);
    const double wq = net::Md1Estimator::waitingTicks(0.5, kService);
    // Wq = rho / (2 mu (1 - rho)) = 0.5 / (2 * 1e-3 * 0.5) = 500.
    EXPECT_DOUBLE_EQ(wq, 500.0);
    EXPECT_NEAR(static_cast<double>(md1.currentDelay()), wq, 1.0);
}

TEST(Md1, RhoClampsAtMaxUnderZeroInterArrivalBurst)
{
    constexpr double kMaxRho = 0.95;
    net::Md1Estimator md1(1000, kMaxRho);
    // All arrivals at the same tick: inter-arrival 0 (floored to 1
    // tick inside the EWMA), so lambda explodes and rho must clamp.
    for (int i = 0; i < 200; ++i)
        md1.onArrival(5000);
    EXPECT_DOUBLE_EQ(md1.rho(), kMaxRho);
    // The clamp keeps the delay large but finite.
    EXPECT_EQ(md1.currentDelay(),
              static_cast<Tick>(
                  net::Md1Estimator::waitingTicks(kMaxRho, 1000)));
}

// ------------------------------------------------------------------
// Log-interpolated percentiles
// ------------------------------------------------------------------

TEST(Percentile, EmptyHistogramIsZero)
{
    SyncOpLatency lat;
    EXPECT_EQ(lat.percentileTicks(0.99), 0.0);
}

TEST(Percentile, SingleValueClampsToExactObservation)
{
    SyncOpLatency lat;
    lat.record(700); // bucket covers [512, 1024)
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        // Interpolation inside the bucket is clamped to the exact
        // min/max, which coincide for one sample.
        EXPECT_EQ(lat.percentileTicks(q), 700.0) << "q=" << q;
    }
}

TEST(Percentile, InterpolatesGeometricallyInsideBucket)
{
    // 100 samples spread over bucket [1024, 2048) with min/max pinned
    // to the bucket edges: the q-quantile must land at 1024 * 2^q.
    SyncOpLatency lat;
    lat.record(1024);
    lat.record(2047);
    for (int i = 0; i < 98; ++i)
        lat.record(1500);
    const double p50 = lat.percentileTicks(0.50);
    EXPECT_DOUBLE_EQ(p50, 1024.0 * std::exp2(0.50));
    // Monotone in q, and within the observed range.
    double prev = 0.0;
    for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
        const double v = lat.percentileTicks(q);
        EXPECT_GE(v, prev) << "q=" << q;
        EXPECT_GE(v, 1024.0);
        EXPECT_LE(v, 2047.0);
        prev = v;
    }
}

TEST(Percentile, FindsTheTailBucket)
{
    // 99 fast ops in [16, 32), one slow op in [4096, 8192): p50 sits
    // in the fast bucket, p999 in the slow one.
    SyncOpLatency lat;
    for (int i = 0; i < 99; ++i)
        lat.record(20);
    lat.record(5000);
    EXPECT_LT(lat.percentileTicks(0.50), 32.0);
    EXPECT_GE(lat.percentileTicks(0.999), 4096.0);
    EXPECT_LE(lat.percentileTicks(0.999), 5000.0);
}

TEST(Percentile, SystemStatsHelperMatchesPerKind)
{
    SystemStats stats;
    const unsigned acq =
        static_cast<unsigned>(sync::OpKind::LockAcquire);
    stats.recordSyncLatency(acq, 100);
    stats.recordSyncLatency(acq, 200);
    EXPECT_EQ(stats.latencyPercentile(acq, 0.99),
              stats.syncLatency[acq].percentileTicks(0.99));
    // A kind never recorded reports zero.
    EXPECT_EQ(stats.latencyPercentile(
                  static_cast<unsigned>(sync::OpKind::SemWait), 0.99),
              0.0);
}

// ------------------------------------------------------------------
// LoadSpec parsing
// ------------------------------------------------------------------

TEST(LoadSpec, ParsesFullSpecAndRoundTrips)
{
    load::LoadSpec spec;
    std::string err;
    ASSERT_TRUE(load::LoadSpec::fromString(
        "bursty:rate=2.5,ops=128,window=8,locks=32,hold=50,"
        "policy=drop,seed=9,burst=4,gapx=20",
        spec, err))
        << err;
    EXPECT_EQ(spec.kind, load::ArrivalKind::Bursty);
    EXPECT_DOUBLE_EQ(spec.ratePerUs, 2.5);
    EXPECT_EQ(spec.opsPerCore, 128u);
    EXPECT_EQ(spec.window, 8u);
    EXPECT_EQ(spec.numLocks, 32u);
    EXPECT_EQ(spec.holdTicks, nsToTicks(50));
    EXPECT_EQ(spec.policy, load::OverloadPolicy::Drop);
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_EQ(spec.burstLen, 4u);
    EXPECT_DOUBLE_EQ(spec.burstGapFactor, 20.0);

    // toString is parseable and reproduces the spec.
    load::LoadSpec again;
    ASSERT_TRUE(
        load::LoadSpec::fromString(spec.toString(), again, err))
        << err;
    EXPECT_EQ(again.toString(), spec.toString());
}

TEST(LoadSpec, DefaultsWithBareKind)
{
    load::LoadSpec spec;
    std::string err;
    ASSERT_TRUE(load::LoadSpec::fromString("poisson", spec, err));
    EXPECT_EQ(spec.kind, load::ArrivalKind::Poisson);
    EXPECT_EQ(spec.policy, load::OverloadPolicy::Queue);
}

TEST(LoadSpec, RejectsMalformedSpecs)
{
    load::LoadSpec spec;
    std::string err;
    for (const char *bad :
         {"", "gaussian", "poisson:rate=0", "poisson:rate=nope",
          "poisson:rate", "poisson:=3", "poisson:window=0",
          "poisson:window=65", "poisson:ops=0", "poisson:locks=0",
          "poisson:policy=maybe", "poisson:seed=0",
          "poisson:amp=1.5", "poisson:frobnicate=1",
          "poisson:hold=-5"}) {
        err.clear();
        EXPECT_FALSE(load::LoadSpec::fromString(bad, spec, err))
            << "accepted '" << bad << "'";
        EXPECT_FALSE(err.empty()) << "no error for '" << bad << "'";
    }
}

// ------------------------------------------------------------------
// Arrival schedules
// ------------------------------------------------------------------

namespace {

load::LoadSpec
smallSpec(load::ArrivalKind kind = load::ArrivalKind::Poisson)
{
    load::LoadSpec spec;
    spec.kind = kind;
    spec.ratePerUs = 2.0;
    spec.opsPerCore = 40;
    spec.window = 2;
    spec.numLocks = 8;
    spec.seed = 42;
    return spec;
}

} // namespace

TEST(ArrivalSchedule, DeterministicAndWellFormed)
{
    const load::LoadSpec spec = smallSpec();
    const load::ArrivalSchedule a = load::buildArrivalSchedule(spec, 6);
    const load::ArrivalSchedule b = load::buildArrivalSchedule(spec, 6);
    ASSERT_EQ(a.perCore.size(), 6u);
    EXPECT_EQ(a.totalArrivals(), 6u * spec.opsPerCore);
    for (unsigned c = 0; c < 6; ++c) {
        ASSERT_EQ(a.perCore[c].size(), spec.opsPerCore);
        EXPECT_EQ(a.perCore[c], b.perCore[c]) << "core " << c;
        Tick prev = 0;
        for (const load::Arrival &arr : a.perCore[c]) {
            EXPECT_GT(arr.tick, prev); // strictly increasing (gap >= 1)
            EXPECT_LT(arr.lockIdx, spec.numLocks);
            prev = arr.tick;
        }
    }
    // Different cores draw different streams.
    EXPECT_NE(a.perCore[0], a.perCore[1]);
    EXPECT_GT(a.horizon(), 0u);
}

TEST(ArrivalSchedule, PerCoreStreamsIndependentOfCoreCount)
{
    // Core i's schedule must not depend on how many cores exist —
    // the property that makes sharded and unsharded runs see the same
    // tables.
    const load::LoadSpec spec = smallSpec();
    const load::ArrivalSchedule few = load::buildArrivalSchedule(spec, 2);
    const load::ArrivalSchedule many =
        load::buildArrivalSchedule(spec, 8);
    EXPECT_EQ(few.perCore[0], many.perCore[0]);
    EXPECT_EQ(few.perCore[1], many.perCore[1]);
}

TEST(ArrivalSchedule, SeedAndKindChangeTheSchedule)
{
    load::LoadSpec spec = smallSpec();
    const load::ArrivalSchedule base =
        load::buildArrivalSchedule(spec, 2);
    spec.seed = 43;
    EXPECT_NE(load::buildArrivalSchedule(spec, 2).perCore[0],
              base.perCore[0]);
    spec.seed = 42;
    spec.kind = load::ArrivalKind::Bursty;
    EXPECT_NE(load::buildArrivalSchedule(spec, 2).perCore[0],
              base.perCore[0]);
}

TEST(ArrivalSchedule, FixedKindHitsTheRateExactly)
{
    load::LoadSpec spec = smallSpec(load::ArrivalKind::Fixed);
    spec.ratePerUs = 4.0; // gap = 250000 ticks
    const load::ArrivalSchedule sched =
        load::buildArrivalSchedule(spec, 1);
    const Tick gap = static_cast<Tick>(spec.meanGapTicks());
    for (unsigned i = 0; i < spec.opsPerCore; ++i)
        EXPECT_EQ(sched.perCore[0][i].tick, gap * (i + 1));
}

TEST(ArrivalSchedule, PoissonMeanGapNearNominal)
{
    load::LoadSpec spec = smallSpec();
    spec.opsPerCore = 4000;
    spec.ratePerUs = 1.0; // mean gap 1e6 ticks
    const load::ArrivalSchedule sched =
        load::buildArrivalSchedule(spec, 1);
    const double lastTick =
        static_cast<double>(sched.perCore[0].back().tick);
    const double meanGap =
        lastTick / static_cast<double>(spec.opsPerCore);
    // 4000 exponential draws: the sample mean is within a few percent
    // of the nominal gap with overwhelming probability (seeded, so
    // this is deterministic anyway).
    EXPECT_NEAR(meanGap, spec.meanGapTicks(),
                0.1 * spec.meanGapTicks());
}

// ------------------------------------------------------------------
// Open-loop runs
// ------------------------------------------------------------------

namespace {

// 4 units so --sim-shards=4 is not clamped away (shards <= numUnits).
SystemConfig
loadConfig(Scheme scheme = Scheme::SynCron, unsigned shards = 1)
{
    SystemConfig cfg = SystemConfig::make(scheme, 4, 2);
    cfg.simShards = shards;
    return cfg;
}

std::vector<double>
statsVector(const SystemStats &stats)
{
    std::vector<double> v;
    stats.forEach(
        [&](const std::string &, double value) { v.push_back(value); });
    return v;
}

} // namespace

TEST(OpenLoop, AccountingAddsUpUnderQueuePolicy)
{
    const load::LoadSpec spec = smallSpec();
    const harness::RunOutput out =
        harness::runOpenLoop(loadConfig(), spec);
    EXPECT_EQ(out.offeredOps, 8u * spec.opsPerCore);
    // Queue policy issues everything eventually.
    EXPECT_EQ(out.issuedOps, out.offeredOps);
    EXPECT_EQ(out.droppedOps, 0u);
    EXPECT_EQ(out.ops, out.issuedOps);
    // Every issued arrival completed acquire and release.
    const unsigned acq =
        static_cast<unsigned>(sync::OpKind::LockAcquire);
    EXPECT_EQ(out.stats.syncLatency[acq].count, out.issuedOps);
    EXPECT_GT(out.time, 0u);
}

TEST(OpenLoop, DropPolicyShedsUnderOverload)
{
    // Saturating rate with a tiny window: drops must appear, and
    // issued + dropped must cover every offered arrival.
    load::LoadSpec spec = smallSpec();
    spec.ratePerUs = 100.0;
    spec.window = 1;
    spec.policy = load::OverloadPolicy::Drop;
    const harness::RunOutput out =
        harness::runOpenLoop(loadConfig(), spec);
    EXPECT_EQ(out.issuedOps + out.droppedOps, out.offeredOps);
    EXPECT_GT(out.droppedOps, 0u);
    EXPECT_EQ(out.queuedOps, 0u);
}

TEST(OpenLoop, QueuePolicyAccountsLateness)
{
    load::LoadSpec spec = smallSpec();
    spec.ratePerUs = 100.0;
    spec.window = 1;
    const harness::RunOutput out =
        harness::runOpenLoop(loadConfig(), spec);
    EXPECT_GT(out.queuedOps, 0u);
    EXPECT_GT(out.queueDelayTicks, 0u);
    EXPECT_EQ(out.droppedOps, 0u);
}

TEST(OpenLoop, RunsAreDeterministic)
{
    const load::LoadSpec spec = smallSpec();
    const harness::RunOutput a =
        harness::runOpenLoop(loadConfig(), spec);
    const harness::RunOutput b =
        harness::runOpenLoop(loadConfig(), spec);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.issuedOps, b.issuedOps);
    EXPECT_EQ(statsVector(a.stats), statsVector(b.stats));
}

TEST(OpenLoop, BitIdenticalAcrossSimShards)
{
    // The PR 8 contract extended to the open-loop engine: 1, 2, and 4
    // host shards must reproduce the run exactly.
    load::LoadSpec spec = smallSpec();
    spec.ratePerUs = 8.0; // enough pressure to exercise the window
    const harness::RunOutput ref =
        harness::runOpenLoop(loadConfig(Scheme::SynCron, 1), spec);
    for (unsigned shards : {2u, 4u}) {
        const harness::RunOutput out = harness::runOpenLoop(
            loadConfig(Scheme::SynCron, shards), spec);
        EXPECT_EQ(out.time, ref.time) << shards << " shards";
        EXPECT_EQ(out.issuedOps, ref.issuedOps) << shards << " shards";
        EXPECT_EQ(out.queuedOps, ref.queuedOps) << shards << " shards";
        EXPECT_EQ(statsVector(out.stats), statsVector(ref.stats))
            << shards << " shards";
    }
}

TEST(OpenLoop, AnalyzesCleanOnEveryBackend)
{
    // The PR 6 invariant: the workload surface must produce zero
    // analysis findings. analyzeFatal run — a finding aborts.
    for (Scheme scheme : {Scheme::SynCron, Scheme::Central,
                          Scheme::Hier, Scheme::SynCronFlat}) {
        SystemConfig cfg = loadConfig(scheme);
        cfg.analyze = true;
        cfg.analyzeFatal = true;
        const harness::RunOutput out =
            harness::runOpenLoop(cfg, smallSpec());
        EXPECT_GT(out.issuedOps, 0u) << schemeName(scheme);
    }
}

TEST(OpenLoop, SameCoreSameLockArrivalsSerialize)
{
    // One lock, window 4: every in-flight op of a core targets the
    // same lock, so the per-core serialization path is exercised hard;
    // the run must complete with full accounting (a lost waitlist bit
    // would deadlock, which system.run() turns into a fatal).
    load::LoadSpec spec = smallSpec();
    spec.numLocks = 1;
    spec.window = 4;
    spec.ratePerUs = 50.0;
    const harness::RunOutput out =
        harness::runOpenLoop(loadConfig(), spec);
    EXPECT_EQ(out.issuedOps, out.offeredOps);
}

// ------------------------------------------------------------------
// SLO layer
// ------------------------------------------------------------------

TEST(Slo, CurveJsonByteIdenticalAcrossRuns)
{
    const load::LoadSpec spec = smallSpec();
    auto measure = [&] {
        const harness::RunOutput out =
            harness::runOpenLoop(loadConfig(), spec);
        load::SloCurve curve;
        curve.backend = "SynCron";
        curve.points.push_back(load::makeSloPoint(
            spec.ratePerUs, out.time, out.offeredOps,
            load::LoadCounters{out.issuedOps, out.droppedOps,
                               out.queuedOps, out.queueDelayTicks},
            out.stats));
        return load::curveToJson(curve);
    };
    const std::string a = measure();
    const std::string b = measure();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b); // byte-identical
    EXPECT_NE(a.find("\"p99Ns\""), std::string::npos);
}

TEST(Slo, SearchBisectsSyntheticMonotoneProbe)
{
    // p99(rate) = 100 * rate: the SLO p99 <= 1000 is met exactly up to
    // rate 10. The probe is synthetic, so the search logic is tested
    // in isolation (and cheaply).
    unsigned calls = 0;
    auto probe = [&](double rate) {
        ++calls;
        load::SloPoint p;
        p.ratePerUs = rate;
        p.p99Ns = 100.0 * rate;
        return p;
    };
    const load::SloSearchResult res =
        load::findMaxSustainableRate(probe, 1.0, 100.0, 1000.0, 12);
    EXPECT_FALSE(res.loFailed);
    EXPECT_FALSE(res.hiPassed);
    EXPECT_EQ(res.probes, calls);
    EXPECT_NEAR(res.maxRatePerUs, 10.0, 0.5);
    EXPECT_LE(res.p99NsAtMax, 1000.0);
}

TEST(Slo, SearchReportsDegenerateEndpoints)
{
    auto failing = [](double rate) {
        load::SloPoint p;
        p.p99Ns = 1e9;
        p.ratePerUs = rate;
        return p;
    };
    const load::SloSearchResult lo =
        load::findMaxSustainableRate(failing, 1.0, 10.0, 100.0);
    EXPECT_TRUE(lo.loFailed);
    EXPECT_EQ(lo.maxRatePerUs, 0.0);

    auto passing = [](double rate) {
        load::SloPoint p;
        p.p99Ns = 1.0;
        p.ratePerUs = rate;
        return p;
    };
    const load::SloSearchResult hi =
        load::findMaxSustainableRate(passing, 1.0, 10.0, 100.0);
    EXPECT_TRUE(hi.hiPassed);
    EXPECT_DOUBLE_EQ(hi.maxRatePerUs, 10.0);
}

TEST(Slo, DroppedArrivalsViolateTheSlo)
{
    auto probe = [](double rate) {
        load::SloPoint p;
        p.ratePerUs = rate;
        p.p99Ns = 1.0;            // latency always fine...
        p.dropped = rate > 2.0 ? 1 : 0; // ...but sheds beyond rate 2
        return p;
    };
    const load::SloSearchResult res =
        load::findMaxSustainableRate(probe, 1.0, 16.0, 100.0, 10);
    EXPECT_FALSE(res.loFailed);
    EXPECT_FALSE(res.hiPassed);
    EXPECT_NEAR(res.maxRatePerUs, 2.0, 0.2);
}
