/**
 * @file
 * Cross-backend integration tests: every synchronization scheme must
 * enforce identical semantics (mutual exclusion, barrier ordering,
 * semaphore counting, condition signaling) — they may only differ in
 * timing. These are the paper's "comparison points" run on tiny
 * workloads with strong invariant checks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/energy.hh"
#include "system/system.hh"

namespace syncron {
namespace {

using core::Core;
using sync::SyncApi;

constexpr Scheme kAllSchemes[] = {
    Scheme::Ideal,   Scheme::Central,
    Scheme::Hier,    Scheme::SynCron,
    Scheme::SynCronFlat,
};

class BackendTest : public ::testing::TestWithParam<Scheme>
{
};

// ----------------------------------------------------------------------
// Lock: mutual exclusion and counting
// ----------------------------------------------------------------------

struct LockShared
{
    int counter = 0;
    bool inCritical = false;
    bool violated = false;
};

sim::Process
lockWorker(Core &c, SyncApi &api, sync::Lock lock, int iters,
           LockShared &shared)
{
    for (int i = 0; i < iters; ++i) {
        co_await api.acquire(c, lock);
        if (shared.inCritical)
            shared.violated = true;
        shared.inCritical = true;
        co_await c.compute(10);
        ++shared.counter;
        shared.inCritical = false;
        co_await api.release(c, lock);
        co_await c.compute(25);
    }
}

TEST_P(BackendTest, LockMutualExclusionAndCount)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 4, 4);
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(1);
    LockShared shared;

    const int iters = 8;
    for (unsigned i = 0; i < sys.numClientCores(); ++i) {
        sys.spawn(lockWorker(sys.clientCore(i), sys.api(), lock, iters,
                             shared));
    }
    sys.run();

    EXPECT_FALSE(shared.violated) << "mutual exclusion violated";
    EXPECT_EQ(shared.counter,
              static_cast<int>(sys.numClientCores()) * iters);
    EXPECT_GT(sys.elapsed(), 0u);
}

// ----------------------------------------------------------------------
// Barrier: no core passes phase p before all reached p
// ----------------------------------------------------------------------

struct BarrierShared
{
    std::vector<int> phase;
    bool violated = false;
};

sim::Process
barrierWorker(Core &c, SyncApi &api, sync::Barrier bar, int phases,
              unsigned idx, BarrierShared &shared)
{
    for (int p = 0; p < phases; ++p) {
        co_await c.compute(10 + c.rng().below(200));
        shared.phase[idx] = p;
        co_await api.wait(c, bar);
        for (int other : shared.phase) {
            if (other < p)
                shared.violated = true;
        }
    }
}

TEST_P(BackendTest, BarrierFullParticipation)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 4, 4);
    NdpSystem sys(cfg);
    sync::Barrier bar =
        sys.api().createBarrier(2, sys.numClientCores());
    BarrierShared shared;
    shared.phase.assign(sys.numClientCores(), -1);

    for (unsigned i = 0; i < sys.numClientCores(); ++i) {
        sys.spawn(barrierWorker(sys.clientCore(i), sys.api(), bar, 5, i,
                                shared));
    }
    sys.run();
    EXPECT_FALSE(shared.violated) << "barrier ordering violated";
}

TEST_P(BackendTest, BarrierPartialParticipation)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 4, 4);
    NdpSystem sys(cfg);
    BarrierShared shared;

    // Only 6 of the 16 client cores participate (one-level protocol).
    const unsigned participants = 6;
    sync::Barrier bar = sys.api().createBarrier(0, participants);
    shared.phase.assign(participants, -1);
    for (unsigned i = 0; i < participants; ++i) {
        sys.spawn(barrierWorker(sys.clientCore(i), sys.api(), bar, 4, i,
                                shared));
    }
    sys.run();
    EXPECT_FALSE(shared.violated);
}

TEST_P(BackendTest, BarrierWithinUnit)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 4, 4);
    NdpSystem sys(cfg);
    BarrierShared shared;

    // All four client cores of unit 0 (client indices 0..3).
    const unsigned participants = cfg.clientCoresPerUnit;
    sync::Barrier bar = sys.api().createBarrier(
        0, participants, sync::BarrierScope::WithinUnit);
    shared.phase.assign(participants, -1);
    for (unsigned i = 0; i < participants; ++i) {
        Core &c = sys.clientCore(i);
        ASSERT_EQ(c.unit(), 0u);
        sys.spawn([](Core &core, SyncApi &api, sync::Barrier var,
                     int phases, unsigned idx,
                     BarrierShared &sh) -> sim::Process {
            for (int p = 0; p < phases; ++p) {
                co_await core.compute(10 + core.rng().below(100));
                sh.phase[idx] = p;
                co_await api.wait(core, var);
                for (int other : sh.phase) {
                    if (other < p)
                        sh.violated = true;
                }
            }
        }(c, sys.api(), bar, 4, i, shared));
    }
    sys.run();
    EXPECT_FALSE(shared.violated);
}

// ----------------------------------------------------------------------
// Semaphore: producer/consumer resource counting
// ----------------------------------------------------------------------

struct SemShared
{
    int resources = 0; ///< logical resource count (checked at grants)
    int consumed = 0;
    bool negative = false;
};

sim::Process
semConsumer(Core &c, SyncApi &api, sync::Semaphore sem, int iters,
            SemShared &shared)
{
    for (int i = 0; i < iters; ++i) {
        co_await api.wait(c, sem);
        --shared.resources;
        if (shared.resources < 0)
            shared.negative = true;
        ++shared.consumed;
        co_await c.compute(15);
    }
}

sim::Process
semProducer(Core &c, SyncApi &api, sync::Semaphore sem, int iters,
            SemShared &shared)
{
    for (int i = 0; i < iters; ++i) {
        co_await c.compute(30);
        ++shared.resources;
        co_await api.post(c, sem);
    }
}

TEST_P(BackendTest, SemaphoreProducerConsumer)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 4, 4);
    NdpSystem sys(cfg);
    sync::Semaphore sem = sys.api().createSemaphore(3, 0);
    SemShared shared;

    const int iters = 6;
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n / 2; ++i)
        sys.spawn(semConsumer(sys.clientCore(i), sys.api(), sem, iters,
                              shared));
    for (unsigned i = n / 2; i < n; ++i)
        sys.spawn(semProducer(sys.clientCore(i), sys.api(), sem, iters,
                              shared));
    sys.run();

    EXPECT_EQ(shared.consumed, static_cast<int>(n / 2) * iters);
    // Note: shared.resources is decremented at grant time, which may
    // trail the post that funded it; negativity is checked instead via
    // the semaphore's own accounting below.
    EXPECT_EQ(shared.resources, 0);
}

// ----------------------------------------------------------------------
// Condition variable: bounded counter handoff
// ----------------------------------------------------------------------

struct CondShared
{
    int items = 0;
    int consumed = 0;
};

sim::Process
condConsumer(Core &c, SyncApi &api, sync::CondVar cond,
             sync::Lock lock, int want,
             CondShared &shared)
{
    int got = 0;
    while (got < want) {
        co_await api.acquire(c, lock);
        while (shared.items == 0)
            co_await api.wait(c, cond, lock);
        --shared.items;
        ++shared.consumed;
        ++got;
        co_await api.release(c, lock);
    }
}

sim::Process
condProducer(Core &c, SyncApi &api, sync::CondVar cond,
             sync::Lock lock, int iters,
             CondShared &shared)
{
    for (int i = 0; i < iters; ++i) {
        co_await c.compute(40);
        co_await api.acquire(c, lock);
        ++shared.items;
        co_await api.signal(c, cond);
        co_await api.release(c, lock);
    }
}

TEST_P(BackendTest, ConditionVariableSignal)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 2, 4);
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    sync::CondVar cond = sys.api().createCondVar(1);
    CondShared shared;

    const int iters = 5;
    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n / 2; ++i)
        sys.spawn(condConsumer(sys.clientCore(i), sys.api(), cond, lock,
                               iters, shared));
    for (unsigned i = n / 2; i < n; ++i)
        sys.spawn(condProducer(sys.clientCore(i), sys.api(), cond, lock,
                               iters, shared));
    sys.run();

    EXPECT_EQ(shared.consumed, static_cast<int>(n / 2) * iters);
    EXPECT_EQ(shared.items, 0);
}

sim::Process
condBroadcastWaiter(Core &c, SyncApi &api, sync::CondVar cond,
                    sync::Lock lock,
                    bool &go, int &woken)
{
    co_await api.acquire(c, lock);
    while (!go)
        co_await api.wait(c, cond, lock);
    ++woken;
    co_await api.release(c, lock);
}

sim::Process
condBroadcaster(Core &c, SyncApi &api, sync::CondVar cond,
                sync::Lock lock,
                bool &go)
{
    co_await c.compute(5000); // let the waiters queue up
    co_await api.acquire(c, lock);
    go = true;
    co_await api.broadcast(c, cond);
    co_await api.release(c, lock);
}

TEST_P(BackendTest, ConditionVariableBroadcast)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 2, 4);
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    sync::CondVar cond = sys.api().createCondVar(1);
    bool go = false;
    int woken = 0;

    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i + 1 < n; ++i)
        sys.spawn(condBroadcastWaiter(sys.clientCore(i), sys.api(), cond,
                                      lock, go, woken));
    sys.spawn(condBroadcaster(sys.clientCore(n - 1), sys.api(), cond,
                              lock, go));
    sys.run();
    EXPECT_EQ(woken, static_cast<int>(n - 1));
}

// ----------------------------------------------------------------------
// Timing sanity: Ideal <= SynCron <= Hier <= Central on a contended lock
// ----------------------------------------------------------------------

Tick
contendedLockTime(Scheme scheme)
{
    SystemConfig cfg = SystemConfig::make(scheme, 4, 15);
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    LockShared shared;
    for (unsigned i = 0; i < sys.numClientCores(); ++i) {
        sys.spawn(lockWorker(sys.clientCore(i), sys.api(), lock, 10,
                             shared));
    }
    sys.run();
    EXPECT_FALSE(shared.violated);
    return sys.elapsed();
}

TEST(BackendOrdering, ContendedLockLatencyOrdering)
{
    const Tick ideal = contendedLockTime(Scheme::Ideal);
    const Tick syncron = contendedLockTime(Scheme::SynCron);
    const Tick hier = contendedLockTime(Scheme::Hier);
    const Tick central = contendedLockTime(Scheme::Central);

    EXPECT_LT(ideal, syncron);
    EXPECT_LT(syncron, hier);
    EXPECT_LT(hier, central);
}

TEST(BackendOrdering, EnergyIsNonZeroAndOrdered)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 15);
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    LockShared shared;
    for (unsigned i = 0; i < sys.numClientCores(); ++i) {
        sys.spawn(lockWorker(sys.clientCore(i), sys.api(), lock, 5,
                             shared));
    }
    sys.run();
    EnergyBreakdown e = computeEnergy(sys.stats(), cfg);
    EXPECT_GT(e.networkJ, 0.0);
    EXPECT_GT(e.total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, BackendTest, ::testing::ValuesIn(kAllSchemes),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string n = schemeName(info.param);
        for (char &ch : n) {
            if (ch == '-' || ch == '_')
                ch = 'x';
        }
        return n;
    });

} // namespace
} // namespace syncron
