/**
 * @file
 * Workload correctness tests: the simulated kernels must produce the
 * same results as host-side reference implementations on every
 * synchronization scheme (schemes may only change timing, never
 * results), and the data structures must preserve their invariants.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "system/system.hh"
#include "workloads/datastructures/structures.hh"
#include "workloads/graph/kernels.hh"
#include "workloads/timeseries/scrimp.hh"

namespace syncron {
namespace {

using workloads::Graph;
using workloads::GraphApp;

SystemConfig
smallCfg(Scheme scheme)
{
    return SystemConfig::make(scheme, 4, 4);
}

class WorkloadSchemeTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(WorkloadSchemeTest, BfsMatchesHostReference)
{
    NdpSystem sys(smallCfg(GetParam()));
    Graph g = workloads::generatePowerLaw(300, 6, 42);
    auto part = workloads::rangePartition(g, 4);
    Graph gCopy = g;
    workloads::PlacedGraph placed(sys, std::move(g), std::move(part));

    auto result = workloads::runGraphApp(sys, placed, GraphApp::Bfs);

    std::uint32_t src = 0;
    for (std::uint32_t v = 0; v < gCopy.numVertices; ++v) {
        if (gCopy.degree(v) > gCopy.degree(src))
            src = v;
    }
    EXPECT_EQ(result.values, workloads::hostBfs(gCopy, src));
    EXPECT_GT(result.updates, 0u);
}

TEST_P(WorkloadSchemeTest, CcMatchesHostReference)
{
    NdpSystem sys(smallCfg(GetParam()));
    Graph g = workloads::generateUniform(240, 4, 7);
    auto part = workloads::rangePartition(g, 4);
    Graph gCopy = g;
    workloads::PlacedGraph placed(sys, std::move(g), std::move(part));

    auto result = workloads::runGraphApp(sys, placed, GraphApp::Cc);
    EXPECT_EQ(result.values, workloads::hostCc(gCopy));
}

TEST_P(WorkloadSchemeTest, SsspMatchesHostReference)
{
    NdpSystem sys(smallCfg(GetParam()));
    Graph g = workloads::generatePowerLaw(260, 5, 13);
    auto part = workloads::rangePartition(g, 4);
    Graph gCopy = g;
    workloads::PlacedGraph placed(sys, std::move(g), std::move(part));

    auto result = workloads::runGraphApp(sys, placed, GraphApp::Sssp);

    std::uint32_t src = 0;
    for (std::uint32_t v = 0; v < gCopy.numVertices; ++v) {
        if (gCopy.degree(v) > gCopy.degree(src))
            src = v;
    }
    EXPECT_EQ(result.values, workloads::hostSssp(gCopy, src));
}

TEST_P(WorkloadSchemeTest, TfMatchesHostReference)
{
    NdpSystem sys(smallCfg(GetParam()));
    Graph g = workloads::generatePowerLaw(280, 6, 99);
    auto part = workloads::rangePartition(g, 4);
    Graph gCopy = g;
    workloads::PlacedGraph placed(sys, std::move(g), std::move(part));

    auto result = workloads::runGraphApp(sys, placed, GraphApp::Tf);
    EXPECT_EQ(result.values, workloads::hostTf(gCopy));
}

TEST_P(WorkloadSchemeTest, ScrimpMatchesHostReference)
{
    NdpSystem sys(smallCfg(GetParam()));
    workloads::ScrimpWorkload ts(sys, "air", 0.4);
    ts.run();
    const auto ref = ts.hostProfile();
    ASSERT_EQ(ts.profile().size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_DOUBLE_EQ(ts.profile()[i], ref[i]) << "at " << i;
    EXPECT_GT(ts.updates(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, WorkloadSchemeTest,
    ::testing::Values(Scheme::Ideal, Scheme::Central, Scheme::Hier,
                      Scheme::SynCron, Scheme::SynCronFlat),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string n = schemeName(info.param);
        for (char &ch : n) {
            if (ch == '-' || ch == '_')
                ch = 'x';
        }
        return n;
    });

// ----------------------------------------------------------------------
// Data-structure invariants (run on SynCron; semantics already
// cross-checked per scheme by test_backends)
// ----------------------------------------------------------------------

TEST(DataStructures, StackGrowsByPushCount)
{
    NdpSystem sys(smallCfg(Scheme::SynCron));
    workloads::SimStack stack(sys, 100);
    const unsigned ops = 7;
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(stack.worker(sys.clientCore(i), ops));
    sys.run();
    EXPECT_EQ(stack.size(), 100 + sys.numClientCores() * ops);
}

TEST(DataStructures, QueuePopsAreBounded)
{
    NdpSystem sys(smallCfg(Scheme::SynCron));
    workloads::SimQueue queue(sys, 64);
    const unsigned ops = 10;
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(queue.worker(sys.clientCore(i), ops));
    sys.run();
    // 16 cores x 10 pops on 64 elements: exactly 96 empty pops.
    EXPECT_EQ(queue.emptyPops(),
              sys.numClientCores() * ops - 64u);
}

TEST(DataStructures, PriorityQueuePopsInOrder)
{
    NdpSystem sys(smallCfg(Scheme::SynCron));
    workloads::SimPriorityQueue pq(sys, 500);
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(pq.worker(sys.clientCore(i), 8));
    sys.run();
    EXPECT_TRUE(pq.popsWereOrdered());
    EXPECT_EQ(pq.size(), 500 - sys.numClientCores() * 8);
}

TEST(DataStructures, SkipListShrinksOnDeletions)
{
    NdpSystem sys(smallCfg(Scheme::SynCron));
    workloads::SimSkipList sl(sys, 400);
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(sl.worker(sys.clientCore(i), 5));
    sys.run();
    // Concurrent deleters may collide on a victim (the optimistic retry
    // then backs off), so at most cores*ops are removed.
    EXPECT_LT(sl.size(), 400u);
    EXPECT_GE(sl.size(), 400u - sys.numClientCores() * 5);
}

TEST(DataStructures, HashTableLookupsComplete)
{
    NdpSystem sys(smallCfg(Scheme::SynCron));
    workloads::SimHashTable ht(sys, 128);
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(ht.worker(sys.clientCore(i), 12));
    sys.run();
    EXPECT_GT(ht.hits(), 0u);
}

TEST(DataStructures, LinkedListAndBstsComplete)
{
    NdpSystem sys(smallCfg(Scheme::SynCron));
    workloads::SimLinkedList ll(sys, 64);
    workloads::SimBstFg bst(sys, 256);
    for (unsigned i = 0; i < sys.numClientCores() / 2; ++i)
        sys.spawn(ll.worker(sys.clientCore(i), 3));
    for (unsigned i = sys.numClientCores() / 2;
         i < sys.numClientCores(); ++i)
        sys.spawn(bst.worker(sys.clientCore(i), 5));
    sys.run();
    EXPECT_GT(sys.stats().syncOps, 0u);
}

TEST(DataStructures, BstDrachslerDeletes)
{
    NdpSystem sys(smallCfg(Scheme::SynCron));
    workloads::SimBstDrachsler bst(sys, 300);
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(bst.worker(sys.clientCore(i), 4));
    sys.run();
    EXPECT_LT(bst.size(), 300u);
}

// ----------------------------------------------------------------------
// Graph substrate properties
// ----------------------------------------------------------------------

TEST(GraphSubstrate, GeneratorsProduceConnectedSizedGraphs)
{
    Graph pl = workloads::generatePowerLaw(500, 8, 1);
    EXPECT_EQ(pl.numVertices, 500u);
    EXPECT_GT(pl.numEdges(), 500u);
    auto cc = workloads::hostCc(pl);
    for (std::int64_t label : cc)
        EXPECT_EQ(label, cc[0]); // preferential attachment: connected

    Graph uni = workloads::generateUniform(400, 10, 2);
    auto cc2 = workloads::hostCc(uni);
    for (std::int64_t label : cc2)
        EXPECT_EQ(label, cc2[0]); // ring backbone: connected
}

TEST(GraphSubstrate, GreedyPartitionCutsFewerEdgesThanRange)
{
    Graph g = workloads::generatePowerLaw(1200, 8, 3);
    const auto range = workloads::rangePartition(g, 4);
    const auto greedy = workloads::greedyPartition(g, 4);
    const std::uint64_t rangeCut = workloads::crossingEdges(g, range);
    const std::uint64_t greedyCut = workloads::crossingEdges(g, greedy);
    EXPECT_LT(greedyCut, rangeCut)
        << "the METIS stand-in must reduce crossing edges";
}

TEST(GraphSubstrate, ProxyInputsHaveDistinctScales)
{
    Graph wk = workloads::makeProxyInput("wk", 0.2);
    Graph co = workloads::makeProxyInput("co", 0.2);
    EXPECT_GT(wk.numVertices, 64u);
    // co is the denser input.
    const double wkDeg =
        static_cast<double>(wk.numEdges()) / wk.numVertices;
    const double coDeg =
        static_cast<double>(co.numEdges()) / co.numVertices;
    EXPECT_GT(coDeg, wkDeg);
}

} // namespace
} // namespace syncron
