/**
 * @file
 * Unit + property tests for the flat semantic state machine — the
 * reference semantics all backends must agree with.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"
#include "sync/flat_state.hh"

namespace syncron::sync {
namespace {

constexpr Addr kVarA = 0x100;
constexpr Addr kVarB = 0x200;
constexpr Addr kVarC = 0x300;
constexpr Addr kLockVar = 0x400;
constexpr Addr kCondVar = 0x500;

class FlatStateTest : public ::testing::Test
{
  protected:
    sim::EventQueue eq;
    FlatSyncState st;
    std::vector<std::unique_ptr<sim::Gate>> gates;

    sim::Gate *
    gate()
    {
        gates.push_back(std::make_unique<sim::Gate>(eq));
        return gates.back().get();
    }
};

TEST_F(FlatStateTest, LockGrantsInFifoOrder)
{
    auto g1 = st.apply(OpKind::LockAcquire, 1, kVarA, 0, gate());
    ASSERT_EQ(g1.size(), 1u);
    EXPECT_EQ(g1[0].core, 1u);

    EXPECT_TRUE(st.apply(OpKind::LockAcquire, 2, kVarA, 0, gate()).empty());
    EXPECT_TRUE(st.apply(OpKind::LockAcquire, 3, kVarA, 0, gate()).empty());

    auto g2 = st.apply(OpKind::LockRelease, 1, kVarA, 0, nullptr);
    ASSERT_EQ(g2.size(), 1u);
    EXPECT_EQ(g2[0].core, 2u);
    auto g3 = st.apply(OpKind::LockRelease, 2, kVarA, 0, nullptr);
    ASSERT_EQ(g3.size(), 1u);
    EXPECT_EQ(g3[0].core, 3u);
    st.apply(OpKind::LockRelease, 3, kVarA, 0, nullptr);
    EXPECT_TRUE(st.idle(kVarA));
}

TEST_F(FlatStateTest, ReleaseByNonOwnerPanics)
{
    st.apply(OpKind::LockAcquire, 1, kVarA, 0, gate());
    EXPECT_THROW(st.apply(OpKind::LockRelease, 2, kVarA, 0, nullptr),
                 std::logic_error);
}

TEST_F(FlatStateTest, BarrierReleasesExactlyAtCount)
{
    for (CoreId c = 0; c < 4; ++c) {
        auto g = st.apply(OpKind::BarrierWaitAcrossUnits, c, kVarB, 5,
                          gate());
        EXPECT_TRUE(g.empty());
    }
    auto g = st.apply(OpKind::BarrierWaitAcrossUnits, 4, kVarB, 5, gate());
    EXPECT_EQ(g.size(), 5u);
    EXPECT_TRUE(st.idle(kVarB)); // reusable afterwards
}

TEST_F(FlatStateTest, SemaphoreCountsResources)
{
    // Initial value 2: first two waits pass, third blocks.
    EXPECT_EQ(st.apply(OpKind::SemWait, 0, kVarC, 2, gate()).size(), 1u);
    EXPECT_EQ(st.apply(OpKind::SemWait, 1, kVarC, 2, gate()).size(), 1u);
    EXPECT_TRUE(st.apply(OpKind::SemWait, 2, kVarC, 2, gate()).empty());
    auto g = st.apply(OpKind::SemPost, 0, kVarC, 0, nullptr);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].core, 2u);
    // Post with no waiters accumulates.
    EXPECT_TRUE(st.apply(OpKind::SemPost, 0, kVarC, 0, nullptr).empty());
    EXPECT_EQ(st.apply(OpKind::SemWait, 3, kVarC, 2, gate()).size(), 1u);
}

TEST_F(FlatStateTest, CondWaitReleasesLockAndSignalReacquires)
{
    // Core 1 takes the lock, then waits on the cond (releasing it).
    st.apply(OpKind::LockAcquire, 1, kLockVar, 0, gate());
    st.apply(OpKind::LockAcquire, 2, kLockVar, 0, gate()); // queued
    auto g = st.apply(OpKind::CondWait, 1, kCondVar, kLockVar, gate());
    // The lock passes to core 2.
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].core, 2u);

    // Signal: core 1 must re-acquire the lock (held by 2) first.
    EXPECT_TRUE(st.apply(OpKind::CondSignal, 2, kCondVar, 0, nullptr).empty());
    auto g2 = st.apply(OpKind::LockRelease, 2, kLockVar, 0, nullptr);
    ASSERT_EQ(g2.size(), 1u);
    EXPECT_EQ(g2[0].core, 1u); // cond_wait finally returns
}

TEST_F(FlatStateTest, BroadcastWakesAllWaiters)
{
    st.apply(OpKind::LockAcquire, 9, kLockVar, 0, gate());
    for (CoreId c = 0; c < 3; ++c) {
        st.apply(OpKind::LockAcquire, c, kLockVar, 0, gate());
        // each waiter in turn gets the lock when the previous waits
        auto g = st.apply(OpKind::CondWait, 9, kCondVar, kLockVar, gate());
        // returns lock grants to queued acquirers
        if (!g.empty()) {
            // re-own for the next round
        }
        // Simplify: single-owner pattern tested above; here just count
        // broadcast delivery below.
        break;
    }
    // Queue three waiters directly.
    FlatSyncState fresh;
    fresh.apply(OpKind::LockAcquire, 0, kLockVar, 0, gate());
    fresh.apply(OpKind::CondWait, 0, kCondVar, kLockVar, gate());
    fresh.apply(OpKind::LockAcquire, 1, kLockVar, 0, gate());
    fresh.apply(OpKind::CondWait, 1, kCondVar, kLockVar, gate());
    fresh.apply(OpKind::LockAcquire, 2, kLockVar, 0, gate());
    fresh.apply(OpKind::CondWait, 2, kCondVar, kLockVar, gate());
    auto g = fresh.apply(OpKind::CondBroadcast, 5, kCondVar, 0, nullptr);
    // One waiter re-acquires immediately; the others queue on the lock.
    ASSERT_EQ(g.size(), 1u);
    auto g2 = fresh.apply(OpKind::LockRelease, g[0].core, kLockVar, 0,
                          nullptr);
    ASSERT_EQ(g2.size(), 1u);
}

/** Property sweep: random lock/sem traffic never loses a grant. */
class FlatStateProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FlatStateProperty, RandomLockTrafficConserved)
{
    sim::EventQueue eq;
    FlatSyncState st;
    Rng rng(GetParam());
    std::vector<std::unique_ptr<sim::Gate>> gates;

    const int cores = 8;
    const Addr var = 0xF00;
    std::vector<bool> holds(cores, false);
    std::vector<bool> waiting(cores, false);
    int grants = 0, acquires = 0;

    auto noteGrants = [&](const std::vector<SyncGrant> &gs) {
        for (const SyncGrant &g : gs) {
            EXPECT_TRUE(waiting[g.core]);
            waiting[g.core] = false;
            holds[g.core] = true;
            ++grants;
        }
    };

    for (int step = 0; step < 2000; ++step) {
        const int c = static_cast<int>(rng.below(cores));
        if (holds[c]) {
            noteGrants(st.apply(OpKind::LockRelease, c, var, 0, nullptr));
            holds[c] = false;
        } else if (!waiting[c]) {
            gates.push_back(std::make_unique<sim::Gate>(eq));
            waiting[c] = true;
            ++acquires;
            noteGrants(st.apply(OpKind::LockAcquire, c, var, 0,
                                gates.back().get()));
        }
    }
    // Drain: release holders, everyone eventually gets the lock.
    for (int round = 0; round < cores * 4; ++round) {
        for (int c = 0; c < cores; ++c) {
            if (holds[c]) {
                noteGrants(
                    st.apply(OpKind::LockRelease, c, var, 0, nullptr));
                holds[c] = false;
            }
        }
    }
    EXPECT_EQ(grants, acquires);
    EXPECT_TRUE(st.idle(var));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatStateProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace syncron::sync
