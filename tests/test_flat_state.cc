/**
 * @file
 * Unit + property tests for the flat semantic state machine — the
 * reference semantics all backends must agree with — driven through the
 * typed SyncRequest descriptors.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"
#include "sync/flat_state.hh"

namespace syncron::sync {
namespace {

constexpr Addr kVarA = 0x100;
constexpr Addr kVarB = 0x200;
constexpr Addr kVarC = 0x300;
constexpr Addr kLockVar = 0x400;
constexpr Addr kCondVar = 0x500;

class FlatStateTest : public ::testing::Test
{
  protected:
    sim::EventQueue eq;
    FlatSyncState st;
    std::vector<std::unique_ptr<sim::Gate>> gates;

    sim::Gate *
    gate()
    {
        gates.push_back(std::make_unique<sim::Gate>(eq));
        return gates.back().get();
    }
};

TEST_F(FlatStateTest, LockGrantsInFifoOrder)
{
    auto g1 = st.apply(SyncRequest::lockAcquire(kVarA), 1, gate());
    ASSERT_EQ(g1.size(), 1u);
    EXPECT_EQ(g1[0].core, 1u);

    EXPECT_TRUE(
        st.apply(SyncRequest::lockAcquire(kVarA), 2, gate()).empty());
    EXPECT_TRUE(
        st.apply(SyncRequest::lockAcquire(kVarA), 3, gate()).empty());

    auto g2 = st.apply(SyncRequest::lockRelease(kVarA), 1, nullptr);
    ASSERT_EQ(g2.size(), 1u);
    EXPECT_EQ(g2[0].core, 2u);
    auto g3 = st.apply(SyncRequest::lockRelease(kVarA), 2, nullptr);
    ASSERT_EQ(g3.size(), 1u);
    EXPECT_EQ(g3[0].core, 3u);
    st.apply(SyncRequest::lockRelease(kVarA), 3, nullptr);
    EXPECT_TRUE(st.idle(kVarA));
}

TEST_F(FlatStateTest, ReleaseByNonOwnerPanics)
{
    st.apply(SyncRequest::lockAcquire(kVarA), 1, gate());
    EXPECT_THROW(st.apply(SyncRequest::lockRelease(kVarA), 2, nullptr),
                 std::logic_error);
}

TEST_F(FlatStateTest, BarrierReleasesExactlyAtCount)
{
    const SyncRequest wait =
        SyncRequest::barrierWait(kVarB, BarrierScope::AcrossUnits, 5);
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_TRUE(st.apply(wait, c, gate()).empty());
    auto g = st.apply(wait, 4, gate());
    EXPECT_EQ(g.size(), 5u);
    EXPECT_TRUE(st.idle(kVarB)); // reusable afterwards
}

TEST_F(FlatStateTest, SemaphoreCountsResources)
{
    // Initial value 2: first two waits pass, third blocks.
    const SyncRequest wait = SyncRequest::semWait(kVarC, 2);
    const SyncRequest post = SyncRequest::semPost(kVarC);
    EXPECT_EQ(st.apply(wait, 0, gate()).size(), 1u);
    EXPECT_EQ(st.apply(wait, 1, gate()).size(), 1u);
    EXPECT_TRUE(st.apply(wait, 2, gate()).empty());
    auto g = st.apply(post, 0, nullptr);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].core, 2u);
    // Post with no waiters accumulates.
    EXPECT_TRUE(st.apply(post, 0, nullptr).empty());
    EXPECT_EQ(st.apply(wait, 3, gate()).size(), 1u);
}

TEST_F(FlatStateTest, CondWaitReleasesLockAndSignalReacquires)
{
    // Core 1 takes the lock, then waits on the cond (releasing it).
    st.apply(SyncRequest::lockAcquire(kLockVar), 1, gate());
    st.apply(SyncRequest::lockAcquire(kLockVar), 2, gate()); // queued
    auto g = st.apply(SyncRequest::condWait(kCondVar, kLockVar), 1,
                      gate());
    // The lock passes to core 2.
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].core, 2u);

    // Signal: core 1 must re-acquire the lock (held by 2) first.
    EXPECT_TRUE(
        st.apply(SyncRequest::condSignal(kCondVar), 2, nullptr).empty());
    auto g2 = st.apply(SyncRequest::lockRelease(kLockVar), 2, nullptr);
    ASSERT_EQ(g2.size(), 1u);
    EXPECT_EQ(g2[0].core, 1u); // cond_wait finally returns
}

TEST_F(FlatStateTest, BroadcastWakesAllWaiters)
{
    // Queue three waiters.
    FlatSyncState fresh;
    for (CoreId c = 0; c < 3; ++c) {
        fresh.apply(SyncRequest::lockAcquire(kLockVar), c, gate());
        fresh.apply(SyncRequest::condWait(kCondVar, kLockVar), c, gate());
    }
    auto g =
        fresh.apply(SyncRequest::condBroadcast(kCondVar), 5, nullptr);
    // One waiter re-acquires immediately; the others queue on the lock.
    ASSERT_EQ(g.size(), 1u);
    auto g2 = fresh.apply(SyncRequest::lockRelease(kLockVar), g[0].core,
                          nullptr);
    ASSERT_EQ(g2.size(), 1u);
}

TEST_F(FlatStateTest, RequestPayloadAccessorsAreKindChecked)
{
    const SyncRequest bar =
        SyncRequest::barrierWait(kVarB, BarrierScope::WithinUnit, 4);
    EXPECT_EQ(bar.kind(), OpKind::BarrierWaitWithinUnit);
    EXPECT_EQ(bar.participants(), 4u);
    EXPECT_THROW(bar.resources(), std::logic_error);
    EXPECT_THROW(bar.condLock(), std::logic_error);

    const SyncRequest cw = SyncRequest::condWait(kCondVar, kLockVar);
    EXPECT_EQ(cw.condLock(), kLockVar);
    EXPECT_EQ(cw.messageInfo(), kLockVar);
    EXPECT_THROW(cw.participants(), std::logic_error);

    // Wire round trip: messageInfo() is invertible.
    const SyncRequest sem = SyncRequest::semWait(kVarC, 7);
    const SyncRequest back = SyncRequest::fromMessageInfo(
        sem.kind(), sem.var(), sem.messageInfo());
    EXPECT_EQ(back, sem);
    EXPECT_EQ(back.resources(), 7u);
}

/** Property sweep: random lock/sem traffic never loses a grant. */
class FlatStateProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FlatStateProperty, RandomLockTrafficConserved)
{
    sim::EventQueue eq;
    FlatSyncState st;
    Rng rng(GetParam());
    std::vector<std::unique_ptr<sim::Gate>> gates;

    const int cores = 8;
    const Addr var = 0xF00;
    std::vector<bool> holds(cores, false);
    std::vector<bool> waiting(cores, false);
    int grants = 0, acquires = 0;

    auto noteGrants = [&](const std::vector<SyncGrant> &gs) {
        for (const SyncGrant &g : gs) {
            EXPECT_TRUE(waiting[g.core]);
            waiting[g.core] = false;
            holds[g.core] = true;
            ++grants;
        }
    };

    for (int step = 0; step < 2000; ++step) {
        const int c = static_cast<int>(rng.below(cores));
        if (holds[c]) {
            noteGrants(
                st.apply(SyncRequest::lockRelease(var), c, nullptr));
            holds[c] = false;
        } else if (!waiting[c]) {
            gates.push_back(std::make_unique<sim::Gate>(eq));
            waiting[c] = true;
            ++acquires;
            noteGrants(st.apply(SyncRequest::lockAcquire(var), c,
                                gates.back().get()));
        }
    }
    // Drain: release holders, everyone eventually gets the lock.
    for (int round = 0; round < cores * 4; ++round) {
        for (int c = 0; c < cores; ++c) {
            if (holds[c]) {
                noteGrants(
                    st.apply(SyncRequest::lockRelease(var), c, nullptr));
                holds[c] = false;
            }
        }
    }
    EXPECT_EQ(grants, acquires);
    EXPECT_TRUE(st.idle(var));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatStateProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace syncron::sync
