/**
 * @file
 * Harness tests: table formatting, bench options, workload defaults, and
 * end-to-end runner outputs (the building blocks of every bench binary).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "harness/grid.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "sync/registry.hh"
#include "workloads/graph/csr.hh"

namespace syncron::harness {
namespace {

TEST(Table, FormatsAlignedColumnsAndNotes)
{
    TablePrinter t("Demo", {"a", "long-header", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"wide-cell", "x", "y"});
    t.addNote("a note");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("note: a note"), std::string::npos);
}

TEST(Table, RowWidthMismatchPanics)
{
    TablePrinter t("Demo", {"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmtX(1.5), "1.50x");
    EXPECT_EQ(fmtPct(0.305), "30.5%");
}

TEST(BenchOptions, ParsesFlags)
{
    const char *argv1[] = {"bench", "--full"};
    auto o1 = BenchOptions::parse(2, const_cast<char **>(argv1));
    EXPECT_TRUE(o1.full);
    EXPECT_GT(o1.effectiveScale(), 1.0);

    const char *argv2[] = {"bench", "--scale=0.5"};
    auto o2 = BenchOptions::parse(2, const_cast<char **>(argv2));
    EXPECT_DOUBLE_EQ(o2.effectiveScale(), 0.5);

    const char *argv3[] = {"bench", "--bogus"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(argv3)),
                 std::runtime_error);

    const char *argv4[] = {"bench", "--jobs=8", "--json=out.json",
                           "--backend=Hier"};
    auto o4 = BenchOptions::parse(4, const_cast<char **>(argv4));
    EXPECT_EQ(o4.jobs, 8u);
    EXPECT_EQ(o4.json, "out.json");
    EXPECT_EQ(o4.backend, "Hier");
    EXPECT_EQ(o4.makeConfig(Scheme::SynCron).backendName, "Hier");
}

TEST(BenchOptions, RejectsMalformedValues)
{
    auto parse1 = [](const char *arg) {
        const char *argv[] = {"bench", arg};
        return BenchOptions::parse(2, const_cast<char **>(argv));
    };
    // --scale with no/garbage/non-positive value.
    EXPECT_THROW(parse1("--scale="), std::runtime_error);
    EXPECT_THROW(parse1("--scale=abc"), std::runtime_error);
    EXPECT_THROW(parse1("--scale=1.5x"), std::runtime_error);
    EXPECT_THROW(parse1("--scale=0"), std::runtime_error);
    EXPECT_THROW(parse1("--scale=-1"), std::runtime_error);
    EXPECT_THROW(parse1("--scale=inf"), std::runtime_error);
    EXPECT_THROW(parse1("--scale=nan"), std::runtime_error);
    EXPECT_THROW(parse1("--scale=1e30"), std::runtime_error);
    // --jobs out of range or non-numeric.
    EXPECT_THROW(parse1("--jobs="), std::runtime_error);
    EXPECT_THROW(parse1("--jobs=0"), std::runtime_error);
    EXPECT_THROW(parse1("--jobs=-3"), std::runtime_error);
    EXPECT_THROW(parse1("--jobs=9999"), std::runtime_error);
    EXPECT_THROW(parse1("--jobs=four"), std::runtime_error);
    // --json/--backend need values; backends must be registered.
    EXPECT_THROW(parse1("--json="), std::runtime_error);
    EXPECT_THROW(parse1("--backend="), std::runtime_error);

    // Unknown backends are rejected at parse time (not later inside
    // SystemConfig), and the error lists the registered set.
    try {
        parse1("--backend=NoSuchBackend");
        FAIL() << "expected fatal";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        for (const std::string &name :
             sync::BackendRegistry::instance().names()) {
            EXPECT_NE(what.find(name), std::string::npos)
                << "error should list registered backend '" << name
                << "': " << what;
        }
    }

    // Unknown arguments report the usage text, not just the token.
    try {
        parse1("--definitely-unknown");
        FAIL() << "expected fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("--jobs=<n>"),
                  std::string::npos)
            << "error should include usage: " << e.what();
    }
}

TEST(BenchOptions, ParsesTraceFlags)
{
    const char *argv[] = {"bench", "--trace-out=cap.trc",
                          "--jobs=1"};
    auto o = BenchOptions::parse(3, const_cast<char **>(argv));
    EXPECT_EQ(o.traceOut, "cap.trc");
    EXPECT_TRUE(o.traceIn.empty());
    // --trace-out flows into every grid cell's config as tracePath.
    EXPECT_EQ(o.makeConfig(Scheme::SynCron).tracePath, "cap.trc");

    const char *argv2[] = {"bench", "--trace-in=old.trc"};
    auto o2 = BenchOptions::parse(2, const_cast<char **>(argv2));
    EXPECT_EQ(o2.traceIn, "old.trc");
    EXPECT_TRUE(o2.makeConfig(Scheme::SynCron).tracePath.empty());
}

TEST(BenchOptions, RejectsTraceFlagsWithParallelJobs)
{
    auto parse2 = [](const char *a, const char *b) {
        const char *argv[] = {"bench", a, b};
        return BenchOptions::parse(3, const_cast<char **>(argv));
    };
    // Values are required, like every other path option.
    const char *argvEmpty[] = {"bench", "--trace-out="};
    EXPECT_THROW(
        BenchOptions::parse(2, const_cast<char **>(argvEmpty)),
        std::runtime_error);
    const char *argvEmpty2[] = {"bench", "--trace-in="};
    EXPECT_THROW(
        BenchOptions::parse(2, const_cast<char **>(argvEmpty2)),
        std::runtime_error);

    // Capture (and replay-from-file) races parallel grid workers on
    // the one trace file; the error must say so and show usage.
    for (const char *flag : {"--trace-out=cap.trc",
                             "--trace-in=cap.trc"}) {
        try {
            parse2(flag, "--jobs=2");
            FAIL() << "expected fatal for " << flag << " --jobs=2";
        } catch (const std::runtime_error &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("--jobs=1"), std::string::npos)
                << what;
            EXPECT_NE(what.find("--trace-out=<path>"),
                      std::string::npos)
                << "error should include usage: " << what;
        }
        // Order of flags must not matter.
        EXPECT_THROW(parse2("--jobs=4", flag), std::runtime_error);
        // jobs=1 is explicitly fine.
        EXPECT_NO_THROW(parse2(flag, "--jobs=1"));
    }

    // Capture and replay-from-file are mutually exclusive; combining
    // them would silently drop --trace-out.
    try {
        parse2("--trace-out=a.trc", "--trace-in=b.trc");
        FAIL() << "expected fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("mutually exclusive"),
                  std::string::npos)
            << e.what();
    }
}

TEST(BenchOptions, ParsesTraceCorpusAndStream)
{
    auto parse1 = [](const char *a) {
        const char *argv[] = {"bench", a};
        return BenchOptions::parse(2, const_cast<char **>(argv));
    };
    auto parse2 = [](const char *a, const char *b) {
        const char *argv[] = {"bench", a, b};
        return BenchOptions::parse(3, const_cast<char **>(argv));
    };

    EXPECT_EQ(parse1("--trace-corpus=traces").traceCorpus, "traces");
    EXPECT_EQ(parse1("--trace-stream=127.0.0.1:7461").traceStream,
              "127.0.0.1:7461");
    // The endpoint flows into every cell's config.
    EXPECT_EQ(parse1("--trace-stream=fd:7")
                  .makeConfig(Scheme::SynCron).traceStream,
              "fd:7");

    EXPECT_THROW(parse1("--trace-corpus="), std::runtime_error);
    EXPECT_THROW(parse1("--trace-stream="), std::runtime_error);

    // One replay source: a corpus directory or a single file, not both.
    EXPECT_THROW(parse2("--trace-corpus=traces", "--trace-in=a.trc"),
                 std::runtime_error);

    // Streaming records one global order, like --trace-out: parallel
    // grid cells and sharded simulations are rejected either way
    // around, --jobs=1/--sim-shards=1 are explicitly fine.
    EXPECT_THROW(parse2("--trace-stream=h:1", "--jobs=2"),
                 std::runtime_error);
    EXPECT_THROW(parse2("--jobs=2", "--trace-stream=h:1"),
                 std::runtime_error);
    EXPECT_THROW(parse2("--trace-stream=h:1", "--sim-shards=2"),
                 std::runtime_error);
    EXPECT_THROW(parse2("--sim-shards=2", "--trace-stream=h:1"),
                 std::runtime_error);
    EXPECT_NO_THROW(parse2("--trace-stream=h:1", "--jobs=1"));
    EXPECT_NO_THROW(parse2("--trace-stream=h:1", "--sim-shards=1"));
    // Streaming alongside replay makes no sense (nothing is captured).
    EXPECT_THROW(parse2("--trace-stream=h:1", "--trace-in=a.trc"),
                 std::runtime_error);
}

TEST(BenchOptions, ParsesSimShards)
{
    auto parse1 = [](const char *a) {
        const char *argv[] = {"bench", a};
        return BenchOptions::parse(2, const_cast<char **>(argv));
    };
    EXPECT_EQ(parse1("--scale=1").simShards, 1u); // default
    EXPECT_EQ(parse1("--sim-shards=1").simShards, 1u);
    EXPECT_EQ(parse1("--sim-shards=4").simShards, 4u);
    EXPECT_EQ(parse1("--sim-shards=64").simShards, 64u);

    EXPECT_THROW(parse1("--sim-shards="), std::runtime_error);
    EXPECT_THROW(parse1("--sim-shards=0"), std::runtime_error);
    EXPECT_THROW(parse1("--sim-shards=-2"), std::runtime_error);
    EXPECT_THROW(parse1("--sim-shards=65"), std::runtime_error);
    EXPECT_THROW(parse1("--sim-shards=four"), std::runtime_error);
    EXPECT_THROW(parse1("--sim-shards=4x"), std::runtime_error);

    // The shard count flows into every machine the bench builds.
    auto opts = parse1("--sim-shards=4");
    EXPECT_EQ(opts.makeConfig(Scheme::SynCron, 4, 4).simShards, 4u);
}

TEST(BenchOptions, RejectsSimShardsWithIncompatibleModes)
{
    auto parse2 = [](const char *a, const char *b) {
        const char *argv[] = {"bench", a, b};
        return BenchOptions::parse(3, const_cast<char **>(argv));
    };
    // The trace writer, crash injection, and the durability log all
    // assume one global event order; each rejection must name the fix
    // and show usage.
    struct Case
    {
        const char *flag;
        const char *reason;
    };
    for (const Case &c : {Case{"--trace-out=cap.trc", "trace capture"},
                          Case{"--crash-at=1000", "crash injection"},
                          Case{"--persist=eager", "durability log"}}) {
        try {
            parse2(c.flag, "--sim-shards=2");
            FAIL() << "expected fatal for " << c.flag
                   << " --sim-shards=2";
        } catch (const std::runtime_error &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("--sim-shards=1"), std::string::npos)
                << what;
            EXPECT_NE(what.find(c.reason), std::string::npos) << what;
            EXPECT_NE(what.find("--sim-shards=<n>"), std::string::npos)
                << "error should include usage: " << what;
        }
        // Order of flags must not matter; an explicit 1 is fine.
        EXPECT_THROW(parse2("--sim-shards=2", c.flag),
                     std::runtime_error);
        EXPECT_NO_THROW(parse2(c.flag, "--sim-shards=1"));
    }
    // Replay and analysis are compatible: both consume the one merged
    // event order the sharded run still guarantees.
    EXPECT_NO_THROW(parse2("--trace-in=cap.trc", "--sim-shards=2"));
    EXPECT_NO_THROW(parse2("--analyze", "--sim-shards=4"));
}

TEST(BenchOptions, ParsesDurabilityFlags)
{
    const char *argv[] = {"bench", "--persist=eager",
                          "--crash-at=5000"};
    auto o = BenchOptions::parse(3, const_cast<char **>(argv));
    EXPECT_EQ(o.persist, durability::PersistMode::Eager);
    EXPECT_EQ(o.crashAt, Tick{5000});
    const SystemConfig cfg = o.makeConfig(Scheme::SynCron);
    EXPECT_EQ(cfg.persistMode, durability::PersistMode::Eager);
    EXPECT_EQ(cfg.crashAtTick, Tick{5000});

    // epoch[:N] selects the batch size; bare epoch keeps the default.
    const char *argv2[] = {"bench", "--persist=epoch:16"};
    auto o2 = BenchOptions::parse(2, const_cast<char **>(argv2));
    EXPECT_EQ(o2.persist, durability::PersistMode::Epoch);
    EXPECT_EQ(o2.persistEpochOps, 16u);
    EXPECT_EQ(o2.makeConfig(Scheme::SynCron).persistEpochOps, 16u);

    const char *argv3[] = {"bench", "--persist=epoch"};
    auto o3 = BenchOptions::parse(2, const_cast<char **>(argv3));
    EXPECT_EQ(o3.persist, durability::PersistMode::Epoch);
    EXPECT_EQ(o3.persistEpochOps, 64u);

    const char *argv4[] = {"bench", "--crash-sweep=3"};
    auto o4 = BenchOptions::parse(2, const_cast<char **>(argv4));
    EXPECT_EQ(o4.crashSweepEvery, 3u);

    auto parse1 = [](const char *arg) {
        const char *argv1[] = {"bench", arg};
        return BenchOptions::parse(2, const_cast<char **>(argv1));
    };
    EXPECT_THROW(parse1("--persist="), std::runtime_error);
    EXPECT_THROW(parse1("--persist=bogus"), std::runtime_error);
    EXPECT_THROW(parse1("--persist=epoch:"), std::runtime_error);
    EXPECT_THROW(parse1("--persist=epoch:0"), std::runtime_error);
    // A batch size only makes sense for epoch mode.
    EXPECT_THROW(parse1("--persist=eager:8"), std::runtime_error);
    EXPECT_THROW(parse1("--crash-at="), std::runtime_error);
    EXPECT_THROW(parse1("--crash-at=0"), std::runtime_error);
    EXPECT_THROW(parse1("--crash-at=soon"), std::runtime_error);
    EXPECT_THROW(parse1("--crash-sweep=0"), std::runtime_error);
}

TEST(BenchOptions, RejectsCrashInjectionWithParallelJobs)
{
    auto parse2 = [](const char *a, const char *b) {
        const char *argv[] = {"bench", a, b};
        return BenchOptions::parse(3, const_cast<char **>(argv));
    };
    // Crash injection tears one deterministic machine down mid-run; a
    // parallel grid has no single machine to crash. The error must
    // point at --jobs=1 and show usage, mirroring the trace guard.
    try {
        parse2("--crash-at=1000", "--jobs=2");
        FAIL() << "expected fatal for --crash-at --jobs=2";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("--jobs=1"), std::string::npos) << what;
        EXPECT_NE(what.find("--crash-at=<t>"), std::string::npos)
            << "error should include usage: " << what;
    }
    // Order of flags must not matter.
    EXPECT_THROW(parse2("--jobs=4", "--crash-at=1000"),
                 std::runtime_error);
    // jobs=1 is explicitly fine.
    EXPECT_NO_THROW(parse2("--crash-at=1000", "--jobs=1"));
}

TEST(BenchOptions, ParsesLoadAndSloFlags)
{
    const char *argv[] = {"bench",
                          "--load=bursty:rate=2,window=8,policy=drop",
                          "--slo-p99=1500"};
    auto o = BenchOptions::parse(3, const_cast<char **>(argv));
    EXPECT_TRUE(o.hasLoad);
    EXPECT_EQ(o.loadSpec.kind, load::ArrivalKind::Bursty);
    EXPECT_DOUBLE_EQ(o.loadSpec.ratePerUs, 2.0);
    EXPECT_EQ(o.loadSpec.window, 8u);
    EXPECT_EQ(o.loadSpec.policy, load::OverloadPolicy::Drop);
    EXPECT_DOUBLE_EQ(o.sloP99Ns, 1500.0);

    // Both are optional: absent means defaults.
    const char *argv2[] = {"bench"};
    auto o2 = BenchOptions::parse(1, const_cast<char **>(argv2));
    EXPECT_FALSE(o2.hasLoad);
    EXPECT_DOUBLE_EQ(o2.sloP99Ns, 0.0);
}

TEST(BenchOptions, RejectsMalformedLoadAndSloFlags)
{
    auto parse1 = [](const char *arg) {
        const char *argv[] = {"bench", arg};
        return BenchOptions::parse(2, const_cast<char **>(argv));
    };
    // A bad --load spec is fatal with the parser's reason AND the
    // usage text, like --trace-out/--crash-at errors.
    try {
        parse1("--load=gaussian:rate=2");
        FAIL() << "expected fatal for unknown arrival kind";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown arrival kind"), std::string::npos)
            << what;
        EXPECT_NE(what.find("--load=<spec>"), std::string::npos)
            << "error should include usage: " << what;
    }
    EXPECT_THROW(parse1("--load="), std::runtime_error);
    EXPECT_THROW(parse1("--load=poisson:rate=0"), std::runtime_error);
    EXPECT_THROW(parse1("--load=poisson:window=0"),
                 std::runtime_error);
    EXPECT_THROW(parse1("--load=poisson:policy=maybe"),
                 std::runtime_error);
    EXPECT_THROW(parse1("--load=poisson:frobnicate=1"),
                 std::runtime_error);

    // --slo-p99 needs a positive finite latency.
    try {
        parse1("--slo-p99=-5");
        FAIL() << "expected fatal for negative SLO";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("positive latency"), std::string::npos)
            << what;
        EXPECT_NE(what.find("--slo-p99=<ns>"), std::string::npos)
            << "error should include usage: " << what;
    }
    EXPECT_THROW(parse1("--slo-p99="), std::runtime_error);
    EXPECT_THROW(parse1("--slo-p99=0"), std::runtime_error);
    EXPECT_THROW(parse1("--slo-p99=abc"), std::runtime_error);
    EXPECT_THROW(parse1("--slo-p99=inf"), std::runtime_error);
    EXPECT_THROW(parse1("--slo-p99=nan"), std::runtime_error);
}

TEST(Runner, DsDefaultsCoverAllStructures)
{
    for (DsKind kind : kAllDsKinds) {
        const DsParams p = dsDefaults(kind, 1.0);
        EXPECT_GE(p.initialSize, 8u) << dsName(kind);
        EXPECT_GE(p.opsPerCore, 1u) << dsName(kind);
        EXPECT_STRNE(dsName(kind), "?");
        // --full scales sizes up.
        EXPECT_GE(dsDefaults(kind, 8.0).initialSize, p.initialSize);
    }
}

TEST(Runner, AppInputsMatchThePapersTwentySix)
{
    const auto all = allAppInputs();
    EXPECT_EQ(all.size(), 26u);
    unsigned ts = 0;
    for (const AppInput &ai : all) {
        if (ai.app == "ts")
            ++ts;
    }
    EXPECT_EQ(ts, 2u);
}

TEST(Runner, DataStructureRunProducesConsistentOutput)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
    auto out = runDataStructure(cfg, DsKind::Stack, 64, 5);
    EXPECT_EQ(out.ops, 8u * 5u);
    EXPECT_GT(out.time, 0u);
    EXPECT_GT(out.opsPerMs(), 0.0);
    EXPECT_GT(out.stats.syncOps, 0u);
    EXPECT_GT(out.energy.total(), 0.0);
    EXPECT_EQ(out.overflowFrac(), 0.0);
}

TEST(Runner, GraphRunRespectsPartitioningFlag)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 4);
    auto range = runGraph(cfg, "wk", workloads::GraphApp::Tf, 0.1, false);
    auto metis = runGraph(cfg, "wk", workloads::GraphApp::Tf, 0.1, true);
    EXPECT_GT(range.ops, 0u);
    EXPECT_EQ(range.ops, metis.ops) << "same updates, different layout";
    // Better placement must not increase cross-unit traffic.
    EXPECT_LE(metis.stats.bytesAcrossUnits,
              range.stats.bytesAcrossUnits);
}

TEST(Runner, TimeSeriesRunReportsOccupancy)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 4);
    auto out = runTimeSeries(cfg, "air", 0.3);
    EXPECT_GT(out.ops, 0u);
    EXPECT_GT(out.stMaxFrac, 0.0);
    EXPECT_LE(out.stMaxFrac, 1.0);
    EXPECT_GT(out.stAvgFrac, 0.0);
}

TEST(Runner, DeterministicAcrossInvocations)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
    auto a = runDataStructure(cfg, DsKind::HashTable, 64, 6);
    auto b = runDataStructure(cfg, DsKind::HashTable, 64, 6);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.stats.syncLocalMsgs, b.stats.syncLocalMsgs);
    EXPECT_EQ(a.stats.dramReads, b.stats.dramReads);
}

TEST(Runner, SharedInputsMatchPerCellGeneration)
{
    // A grid cell fed a prepared (shared) input must produce exactly
    // the result of the regenerate-per-cell path it replaced.
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 4);
    SharedInputs inputs;
    inputs.prepare({{"tf", "wk"}, {"ts", "air"}}, 0.1);
    inputs.preparePartitions({{"tf", "wk"}, {"ts", "air"}}, 4);

    auto tfShared = runAppInput(cfg, {"tf", "wk"}, inputs);
    auto tfFresh = runGraph(cfg, "wk", workloads::GraphApp::Tf, 0.1);
    EXPECT_EQ(tfShared.time, tfFresh.time);
    EXPECT_EQ(tfShared.ops, tfFresh.ops);

    auto tsShared = runAppInput(cfg, {"ts", "air"}, inputs);
    auto tsFresh = runTimeSeries(cfg, "air", 0.1);
    EXPECT_EQ(tsShared.time, tsFresh.time);
    EXPECT_EQ(tsShared.ops, tsFresh.ops);

    // Unprepared inputs are a hard error, not a silent regeneration.
    EXPECT_THROW(inputs.graph("co"), std::runtime_error);
    EXPECT_THROW(inputs.series("pow"), std::runtime_error);
}

TEST(Runner, SharedInputsCachePartitions)
{
    SharedInputs inputs;
    inputs.prepareGraph("wk", 0.1);
    inputs.preparePartition("wk", 4);
    inputs.preparePartition("wk", 4, /*metis=*/true);
    inputs.preparePartition("wk", 2);

    // The cached partitions are exactly what the per-cell path
    // computed before.
    const workloads::Graph &g = inputs.graph("wk");
    EXPECT_EQ(inputs.partition("wk", 4),
              workloads::rangePartition(g, 4));
    EXPECT_EQ(inputs.partition("wk", 4, true),
              workloads::greedyPartition(g, 4));
    EXPECT_EQ(inputs.partition("wk", 2),
              workloads::rangePartition(g, 2));

    // Unprepared (input, units, policy) combinations are a hard
    // error, not a silent recomputation — including a policy or unit
    // count that differs from a prepared one.
    EXPECT_THROW(inputs.partition("wk", 3), std::runtime_error);
    EXPECT_THROW(inputs.partition("wk", 2, true), std::runtime_error);
    EXPECT_THROW(inputs.partition("sl", 4), std::runtime_error);
    // Partitioning an unprepared graph is equally fatal.
    EXPECT_THROW(inputs.preparePartition("sl", 4),
                 std::runtime_error);

    // The shared-partition run path matches the compute-per-cell
    // convenience path bit for bit.
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 4);
    auto shared = runGraph(cfg, g, workloads::GraphApp::Tf,
                           inputs.partition("wk", 4, true));
    auto fresh = runGraph(cfg, g, workloads::GraphApp::Tf,
                          /*metisPartition=*/true);
    EXPECT_EQ(shared.time, fresh.time);
    EXPECT_EQ(shared.ops, fresh.ops);
    EXPECT_EQ(shared.stats.bytesAcrossUnits,
              fresh.stats.bytesAcrossUnits);
}

TEST(Grid, UnevenTasksKeepAllWorkersBusyAndResultsOrdered)
{
    // A deliberately lopsided grid (one long task first, a long tail
    // of short ones) exercises the atomic claim index: any static
    // split would serialize behind the long cell, and results must
    // land at their submission index regardless of completion order.
    std::vector<std::function<int()>> tasks;
    std::atomic<unsigned> concurrent{0};
    std::atomic<unsigned> maxConcurrent{0};
    for (int i = 0; i < 24; ++i) {
        tasks.push_back([i, &concurrent, &maxConcurrent] {
            const unsigned now = ++concurrent;
            unsigned seen = maxConcurrent.load();
            while (now > seen
                   && !maxConcurrent.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(i == 0 ? 30 : 1));
            --concurrent;
            return i * i;
        });
    }
    const auto parallel = runGrid(tasks, 4);
    const auto serial = runGrid(tasks, 1);
    ASSERT_EQ(parallel.size(), 24u);
    EXPECT_EQ(parallel, serial);
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(parallel[i], i * i);
    // While task 0 sleeps, the claim index must hand the short cells
    // to the other workers.
    EXPECT_GE(maxConcurrent.load(), 2u);
}

} // namespace
} // namespace syncron::harness
