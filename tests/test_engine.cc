/**
 * @file
 * SynCron-engine-specific tests: ST allocation/occupancy, hierarchical
 * aggregation, the overflow path (integrated and MiSAR-style), indexing
 * counters, the fairness extension, and determinism.
 */

#include <gtest/gtest.h>

#include "syncron/engine.hh"
#include "syncron/indexing_counters.hh"
#include "syncron/sync_table.hh"
#include "system/system.hh"

namespace syncron {
namespace {

using core::Core;
using sync::SyncApi;

sim::Process
lockLoop(Core &c, SyncApi &api, sync::Lock lock, int iters,
         int *counter)
{
    for (int i = 0; i < iters; ++i) {
        co_await api.acquire(c, lock);
        ++*counter;
        co_await c.compute(20);
        co_await api.release(c, lock);
        co_await c.compute(30);
    }
}

TEST(SyncTable, AllocFindReleaseAndCapacity)
{
    SystemStats stats;
    engine::SyncTable table(2, stats);
    EXPECT_NE(table.alloc(0x100, 0), nullptr);
    EXPECT_NE(table.alloc(0x200, 10), nullptr);
    EXPECT_TRUE(table.full());
    EXPECT_EQ(table.alloc(0x300, 20), nullptr); // full
    EXPECT_NE(table.find(0x100), nullptr);
    table.release(0x100, 30);
    EXPECT_EQ(table.find(0x100), nullptr);
    EXPECT_FALSE(table.full());
    table.finalize(100);
    // Occupancy integral: 1*10 + 2*20 + 1*70 = 120 over 100 ticks.
    EXPECT_EQ(stats.stOccupancyIntegral, 120u);
    EXPECT_EQ(stats.stMaxOccupied, 2u);
}

TEST(SyncTable, ReleasingNonIdleEntryPanics)
{
    SystemStats stats;
    engine::SyncTable table(4, stats);
    engine::StEntry *e = table.alloc(0x100, 0);
    e->localWaitBits = 0b10;
    EXPECT_THROW(table.release(0x100, 10), std::logic_error);
}

TEST(IndexingCounters, AliasingSharesCounters)
{
    engine::IndexingCounters counters(256);
    const Addr a = 0x40ull;             // line 1
    const Addr aliased = a + 256 * 64;  // same index, 256 lines later
    counters.increment(a);
    EXPECT_TRUE(counters.servicedViaMemory(a));
    EXPECT_TRUE(counters.servicedViaMemory(aliased)) << "aliases share";
    counters.decrement(aliased);
    EXPECT_FALSE(counters.servicedViaMemory(a));
    counters.decrement(a); // guarded at zero
    EXPECT_EQ(counters.value(a), 0u);
}

TEST(Engine, HierarchicalAggregationReducesGlobalTraffic)
{
    // All cores of one remote unit hammer one lock: the SE sends one
    // aggregated acquire/release pair per local episode, so global
    // messages must be far fewer than local ones.
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 8);
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(3); // mastered remotely
    int counter = 0;
    // Clients 0..7 are all in unit 0.
    for (unsigned i = 0; i < 8; ++i)
        sys.spawn(lockLoop(sys.clientCore(i), sys.api(), lock, 10,
                           &counter));
    sys.run();
    EXPECT_EQ(counter, 80);
    const SystemStats &st = sys.stats();
    EXPECT_GT(st.syncLocalMsgs, 0u);
    EXPECT_LT(st.syncGlobalMsgs, st.syncLocalMsgs / 4)
        << "hierarchy must aggregate cross-unit traffic";
}

TEST(Engine, StEntriesFreedAfterEpisodes)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    int counter = 0;
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(lockLoop(sys.clientCore(i), sys.api(), lock, 5,
                           &counter));
    sys.run();
    engine::SynCronBackend *eng = sys.syncronBackend();
    ASSERT_NE(eng, nullptr);
    EXPECT_EQ(eng->stOccupied(0), 0u);
    EXPECT_EQ(eng->stOccupied(1), 0u);
    EXPECT_EQ(eng->overflowedRequests(), 0u);
    EXPECT_GT(sys.stats().stAllocs, 0u);
}

sim::Process
twoLockWorker(Core &c, SyncApi &api, const sync::LockSet &locks,
              unsigned ops, int *progress)
{
    // Hold two locks at once (hand-over-hand style) to pressure the ST.
    for (unsigned i = 0; i < ops; ++i) {
        const std::size_t a = c.rng().below(locks.size() - 1);
        co_await api.acquire(c, locks[a]);
        co_await api.acquire(c, locks[a + 1]);
        co_await c.compute(10);
        co_await api.release(c, locks[a + 1]);
        co_await api.release(c, locks[a]);
        ++*progress;
    }
}

class OverflowSchemeTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(OverflowSchemeTest, TinyStOverflowsButStaysCorrect)
{
    SystemConfig cfg = SystemConfig::make(GetParam(), 4, 8);
    cfg.stEntries = 4; // force heavy overflow
    NdpSystem sys(cfg);

    const sync::LockSet locks = sys.api().createLockSet(64);

    int progress = 0;
    const unsigned ops = 12;
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(twoLockWorker(sys.clientCore(i), sys.api(), locks, ops,
                                &progress));
    sys.run();

    EXPECT_EQ(progress,
              static_cast<int>(sys.numClientCores() * ops));
    engine::SynCronBackend *eng = sys.syncronBackend();
    ASSERT_NE(eng, nullptr);
    EXPECT_GT(eng->overflowedRequests(), 0u)
        << "a 4-entry ST must overflow under 64 hot locks";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OverflowSchemeTest,
    ::testing::Values(Scheme::SynCron, Scheme::SynCronCentralOvrfl,
                      Scheme::SynCronDistribOvrfl),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string n = schemeName(info.param);
        for (char &ch : n) {
            if (ch == '-' || ch == '_')
                ch = 'x';
        }
        return n;
    });

TEST(Engine, IntegratedOverflowBeatsMisarStyle)
{
    // The Fig. 23 claim at test scale: under overflow, the integrated
    // scheme loses less performance than the MiSAR-style aborts.
    auto timeWith = [](Scheme scheme) {
        SystemConfig cfg = SystemConfig::make(scheme, 4, 8);
        cfg.stEntries = 4;
        NdpSystem sys(cfg);
        const sync::LockSet locks = sys.api().createLockSet(64);
        int progress = 0;
        for (unsigned i = 0; i < sys.numClientCores(); ++i)
            sys.spawn(twoLockWorker(sys.clientCore(i), sys.api(), locks,
                                    12, &progress));
        sys.run();
        return sys.elapsed();
    };
    const Tick integrated = timeWith(Scheme::SynCron);
    const Tick central = timeWith(Scheme::SynCronCentralOvrfl);
    EXPECT_LT(integrated, central);
}

TEST(Engine, FairnessThresholdBoundsLocalStreaks)
{
    // With the Section 4.4.2 extension enabled, a unit hammering a lock
    // must hand it over after N local grants; the run still completes
    // and mutual exclusion holds (counter check).
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 6);
    cfg.localGrantThreshold = 3;
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    int counter = 0;
    for (unsigned i = 0; i < sys.numClientCores(); ++i)
        sys.spawn(lockLoop(sys.clientCore(i), sys.api(), lock, 8,
                           &counter));
    sys.run();
    EXPECT_EQ(counter, static_cast<int>(sys.numClientCores()) * 8);

    // Fairness costs extra transfers: more global messages than the
    // unbounded-streak default.
    SystemConfig base = SystemConfig::make(Scheme::SynCron, 2, 6);
    NdpSystem sysBase(base);
    sync::Lock lock2 = sysBase.api().createLock(0);
    int counter2 = 0;
    for (unsigned i = 0; i < sysBase.numClientCores(); ++i)
        sysBase.spawn(lockLoop(sysBase.clientCore(i), sysBase.api(),
                               lock2, 8, &counter2));
    sysBase.run();
    EXPECT_GE(sys.stats().syncGlobalMsgs,
              sysBase.stats().syncGlobalMsgs);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 4, 8);
        NdpSystem sys(cfg);
        sync::Lock lock = sys.api().createLock(1);
        int counter = 0;
        for (unsigned i = 0; i < sys.numClientCores(); ++i)
            sys.spawn(lockLoop(sys.clientCore(i), sys.api(), lock, 10,
                               &counter));
        sys.run();
        return std::pair<Tick, std::uint64_t>(
            sys.elapsed(), sys.stats().syncLocalMsgs);
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

} // namespace
} // namespace syncron
