/**
 * @file
 * Trace subsystem tests: varint container round-trip (property-style
 * over random streams), corruption/truncation rejection, capture from a
 * live run, cross-backend replay with exact operation-count
 * reproduction, replay determinism, and the statistical shape of every
 * synthetic scenario family.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "harness/json.hh"
#include "harness/runner.hh"
#include "system/system.hh"
#include "trace/capture.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "trace/scenario.hh"
#include "workloads/micro/primitives.hh"

namespace syncron::trace {
namespace {

// --------------------------------------------------------------------
// Container format
// --------------------------------------------------------------------

/** A structurally valid random trace driven by @p rng. */
Trace
randomTrace(Rng &rng)
{
    Trace t;
    t.numUnits = 1 + static_cast<std::uint32_t>(rng.below(4));
    t.clientCoresPerUnit =
        1 + static_cast<std::uint32_t>(rng.below(15));

    const unsigned numPrims = 1 + static_cast<unsigned>(rng.below(20));
    for (unsigned i = 0; i < numPrims; ++i) {
        TracePrimitive p;
        p.kind = static_cast<PrimKind>(rng.below(4));
        p.home = static_cast<UnitId>(rng.below(t.numUnits));
        p.param = static_cast<std::uint32_t>(rng.next());
        p.scope = rng.chance(0.5) ? sync::BarrierScope::WithinUnit
                                  : sync::BarrierScope::AcrossUnits;
        t.primitives.push_back(p);
    }
    // Guarantee one lock so CondWait records have a valid associate.
    t.primitives[0].kind = PrimKind::Lock;

    const unsigned numRecords = static_cast<unsigned>(rng.below(200));
    for (unsigned i = 0; i < numRecords; ++i) {
        TraceRecord r;
        // Issue ticks jump around to exercise the zigzag deltas.
        r.issued = rng.below(1'000'000'000ULL);
        r.completed = r.issued + rng.below(100'000);
        r.core =
            static_cast<std::uint32_t>(rng.below(t.numClientCores()));
        // Pick the primitive first, then an op of its kind (the reader
        // rejects mismatches).
        r.prim = static_cast<std::uint32_t>(rng.below(numPrims));
        switch (t.primitives[r.prim].kind) {
          case PrimKind::Lock:
            r.kind = rng.chance(0.5) ? sync::OpKind::LockAcquire
                                     : sync::OpKind::LockRelease;
            break;
          case PrimKind::Barrier:
            r.kind = rng.chance(0.5)
                         ? sync::OpKind::BarrierWaitWithinUnit
                         : sync::OpKind::BarrierWaitAcrossUnits;
            break;
          case PrimKind::Semaphore:
            r.kind = rng.chance(0.5) ? sync::OpKind::SemWait
                                     : sync::OpKind::SemPost;
            break;
          case PrimKind::CondVar:
            switch (rng.below(3)) {
              case 0:
                r.kind = sync::OpKind::CondWait;
                r.assocPrim = 0; // the guaranteed lock
                break;
              case 1: r.kind = sync::OpKind::CondSignal; break;
              default: r.kind = sync::OpKind::CondBroadcast; break;
            }
            break;
        }
        t.records.push_back(r);
    }
    return t;
}

std::string
encode(const Trace &t)
{
    std::ostringstream os;
    TraceWriter(os).write(t);
    return os.str();
}

Trace
decode(const std::string &bytes)
{
    std::istringstream is(bytes);
    return TraceReader(is).read();
}

TEST(TraceFormat, RoundTripsRandomStreams)
{
    Rng rng(20260728);
    for (int iter = 0; iter < 50; ++iter) {
        const Trace t = randomTrace(rng);
        const Trace back = decode(encode(t));
        EXPECT_EQ(t, back) << "round-trip mismatch at iteration "
                           << iter;
    }
}

TEST(TraceFormat, EncodingIsCompact)
{
    // The varint/delta container must beat naive fixed-width records
    // (48 B each) by a wide margin on a realistic stream.
    ScenarioSpec spec;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 4;
    spec.opsPerCore = 64;
    const Trace t = ScenarioGenerator(spec).generate();
    const std::string bytes = encode(t);
    EXPECT_LT(bytes.size(), t.records.size() * 12)
        << "varint records should average well under 12 bytes";
}

TEST(TraceFormat, RejectsBadMagicAndVersion)
{
    Rng rng(7);
    const std::string good = encode(randomTrace(rng));

    std::string badMagic = good;
    badMagic[0] = 'X';
    EXPECT_THROW(decode(badMagic), std::runtime_error);

    // Version is the varint right after the 8-byte magic; 0x7f is an
    // unknown single-byte version.
    std::string badVersion = good;
    badVersion[8] = '\x7f';
    EXPECT_THROW(decode(badVersion), std::runtime_error);
}

TEST(TraceFormat, RejectsVersion1WithRecaptureMessage)
{
    // v1 records carried no reliable associated-lock field, so the
    // offline deadlock analyzer cannot trust them; the reader must
    // reject v1 with a message telling the user to recapture.
    Rng rng(23);
    std::string v1 = encode(randomTrace(rng));
    v1[8] = '\x01'; // version varint right after the 8-byte magic
    try {
        decode(v1);
        FAIL() << "a version-1 trace was accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("recapture"),
                  std::string::npos)
            << "message should point at recapturing: " << e.what();
    }
}

TEST(TraceFormat, RejectsTruncation)
{
    Rng rng(13);
    Trace t = randomTrace(rng);
    while (t.records.empty())
        t = randomTrace(rng);
    const std::string good = encode(t);

    // Every proper prefix must be rejected, never silently accepted:
    // header cuts, primitive-table cuts, and mid-record cuts alike.
    for (std::size_t len : {std::size_t{0}, std::size_t{4},
                            std::size_t{9}, good.size() / 2,
                            good.size() - 1}) {
        EXPECT_THROW(decode(good.substr(0, len)), std::runtime_error)
            << "accepted a " << len << "-byte prefix of a "
            << good.size() << "-byte trace";
    }
}

TEST(TraceFormat, RejectsCorruptCountsCleanly)
{
    // An absurd count varint must fail as a clean trace fatal
    // (std::runtime_error) inside the read loop — not as a giant
    // up-front reserve() throwing std::length_error / bad_alloc.
    auto vint = [](std::uint64_t v) {
        std::string s;
        while (v >= 0x80) {
            s.push_back(static_cast<char>((v & 0x7f) | 0x80));
            v >>= 7;
        }
        s.push_back(static_cast<char>(v));
        return s;
    };
    std::string bytes(kTraceMagic.begin(), kTraceMagic.end());
    bytes += vint(kTraceVersion) + vint(1) + vint(1);
    bytes += vint(1ULL << 60); // primitive count, then EOF
    EXPECT_THROW(decode(bytes), std::runtime_error);
}

TEST(TraceFormat, RejectsTrailingGarbage)
{
    Rng rng(17);
    const std::string good = encode(randomTrace(rng));
    EXPECT_THROW(decode(good + "junk"), std::runtime_error);
}

TEST(TraceFormat, RejectsDanglingReferences)
{
    // A record naming a primitive past the table must be rejected.
    Trace t;
    t.numUnits = 1;
    t.clientCoresPerUnit = 1;
    t.primitives.push_back(TracePrimitive{});
    TraceRecord r;
    r.kind = sync::OpKind::LockAcquire;
    r.prim = 7; // out of range
    t.records.push_back(r);
    EXPECT_THROW(decode(encode(t)), std::runtime_error);

    // So must a cond_wait whose associate is not a lock.
    t.records[0].prim = 0;
    t.records[0].kind = sync::OpKind::CondWait;
    t.records[0].assocPrim = 0;
    t.primitives[0].kind = PrimKind::CondVar;
    EXPECT_THROW(decode(encode(t)), std::runtime_error);

    // And an op applied to a primitive of the wrong kind: a replayer
    // fed such a record would touch an un-minted handle, so the reader
    // rejects it up front.
    t.records[0].kind = sync::OpKind::LockAcquire;
    t.records[0].assocPrim = 0;
    EXPECT_THROW(decode(encode(t)), std::runtime_error);
    t.primitives[0].kind = PrimKind::Semaphore;
    t.records[0].kind = sync::OpKind::BarrierWaitAcrossUnits;
    EXPECT_THROW(decode(encode(t)), std::runtime_error);
}

// --------------------------------------------------------------------
// Capture and replay
// --------------------------------------------------------------------

/** Serializes the deterministic (simulated-only) metrics of a run. */
std::string
simMetricsJson(const harness::RunOutput &out)
{
    std::ostringstream os;
    harness::JsonWriter j(os);
    j.beginObject();
    j.field("simTicks", out.time);
    j.field("ops", out.ops);
    j.field("opsPerMs", out.opsPerMs());
    j.key("syncLatency");
    j.beginArray();
    for (const SyncOpLatency &l : out.stats.syncLatency) {
        j.beginObject()
            .field("count", l.count)
            .field("total", l.totalTicks)
            .field("min", l.minTicks)
            .field("max", l.maxTicks)
            .endObject();
    }
    j.endArray();
    j.endObject();
    return os.str();
}

TEST(TraceCaptureReplay, DataStructureRunCapturesAndReplaysEverywhere)
{
    // The fig11 workload path (runDataStructure) with the capture hook:
    // one structure, small scale, as in the bench.
    const std::string path = "test_trace_capture.trc";
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
    cfg.tracePath = path;
    const harness::RunOutput original = harness::runDataStructure(
        cfg, harness::DsKind::Queue, 64, 6);

    const Trace t = readTraceFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(t.numUnits, 2u);
    EXPECT_EQ(t.clientCoresPerUnit, 4u);
    EXPECT_EQ(t.records.size(), original.stats.syncOps);
    EXPECT_FALSE(t.primitives.empty());

    const auto want = t.opCounts();
    // Replay on the capturing backend reproduces the per-OpKind mix
    // exactly; the other backends execute the same stream.
    for (Scheme scheme :
         {Scheme::SynCron, Scheme::Central, Scheme::SynCronFlat}) {
        const harness::RunOutput out =
            harness::runTrace(replayConfig(t, scheme), t);
        EXPECT_EQ(out.ops, t.records.size()) << schemeName(scheme);
        for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
            EXPECT_EQ(out.stats.syncLatency[k].count, want[k])
                << schemeName(scheme) << " op kind " << k;
        }
    }
}

TEST(TraceCaptureReplay, InMemoryCaptureMatchesTheFile)
{
    // NdpSystem::traceCapture() exposes the live capture; its
    // accumulated trace and the file run() writes must round-trip to
    // the same value — on a server-based backend for variety.
    const std::string path = "test_trace_capture_mem.trc";
    SystemConfig cfg = SystemConfig::make(Scheme::Central, 2, 3);
    cfg.tracePath = path;
    NdpSystem sys(cfg);
    ASSERT_NE(sys.traceCapture(), nullptr);
    workloads::PrimitiveWorkload w(sys, workloads::Primitive::Lock, 50,
                                   4);
    sys.run();
    const Trace &mem = sys.traceCapture()->trace();
    EXPECT_FALSE(mem.records.empty());
    EXPECT_EQ(mem, readTraceFile(path));
    std::remove(path.c_str());
}

sim::Process
guardScopeExitWorker(NdpSystem &sys, core::Core &c, sync::Lock lock)
{
    sync::SyncApi &api = sys.api();
    {
        sync::ScopedLock guard = co_await api.scoped(c, lock);
        co_await c.compute(10);
        // No explicit unlock: scope exit issues the detached release.
    }
    co_await c.compute(10);
}

TEST(TraceCaptureReplay, GuardScopeExitReleaseIsCaptured)
{
    // The ScopedLock scope-exit release is issued detached (no awaiting
    // coroutine); the capture hook must still see it — with completion
    // == issue tick, since req_async commits at issue and nothing ever
    // observes a later completion — or captured traces under-count
    // releases relative to acquires.
    const std::string path = "test_trace_guard_exit.trc";
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
    cfg.tracePath = path;
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    sys.spawn(guardScopeExitWorker(sys, sys.clientCore(0), lock));
    sys.run();

    const Trace &t = sys.traceCapture()->trace();
    std::remove(path.c_str());
    const auto counts = t.opCounts();
    EXPECT_EQ(counts[static_cast<unsigned>(sync::OpKind::LockAcquire)],
              1u);
    EXPECT_EQ(counts[static_cast<unsigned>(sync::OpKind::LockRelease)],
              1u);
    bool sawDetachedRelease = false;
    for (const TraceRecord &r : t.records) {
        if (r.kind != sync::OpKind::LockRelease)
            continue;
        sawDetachedRelease = true;
        EXPECT_EQ(r.completed, r.issued);
    }
    EXPECT_TRUE(sawDetachedRelease);
}

sim::Process
recycleWorker(NdpSystem &sys, core::Core &c)
{
    // Use a lock, destroy it, then mint a semaphore and a second-
    // generation semaphore with different resources — the allocator
    // recycles the same line each time, so the capture must split the
    // logical primitives instead of conflating (or rejecting) them.
    sync::SyncApi &api = sys.api();
    sync::Lock lock = api.createLock(0);
    co_await api.acquire(c, lock);
    co_await api.release(c, lock);
    api.destroy(lock);
    sync::Semaphore sem = api.createSemaphore(0, 1);
    co_await api.wait(c, sem);
    co_await api.post(c, sem);
    api.destroy(sem);
    // Same kind, different creation parameter: merging the two
    // generations would replay gen-2 waits against gen-1's resources.
    sync::Semaphore sem2 = api.createSemaphore(0, 2);
    co_await api.wait(c, sem2);
    co_await api.post(c, sem2);
}

TEST(TraceCaptureReplay, CaptureSplitsRecycledLines)
{
    const std::string path = "test_trace_recycle.trc";
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 1, 1);
    cfg.tracePath = path;
    NdpSystem sys(cfg);
    sys.spawn(recycleWorker(sys, sys.clientCore(0)));
    sys.run();

    const Trace t = readTraceFile(path);
    std::remove(path.c_str());
    ASSERT_EQ(t.records.size(), 6u);
    ASSERT_EQ(t.primitives.size(), 3u);
    EXPECT_EQ(t.primitives[0].kind, PrimKind::Lock);
    EXPECT_EQ(t.primitives[1].kind, PrimKind::Semaphore);
    EXPECT_EQ(t.primitives[1].param, 1u);
    EXPECT_EQ(t.primitives[2].kind, PrimKind::Semaphore);
    EXPECT_EQ(t.primitives[2].param, 2u);
    EXPECT_NE(t.records[2].prim, t.records[4].prim);

    // The split trace replays cleanly (reader kind-checks passed).
    const harness::RunOutput out =
        harness::runTrace(replayConfig(t, Scheme::SynCron), t);
    EXPECT_EQ(out.ops, 6u);
}

TEST(TraceCaptureReplay, ReplayerRejectsMismatchedMachineShape)
{
    ScenarioSpec spec;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 4;
    spec.opsPerCore = 4;
    const Trace t = ScenarioGenerator(spec).generate();
    const SystemConfig wrong =
        SystemConfig::make(Scheme::SynCron, 4, 4);
    EXPECT_THROW(harness::runTrace(wrong, t), std::runtime_error);
}

TEST(TraceCaptureReplay, ReplayIsDeterministic)
{
    ScenarioSpec spec;
    spec.family = ScenarioFamily::ZipfLock;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 4;
    spec.opsPerCore = 12;
    const Trace t = ScenarioGenerator(spec).generate();

    const SystemConfig cfg = replayConfig(t, Scheme::SynCron);
    const harness::RunOutput a = harness::runTrace(cfg, t);
    const harness::RunOutput b = harness::runTrace(cfg, t);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.stats.syncLocalMsgs, b.stats.syncLocalMsgs);
    EXPECT_EQ(a.stats.syncGlobalMsgs, b.stats.syncGlobalMsgs);
    EXPECT_EQ(a.stats.dramReads, b.stats.dramReads);
    // The simulated-metric subset of the BENCH_trace_replay.json record
    // must be byte-identical across runs.
    EXPECT_EQ(simMetricsJson(a), simMetricsJson(b));
}

// --------------------------------------------------------------------
// Scenario families
// --------------------------------------------------------------------

/** Small-machine spec for @p family, feasible on every backend. */
ScenarioSpec
smallSpec(ScenarioFamily family)
{
    ScenarioSpec spec;
    spec.family = family;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 3;
    spec.opsPerCore = 6;
    spec.phases = 3;
    return spec;
}

TEST(Scenario, GenerationIsDeterministicInTheSpec)
{
    for (ScenarioFamily family : kAllScenarioFamilies) {
        const ScenarioSpec spec = smallSpec(family);
        EXPECT_EQ(ScenarioGenerator(spec).generate(),
                  ScenarioGenerator(spec).generate())
            << scenarioFamilyName(family);
    }
}

TEST(Scenario, EveryFamilyReplaysOnSynCron)
{
    for (ScenarioFamily family : kAllScenarioFamilies) {
        const Trace t =
            ScenarioGenerator(smallSpec(family)).generate();
        ASSERT_FALSE(t.records.empty())
            << scenarioFamilyName(family);
        const harness::RunOutput out = harness::runTrace(
            replayConfig(t, Scheme::SynCron), t);
        EXPECT_EQ(out.ops, t.records.size())
            << scenarioFamilyName(family);
        EXPECT_GT(out.time, 0u);
    }
}

TEST(Scenario, ZipfSkewConcentratesOnTheHotLock)
{
    ScenarioSpec spec;
    spec.family = ScenarioFamily::ZipfLock;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 8;
    spec.opsPerCore = 64;
    spec.numLocks = 64;

    spec.zipfExponent = 1.2;
    const double skewed =
        ScenarioGenerator(spec).generate().hottestLockShare();
    spec.zipfExponent = 0.0; // uniform
    const double uniform =
        ScenarioGenerator(spec).generate().hottestLockShare();

    // Uniform: ~1/64 per lock; Zipf(1.2): the rank-1 lock alone draws
    // 1/H_{64,1.2} ~ 27% of all acquires.
    EXPECT_LT(uniform, 0.06);
    EXPECT_GT(skewed, 0.15);
    EXPECT_GT(skewed, 4.0 * uniform);
}

TEST(Scenario, BurstyArrivalsAreBimodal)
{
    ScenarioSpec spec;
    spec.family = ScenarioFamily::BurstyLock;
    spec.numUnits = 1;
    spec.clientCoresPerUnit = 4;
    spec.opsPerCore = 32;
    spec.burstLen = 8;
    const Trace t = ScenarioGenerator(spec).generate();

    for (unsigned core = 0; core < t.numClientCores(); ++core) {
        std::vector<Tick> issues;
        for (const TraceRecord &r : t.records) {
            if (r.core == core
                && r.kind == sync::OpKind::LockAcquire) {
                issues.push_back(r.issued);
            }
        }
        ASSERT_EQ(issues.size(), spec.opsPerCore);
        std::sort(issues.begin(), issues.end());
        std::vector<Tick> gaps;
        for (std::size_t i = 1; i < issues.size(); ++i)
            gaps.push_back(issues[i] - issues[i - 1]);
        std::vector<Tick> sorted = gaps;
        std::sort(sorted.begin(), sorted.end());
        const Tick median = sorted[sorted.size() / 2];

        // Exactly opsPerCore/burstLen - 1 inter-burst gaps, each an
        // order of magnitude above the intra-burst median.
        const auto large = static_cast<std::size_t>(std::count_if(
            gaps.begin(), gaps.end(),
            [median](Tick g) { return g > 10 * median; }));
        EXPECT_EQ(large, spec.opsPerCore / spec.burstLen - 1)
            << "core " << core;
        EXPECT_GT(sorted.back(), 20 * median) << "core " << core;
    }
}

TEST(Scenario, PhasedAlternatesLockBlocksAndBarriers)
{
    ScenarioSpec spec = smallSpec(ScenarioFamily::PhasedBarrierLock);
    spec.opsPerCore = 12;
    spec.phases = 3;
    const Trace t = ScenarioGenerator(spec).generate();

    std::uint64_t barrierOps = 0;
    for (unsigned core = 0; core < t.numClientCores(); ++core) {
        std::vector<sync::OpKind> kinds;
        for (const TraceRecord &r : t.records) {
            if (r.core == core)
                kinds.push_back(r.kind);
        }
        // Per core: (opsPerCore/phases) acquire/release pairs, then a
        // barrier, repeated per phase; the stream ends on a barrier.
        const unsigned pairs = spec.opsPerCore / spec.phases;
        ASSERT_EQ(kinds.size(), spec.phases * (2 * pairs + 1));
        std::size_t i = 0;
        for (unsigned p = 0; p < spec.phases; ++p) {
            for (unsigned op = 0; op < pairs; ++op) {
                EXPECT_EQ(kinds[i++], sync::OpKind::LockAcquire);
                EXPECT_EQ(kinds[i++], sync::OpKind::LockRelease);
            }
            EXPECT_EQ(kinds[i++],
                      sync::OpKind::BarrierWaitAcrossUnits);
        }
        barrierOps += spec.phases;
    }
    const auto counts = t.opCounts();
    EXPECT_EQ(counts[static_cast<unsigned>(
                  sync::OpKind::BarrierWaitAcrossUnits)],
              barrierOps);
}

TEST(Scenario, ReaderHeavySemaphoreMixMatchesTheFraction)
{
    ScenarioSpec spec;
    spec.family = ScenarioFamily::ReaderSemaphore;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 8;
    spec.opsPerCore = 16;
    spec.readerFraction = 0.75;
    const Trace t = ScenarioGenerator(spec).generate();

    const auto counts = t.opCounts();
    const std::uint64_t waits =
        counts[static_cast<unsigned>(sync::OpKind::SemWait)];
    const std::uint64_t posts =
        counts[static_cast<unsigned>(sync::OpKind::SemPost)];
    EXPECT_EQ(waits, posts) << "every admitted reader re-posts";
    const double semShare =
        static_cast<double>(waits + posts)
        / static_cast<double>(t.records.size());
    EXPECT_NEAR(semShare, spec.readerFraction, 0.05);
}

} // namespace
} // namespace syncron::trace
