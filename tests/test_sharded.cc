/**
 * @file
 * Sharded-simulation tests.
 *
 * Two layers:
 *  - ShardedKernel mechanics: conservative windows sized by the
 *    lookahead, mailbox drains at every barrier, serial degeneration at
 *    one shard, and the zero-lookahead lockstep guard.
 *  - The bit-identity contract: a machine split across host threads
 *    (--sim-shards) must reproduce the single-threaded run exactly —
 *    same final tick, same operation counts, same SystemStats, same
 *    per-OpKind latency histograms — on every shardable backend, with
 *    the sync-correctness analyzer attached and finding nothing.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_kernel.hh"
#include "system/system.hh"

namespace syncron {
namespace {

// -- ShardedKernel mechanics -------------------------------------------

/** Client that only counts barrier callouts (no cross-shard traffic). */
class CountingClient : public sim::ShardedKernel::Client
{
  public:
    void drainMailboxes() override { ++drains; }
    void windowBegin() override { ++begins; }
    void windowEnd() override { ++ends; }

    int drains = 0;
    int begins = 0;
    int ends = 0;
};

TEST(ShardedKernel, SingleShardDegeneratesToSerialStepping)
{
    sim::EventQueue q;
    std::vector<Tick> fired;
    for (Tick t : {Tick{5}, Tick{100}, Tick{100000}})
        q.schedule(t, [&fired, t] { fired.push_back(t); });

    CountingClient client;
    sim::ShardedKernel kernel({&q}, 1000, client);
    EXPECT_EQ(kernel.shards(), 1u);
    EXPECT_EQ(kernel.run(), 100000u);
    EXPECT_EQ(fired, (std::vector<Tick>{5, 100, 100000}));
    // Mailboxes are still drained per window (the uniform loop), but
    // the single-queue path never announces parallel windows.
    EXPECT_GT(client.drains, 0);
    EXPECT_EQ(client.begins, 0);
    EXPECT_EQ(client.ends, 0);
}

TEST(ShardedKernel, WindowsCoverLookaheadAndStopAtHorizon)
{
    // Two shards, lookahead 100: events at {0, 99} fit one window;
    // the stragglers at 250 (shard 0) and 260 (shard 1) share the next.
    sim::EventQueue q0;
    sim::EventQueue q1;
    std::vector<std::pair<int, Tick>> fired0;
    std::vector<std::pair<int, Tick>> fired1;
    q0.schedule(0, [&] { fired0.emplace_back(0, Tick{0}); });
    q1.schedule(99, [&] { fired1.emplace_back(1, Tick{99}); });
    q0.schedule(250, [&] { fired0.emplace_back(0, Tick{250}); });
    q1.schedule(260, [&] { fired1.emplace_back(1, Tick{260}); });

    CountingClient client;
    sim::ShardedKernel kernel({&q0, &q1}, 100, client);
    EXPECT_EQ(kernel.shards(), 2u);
    EXPECT_EQ(kernel.run(), 260u);
    EXPECT_EQ(kernel.windows(), 2u);
    EXPECT_EQ(client.begins, 2);
    EXPECT_EQ(client.ends, 2);
    // One drain per loop iteration: before each window and once more
    // before discovering the horizon is empty.
    EXPECT_EQ(client.drains, 3);
    EXPECT_EQ(fired0,
              (std::vector<std::pair<int, Tick>>{{0, 0}, {0, 250}}));
    EXPECT_EQ(fired1,
              (std::vector<std::pair<int, Tick>>{{1, 99}, {1, 260}}));
}

TEST(ShardedKernel, BoundedRunLeavesLaterEventsQueued)
{
    sim::EventQueue q0;
    sim::EventQueue q1;
    int ran = 0;
    q0.schedule(10, [&] { ++ran; });
    q1.schedule(5000, [&] { ++ran; });

    CountingClient client;
    sim::ShardedKernel kernel({&q0, &q1}, 50, client);
    kernel.run(1000);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q1.pending(), 1u);
    kernel.run();
    EXPECT_EQ(ran, 2);
}

/** Minimal mailbox: envelopes stamped now + lookahead, delivered in a
 *  deterministic order at barriers — the Machine protocol in miniature. */
class PingPongClient : public sim::ShardedKernel::Client
{
  public:
    struct Envelope
    {
        Tick when = 0;
        int payload = 0;
        sim::EventQueue *dest = nullptr;
    };

    void drainMailboxes() override
    {
        for (Envelope &env : outbox) {
            const Tick when = env.when;
            const int payload = env.payload;
            received.push_back(payload);
            env.dest->schedule(when, [] {});
        }
        outbox.clear();
    }

    std::vector<Envelope> outbox;
    std::vector<int> received;
};

TEST(ShardedKernel, CrossShardEnvelopesLandInLaterWindows)
{
    // Shard 0 posts an envelope to shard 1 from inside a window; the
    // stamp (now + lookahead) guarantees delivery happens at a barrier
    // before any shard could have advanced past it.
    constexpr Tick kLookahead = 200;
    sim::EventQueue q0;
    sim::EventQueue q1;
    PingPongClient client;
    q0.schedule(10, [&] {
        client.outbox.push_back(
            {q0.now() + kLookahead, 7, &q1});
    });

    sim::ShardedKernel kernel({&q0, &q1}, kLookahead, client);
    kernel.run();
    EXPECT_EQ(client.received, (std::vector<int>{7}));
    EXPECT_EQ(q1.now(), 210u);
    EXPECT_EQ(q1.executed(), 1u);
}

TEST(ShardedKernel, ZeroLookaheadRequiresLockstep)
{
    sim::EventQueue q0;
    sim::EventQueue q1;
    CountingClient client;
    // One shard is fine (lockstep fallback)...
    EXPECT_NO_THROW(sim::ShardedKernel({&q0}, 0, client));
    // ...multiple shards without lookahead are a coordinator bug.
    EXPECT_THROW(sim::ShardedKernel({&q0, &q1}, 0, client),
                 std::logic_error);
}

// -- Bit-identity contract ---------------------------------------------

void
expectSameStats(const SystemStats &a, const SystemStats &b,
                const std::string &what)
{
    // Scalar counters via the canonical visitor...
    std::vector<std::pair<std::string, double>> fa;
    std::vector<std::pair<std::string, double>> fb;
    a.forEach([&](const std::string &n, double v) {
        fa.emplace_back(n, v);
    });
    b.forEach([&](const std::string &n, double v) {
        fb.emplace_back(n, v);
    });
    EXPECT_EQ(fa, fb) << what;
    // ...and the full per-OpKind latency histograms, which the visitor
    // only summarizes.
    for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
        const SyncOpLatency &la = a.syncLatency[k];
        const SyncOpLatency &lb = b.syncLatency[k];
        EXPECT_EQ(la.count, lb.count) << what << " opKind " << k;
        EXPECT_EQ(la.totalTicks, lb.totalTicks) << what << " opKind "
                                                << k;
        EXPECT_EQ(la.minTicks, lb.minTicks) << what << " opKind " << k;
        EXPECT_EQ(la.maxTicks, lb.maxTicks) << what << " opKind " << k;
        EXPECT_EQ(la.hist, lb.hist) << what << " opKind " << k;
    }
}

void
expectIdentical(const harness::RunOutput &a, const harness::RunOutput &b,
                const std::string &what)
{
    EXPECT_EQ(a.time, b.time) << what;
    EXPECT_EQ(a.ops, b.ops) << what;
    EXPECT_EQ(a.overflowedReqs, b.overflowedReqs) << what;
    EXPECT_EQ(a.totalReqs, b.totalReqs) << what;
    expectSameStats(a.stats, b.stats, what);
}

/** 8 units x 2 cores: at 2 and 4 shards every run crosses shard
 *  boundaries on both sync traffic and remote memory traffic. */
SystemConfig
shardedCfg(Scheme scheme, unsigned shards)
{
    SystemConfig cfg = SystemConfig::make(scheme, 8, 2);
    cfg.simShards = shards;
    // The analyzer rides along on every identity run: its findings are
    // part of the contract (zero, at every shard count), and its
    // per-shard buffering front end is exercised by the same runs.
    cfg.analyze = true;
    return cfg;
}

class ShardIdentityTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(ShardIdentityTest, PrimitiveMicrosAreBitIdentical)
{
    for (workloads::Primitive prim :
         {workloads::Primitive::Lock, workloads::Primitive::Barrier,
          workloads::Primitive::Semaphore,
          workloads::Primitive::CondVar}) {
        const harness::RunOutput ref = harness::runPrimitive(
            shardedCfg(GetParam(), 1), prim, 100, 6);
        for (unsigned shards : {2u, 4u}) {
            const harness::RunOutput out = harness::runPrimitive(
                shardedCfg(GetParam(), shards), prim, 100, 6);
            expectIdentical(ref, out,
                            std::string(primitiveName(prim)) + " @"
                                + std::to_string(shards) + " shards");
        }
    }
}

TEST_P(ShardIdentityTest, DataStructuresAreBitIdentical)
{
    // One structure per locking regime: coarse high-contention (Stack),
    // fine-grained with optimistic traversal (SkipList), and
    // hand-over-hand chains (LinkedList).
    struct Case
    {
        harness::DsKind kind;
        unsigned size;
        unsigned ops;
    };
    for (const Case &c : {Case{harness::DsKind::Stack, 64, 8},
                          Case{harness::DsKind::SkipList, 96, 6},
                          Case{harness::DsKind::LinkedList, 48, 6}}) {
        const harness::RunOutput ref = harness::runDataStructure(
            shardedCfg(GetParam(), 1), c.kind, c.size, c.ops);
        for (unsigned shards : {2u, 4u}) {
            const harness::RunOutput out = harness::runDataStructure(
                shardedCfg(GetParam(), shards), c.kind, c.size, c.ops);
            expectIdentical(ref, out,
                            std::string(harness::dsName(c.kind)) + " @"
                                + std::to_string(shards) + " shards");
        }
    }
}

TEST_P(ShardIdentityTest, ReplicationIsBitIdentical)
{
    workloads::ReplicationParams params;
    params.epochs = 3;
    params.opsPerEpoch = 4;
    const harness::RunOutput ref =
        harness::runReplication(shardedCfg(GetParam(), 1), params);
    for (unsigned shards : {2u, 4u}) {
        const harness::RunOutput out = harness::runReplication(
            shardedCfg(GetParam(), shards), params);
        expectIdentical(ref, out,
                        "replication @" + std::to_string(shards)
                            + " shards");
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardIdentityTest,
                         ::testing::Values(Scheme::SynCron,
                                           Scheme::Central),
                         [](const auto &info) {
                             return std::string(
                                 schemeName(info.param));
                         });

// -- Shard-count resolution --------------------------------------------

TEST(ShardResolution, NonShardableBackendCollapsesToOneShard)
{
    // Ideal applies sync ops in place with no messages — there is no
    // lookahead-respecting transport to shard over, so the system must
    // quietly fall back to a single queue.
    SystemConfig cfg = SystemConfig::make(Scheme::Ideal, 8, 2);
    cfg.simShards = 4;
    NdpSystem sys(cfg);
    EXPECT_EQ(sys.machine().numShards(), 1u);
}

TEST(ShardResolution, ShardCountClampsToUnitCount)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 2);
    cfg.simShards = 16;
    NdpSystem sys(cfg);
    EXPECT_LE(sys.machine().numShards(), 2u);
    EXPECT_GE(sys.machine().numShards(), 1u);
}

} // namespace
} // namespace syncron
