/**
 * @file
 * Sync-correctness analysis tests: seeded defect scenarios must be
 * reported with an exact witness (direct engine and live observer), and
 * the entire legitimate workload surface — all nine Table 6 structures,
 * every primitive microbenchmark, every synthetic scenario family —
 * must analyze with zero findings on multiple backends (the ROADMAP
 * "analysis-clean" invariant).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/analyzers.hh"
#include "analysis/live.hh"
#include "analysis/report.hh"
#include "analysis/trace_analysis.hh"
#include "harness/runner.hh"
#include "system/system.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "trace/scenario.hh"

namespace syncron::analysis {
namespace {

// --------------------------------------------------------------------
// Direct-engine seeded defects
// --------------------------------------------------------------------

/** A completed lock/sem/cond op at [t, t+1]. */
OpEvent
ev(sync::OpKind kind, std::uint32_t core, std::uint64_t prim, Tick t)
{
    OpEvent e;
    e.kind = kind;
    e.core = core;
    e.prim = prim;
    e.issued = t;
    e.completed = t + 1;
    return e;
}

unsigned
countKind(const AnalysisReport &r, FindingKind kind)
{
    unsigned n = 0;
    for (const Finding &f : r.findings)
        n += f.kind == kind ? 1 : 0;
    return n;
}

const Finding &
firstOfKind(const AnalysisReport &r, FindingKind kind)
{
    for (const Finding &f : r.findings) {
        if (f.kind == kind)
            return f;
    }
    throw std::runtime_error("no finding of the requested kind");
}

TEST(AnalysisEngine, AbBaLockOrderCycleReportedWithWitness)
{
    AnalysisEngine eng(MachineShape{1, 4});
    // Core 0: A then B. Core 1: B then A — time-separated, so this is
    // the pure order inversion (no operation ever blocks).
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 1, 10));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 2, 20));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 2, 30));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 1, 40));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 1, 2, 50));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 1, 1, 60));
    eng.onComplete(ev(sync::OpKind::LockRelease, 1, 1, 70));
    eng.onComplete(ev(sync::OpKind::LockRelease, 1, 2, 80));

    const AnalysisReport r = eng.finish();
    ASSERT_EQ(countKind(r, FindingKind::LockOrderCycle), 1u)
        << "exactly one canonical cycle expected";
    const Finding &f = firstOfKind(r, FindingKind::LockOrderCycle);
    ASSERT_EQ(f.witness.size(), 2u) << "one witness step per edge";
    // Each edge witness names the acquiring core and the issue tick of
    // the edge-closing acquire.
    EXPECT_EQ(f.witness[0].core, 0u);
    EXPECT_EQ(f.witness[0].prim, 2u) << "core 0 acquired #2 holding #1";
    EXPECT_EQ(f.witness[0].tick, 21u);
    EXPECT_EQ(f.witness[1].core, 1u);
    EXPECT_EQ(f.witness[1].prim, 1u) << "core 1 acquired #1 holding #2";
    EXPECT_EQ(f.witness[1].tick, 61u);
    EXPECT_EQ(countKind(r, FindingKind::ReleaseWithoutAcquire), 0u);
    EXPECT_EQ(countKind(r, FindingKind::LockHeldAtTeardown), 0u);
}

TEST(AnalysisEngine, InFlightAcquireStillClosesTheCycle)
{
    // The second half of an ACTUAL deadlock never completes; the
    // issue-time edge must close the cycle anyway.
    AnalysisEngine eng(MachineShape{1, 4});
    eng.onIssue(ev(sync::OpKind::LockAcquire, 0, 1, 10));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 1, 10));
    eng.onIssue(ev(sync::OpKind::LockAcquire, 1, 2, 12));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 1, 2, 12));
    eng.onIssue(ev(sync::OpKind::LockAcquire, 0, 2, 20));  // blocks
    eng.onIssue(ev(sync::OpKind::LockAcquire, 1, 1, 22));  // blocks
    const AnalysisReport r = eng.finish();
    EXPECT_EQ(countKind(r, FindingKind::LockOrderCycle), 1u);
    // Both blocked acquires are also pending-op leaks — that is the
    // deadlock's other signature and must be reported per core.
    EXPECT_EQ(countKind(r, FindingKind::PendingOpLeak), 2u);
}

TEST(AnalysisEngine, StaleGenerationUseAfterCrashRecovery)
{
    AnalysisEngine eng(MachineShape{1, 2});
    // Pre-crash generation: locks #1 and #2 both in use.
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 1, 10));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 1, 20));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 1, 2, 30));
    eng.onComplete(ev(sync::OpKind::LockRelease, 1, 2, 40));

    // Crash at tick 50; recovery re-minted #2 only.
    eng.noteCrashRecovery(50, {2});

    // Re-minted #2 is fine. #1 is a stale pre-crash handle — flagged
    // once, however many post-crash ops touch it. #3, first seen after
    // the crash, is a fresh generation and must not be flagged.
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 2, 60));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 2, 70));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 1, 80));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 1, 90));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 1, 3, 100));
    eng.onComplete(ev(sync::OpKind::LockRelease, 1, 3, 110));

    const AnalysisReport r = eng.finish();
    ASSERT_EQ(countKind(r, FindingKind::StaleGenerationUse), 1u);
    const Finding &f = firstOfKind(r, FindingKind::StaleGenerationUse);
    EXPECT_EQ(f.prim, 1u);
    EXPECT_EQ(f.core, 0u);
    EXPECT_EQ(f.tick, 81u)
        << "flagged at the first post-crash completion on the stale "
           "primitive";
    EXPECT_NE(f.message.find("stale generation"), std::string::npos)
        << f.message;
    EXPECT_STREQ(findingKindName(FindingKind::StaleGenerationUse),
                 "stale-generation-use");
}

TEST(AnalysisEngine, NoStaleGenerationWithoutCrash)
{
    // The same stream minus the crash boundary stays clean.
    AnalysisEngine eng(MachineShape{1, 2});
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 1, 10));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 1, 20));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 1, 80));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 1, 90));
    const AnalysisReport r = eng.finish();
    EXPECT_EQ(countKind(r, FindingKind::StaleGenerationUse), 0u);
}

TEST(AnalysisEngine, EmptyLocksetRaceReportedWithBothAccesses)
{
    AnalysisEngine eng(MachineShape{1, 2});
    const Addr addr = 0x4000;
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 7, 10));
    eng.onAccess(0, addr, true, 12);
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 7, 14));
    eng.onAccess(1, addr, true, 20); // second core, no lock held

    const AnalysisReport r = eng.finish();
    ASSERT_EQ(countKind(r, FindingKind::EmptyLocksetRace), 1u);
    const Finding &f = firstOfKind(r, FindingKind::EmptyLocksetRace);
    EXPECT_EQ(f.core, 1u);
    EXPECT_EQ(f.prim, addr);
    EXPECT_EQ(f.tick, 20u);
    ASSERT_EQ(f.witness.size(), 2u);
    EXPECT_EQ(f.witness[0].core, 0u) << "previous access as witness";
    EXPECT_EQ(f.witness[1].core, 1u) << "racing access as witness";
}

TEST(AnalysisEngine, ConsistentlyLockedAccessesStayClean)
{
    AnalysisEngine eng(MachineShape{1, 2});
    const Addr addr = 0x4000;
    for (std::uint32_t core : {0u, 1u, 0u, 1u}) {
        const Tick t = 100 * (core + 1);
        eng.onComplete(ev(sync::OpKind::LockAcquire, core, 7, t));
        eng.onAccess(core, addr, true, t + 2);
        eng.onComplete(ev(sync::OpKind::LockRelease, core, 7, t + 4));
    }
    EXPECT_TRUE(eng.finish().clean());
}

TEST(AnalysisEngine, DoubleReleaseReportedWithPreviousRelease)
{
    AnalysisEngine eng(MachineShape{1, 2});
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 3, 10));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 3, 20));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 3, 30));

    const AnalysisReport r = eng.finish();
    ASSERT_EQ(countKind(r, FindingKind::DoubleRelease), 1u);
    const Finding &f = firstOfKind(r, FindingKind::DoubleRelease);
    EXPECT_EQ(f.core, 0u);
    EXPECT_EQ(f.prim, 3u);
    ASSERT_EQ(f.witness.size(), 2u);
    EXPECT_EQ(f.witness[0].tick, 21u) << "previous release tick";
    EXPECT_EQ(f.witness[1].tick, 30u) << "offending release issue";
}

TEST(AnalysisEngine, ReleaseWithoutAcquireReported)
{
    AnalysisEngine eng(MachineShape{1, 2});
    eng.onComplete(ev(sync::OpKind::LockRelease, 1, 5, 10));
    const AnalysisReport r = eng.finish();
    ASSERT_EQ(countKind(r, FindingKind::ReleaseWithoutAcquire), 1u);
    EXPECT_EQ(firstOfKind(r, FindingKind::ReleaseWithoutAcquire).core,
              1u);
}

TEST(AnalysisEngine, DelayedAsyncReleaseRecordIsNotFlagged)
{
    // Fire-and-forget releases commit SE-side at issue but are recorded
    // at future drop, so the next owner's acquire can be recorded
    // first; the displaced owner's delayed release is legitimate.
    AnalysisEngine eng(MachineShape{1, 2});
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 3, 10));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 1, 3, 20)); // displaces
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 3, 20)); // delayed
    eng.onComplete(ev(sync::OpKind::LockRelease, 1, 3, 30));
    EXPECT_TRUE(eng.finish().clean());
}

TEST(AnalysisEngine, BarrierArityBeyondMachineShapeReported)
{
    AnalysisEngine eng(MachineShape{1, 4});
    OpEvent e = ev(sync::OpKind::BarrierWaitAcrossUnits, 0, 9, 10);
    e.participants = 5; // machine has 4 client cores
    eng.onComplete(e);
    const AnalysisReport r = eng.finish();
    ASSERT_EQ(countKind(r, FindingKind::BarrierArityMismatch), 1u);
    EXPECT_EQ(firstOfKind(r, FindingKind::BarrierArityMismatch).prim,
              9u);
}

TEST(AnalysisEngine, BarrierArityChangeAcrossWaitsReported)
{
    AnalysisEngine eng(MachineShape{2, 4});
    OpEvent e = ev(sync::OpKind::BarrierWaitAcrossUnits, 0, 9, 10);
    e.participants = 3;
    eng.onComplete(e);
    e = ev(sync::OpKind::BarrierWaitAcrossUnits, 1, 9, 20);
    e.participants = 2;
    eng.onComplete(e);
    EXPECT_EQ(countKind(eng.finish(),
                        FindingKind::BarrierArityMismatch),
              1u)
        << "reported once per barrier";
}

TEST(AnalysisEngine, SemaphoreUnderflowReported)
{
    AnalysisEngine eng(MachineShape{1, 2});
    OpEvent e = ev(sync::OpKind::SemWait, 0, 4, 10);
    e.resources = 0; // zero initial resources, no post ever
    eng.onComplete(e);
    const AnalysisReport r = eng.finish();
    ASSERT_EQ(countKind(r, FindingKind::SemaphoreUnderflow), 1u);
    EXPECT_EQ(firstOfKind(r, FindingKind::SemaphoreUnderflow).prim, 4u);
}

TEST(AnalysisEngine, LateRecordedPostsBalanceByIssueTick)
{
    // The post's completion RECORD arrives after the grant it enabled
    // (awaited batch future); the issue-tick merge keeps this clean.
    AnalysisEngine eng(MachineShape{1, 2});
    OpEvent wait = ev(sync::OpKind::SemWait, 0, 4, 19);
    wait.resources = 0;
    eng.onComplete(wait);
    OpEvent post = ev(sync::OpKind::SemPost, 1, 4, 5);
    post.completed = 100; // recorded long after the grant
    eng.onComplete(post);
    EXPECT_TRUE(eng.finish().clean());
}

TEST(AnalysisEngine, TeardownLeaksReported)
{
    AnalysisEngine eng(MachineShape{1, 2});
    eng.onIssue(ev(sync::OpKind::LockAcquire, 0, 1, 10));
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 1, 10));
    // Never released; plus core 1 issues an acquire that never
    // completes.
    eng.onIssue(ev(sync::OpKind::LockAcquire, 1, 2, 20));
    const AnalysisReport r = eng.finish();
    EXPECT_EQ(countKind(r, FindingKind::LockHeldAtTeardown), 1u);
    ASSERT_EQ(countKind(r, FindingKind::PendingOpLeak), 1u);
    EXPECT_EQ(firstOfKind(r, FindingKind::PendingOpLeak).core, 1u);
}

TEST(AnalysisEngine, JsonReportCarriesKindAndWitness)
{
    AnalysisEngine eng(MachineShape{1, 2});
    eng.onComplete(ev(sync::OpKind::LockAcquire, 0, 3, 10));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 3, 20));
    eng.onComplete(ev(sync::OpKind::LockRelease, 0, 3, 30));
    const AnalysisReport r = eng.finish();

    std::ostringstream os;
    r.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"clean\""), std::string::npos);
    EXPECT_NE(json.find("double-release"), std::string::npos);
    EXPECT_NE(json.find("\"witness\""), std::string::npos);

    std::ostringstream clean;
    AnalysisReport{}.writeJson(clean);
    EXPECT_NE(clean.str().find("true"), std::string::npos);
}

// --------------------------------------------------------------------
// Live observer: seeded defects through a real system
// --------------------------------------------------------------------

sim::Process
orderedPairWorker(NdpSystem &sys, core::Core &c, sync::Lock first,
                  sync::Lock second, unsigned delay)
{
    sync::SyncApi &api = sys.api();
    co_await c.compute(delay);
    co_await api.acquire(c, first);
    co_await c.compute(10);
    co_await api.acquire(c, second);
    co_await c.compute(10);
    co_await api.release(c, second);
    co_await api.release(c, first);
}

TEST(LiveAnalysis, LockOrderInversionIsCaught)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 1, 2);
    cfg.analyze = true;
    cfg.analyzeFatal = false; // inspect the report instead
    NdpSystem sys(cfg);
    sync::Lock a = sys.api().createLock(0);
    sync::Lock b = sys.api().createLock(0);
    // Time-separated AB / BA: never an actual deadlock, always an
    // order inversion.
    sys.spawn(orderedPairWorker(sys, sys.clientCore(0), a, b, 0));
    sys.spawn(orderedPairWorker(sys, sys.clientCore(1), b, a, 5000));
    sys.run();

    ASSERT_NE(sys.analyzer(), nullptr);
    const AnalysisReport &r = sys.analyzer()->report();
    EXPECT_EQ(countKind(r, FindingKind::LockOrderCycle), 1u);
    EXPECT_EQ(countKind(r, FindingKind::LockHeldAtTeardown), 0u);
    EXPECT_EQ(countKind(r, FindingKind::PendingOpLeak), 0u);
}

sim::Process
hintedWriteWorker(NdpSystem &sys, core::Core &c, sync::Lock lock,
                  Addr addr, bool takeLock, unsigned delay)
{
    sync::SyncApi &api = sys.api();
    co_await c.compute(delay);
    if (takeLock)
        co_await api.acquire(c, lock);
    api.accessHint(c, addr, true);
    co_await c.store(addr, 8, core::MemKind::SharedRW);
    if (takeLock)
        co_await api.release(c, lock);
}

TEST(LiveAnalysis, UnlockedSharedWriteIsCaught)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 1, 2);
    cfg.analyze = true;
    cfg.analyzeFatal = false;
    NdpSystem sys(cfg);
    sync::Lock lock = sys.api().createLock(0);
    const Addr addr = 0x9000;
    sys.spawn(hintedWriteWorker(sys, sys.clientCore(0), lock, addr,
                                true, 0));
    sys.spawn(hintedWriteWorker(sys, sys.clientCore(1), lock, addr,
                                false, 5000));
    sys.run();

    const AnalysisReport &r = sys.analyzer()->report();
    ASSERT_EQ(countKind(r, FindingKind::EmptyLocksetRace), 1u);
    const Finding &f = firstOfKind(r, FindingKind::EmptyLocksetRace);
    EXPECT_EQ(f.core, 1u);
    EXPECT_EQ(f.prim, addr);
}

TEST(LiveAnalysis, FatalByDefaultOnFindings)
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 1, 2);
    cfg.analyze = true; // analyzeFatal stays at its default (true)
    NdpSystem sys(cfg);
    sync::Lock a = sys.api().createLock(0);
    sync::Lock b = sys.api().createLock(0);
    sys.spawn(orderedPairWorker(sys, sys.clientCore(0), a, b, 0));
    sys.spawn(orderedPairWorker(sys, sys.clientCore(1), b, a, 5000));
    EXPECT_THROW(sys.run(), std::runtime_error);
}

// --------------------------------------------------------------------
// The analysis-clean invariant over the legitimate workload surface
// --------------------------------------------------------------------

TEST(AnalysisClean, AllNineStructuresOnSynCronAndCentral)
{
    for (Scheme scheme : {Scheme::SynCron, Scheme::Central}) {
        for (harness::DsKind kind : harness::kAllDsKinds) {
            SystemConfig cfg = SystemConfig::make(scheme, 2, 4);
            cfg.analyze = true; // fatal on any finding
            const harness::DsParams p = harness::dsDefaults(kind, 0.1);
            const harness::RunOutput out = harness::runDataStructure(
                cfg, kind, p.initialSize, p.opsPerCore);
            EXPECT_GT(out.ops, 0u)
                << harness::dsName(kind) << " on " << schemeName(scheme);
        }
    }
}

TEST(AnalysisClean, PrimitiveMicrobenchmarksIncludingCondAndSem)
{
    for (workloads::Primitive prim :
         {workloads::Primitive::Lock, workloads::Primitive::Barrier,
          workloads::Primitive::Semaphore,
          workloads::Primitive::CondVar}) {
        SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
        cfg.analyze = true;
        const harness::RunOutput out =
            harness::runPrimitive(cfg, prim, 100, 8);
        EXPECT_GT(out.ops, 0u);
    }
    // Batched fan-out posts recorded at await time — the async-record
    // stress case for the semaphore accounting.
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
    cfg.analyze = true;
    harness::runSemFanout(cfg, 4, 4, true);
    harness::runSemFanout(cfg, 4, 4, false);
}

TEST(AnalysisClean, ScenarioFamiliesLiveAndOffline)
{
    for (trace::ScenarioFamily family : trace::kAllScenarioFamilies) {
        trace::ScenarioSpec spec;
        spec.family = family;
        spec.numUnits = 2;
        spec.clientCoresPerUnit = 3;
        spec.opsPerCore = 6;
        spec.phases = 3;
        const trace::Trace t = trace::ScenarioGenerator(spec).generate();

        // Offline: the trace itself must be clean.
        EXPECT_TRUE(analyzeTrace(t).clean())
            << trace::scenarioFamilyName(family);

        // Live: replaying it with the observer installed must be too
        // (fatal on findings).
        SystemConfig cfg = trace::replayConfig(t, Scheme::SynCron);
        cfg.analyze = true;
        const harness::RunOutput out = harness::runTrace(cfg, t);
        EXPECT_EQ(out.ops, t.records.size())
            << trace::scenarioFamilyName(family);
    }
}

TEST(AnalysisClean, OfflineSeededDeadlockTraceIsNotClean)
{
    // Hand-built AB/BA trace: proves the offline adapter threads
    // records (incl. primitive identities) into the engine correctly.
    trace::Trace t;
    t.numUnits = 1;
    t.clientCoresPerUnit = 2;
    t.primitives.push_back(
        trace::TracePrimitive{trace::PrimKind::Lock, 0, 0,
                              sync::BarrierScope::AcrossUnits});
    t.primitives.push_back(
        trace::TracePrimitive{trace::PrimKind::Lock, 0, 0,
                              sync::BarrierScope::AcrossUnits});
    auto rec = [](Tick tick, std::uint32_t core, sync::OpKind kind,
                  std::uint32_t prim) {
        trace::TraceRecord r;
        r.issued = tick;
        r.completed = tick + 1;
        r.core = core;
        r.kind = kind;
        r.prim = prim;
        return r;
    };
    t.records.push_back(rec(10, 0, sync::OpKind::LockAcquire, 0));
    t.records.push_back(rec(20, 0, sync::OpKind::LockAcquire, 1));
    t.records.push_back(rec(30, 0, sync::OpKind::LockRelease, 1));
    t.records.push_back(rec(40, 0, sync::OpKind::LockRelease, 0));
    t.records.push_back(rec(50, 1, sync::OpKind::LockAcquire, 1));
    t.records.push_back(rec(60, 1, sync::OpKind::LockAcquire, 0));
    t.records.push_back(rec(70, 1, sync::OpKind::LockRelease, 0));
    t.records.push_back(rec(80, 1, sync::OpKind::LockRelease, 1));

    const AnalysisReport r = analyzeTrace(t);
    EXPECT_EQ(countKind(r, FindingKind::LockOrderCycle), 1u);
}

} // namespace
} // namespace syncron::analysis
