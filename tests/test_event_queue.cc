/**
 * @file
 * Tests for the timing-wheel event queue: same-tick FIFO determinism,
 * wheel/overflow-heap promotion at far-future horizons, run(until)
 * boundary semantics, allocation-freedom of steady-state scheduling
 * (via a counting global operator new), and serial-vs-parallel grid
 * determinism.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "harness/grid.hh"
#include "harness/runner.hh"
#include "sim/event_queue.hh"
#include "sim/process.hh"

// -- Counting allocator ------------------------------------------------
// Counts every global allocation in this test binary; the steady-state
// test asserts the delta across a schedule/run region is zero. Atomic
// because the grid test runs worker threads in the same process.
//
// GCC cannot see that this operator new (malloc) pairs with this
// operator delete (free) and warns at every inlined call site.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> gAllocCount{0};
} // namespace

void *
operator new(std::size_t n)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

// The nothrow forms must be replaced too (std::get_temporary_buffer
// allocates through them but deallocates through sized delete): a
// partial replacement set mixes this malloc/free pool with the
// library's, which AddressSanitizer rejects as alloc-dealloc-mismatch.
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace syncron::sim {
namespace {

// The wheel covers 2^16 ticks; anything further sits in the overflow
// heap until its epoch is promoted.
constexpr Tick kHorizon = Tick{1} << 16;

TEST(TimingWheel, SameTickFifoAcrossManyEvents)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        eq.schedule(5000, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(TimingWheel, SameTickFifoSurvivesHeapPromotion)
{
    EventQueue eq;
    const Tick far = 10 * kHorizon + 123; // several epochs out
    std::vector<int> order;

    // 1 and 2 are scheduled while `far` is beyond the wheel horizon
    // (overflow heap); 3 is scheduled at the same tick from a callback
    // running after promotion (directly into the wheel).
    eq.schedule(far, [&] {
        order.push_back(1);
        eq.schedule(far, [&] { order.push_back(3); });
    });
    eq.schedule(far, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), far);
}

TEST(TimingWheel, OrderHoldsAcrossEpochBoundaries)
{
    EventQueue eq;
    std::vector<Tick> fired;
    const Tick ticks[] = {kHorizon + 1, kHorizon,     kHorizon - 1,
                          3 * kHorizon, 2 * kHorizon, 7,
                          5 * kHorizon + 99};
    for (Tick t : ticks)
        eq.schedule(t, [&fired, t] { fired.push_back(t); });
    eq.run();
    EXPECT_EQ(fired,
              (std::vector<Tick>{7, kHorizon - 1, kHorizon, kHorizon + 1,
                                 2 * kHorizon, 3 * kHorizon,
                                 5 * kHorizon + 99}));
}

TEST(TimingWheel, RandomizedOrderMatchesWhenSeqSort)
{
    // Deterministic LCG spray over several epochs; execution order must
    // equal (when, schedule-order) lexicographic order.
    EventQueue eq;
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    struct Ref
    {
        Tick when;
        int seq;
    };
    std::vector<Ref> refs;
    std::vector<int> fired;
    for (int i = 0; i < 2000; ++i) {
        const Tick when = next() % (5 * kHorizon);
        refs.push_back(Ref{when, i});
        eq.schedule(when, [&fired, i] { fired.push_back(i); });
    }
    eq.run();
    std::stable_sort(refs.begin(), refs.end(),
                     [](const Ref &a, const Ref &b) {
                         return a.when < b.when;
                     });
    ASSERT_EQ(fired.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i)
        EXPECT_EQ(fired[i], refs[i].seq) << "at position " << i;
}

TEST(TimingWheel, RunUntilBoundarySemantics)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    eq.schedule(3 * kHorizon, [&] { ++count; });

    // Events at exactly `until` run; later ones do not. now() is the
    // last executed tick, not `until`.
    EXPECT_EQ(eq.run(20), 20u);
    EXPECT_EQ(count, 3);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 2u);

    // Stopping early must not disturb later scheduling or promotion:
    // a fresh event between now and the far event still runs first.
    eq.schedule(50, [&] { ++count; });
    EXPECT_EQ(eq.run(2 * kHorizon), 50u);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.run(), 3 * kHorizon);
    EXPECT_EQ(count, 6);
    EXPECT_TRUE(eq.empty());
}

TEST(TimingWheel, RunUntilStopsExactlyAtEpochEdges)
{
    // The sharded coordinator drives run(until) with window limits that
    // routinely land on (or next to) the 2^16-tick epoch boundary; the
    // wheel must stop exactly there, neither executing the next epoch's
    // events nor promoting them prematurely.
    EventQueue eq;
    std::vector<Tick> fired;
    const Tick ticks[] = {kHorizon - 1, kHorizon, kHorizon + 1,
                          2 * kHorizon - 1, 2 * kHorizon};
    for (Tick t : ticks)
        eq.schedule(t, [&fired, t] { fired.push_back(t); });

    // Stop one tick before the first epoch edge.
    EXPECT_EQ(eq.run(kHorizon - 1), kHorizon - 1);
    EXPECT_EQ(fired, (std::vector<Tick>{kHorizon - 1}));
    EXPECT_EQ(eq.nextTime(), kHorizon);
    EXPECT_EQ(eq.pending(), 4u);

    // Stop exactly on the edge: the event AT the limit runs, the one
    // just past it does not.
    EXPECT_EQ(eq.run(kHorizon), kHorizon);
    EXPECT_EQ(fired.back(), kHorizon);
    EXPECT_EQ(eq.nextTime(), kHorizon + 1);

    // Resume across the remaining edge; nothing is stranded.
    EXPECT_EQ(eq.run(), 2 * kHorizon);
    EXPECT_EQ(fired,
              (std::vector<Tick>{kHorizon - 1, kHorizon, kHorizon + 1,
                                 2 * kHorizon - 1, 2 * kHorizon}));
    EXPECT_TRUE(eq.empty());
}

TEST(TimingWheel, RunUntilInsideEmptyEpochGap)
{
    // Stop inside an epoch that holds no events at all (limit between
    // two far-apart events). nextTime() must keep reporting the heap
    // minimum without promoting it, and scheduling new near events
    // after the early stop must still execute them in order.
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(10, [&] { fired.push_back(10); });
    eq.schedule(5 * kHorizon + 3,
                [&] { fired.push_back(5 * kHorizon + 3); });

    EXPECT_EQ(eq.run(2 * kHorizon + 7), 10u); // now() = last executed
    EXPECT_EQ(fired, (std::vector<Tick>{10}));
    EXPECT_EQ(eq.nextTime(), 5 * kHorizon + 3); // pure: no promotion
    EXPECT_EQ(eq.pending(), 1u);

    // A fresh event earlier than the parked far event (but in a later
    // epoch than now()) must run first on resume.
    eq.schedule(3 * kHorizon, [&] { fired.push_back(3 * kHorizon); });
    EXPECT_EQ(eq.run(), 5 * kHorizon + 3);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 3 * kHorizon,
                                        5 * kHorizon + 3}));
}

TEST(TimingWheel, RunUntilRepeatedWindowsMatchOneShot)
{
    // Driving the queue in lookahead-sized windows (the sharded
    // coordinator's access pattern) must execute the exact sequence a
    // single unbounded run() produces — including events that schedule
    // follow-ups landing in later windows and later epochs.
    auto spray = [](EventQueue &q, std::vector<Tick> &fired) {
        std::uint64_t lcg = 99;
        for (int i = 0; i < 300; ++i) {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            const Tick when = (lcg >> 33) % (3 * kHorizon);
            q.schedule(when, [&q, &fired, when] {
                fired.push_back(when);
                q.schedule(when + kHorizon / 3,
                           [&fired, when] {
                               fired.push_back(when + kHorizon / 3);
                           });
            });
        }
    };
    EventQueue ref;
    std::vector<Tick> refFired;
    spray(ref, refFired);
    ref.run();

    EventQueue win;
    std::vector<Tick> winFired;
    spray(win, winFired);
    const Tick window = kHorizon / 2 - 7; // misaligned with epochs
    for (Tick limit = window;; limit += window) {
        win.run(limit);
        if (win.empty())
            break;
    }
    EXPECT_EQ(winFired, refFired);
    EXPECT_EQ(win.executed(), ref.executed());
    EXPECT_EQ(win.now(), ref.now());
}

TEST(TimingWheel, PendingAndExecutedCounters)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    eq.schedule(5, [] {});
    eq.schedule(5 + 2 * kHorizon, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 2u);
}

// -- Allocation-freedom ------------------------------------------------

/** Self-rescheduling event with a coroutine-resume-sized capture. */
struct ResumeState
{
    EventQueue *q;
    std::uint64_t *remaining;
    Tick delta;
};

void
resumeEvent(ResumeState *s)
{
    if (*s->remaining == 0)
        return;
    --*s->remaining;
    s->q->scheduleIn(s->delta, [s] { resumeEvent(s); });
}

TEST(TimingWheelAlloc, SteadyStateSchedulingIsAllocationFree)
{
    EventQueue eq;
    std::array<ResumeState, 64> states;
    std::uint64_t remaining = 0;

    auto seed = [&](std::uint64_t events) {
        remaining = events;
        for (std::size_t i = 0; i < states.size(); ++i) {
            // Mix near deltas with far ones that traverse the overflow
            // heap, so both paths are exercised.
            const Tick delta =
                i % 4 == 3 ? 3 * kHorizon + 17 : 400 * (1 + i % 5);
            states[i] = ResumeState{&eq, &remaining, delta};
            resumeEvent(&states[i]);
        }
        eq.run();
        EXPECT_EQ(remaining, 0u);
    };

    // Warm-up grows the node pool and overflow heap to working size.
    seed(20000);

    const std::uint64_t before =
        gAllocCount.load(std::memory_order_relaxed);
    seed(20000);
    const std::uint64_t after =
        gAllocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "schedule()/scheduleIn()/run() allocated in steady state";
}

sim::Process
delayTicker(EventQueue &eq, unsigned n, unsigned &count)
{
    for (unsigned i = 0; i < n; ++i) {
        co_await Delay{eq, 400};
        ++count;
    }
}

TEST(TimingWheelAlloc, CoroutineResumeSchedulingIsAllocationFree)
{
    EventQueue eq;
    // Warm the pool with plain events.
    for (int i = 0; i < 64; ++i)
        eq.schedule(eq.now() + i, [] {});
    eq.run();

    // Coroutine frames allocate at creation time — before the measured
    // region. Resuming through Delay must not allocate.
    unsigned count = 0;
    std::array<sim::Process, 8> procs;
    for (auto &p : procs)
        p = delayTicker(eq, 1000, count);

    const std::uint64_t before =
        gAllocCount.load(std::memory_order_relaxed);
    for (auto &p : procs)
        p.start(eq);
    eq.run();
    const std::uint64_t after =
        gAllocCount.load(std::memory_order_relaxed);

    for (auto &p : procs)
        EXPECT_TRUE(p.done());
    EXPECT_EQ(count, 8u * 1000u);
    EXPECT_EQ(after - before, 0u)
        << "coroutine resume scheduling allocated";
}

} // namespace
} // namespace syncron::sim

// -- Grid determinism --------------------------------------------------

namespace syncron::harness {
namespace {

std::vector<std::function<RunOutput()>>
smallGrid()
{
    const Scheme schemes[] = {Scheme::Central, Scheme::Hier,
                              Scheme::SynCron, Scheme::Ideal};
    const DsKind kinds[] = {DsKind::Stack, DsKind::HashTable};
    std::vector<std::function<RunOutput()>> tasks;
    for (DsKind kind : kinds) {
        for (Scheme scheme : schemes) {
            tasks.push_back([kind, scheme] {
                SystemConfig cfg = SystemConfig::make(scheme, 2, 4);
                return runDataStructure(cfg, kind, 32, 4);
            });
        }
    }
    return tasks;
}

TEST(Grid, ParallelRunsMatchSerialExactly)
{
    const auto serial = runGrid(smallGrid(), 1);
    const auto parallel = runGrid(smallGrid(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].time, parallel[i].time) << "config " << i;
        EXPECT_EQ(serial[i].ops, parallel[i].ops) << "config " << i;
        EXPECT_EQ(serial[i].stats.syncOps, parallel[i].stats.syncOps);
        EXPECT_EQ(serial[i].stats.dramReads,
                  parallel[i].stats.dramReads);
        EXPECT_EQ(serial[i].stats.syncLocalMsgs,
                  parallel[i].stats.syncLocalMsgs);
        EXPECT_EQ(serial[i].hostEvents, parallel[i].hostEvents);
    }
}

TEST(Grid, TaskExceptionsPropagate)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back([] { return 1; });
    tasks.push_back([]() -> int {
        throw std::runtime_error("boom");
    });
    tasks.push_back([] { return 3; });
    EXPECT_THROW(runGrid(tasks, 2), std::runtime_error);
    EXPECT_THROW(runGrid(tasks, 1), std::runtime_error);
}

TEST(Grid, ResultsKeepSubmissionOrder)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 40; ++i)
        tasks.push_back([i] { return i; });
    const auto out = runGrid(tasks, 8);
    ASSERT_EQ(out.size(), 40u);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(out[i], i);
}

} // namespace
} // namespace syncron::harness
