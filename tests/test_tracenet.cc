/**
 * @file
 * Trace-service tests: frame round-trips under arbitrary chunking
 * (property-style), payload marshalling, the session state machine
 * end-to-end over a local socket pair — including the byte-identity
 * guarantee
 * (collected file == local --trace-out capture of the same run) — and
 * every degradation path: unreachable collector, mid-stream
 * disconnect, cancel mid-capture, request-id mismatch.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "system/system.hh"
#include "trace/capture.hh"
#include "trace/format.hh"
#include "trace/scenario.hh"
#include "trace/varint.hh"
#include "tracenet/collector.hh"
#include "tracenet/framing.hh"
#include "tracenet/marshal.hh"
#include "tracenet/session.hh"
#include "tracenet/stream_sink.hh"
#include "tracenet/transport.hh"
#include "workloads/micro/primitives.hh"

namespace syncron::tracenet {
namespace {

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot read " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

// --------------------------------------------------------------------
// Framing
// --------------------------------------------------------------------

TEST(Framing, RoundTripsUnderArbitraryChunking)
{
    Rng rng(20260808);
    for (int iter = 0; iter < 50; ++iter) {
        // A random message sequence...
        std::vector<Frame> sent;
        std::string wire;
        const unsigned numFrames = 1 + static_cast<unsigned>(rng.below(8));
        for (unsigned i = 0; i < numFrames; ++i) {
            Frame f;
            f.type = static_cast<FrameType>(
                rng.below(static_cast<std::uint64_t>(FrameType::Error)
                          + 1));
            f.requestId = rng.next();
            f.seq = rng.below(1 << 20);
            const std::size_t len =
                static_cast<std::size_t>(rng.below(2000));
            f.payload.reserve(len);
            for (std::size_t b = 0; b < len; ++b)
                f.payload += static_cast<char>(rng.below(256));
            encodeFrame(wire, f.type, f.requestId, f.seq, f.payload);
            sent.push_back(std::move(f));
        }

        // ...fed to the decoder in random-size chunks must come out
        // intact regardless of where the stream got split.
        FrameDecoder decoder;
        std::vector<Frame> got;
        std::size_t off = 0;
        while (off < wire.size()) {
            const std::size_t chunk = std::min<std::size_t>(
                1 + rng.below(97), wire.size() - off);
            decoder.feed(wire.data() + off, chunk);
            off += chunk;
            Frame f;
            while (decoder.next(f))
                got.push_back(f);
        }
        ASSERT_EQ(got.size(), sent.size()) << "iteration " << iter;
        for (std::size_t i = 0; i < sent.size(); ++i) {
            EXPECT_EQ(got[i].type, sent[i].type);
            EXPECT_EQ(got[i].requestId, sent[i].requestId);
            EXPECT_EQ(got[i].seq, sent[i].seq);
            EXPECT_EQ(got[i].payload, sent[i].payload);
        }
        EXPECT_EQ(decoder.buffered(), 0u);
    }
}

TEST(Framing, RejectsUnknownTypesAndOversizedFrames)
{
    // Unknown frame type.
    std::string wire;
    trace::appendVarint(wire, 3); // frameLen
    trace::appendVarint(wire, 99); // no such type
    trace::appendVarint(wire, 0);
    trace::appendVarint(wire, 0);
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    Frame f;
    EXPECT_THROW(decoder.next(f), std::runtime_error);

    // A length prefix past the cap must fail before any allocation of
    // that size.
    std::string big;
    trace::appendVarint(big, kMaxFrameBytes + 1);
    FrameDecoder decoder2;
    decoder2.feed(big.data(), big.size());
    EXPECT_THROW(decoder2.next(f), std::runtime_error);
}

// --------------------------------------------------------------------
// Marshalling
// --------------------------------------------------------------------

TEST(Marshal, HelloAndFinRoundTrip)
{
    HelloMsg hello;
    hello.protocolVersion = kProtocolVersion;
    hello.traceVersion = trace::kTraceVersion;
    hello.numUnits = 4;
    hello.clientCoresPerUnit = 15;
    hello.streamName = "queue_run.trc";
    const HelloMsg h2 = decodeHello(encodeHello(hello));
    EXPECT_EQ(h2.protocolVersion, hello.protocolVersion);
    EXPECT_EQ(h2.traceVersion, hello.traceVersion);
    EXPECT_EQ(h2.numUnits, hello.numUnits);
    EXPECT_EQ(h2.clientCoresPerUnit, hello.clientCoresPerUnit);
    EXPECT_EQ(h2.streamName, hello.streamName);

    FinMsg fin;
    fin.totalRecords = 12345;
    fin.totalPrimitives = 77;
    const FinMsg f2 = decodeFin(encodeFin(fin));
    EXPECT_EQ(f2.totalRecords, fin.totalRecords);
    EXPECT_EQ(f2.totalPrimitives, fin.totalPrimitives);

    EXPECT_THROW(decodeHello(encodeHello(hello) + "x"),
                 std::runtime_error);
    EXPECT_THROW(decodeFin(std::string("\x01", 1)),
                 std::runtime_error);
}

TEST(Marshal, BatchesReassembleTheExactTrace)
{
    trace::ScenarioSpec spec;
    spec.family = trace::ScenarioFamily::Replication;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 3;
    spec.opsPerCore = 8;
    const trace::Trace t = trace::ScenarioGenerator(spec).generate();
    ASSERT_GT(t.records.size(), 10u);

    // Stream it in small batches; the decoder must reassemble records
    // AND primitive table exactly, across any batch boundary.
    BatchEncoder encoder;
    BatchDecoder decoder;
    trace::Trace got;
    got.numUnits = t.numUnits;
    got.clientCoresPerUnit = t.clientCoresPerUnit;
    const std::size_t batch = 7;
    for (std::size_t off = 0; off < t.records.size(); off += batch) {
        const std::size_t n =
            std::min(batch, t.records.size() - off);
        decoder.decode(
            encoder.encode(t.primitives, t.records.data() + off, n),
            got);
    }
    EXPECT_EQ(got, t);
}

TEST(Marshal, TableUpsertsAmendEntries)
{
    // Capture amends table entries after first send (barrier headcount
    // learned late); the decoder applies the re-sent entry in place —
    // last writer wins.
    std::vector<trace::TracePrimitive> table(1);
    table[0].kind = trace::PrimKind::Barrier;
    table[0].param = 0; // not yet known

    trace::TraceRecord rec;
    rec.kind = sync::OpKind::BarrierWaitAcrossUnits;
    rec.issued = 10;
    rec.completed = 20;

    BatchEncoder encoder;
    BatchDecoder decoder;
    trace::Trace got;
    got.numUnits = 1;
    got.clientCoresPerUnit = 2;
    decoder.decode(encoder.encode(table, &rec, 1), got);
    EXPECT_EQ(got.primitives[0].param, 0u);

    table[0].param = 8; // headcount learned
    rec.issued = 30;
    rec.completed = 40;
    decoder.decode(encoder.encode(table, &rec, 1), got);
    EXPECT_EQ(got.primitives.size(), 1u);
    EXPECT_EQ(got.primitives[0].param, 8u);
    EXPECT_EQ(got.records.size(), 2u);
    EXPECT_EQ(got.records[1].issued, 30u);
}

// --------------------------------------------------------------------
// Session state machine over a local socket pair
// --------------------------------------------------------------------

/** Runs a small lock workload with the given trace settings. */
SystemConfig
lockRunConfig()
{
    SystemConfig cfg = SystemConfig::make(Scheme::SynCron, 2, 4);
    return cfg;
}

void
runLockWorkload(NdpSystem &sys, unsigned opsPerCore = 16)
{
    workloads::PrimitiveWorkload w(sys, workloads::Primitive::Lock, 50,
                                   opsPerCore);
    sys.run();
}

TEST(Session, LoopbackCaptureIsByteIdenticalToLocalCapture)
{
    auto pair = Transport::socketPair();
    Transport serverEnd = std::move(pair.first);
    const int clientFd = pair.second.release();

    SessionResult result;
    std::thread collector(
        [&] { result = serveSession(serverEnd, 10000); });

    const std::string localPath = "test_tracenet_local.trc";
    SystemConfig cfg = lockRunConfig();
    cfg.tracePath = localPath;
    cfg.traceStream = "fd:" + std::to_string(clientFd);
    {
        NdpSystem sys(cfg);
        runLockWorkload(sys);
        ASSERT_NE(sys.streamSink(), nullptr);
        EXPECT_FALSE(sys.streamSink()->streamingFailed())
            << sys.streamSink()->error();
        // traceCapture() routes to the streaming sink's capture.
        EXPECT_EQ(sys.traceCapture(),
                  &sys.streamSink()->capture());
    }
    collector.join();

    ASSERT_EQ(result.outcome, SessionOutcome::Completed)
        << result.error;
    EXPECT_EQ(result.streamName, "test_tracenet_local.trc");
    EXPECT_GT(result.frames, 0u);

    // The collector writes with the stock TraceWriter: its file must
    // be byte-identical to the local --trace-out capture.
    const std::string collectedPath = "test_tracenet_collected.trc";
    trace::writeTraceFile(result.trace, collectedPath);
    EXPECT_EQ(fileBytes(collectedPath), fileBytes(localPath));

    // And it replays: the image is a complete, valid trace.
    EXPECT_EQ(trace::readTraceFile(collectedPath), result.trace);
    std::remove(localPath.c_str());
    std::remove(collectedPath.c_str());
}

TEST(Session, UnreachableCollectorDegradesToLocalCapture)
{
    // Port 1 refuses immediately; with the fast test policy the sink
    // must mark the stream failed and the system still writes the
    // complete local file.
    const std::string localPath = "test_tracenet_fallback.trc";
    SystemConfig cfg = lockRunConfig();
    cfg.tracePath = localPath;
    cfg.traceStream = "127.0.0.1:1";
    trace::Trace captured;
    {
        NdpSystem sys(cfg);
        runLockWorkload(sys);
        ASSERT_NE(sys.streamSink(), nullptr);
        EXPECT_TRUE(sys.streamSink()->streamingFailed());
        EXPECT_FALSE(sys.streamSink()->error().empty());
        captured = sys.streamSink()->capture().trace();
    }
    EXPECT_FALSE(captured.records.empty());
    EXPECT_EQ(trace::readTraceFile(localPath), captured);
    std::remove(localPath.c_str());
}

TEST(Session, MidStreamDisconnectFallsBackWithCompleteLocalTrace)
{
    auto pair = Transport::socketPair();
    Transport serverEnd = std::move(pair.first);
    const int clientFd = pair.second.release();

    // A server that accepts the session, acks the first FRAME, then
    // vanishes mid-stream.
    std::thread server([&] {
        FrameDecoder decoder;
        std::string err;
        std::uint64_t acked = 0;
        for (;;) {
            char buf[4096];
            const long got = serverEnd.recvSome(buf, sizeof(buf), 10000);
            if (got <= 0)
                return;
            decoder.feed(buf, static_cast<std::size_t>(got));
            Frame f;
            while (decoder.next(f)) {
                std::string wire;
                encodeFrame(wire,
                            f.type == FrameType::Hello
                                ? FrameType::Accept
                                : FrameType::Ack,
                            f.requestId, f.seq, std::string_view());
                serverEnd.sendAll(wire.data(), wire.size());
                if (++acked == 2) {
                    serverEnd.close(); // gone mid-stream
                    return;
                }
            }
        }
    });

    const std::string localPath = "test_tracenet_disconnect.trc";
    SystemConfig cfg = lockRunConfig();
    cfg.tracePath = localPath;
    cfg.traceStream = "fd:" + std::to_string(clientFd);
    trace::Trace captured;
    {
        NdpSystem sys(cfg);
        // Enough records for several 64-record flushes, so the
        // disconnect lands mid-stream, not at FIN.
        runLockWorkload(sys, 64);
        ASSERT_NE(sys.streamSink(), nullptr);
        EXPECT_TRUE(sys.streamSink()->streamingFailed());
        captured = sys.streamSink()->capture().trace();
    }
    server.join();

    // Degradation: the local capture is complete and valid.
    EXPECT_FALSE(captured.records.empty());
    EXPECT_EQ(trace::readTraceFile(localPath), captured);
    std::remove(localPath.c_str());
}

TEST(Session, CancelMidCaptureLeavesValidTruncatedImage)
{
    trace::ScenarioSpec spec;
    spec.numUnits = 2;
    spec.clientCoresPerUnit = 3;
    spec.opsPerCore = 16;
    const trace::Trace t = trace::ScenarioGenerator(spec).generate();
    ASSERT_GT(t.records.size(), 20u);

    auto pair = Transport::socketPair();
    Transport serverEnd = std::move(pair.first);
    const int clientFd = pair.second.release();

    SessionResult result;
    std::thread collector(
        [&] { result = serveSession(serverEnd, 10000); });

    RetryPolicy policy;
    CaptureClient client("fd:" + std::to_string(clientFd), policy,
                         0xc0ffee);
    HelloMsg hello;
    hello.protocolVersion = kProtocolVersion;
    hello.traceVersion = trace::kTraceVersion;
    hello.numUnits = t.numUnits;
    hello.clientCoresPerUnit = t.clientCoresPerUnit;
    hello.streamName = "cancelled.trc";
    ASSERT_TRUE(client.begin(hello)) << client.error();

    // Stream half the trace, then abort.
    BatchEncoder encoder;
    const std::size_t half = t.records.size() / 2;
    ASSERT_TRUE(client.sendBatch(
        encoder.encode(t.primitives, t.records.data(), half)));
    client.cancel();
    EXPECT_EQ(client.state(), ClientState::Cancelled);
    collector.join();

    ASSERT_EQ(result.outcome, SessionOutcome::Cancelled);
    EXPECT_EQ(result.trace.records.size(), half);

    // The truncated image is a valid trace: it writes and reads back.
    const std::string path = "test_tracenet_cancelled.trc";
    trace::writeTraceFile(result.trace, path);
    const trace::Trace back = trace::readTraceFile(path);
    EXPECT_EQ(back, result.trace);
    std::remove(path.c_str());
}

TEST(Session, RequestIdMismatchIsRejected)
{
    auto pair = Transport::socketPair();
    Transport serverEnd = std::move(pair.first);
    Transport clientEnd = std::move(pair.second);

    SessionResult result;
    std::thread collector(
        [&] { result = serveSession(serverEnd, 10000); });

    // Handshake under request id 7...
    HelloMsg hello;
    hello.protocolVersion = kProtocolVersion;
    hello.traceVersion = trace::kTraceVersion;
    hello.numUnits = 1;
    hello.clientCoresPerUnit = 2;
    std::string wire;
    encodeFrame(wire, FrameType::Hello, 7, 1, encodeHello(hello));
    ASSERT_TRUE(clientEnd.sendAll(wire.data(), wire.size()));

    FrameDecoder decoder;
    Frame reply;
    while (!decoder.next(reply)) {
        char buf[4096];
        const long got = clientEnd.recvSome(buf, sizeof(buf), 10000);
        ASSERT_GT(got, 0);
        decoder.feed(buf, static_cast<std::size_t>(got));
    }
    ASSERT_EQ(reply.type, FrameType::Accept);

    // ...then a FRAME under request id 8: the collector must reject
    // the session with an ERROR frame naming the id.
    BatchEncoder encoder;
    std::vector<trace::TracePrimitive> table(1);
    trace::TraceRecord rec;
    rec.kind = sync::OpKind::LockAcquire;
    wire.clear();
    encodeFrame(wire, FrameType::Frame, 8, 2,
                encoder.encode(table, &rec, 1));
    ASSERT_TRUE(clientEnd.sendAll(wire.data(), wire.size()));

    while (!decoder.next(reply)) {
        char buf[4096];
        const long got = clientEnd.recvSome(buf, sizeof(buf), 10000);
        ASSERT_GT(got, 0);
        decoder.feed(buf, static_cast<std::size_t>(got));
    }
    EXPECT_EQ(reply.type, FrameType::Error);
    EXPECT_NE(reply.payload.find("request id"), std::string::npos);
    clientEnd.close();
    collector.join();
    EXPECT_EQ(result.outcome, SessionOutcome::Failed);
    EXPECT_NE(result.error.find("request id"), std::string::npos);
    EXPECT_EQ(result.frames, 0u);
}

TEST(Session, VersionMismatchIsRefusedAtHello)
{
    auto pair = Transport::socketPair();
    Transport serverEnd = std::move(pair.first);
    const int clientFd = pair.second.release();

    SessionResult result;
    std::thread collector(
        [&] { result = serveSession(serverEnd, 10000); });

    RetryPolicy policy;
    CaptureClient client("fd:" + std::to_string(clientFd), policy, 1);
    HelloMsg hello;
    hello.protocolVersion = kProtocolVersion + 1; // from the future
    hello.traceVersion = trace::kTraceVersion;
    hello.numUnits = 1;
    hello.clientCoresPerUnit = 1;
    EXPECT_FALSE(client.begin(hello));
    EXPECT_EQ(client.state(), ClientState::Failed);
    EXPECT_NE(client.error().find("version"), std::string::npos)
        << client.error();
    collector.join();
    EXPECT_EQ(result.outcome, SessionOutcome::Failed);
}

// --------------------------------------------------------------------
// Collector harness
// --------------------------------------------------------------------

TEST(Collector, SanitizesStreamNames)
{
    EXPECT_EQ(sanitizeStreamName("queue_run.trc"), "queue_run.trc");
    EXPECT_EQ(sanitizeStreamName(""), "collected.trc");
    // Path separators neutralized, leading dots stripped: the peer
    // cannot choose where on the collector's filesystem this lands.
    EXPECT_EQ(sanitizeStreamName("../../etc/passwd"),
              "_.._etc_passwd.trc");
    EXPECT_EQ(sanitizeStreamName("a b$c"), "a_b_c.trc");
    EXPECT_EQ(sanitizeStreamName("noext"), "noext.trc");
}

TEST(Collector, StoresCompletedSessionOverTcpLoopback)
{
    // Full TCP path: ephemeral listener, collectOne on the accepted
    // connection, a system streaming to 127.0.0.1:<port>.
    Listener listener = Listener::listen("127.0.0.1:0");
    ASSERT_TRUE(listener.valid());
    const std::uint16_t port = listener.boundPort();
    ASSERT_NE(port, 0);

    // A dedicated out-dir: the stream name is the local capture's base
    // name, so storing in "." would land on the very same file.
    const std::string outDir = "test_tracenet_tcp_out";
    std::filesystem::create_directory(outDir);
    CollectResult collected;
    std::thread collector([&] {
        Transport conn = listener.accept(10000);
        ASSERT_TRUE(conn.valid());
        collected = collectOne(conn, outDir, 10000);
    });

    const std::string localPath = "test_tracenet_tcp_local.trc";
    SystemConfig cfg = lockRunConfig();
    cfg.tracePath = localPath;
    cfg.traceStream = "127.0.0.1:" + std::to_string(port);
    {
        NdpSystem sys(cfg);
        runLockWorkload(sys);
        ASSERT_NE(sys.streamSink(), nullptr);
        EXPECT_FALSE(sys.streamSink()->streamingFailed())
            << sys.streamSink()->error();
    }
    collector.join();

    ASSERT_EQ(collected.session.outcome, SessionOutcome::Completed)
        << collected.session.error;
    ASSERT_EQ(collected.path, outDir + "/test_tracenet_tcp_local.trc");
    EXPECT_EQ(fileBytes(collected.path), fileBytes(localPath));
    std::remove(localPath.c_str());
    std::filesystem::remove_all(outDir);
}

} // namespace
} // namespace syncron::tracenet
