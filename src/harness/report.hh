/**
 * @file
 * Per-bench result collection: every bench binary funnels its finished
 * grid cells through a BenchReport, which
 *
 *   - prints the aggregated per-OpKind synchronization-latency table
 *     (SystemStats::syncLatency surfaced on the terminal),
 *   - prints a host-side perf summary (kernel events/sec — the number
 *     the fast-kernel work optimizes), and
 *   - optionally (--json=<path>) writes a machine-readable BENCH_*.json
 *     record with per-config simulated results, host perf, and latency
 *     histograms, starting the perf trajectory across PRs.
 */

#ifndef SYNCRON_HARNESS_REPORT_HH
#define SYNCRON_HARNESS_REPORT_HH

#include <chrono>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace syncron::harness {

/** Collects labeled RunOutputs and renders the perf/latency epilogue. */
class BenchReport
{
  public:
    /** @p name is the bench identity recorded in the JSON ("fig11"). */
    BenchReport(std::string name, const BenchOptions &opts);

    /** Adds one completed grid cell. */
    void add(std::string label, const RunOutput &out);

    /** Adds a cell that only has simulated time/ops (coherence benches
     *  and other runs without a full RunOutput). */
    void addScalar(std::string label, Tick simTime, std::uint64_t ops);

    /** Adds a named derived metric (e.g. an overhead percentage); lands
     *  in the JSON record's "metrics" object. */
    void addMetric(std::string label, double value);

    /**
     * Prints the latency table and host perf summary to @p os and, when
     * --json was given, writes the JSON record. Call once, last.
     */
    void finish(std::ostream &os);

  private:
    struct Record
    {
        std::string label;
        RunOutput out;
    };

    void writeJson() const;

    std::string name_;
    const BenchOptions &opts_;
    std::vector<Record> records_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
    std::uint64_t wallNs_ = 0; ///< set by finish()
};

} // namespace syncron::harness

#endif // SYNCRON_HARNESS_REPORT_HH
