#include "harness/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace syncron::harness {

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    SYNCRON_ASSERT(cells.size() == headers_.size(),
                   "row width " << cells.size() << " != header width "
                                << headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    os << "== " << title_ << " ==\n";
    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(width[c])) << cells[c];
        }
        os << "\n";
    };
    printRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
    for (const auto &note : notes_)
        os << "note: " << note << "\n";
    os << "\n";
}

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
fmtX(double ratio, int precision)
{
    return fmt(ratio, precision) + "x";
}

std::string
fmtPct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

} // namespace syncron::harness
