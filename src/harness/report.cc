#include "harness/report.hh"

#include <array>
#include <fstream>
#include <ostream>

#include "common/log.hh"
#include "common/units.hh"
#include "harness/json.hh"
#include "harness/table.hh"
#include "sync/opcodes.hh"

namespace syncron::harness {

BenchReport::BenchReport(std::string name, const BenchOptions &opts)
    : name_(std::move(name)), opts_(opts)
{}

void
BenchReport::add(std::string label, const RunOutput &out)
{
    records_.push_back(Record{std::move(label), out});
}

void
BenchReport::addScalar(std::string label, Tick simTime,
                       std::uint64_t ops)
{
    RunOutput out;
    out.time = simTime;
    out.ops = ops;
    records_.push_back(Record{std::move(label), std::move(out)});
}

void
BenchReport::addMetric(std::string label, double value)
{
    metrics_.emplace_back(std::move(label), value);
}

void
BenchReport::finish(std::ostream &os)
{
    wallNs_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());

    // -- Aggregated per-OpKind latency distribution over all configs
    std::array<SyncOpLatency, kNumSyncOpKinds> agg{};
    for (const Record &r : records_) {
        for (unsigned k = 0; k < kNumSyncOpKinds; ++k)
            agg[k] += r.out.stats.syncLatency[k];
    }
    std::uint64_t total = 0;
    for (const SyncOpLatency &l : agg)
        total += l.count;
    if (total > 0) {
        TablePrinter t("sync-op latency, aggregated over "
                           + std::to_string(records_.size())
                           + " configs",
                       {"op", "count", "avg[ns]", "min[ns]", "max[ns]"});
        for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
            if (agg[k].count == 0)
                continue;
            t.addRow({sync::opKindName(static_cast<sync::OpKind>(k)),
                      std::to_string(agg[k].count),
                      fmt(agg[k].avgTicks()
                              / static_cast<double>(kTicksPerNs),
                          1),
                      fmt(ticksToNs(agg[k].minTicks), 1),
                      fmt(ticksToNs(agg[k].maxTicks), 1)});
        }
        t.print(os);
    }

    // -- Host-side perf summary
    std::uint64_t events = 0;
    for (const Record &r : records_)
        events += r.out.hostEvents;
    const double wallSec = static_cast<double>(wallNs_) * 1e-9;
    os << "harness: " << records_.size() << " configs, jobs="
       << opts_.jobs << ", host " << fmt(wallSec, 2) << " s";
    if (events > 0 && wallSec > 0.0) {
        os << ", " << events << " kernel events ("
           << fmt(static_cast<double>(events) / wallSec / 1e6, 2)
           << " M events/s)";
    }
    os << "\n";

    if (!opts_.json.empty()) {
        writeJson();
        os << "wrote " << opts_.json << "\n";
    }
}

void
BenchReport::writeJson() const
{
    std::ofstream f(opts_.json);
    if (!f)
        SYNCRON_FATAL("cannot write --json file '" << opts_.json << "'");

    std::uint64_t events = 0;
    for (const Record &r : records_)
        events += r.out.hostEvents;
    const double wallSec = static_cast<double>(wallNs_) * 1e-9;

    JsonWriter j(f);
    j.beginObject();
    j.field("bench", name_);
#ifdef SYNCRON_SANITIZER
    // Stamped by -DSYNCRON_SANITIZE=...; perf_trend.py refuses such
    // records — instrumented numbers are not performance numbers.
    j.field("sanitizer", SYNCRON_SANITIZER);
#endif
    j.key("options");
    j.beginObject()
        .field("scale", opts_.scale)
        .field("full", opts_.full)
        .field("jobs", opts_.jobs)
        .field("backend", opts_.backend)
        .endObject();
    j.key("host");
    j.beginObject()
        .field("wallMs", static_cast<double>(wallNs_) * 1e-6)
        .field("events", events)
        .field("eventsPerSec",
               wallSec > 0.0 ? static_cast<double>(events) / wallSec
                             : 0.0)
        .endObject();
    j.key("configs");
    j.beginArray();
    for (const Record &r : records_) {
        j.beginObject();
        j.field("label", r.label);
        j.field("simTicks", r.out.time);
        j.field("ops", r.out.ops);
        j.field("opsPerMs", r.out.opsPerMs());
        j.field("hostMs", static_cast<double>(r.out.hostNs) * 1e-6);
        j.field("events", r.out.hostEvents);
        j.field("eventsPerSec", r.out.hostEventsPerSec());
        if (r.out.totalReqs > 0)
            j.field("overflowFrac", r.out.overflowFrac());
        if (r.out.offeredOps > 0) {
            j.key("load");
            j.beginObject()
                .field("ratePerUs", r.out.offeredRatePerUs)
                .field("offered", r.out.offeredOps)
                .field("issued", r.out.issuedOps)
                .field("dropped", r.out.droppedOps)
                .field("queued", r.out.queuedOps)
                .field("queueDelayTicks", r.out.queueDelayTicks)
                .endObject();
        }
        if (r.out.stats.pmWrites > 0) {
            j.field("pmWrites", r.out.stats.pmWrites);
            j.field("pmBitsWritten", r.out.stats.pmBitsWritten);
            j.field("pmFlushes", r.out.stats.pmFlushes);
        }

        // Per-OpKind latency histograms (log2 ns buckets, trailing
        // zeros trimmed), only for kinds the run actually exercised.
        bool anyLatency = false;
        for (const SyncOpLatency &l : r.out.stats.syncLatency)
            anyLatency = anyLatency || l.count > 0;
        if (anyLatency) {
            j.key("syncLatency");
            j.beginArray();
            for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
                const SyncOpLatency &l = r.out.stats.syncLatency[k];
                if (l.count == 0)
                    continue;
                j.beginObject();
                j.field("op",
                        sync::opKindName(static_cast<sync::OpKind>(k)));
                j.field("count", l.count);
                j.field("avgTicks", l.avgTicks());
                j.field("minTicks", l.minTicks);
                j.field("maxTicks", l.maxTicks);
                // Tail percentiles in ns (log-interpolated): the
                // values perf_trend.py's p99 gate compares across
                // commits.
                j.field("p50Ns", l.percentileTicks(0.50)
                                     / static_cast<double>(kTicksPerNs));
                j.field("p99Ns", l.percentileTicks(0.99)
                                     / static_cast<double>(kTicksPerNs));
                j.field("p999Ns",
                        l.percentileTicks(0.999)
                            / static_cast<double>(kTicksPerNs));
                j.key("histLog2Ticks");
                j.beginArray();
                unsigned last = 0;
                for (unsigned b = 0; b < kSyncLatencyBuckets; ++b) {
                    if (l.hist[b] != 0)
                        last = b + 1;
                }
                for (unsigned b = 0; b < last; ++b)
                    j.value(l.hist[b]);
                j.endArray();
                j.endObject();
            }
            j.endArray();
        }
        j.endObject();
    }
    j.endArray();
    if (!metrics_.empty()) {
        j.key("metrics");
        j.beginObject();
        for (const auto &[label, value] : metrics_)
            j.field(label, value);
        j.endObject();
    }
    j.endObject();
    f << "\n";
}

} // namespace syncron::harness
