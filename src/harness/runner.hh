/**
 * @file
 * Experiment runner shared by every bench binary: builds a system for a
 * scheme, runs a workload (data structure / graph app / time series /
 * primitive microbenchmark), and returns simulated time plus the event
 * statistics needed for the paper's derived metrics (energy, data
 * movement, ST occupancy, overflow rate).
 */

#ifndef SYNCRON_HARNESS_RUNNER_HH
#define SYNCRON_HARNESS_RUNNER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "durability/pm_model.hh"
#include "load/arrival.hh"
#include "system/config.hh"
#include "system/energy.hh"
#include "trace/corpus.hh"
#include "trace/format.hh"
#include "workloads/graph/kernels.hh"
#include "workloads/micro/primitives.hh"
#include "workloads/replication/replication.hh"
#include "workloads/timeseries/scrimp.hh"

namespace syncron::harness {

/** Command-line options common to all bench binaries. */
struct BenchOptions
{
    bool full = false;    ///< --full: approach paper-scale inputs
    double scale = 1.0;   ///< --scale=<f>: input size multiplier
    unsigned jobs = 1;    ///< --jobs=<n>: parallel grid workers
    std::string json;     ///< --json=<path>: machine-readable record
    std::string backend;  ///< --backend=<name>: registry override
    /// --trace-out=<path>: capture the sync-op stream to a trace file.
    /// Requires --jobs=1 (parallel grid cells would race on the file).
    std::string traceOut;
    /// --trace-in=<path>: replay an existing trace file (trace benches).
    /// Requires --jobs=1 for symmetry with capture.
    std::string traceIn;
    /// --trace-corpus=<dir>: mmap-replay every *.trc in a directory
    /// back-to-back (trace benches; see trace::Corpus). Exclusive with
    /// --trace-in.
    std::string traceCorpus;
    /// --trace-stream=<ep>: mirror the capture live to a trace
    /// collector at <host:port> or fd:N (src/tracenet/; best-effort,
    /// falls back to local capture). Requires --jobs=1 and
    /// --sim-shards=1, like --trace-out; exclusive with --trace-in.
    std::string traceStream;
    /// --analyze: run the sync-correctness analyses on every cell
    /// (fatal on findings). Works with --jobs>1: each grid cell's
    /// system owns an independent analysis::LiveAnalyzer.
    bool analyze = false;
    /// --persist=off|eager|epoch[:N]: SE-state durability mode every
    /// grid cell inherits (N = epoch batch size, default 64).
    durability::PersistMode persist = durability::PersistMode::Off;
    unsigned persistEpochOps = 64;
    /// --crash-at=<tick>: inject a crash at the given tick (0 = never).
    /// Requires --jobs=1: a crashed cell tears its machine down, which
    /// only makes sense for a single deterministic run.
    Tick crashAt = 0;
    /// --crash-sweep=<n>: durability benches only — instead of the
    /// performance grid, run the crash-injection sweep at every nth
    /// sync-op boundary (0 = disabled).
    unsigned crashSweepEvery = 0;
    /// --sim-shards=<n>: host threads sharding each simulated machine
    /// (conservative PDES). Results are bit-identical to a
    /// single-threaded run. Incompatible with --trace-out, --crash-at,
    /// and --persist, which all assume one global event order.
    unsigned simShards = 1;
    /// --load=<spec>: open-loop arrival-process override for benches
    /// that sweep offered load (see load::LoadSpec::fromString).
    load::LoadSpec loadSpec;
    bool hasLoad = false; ///< --load was given
    /// --slo-p99=<ns>: p99 latency SLO for the max-sustainable-rate
    /// search (0 = bench default).
    double sloP99Ns = 0.0;

    /** Maximum accepted --jobs value. */
    static constexpr unsigned kMaxJobs = 256;

    /** Maximum accepted --sim-shards value. */
    static constexpr unsigned kMaxShards = 64;

    /** Maximum accepted --scale value (paper scale is 8.0). */
    static constexpr double kMaxScale = 1e6;

    /** Parses argv; bad/unknown arguments are fatal and print usage. */
    static BenchOptions parse(int argc, char **argv);

    /** The usage text printed on argument errors. */
    static const char *usage();

    /** Effective workload scale (full implies a larger multiplier). */
    double effectiveScale() const { return full ? scale * 8.0 : scale; }

    /**
     * SystemConfig::make plus the CLI-wide settings (--backend,
     * --trace-out) every grid cell must inherit; benches build their
     * configs through this.
     */
    SystemConfig makeConfig(Scheme scheme, unsigned numUnits = 4,
                            unsigned clientCoresPerUnit = 15) const;
};

/** The nine Table 6 data structures. */
enum class DsKind
{
    Stack,
    Queue,
    ArrayMap,
    PriorityQueue,
    SkipList,
    HashTable,
    LinkedList,
    BstFg,
    BstDrachsler,
};

/** Printable name matching the paper ("Stack", "BST_FG", ...). */
const char *dsName(DsKind kind);

/** All nine, in Fig. 11 order. */
inline constexpr DsKind kAllDsKinds[] = {
    DsKind::Stack,      DsKind::Queue,     DsKind::ArrayMap,
    DsKind::PriorityQueue, DsKind::SkipList, DsKind::HashTable,
    DsKind::LinkedList, DsKind::BstFg,     DsKind::BstDrachsler,
};

/** Default initial size / per-core operations for a structure. */
struct DsParams
{
    unsigned initialSize;
    unsigned opsPerCore;
};

/** Table 6 defaults scaled for simulation (x8 under --full). */
DsParams dsDefaults(DsKind kind, double scale);

/** Everything a bench needs from one run. */
struct RunOutput
{
    Tick time = 0;
    std::uint64_t ops = 0; ///< ds operations / graph+ts locked updates
    SystemStats stats;
    EnergyBreakdown energy;
    double stMaxFrac = 0.0; ///< max ST occupancy fraction
    double stAvgFrac = 0.0; ///< avg ST occupancy fraction
    std::uint64_t overflowedReqs = 0;
    std::uint64_t totalReqs = 0;

    // -- Open-loop load accounting (runOpenLoop only)
    std::uint64_t offeredOps = 0; ///< scheduled arrivals
    std::uint64_t issuedOps = 0;  ///< arrivals that became sync ops
    std::uint64_t droppedOps = 0; ///< shed arrivals (Drop policy)
    std::uint64_t queuedOps = 0;  ///< arrivals issued late (Queue)
    std::uint64_t queueDelayTicks = 0; ///< total lateness of the queued
    double offeredRatePerUs = 0.0; ///< the spec's per-core offered rate

    // -- Host-side perf accounting (the simulator's own speed)
    std::uint64_t hostEvents = 0; ///< kernel events executed by the run
    std::uint64_t hostNs = 0;     ///< host wall-clock of the run

    /** Fig. 11 metric. */
    double opsPerMs() const;
    /** Fraction of requests serviced via memory (Fig. 22/23). */
    double overflowFrac() const;
    /** Host simulation speed (events per host second). */
    double hostEventsPerSec() const;
};

/** Runs one data-structure benchmark. */
RunOutput runDataStructure(const SystemConfig &cfg, DsKind kind,
                           unsigned initialSize, unsigned opsPerCore);

/** Runs one Fig. 10 primitive microbenchmark. */
RunOutput runPrimitive(const SystemConfig &cfg,
                       workloads::Primitive primitive, unsigned interval,
                       unsigned opsPerCore);

/** Runs the batched semaphore fan-out microbenchmark
 *  (workloads::SemFanoutWorkload). */
RunOutput runSemFanout(const SystemConfig &cfg, unsigned width,
                       unsigned rounds, bool contended);

/** Runs the replication (per-partition ordered apply) workload. */
RunOutput runReplication(const SystemConfig &cfg,
                         const workloads::ReplicationParams &params);

/** The 26 real application-input combinations of Fig. 12. */
struct AppInput
{
    std::string app;   ///< "bfs".."tc" or "ts"
    std::string input; ///< "wk"/"sl"/"sx"/"co" or "air"/"pow"
};
std::vector<AppInput> allAppInputs();

/**
 * Proxy inputs generated once per bench and shared read-only by every
 * grid cell. Benches prepare() the inputs they sweep — and
 * preparePartitions() the graph partitions their cells place with —
 * before building their runGrid() tasks; the cells then receive const
 * references instead of regenerating the same CSR/series/partition per
 * cell. Preparation is not thread-safe (call it from the main thread,
 * before runGrid()); the lookups are const and safe from any number of
 * grid workers.
 */
class SharedInputs
{
  public:
    /** Generates the graph/series of every combination, once each. */
    void prepare(const std::vector<AppInput> &combos, double scale);

    /** Generates (if absent) the named proxy graph. */
    void prepareGraph(const std::string &input, double scale);

    /** Generates (if absent) the named proxy series. */
    void prepareSeries(const std::string &input, double scale);

    /**
     * Computes (if absent) the partition of a prepared graph over
     * @p numUnits units — rangePartition, or greedyPartition when
     * @p metis. The graph must be prepared first.
     */
    void preparePartition(const std::string &input, unsigned numUnits,
                          bool metis = false);

    /** preparePartition() for every graph combination (ts skipped). */
    void preparePartitions(const std::vector<AppInput> &combos,
                           unsigned numUnits, bool metis = false);

    /** Prepared graph; fatal when prepare was never called for it. */
    const workloads::Graph &graph(const std::string &input) const;

    /** Prepared series; fatal when prepare was never called for it. */
    const workloads::ProxySeries &series(const std::string &input) const;

    /** Prepared partition; fatal when preparePartition was never
     *  called for the (input, numUnits, metis) combination. */
    const std::vector<UnitId> &partition(const std::string &input,
                                         unsigned numUnits,
                                         bool metis = false) const;

  private:
    static std::string partitionKey(const std::string &input,
                                    unsigned numUnits, bool metis);

    std::map<std::string, workloads::Graph> graphs_;
    std::map<std::string, workloads::ProxySeries> series_;
    std::map<std::string, std::vector<UnitId>> partitions_;
};

/** Runs one graph application on a pre-generated (shared) input. */
RunOutput runGraph(const SystemConfig &cfg, const workloads::Graph &g,
                   workloads::GraphApp app, bool metisPartition = false);

/** Runs one graph application on a shared input with a pre-computed
 *  (shared) partition — the zero-recompute grid-cell path. */
RunOutput runGraph(const SystemConfig &cfg, const workloads::Graph &g,
                   workloads::GraphApp app,
                   const std::vector<UnitId> &partition);

/** Convenience: generates the proxy input, then runs on it. */
RunOutput runGraph(const SystemConfig &cfg, const std::string &input,
                   workloads::GraphApp app, double scale,
                   bool metisPartition = false);

/** Runs SCRIMP on a pre-generated (shared) series. */
RunOutput runTimeSeries(const SystemConfig &cfg,
                        const workloads::ProxySeries &input);

/** Convenience: generates the proxy series, then runs on it. */
RunOutput runTimeSeries(const SystemConfig &cfg,
                        const std::string &input, double scale);

/**
 * Runs one Fig. 12 combination on prepared shared inputs. Graph
 * combinations use the shared partition for (input, cfg.numUnits,
 * metisPartition) — fatal when preparePartition was never called for
 * it, so grid cells can never silently fall back to recomputing.
 */
RunOutput runAppInput(const SystemConfig &cfg, const AppInput &ai,
                      const SharedInputs &inputs,
                      bool metisPartition = false);

/** Convenience: generates the combination's input, then runs on it. */
RunOutput runAppInput(const SystemConfig &cfg, const AppInput &ai,
                      double scale, bool metisPartition = false);

/**
 * Replays a synchronization-operation trace (captured or synthesized)
 * through @p cfg's backend. The config's machine shape must match the
 * trace header (see trace::replayConfig()).
 */
RunOutput runTrace(const SystemConfig &cfg, const trace::Trace &t);

/** One corpus file replayed through runTrace(). */
struct CorpusRunOutput
{
    trace::CorpusFile file;
    RunOutput run;
    /** Per-OpKind operation counts of the trace (from the mmap scan). */
    std::array<std::uint64_t, kNumSyncOpKinds> opCounts{};
};

/**
 * Replays every trace of @p corpus back-to-back under @p scheme: each
 * file is mmap-read (trace::MappedTraceReader), materialized, and
 * driven through runTrace() on a config shaped by replayConfig() with
 * @p base's CLI-wide settings (backendName, analyze, simShards)
 * carried over. fatal()s on the first malformed trace.
 */
std::vector<CorpusRunOutput> runCorpus(const SystemConfig &base,
                                       Scheme scheme,
                                       const trace::Corpus &corpus);

/**
 * Runs one open-loop load point: @p sched (prebuilt, so grid cells
 * sweeping backends at the same rate share one expansion) issued
 * through @p cfg's backend under @p spec's window/policy. The schedule
 * must cover exactly cfg's client cores.
 */
RunOutput runOpenLoop(const SystemConfig &cfg,
                      const load::LoadSpec &spec,
                      const load::ArrivalSchedule &sched);

/** Convenience: expands the spec for cfg's core count, then runs. */
RunOutput runOpenLoop(const SystemConfig &cfg,
                      const load::LoadSpec &spec);

} // namespace syncron::harness

#endif // SYNCRON_HARNESS_RUNNER_HH
