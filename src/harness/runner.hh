/**
 * @file
 * Experiment runner shared by every bench binary: builds a system for a
 * scheme, runs a workload (data structure / graph app / time series /
 * primitive microbenchmark), and returns simulated time plus the event
 * statistics needed for the paper's derived metrics (energy, data
 * movement, ST occupancy, overflow rate).
 */

#ifndef SYNCRON_HARNESS_RUNNER_HH
#define SYNCRON_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "system/config.hh"
#include "system/energy.hh"
#include "workloads/graph/kernels.hh"

namespace syncron::harness {

/** Command-line options common to all bench binaries. */
struct BenchOptions
{
    bool full = false;   ///< --full: approach paper-scale inputs
    double scale = 1.0;  ///< --scale=<f>: input size multiplier

    /** Parses argv; unknown arguments are fatal. */
    static BenchOptions parse(int argc, char **argv);

    /** Effective workload scale (full implies a larger multiplier). */
    double effectiveScale() const { return full ? scale * 8.0 : scale; }
};

/** The nine Table 6 data structures. */
enum class DsKind
{
    Stack,
    Queue,
    ArrayMap,
    PriorityQueue,
    SkipList,
    HashTable,
    LinkedList,
    BstFg,
    BstDrachsler,
};

/** Printable name matching the paper ("Stack", "BST_FG", ...). */
const char *dsName(DsKind kind);

/** All nine, in Fig. 11 order. */
inline constexpr DsKind kAllDsKinds[] = {
    DsKind::Stack,      DsKind::Queue,     DsKind::ArrayMap,
    DsKind::PriorityQueue, DsKind::SkipList, DsKind::HashTable,
    DsKind::LinkedList, DsKind::BstFg,     DsKind::BstDrachsler,
};

/** Default initial size / per-core operations for a structure. */
struct DsParams
{
    unsigned initialSize;
    unsigned opsPerCore;
};

/** Table 6 defaults scaled for simulation (x8 under --full). */
DsParams dsDefaults(DsKind kind, double scale);

/** Everything a bench needs from one run. */
struct RunOutput
{
    Tick time = 0;
    std::uint64_t ops = 0; ///< ds operations / graph+ts locked updates
    SystemStats stats;
    EnergyBreakdown energy;
    double stMaxFrac = 0.0; ///< max ST occupancy fraction
    double stAvgFrac = 0.0; ///< avg ST occupancy fraction
    std::uint64_t overflowedReqs = 0;
    std::uint64_t totalReqs = 0;

    /** Fig. 11 metric. */
    double opsPerMs() const;
    /** Fraction of requests serviced via memory (Fig. 22/23). */
    double overflowFrac() const;
};

/** Runs one data-structure benchmark. */
RunOutput runDataStructure(const SystemConfig &cfg, DsKind kind,
                           unsigned initialSize, unsigned opsPerCore);

/** Runs one graph application on a proxy input. */
RunOutput runGraph(const SystemConfig &cfg, const std::string &input,
                   workloads::GraphApp app, double scale,
                   bool metisPartition = false);

/** Runs time-series analysis (SCRIMP) on a proxy input. */
RunOutput runTimeSeries(const SystemConfig &cfg,
                        const std::string &input, double scale);

/** The 26 real application-input combinations of Fig. 12. */
struct AppInput
{
    std::string app;   ///< "bfs".."tc" or "ts"
    std::string input; ///< "wk"/"sl"/"sx"/"co" or "air"/"pow"
};
std::vector<AppInput> allAppInputs();

/** Runs one Fig. 12 combination. */
RunOutput runAppInput(const SystemConfig &cfg, const AppInput &ai,
                      double scale, bool metisPartition = false);

} // namespace syncron::harness

#endif // SYNCRON_HARNESS_RUNNER_HH
