/**
 * @file
 * Minimal streaming JSON writer for the bench harness's machine-readable
 * perf records (BENCH_*.json). No DOM, no dependencies: the writer
 * tracks nesting and comma state so callers emit well-formed JSON with
 * begin/end/key/value calls in document order.
 */

#ifndef SYNCRON_HARNESS_JSON_HH
#define SYNCRON_HARNESS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <utility>
#include <vector>

namespace syncron::harness {

/** Streaming JSON emitter with comma/nesting bookkeeping. */
class JsonWriter
{
  public:
    /** Writes to @p os; the stream must outlive the writer. */
    explicit JsonWriter(std::ostream &os);

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emits an object key; the next emitted value is its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(std::uint64_t u);
    JsonWriter &value(std::int64_t i);
    JsonWriter &value(unsigned u);
    JsonWriter &value(int i);
    JsonWriter &value(bool b);

    /** Shorthand for key(name) followed by value(v). */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

  private:
    void separate();
    void indent();

    std::ostream &os_;
    std::vector<bool> hasItem_; ///< per nesting level: item emitted yet?
    bool pendingKey_ = false;
};

} // namespace syncron::harness

#endif // SYNCRON_HARNESS_JSON_HH
