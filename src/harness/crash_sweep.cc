#include "harness/crash_sweep.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "durability/image.hh"
#include "durability/manager.hh"
#include "durability/oracle.hh"
#include "durability/recovery.hh"
#include "system/system.hh"
#include "trace/capture.hh"
#include "trace/replay.hh"

namespace syncron::harness {

using durability::PersistedImage;
using durability::RecoveryEngine;
using durability::RecoveryResult;
using durability::ShadowOracle;

namespace {

/** Oracle over a full record stream, invariants included. */
ShadowOracle
oracleOver(const trace::Trace &t)
{
    ShadowOracle o(t.primitives);
    for (const trace::TraceRecord &r : t.records)
        o.apply(r);
    o.checkInvariants(t.numClientCores());
    return o;
}

void
tagged(std::vector<std::string> &out, Tick crashTick,
       const std::string &msg)
{
    std::ostringstream os;
    os << "crash@" << crashTick << ": " << msg;
    out.push_back(os.str());
}

} // namespace

CrashSweepResult
runCrashSweep(const SystemConfig &base,
              const workloads::ReplicationParams &params, unsigned every)
{
    SYNCRON_ASSERT(every >= 1, "crash sweep stride must be >= 1");
    SYNCRON_ASSERT(base.persistMode != durability::PersistMode::Off,
                   "crash sweep needs a durability mode (persistMode "
                   "is Off)");

    CrashSweepResult result;

    // 1. Clean reference run: full WAL + final logical state.
    SystemConfig cleanCfg = base;
    cleanCfg.crashAtTick = 0;
    trace::Trace refWal;
    {
        NdpSystem ref(cleanCfg);
        workloads::ReplicationWorkload w(ref, params);
        ref.run();
        SYNCRON_ASSERT(ref.durability() != nullptr,
                       "durability manager missing from reference run");
        refWal = ref.durability()->walTrace();
    }
    result.referenceRecords = refWal.records.size();
    ShadowOracle refOracle = oracleOver(refWal);
    for (const std::string &v : refOracle.violations())
        result.violations.push_back("reference run: " + v);
    if (!refOracle.idle())
        result.violations.push_back(
            "reference run: final state not idle");

    // 2. The injection points: one past each distinct completion tick,
    //    so the crash lands after that op's WAL append but before the
    //    next boundary.
    std::vector<Tick> boundaries;
    boundaries.reserve(refWal.records.size());
    for (const trace::TraceRecord &r : refWal.records)
        boundaries.push_back(r.completed);
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());
    result.boundaries = boundaries.size();

    for (std::size_t i = 0; i < boundaries.size(); i += every) {
        const Tick crashTick = boundaries[i] + 1;
        SystemConfig crashCfg = base;
        crashCfg.crashAtTick = crashTick;

        PersistedImage img;
        {
            NdpSystem sys(crashCfg);
            workloads::ReplicationWorkload w(sys, params);
            sys.run();
            if (!sys.crashed())
                continue; // the run outran the injected tick
            SYNCRON_ASSERT(sys.durability() != nullptr,
                           "durability manager missing from crash run");
            img = sys.durability()->snapshot();
        }
        ++result.injections;

        // 3a. The image must survive its own container round-trip.
        std::stringstream ss;
        durability::writeImage(ss, img);
        const PersistedImage reread = durability::readImage(ss);
        if (!(reread == img))
            tagged(result.violations, crashTick,
                   "image changed across serialize/parse round-trip");

        // 3b. Recover against the reference WAL.
        const RecoveryResult rr = RecoveryEngine(reread, refWal).recover();
        for (const std::string &v : rr.violations)
            tagged(result.violations, crashTick, v);
        result.totalRolledBack += rr.rolledBack;
        if (!rr.violations.empty())
            continue; // prefix/resume are meaningless after a failure

        // 3c. Replay the undone tail on a fresh system.
        SystemConfig resumeCfg = base;
        resumeCfg.persistMode = durability::PersistMode::Off;
        resumeCfg.crashAtTick = 0;
        NdpSystem resumed(resumeCfg);
        trace::TraceCapture resumedCap(resumed.config());
        resumed.api().setTraceSink(&resumedCap);
        trace::Replayer replayer(rr.resume);
        replayer.install(resumed);
        resumed.run();
        if (replayer.opsReplayed() != rr.resume.records.size()) {
            std::ostringstream os;
            os << "resume replay completed " << replayer.opsReplayed()
               << " of " << rr.resume.records.size() << " records";
            tagged(result.violations, crashTick, os.str());
            continue;
        }

        // 4a. The resumed run itself must be well-formed and end idle.
        //     Its capture numbers primitives by first use and its
        //     clock restarts at zero (fresh system), so the check runs
        //     entirely in the resumed capture's own namespace.
        ShadowOracle live = oracleOver(resumedCap.trace());
        for (const std::string &v : live.violations())
            tagged(result.violations, crashTick, "resumed run: " + v);
        if (!live.idle())
            tagged(result.violations, crashTick,
                   "resumed run's final state not idle");

        // 4b. prefix + resume must partition the reference log:
        //     applying both halves (reference numbering and timebase)
        //     reaches the clean run's final state with no invariant
        //     violations. A recovery that dropped or duplicated a
        //     record fails here.
        ShadowOracle fin(refWal.primitives);
        for (const trace::TraceRecord &r : rr.prefix.records)
            fin.apply(r);
        for (const trace::TraceRecord &r : rr.resume.records)
            fin.apply(r);
        fin.checkInvariants(refWal.numClientCores());
        for (const std::string &v : fin.violations())
            tagged(result.violations, crashTick,
                   "recovered+resumed: " + v);
        if (!fin.idle())
            tagged(result.violations, crashTick,
                   "recovered+resumed state not idle");
        if (!fin.sameStateAs(refOracle))
            tagged(result.violations, crashTick,
                   "recovered+resumed state differs from the clean "
                   "run's final state");
    }

    return result;
}

} // namespace syncron::harness
