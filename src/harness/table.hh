/**
 * @file
 * Plain-text table formatting for the benchmark harness: every bench
 * binary prints the rows/series of its paper table or figure through
 * this printer, so outputs are uniform and grep-able.
 */

#ifndef SYNCRON_HARNESS_TABLE_HH
#define SYNCRON_HARNESS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace syncron::harness {

/** Fixed-width column table with a title and optional notes. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title,
                          std::vector<std::string> headers);

    /** Appends one row (cells.size() must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Appends a free-form note printed under the table. */
    void addNote(std::string note);

    /** Renders to @p os. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

/** Formats a double with @p precision decimals. */
std::string fmt(double value, int precision = 2);

/** Formats a ratio as "1.23x". */
std::string fmtX(double ratio, int precision = 2);

/** Formats a fraction as a percentage "12.3%". */
std::string fmtPct(double fraction, int precision = 1);

} // namespace syncron::harness

#endif // SYNCRON_HARNESS_TABLE_HH
