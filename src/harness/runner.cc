#include "harness/runner.hh"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/log.hh"
#include "load/openloop.hh"
#include "sync/registry.hh"
#include "system/system.hh"
#include "trace/mmap_reader.hh"
#include "trace/replay.hh"
#include "workloads/datastructures/structures.hh"
#include "workloads/timeseries/scrimp.hh"

namespace syncron::harness {

using workloads::DsResult;

const char *
BenchOptions::usage()
{
    return "options:\n"
           "  --full             approach paper-scale inputs (scale x8)\n"
           "  --scale=<f>        input-size multiplier (f > 0)\n"
           "  --jobs=<n>         parallel grid workers (1..256)\n"
           "  --json=<path>      write a machine-readable BENCH_*.json\n"
           "  --backend=<name>   select a registered sync backend by "
           "name\n"
           "  --trace-out=<path> capture the sync-op stream to a trace "
           "file (needs --jobs=1)\n"
           "  --trace-in=<path>  replay an existing trace file (needs "
           "--jobs=1)\n"
           "  --trace-corpus=<d> mmap-replay every *.trc in directory d "
           "back-to-back\n"
           "  --trace-stream=<e> mirror the capture to a collector at "
           "<host:port> or fd:N (needs --jobs=1)\n"
           "  --analyze          run the sync-correctness analyses on "
           "every cell (fatal on findings)\n"
           "  --persist=<m>      SE-state durability: off, eager, or "
           "epoch[:N] (batch size N)\n"
           "  --crash-at=<t>     inject a crash at tick t (needs "
           "--jobs=1)\n"
           "  --crash-sweep=<n>  durability benches: crash-inject at "
           "every nth sync-op boundary\n"
           "  --sim-shards=<n>   host threads per simulated machine "
           "(bit-identical results; incompatible with --trace-out, "
           "--crash-at, --persist)\n"
           "  --load=<spec>      open-loop arrival process: "
           "<kind>[:k=v,...], kind = fixed|poisson|bursty|diurnal, "
           "keys rate, ops, window, locks, hold, policy, seed, burst, "
           "gapx, phases, amp\n"
           "  --slo-p99=<ns>     p99 latency SLO (ns) for the "
           "max-sustainable-rate search";
}

namespace {

/** Value of "--opt=value"-style @p arg, or nullptr if no match. */
const char *
optValue(const char *arg, const char *prefix)
{
    const std::size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0)
        return nullptr;
    return arg + n;
}

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *val = nullptr;
        if (std::strcmp(arg, "--full") == 0) {
            opts.full = true;
        } else if ((val = optValue(arg, "--scale="))) {
            char *end = nullptr;
            errno = 0;
            opts.scale = std::strtod(val, &end);
            if (*val == '\0' || end == nullptr || *end != '\0'
                || errno != 0 || !std::isfinite(opts.scale)
                || !(opts.scale > 0.0) || opts.scale > kMaxScale) {
                SYNCRON_FATAL("bad --scale value '"
                              << val << "' (need a number in (0, "
                              << kMaxScale << "])\n"
                              << usage());
            }
        } else if ((val = optValue(arg, "--jobs="))) {
            char *end = nullptr;
            errno = 0;
            const long jobs = std::strtol(val, &end, 10);
            if (*val == '\0' || end == nullptr || *end != '\0'
                || errno != 0 || jobs < 1
                || jobs > static_cast<long>(kMaxJobs)) {
                SYNCRON_FATAL("bad --jobs value '"
                              << val << "' (need 1.." << kMaxJobs
                              << ")\n"
                              << usage());
            }
            opts.jobs = static_cast<unsigned>(jobs);
        } else if ((val = optValue(arg, "--json="))) {
            if (*val == '\0')
                SYNCRON_FATAL("--json needs a path\n" << usage());
            opts.json = val;
        } else if ((val = optValue(arg, "--backend="))) {
            if (*val == '\0'
                || !sync::BackendRegistry::instance().contains(val)) {
                SYNCRON_FATAL(
                    "unknown --backend '"
                    << val << "' (known: "
                    << sync::BackendRegistry::instance().knownNames()
                    << ")\n"
                    << usage());
            }
            opts.backend = val;
        } else if ((val = optValue(arg, "--trace-out="))) {
            if (*val == '\0')
                SYNCRON_FATAL("--trace-out needs a path\n" << usage());
            opts.traceOut = val;
        } else if ((val = optValue(arg, "--trace-in="))) {
            if (*val == '\0')
                SYNCRON_FATAL("--trace-in needs a path\n" << usage());
            opts.traceIn = val;
        } else if ((val = optValue(arg, "--trace-corpus="))) {
            if (*val == '\0') {
                SYNCRON_FATAL("--trace-corpus needs a directory\n"
                              << usage());
            }
            opts.traceCorpus = val;
        } else if ((val = optValue(arg, "--trace-stream="))) {
            if (*val == '\0') {
                SYNCRON_FATAL("--trace-stream needs an endpoint "
                              "(host:port or fd:N)\n"
                              << usage());
            }
            opts.traceStream = val;
        } else if (std::strcmp(arg, "--analyze") == 0) {
            opts.analyze = true;
        } else if ((val = optValue(arg, "--persist="))) {
            std::string mode = val;
            const std::size_t colon = mode.find(':');
            if (colon != std::string::npos) {
                const std::string count = mode.substr(colon + 1);
                mode.resize(colon);
                char *end = nullptr;
                errno = 0;
                const long n = std::strtol(count.c_str(), &end, 10);
                if (count.empty() || end == nullptr || *end != '\0'
                    || errno != 0 || n < 1) {
                    SYNCRON_FATAL("bad --persist epoch count '"
                                  << count << "' (need >= 1)\n"
                                  << usage());
                }
                opts.persistEpochOps = static_cast<unsigned>(n);
            }
            if (!durability::persistModeFromName(mode, opts.persist)
                || (colon != std::string::npos
                    && opts.persist != durability::PersistMode::Epoch)) {
                SYNCRON_FATAL("bad --persist value '"
                              << val
                              << "' (need off, eager, or epoch[:N])\n"
                              << usage());
            }
        } else if ((val = optValue(arg, "--crash-at="))) {
            char *end = nullptr;
            errno = 0;
            const unsigned long long t = std::strtoull(val, &end, 10);
            if (*val == '\0' || end == nullptr || *end != '\0'
                || errno != 0 || t == 0) {
                SYNCRON_FATAL("bad --crash-at value '"
                              << val << "' (need a tick >= 1)\n"
                              << usage());
            }
            opts.crashAt = static_cast<Tick>(t);
        } else if ((val = optValue(arg, "--crash-sweep="))) {
            char *end = nullptr;
            errno = 0;
            const long n = std::strtol(val, &end, 10);
            if (*val == '\0' || end == nullptr || *end != '\0'
                || errno != 0 || n < 1) {
                SYNCRON_FATAL("bad --crash-sweep value '"
                              << val << "' (need >= 1)\n"
                              << usage());
            }
            opts.crashSweepEvery = static_cast<unsigned>(n);
        } else if ((val = optValue(arg, "--sim-shards="))) {
            char *end = nullptr;
            errno = 0;
            const long n = std::strtol(val, &end, 10);
            if (*val == '\0' || end == nullptr || *end != '\0'
                || errno != 0 || n < 1
                || n > static_cast<long>(kMaxShards)) {
                SYNCRON_FATAL("bad --sim-shards value '"
                              << val << "' (need 1.." << kMaxShards
                              << ")\n"
                              << usage());
            }
            opts.simShards = static_cast<unsigned>(n);
        } else if ((val = optValue(arg, "--load="))) {
            std::string error;
            if (!load::LoadSpec::fromString(val, opts.loadSpec,
                                            error)) {
                SYNCRON_FATAL("bad --load spec '" << val << "': "
                                                  << error << "\n"
                                                  << usage());
            }
            opts.hasLoad = true;
        } else if ((val = optValue(arg, "--slo-p99="))) {
            char *end = nullptr;
            errno = 0;
            const double ns = std::strtod(val, &end);
            if (*val == '\0' || end == nullptr || *end != '\0'
                || errno != 0 || !std::isfinite(ns) || !(ns > 0.0)) {
                SYNCRON_FATAL("bad --slo-p99 value '"
                              << val
                              << "' (need a positive latency in ns)\n"
                              << usage());
            }
            opts.sloP99Ns = ns;
        } else if (std::strncmp(arg, "--benchmark", 11) == 0) {
            // Tolerate google-benchmark's standard flags.
        } else {
            SYNCRON_FATAL("unknown argument '" << arg << "'\n"
                                               << usage());
        }
    }
    // A trace bench either captures or replays a file; combining the
    // two would silently ignore --trace-out, so reject it.
    if (!opts.traceOut.empty() && !opts.traceIn.empty()) {
        SYNCRON_FATAL("--trace-out and --trace-in are mutually "
                      "exclusive (capture or replay, not both)\n"
                      << usage());
    }
    // Capture (and, for symmetry, replay-from-file) is single-job only:
    // parallel grid cells all inherit the same tracePath and would race
    // writing the one file.
    if ((!opts.traceOut.empty() || !opts.traceIn.empty())
        && opts.jobs > 1) {
        SYNCRON_FATAL("--trace-out/--trace-in require --jobs=1 "
                      "(parallel grid cells would race on the trace "
                      "file)\n"
                      << usage());
    }
    // A corpus IS a replay source; combining it with a single replay
    // file is ambiguous.
    if (!opts.traceCorpus.empty() && !opts.traceIn.empty()) {
        SYNCRON_FATAL("--trace-corpus and --trace-in are mutually "
                      "exclusive (one replay source)\n"
                      << usage());
    }
    // Streaming mirrors a capture; it shares every capture constraint
    // (one stream per run) and cannot coexist with replaying a file.
    if (!opts.traceStream.empty() && !opts.traceIn.empty()) {
        SYNCRON_FATAL("--trace-stream and --trace-in are mutually "
                      "exclusive (capture or replay, not both)\n"
                      << usage());
    }
    if (!opts.traceStream.empty() && opts.jobs > 1) {
        SYNCRON_FATAL("--trace-stream requires --jobs=1 (parallel grid "
                      "cells would interleave on one collector "
                      "session)\n"
                      << usage());
    }
    // Crash injection tears the (single) machine down mid-run; a
    // parallel grid would crash every cell at the same tick, which is
    // never what a deterministic fault-injection run means.
    if (opts.crashAt != 0 && opts.jobs > 1) {
        SYNCRON_FATAL("--crash-at requires --jobs=1 (crash injection "
                      "is a single deterministic run, not a grid)\n"
                      << usage());
    }
    // Sharded simulation only guarantees one global order for the
    // simulated machine's events, not for the side channels below: the
    // trace writer and the durability log both record hook-fire order,
    // and crash injection stops one queue at an exact tick. All three
    // need the single-queue kernel.
    if (opts.simShards > 1 && !opts.traceOut.empty()) {
        SYNCRON_FATAL("--trace-out requires --sim-shards=1 (trace "
                      "capture records one global event order)\n"
                      << usage());
    }
    if (opts.simShards > 1 && !opts.traceStream.empty()) {
        SYNCRON_FATAL("--trace-stream requires --sim-shards=1 (trace "
                      "capture records one global event order)\n"
                      << usage());
    }
    if (opts.simShards > 1 && opts.crashAt != 0) {
        SYNCRON_FATAL("--crash-at requires --sim-shards=1 (crash "
                      "injection stops the machine at an exact global "
                      "tick)\n"
                      << usage());
    }
    if (opts.simShards > 1
        && opts.persist != durability::PersistMode::Off) {
        SYNCRON_FATAL("--persist requires --sim-shards=1 (the "
                      "durability log records one global sync-op "
                      "order)\n"
                      << usage());
    }
    return opts;
}

SystemConfig
BenchOptions::makeConfig(Scheme scheme, unsigned numUnits,
                         unsigned clientCoresPerUnit) const
{
    SystemConfig cfg =
        SystemConfig::make(scheme, numUnits, clientCoresPerUnit);
    cfg.backendName = backend;
    cfg.tracePath = traceOut;
    cfg.traceStream = traceStream;
    cfg.analyze = analyze;
    cfg.persistMode = persist;
    cfg.persistEpochOps = persistEpochOps;
    cfg.crashAtTick = crashAt;
    cfg.simShards = simShards;
    return cfg;
}

const char *
dsName(DsKind kind)
{
    switch (kind) {
      case DsKind::Stack: return "Stack";
      case DsKind::Queue: return "Queue";
      case DsKind::ArrayMap: return "Array Map";
      case DsKind::PriorityQueue: return "Priority Queue";
      case DsKind::SkipList: return "Skip List";
      case DsKind::HashTable: return "Hash Table";
      case DsKind::LinkedList: return "Linked List";
      case DsKind::BstFg: return "BST_FG";
      case DsKind::BstDrachsler: return "BST_Drachsler";
    }
    return "?";
}

DsParams
dsDefaults(DsKind kind, double scale)
{
    // Table 6 sizes, scaled down for simulation speed at scale 1.0;
    // --full (scale 8) approaches the paper's configuration.
    auto s = [scale](unsigned base) {
        return std::max(8u, static_cast<unsigned>(base * scale));
    };
    switch (kind) {
      case DsKind::Stack: return {s(12500), s(24)};
      case DsKind::Queue: return {s(12500), s(24)};
      case DsKind::ArrayMap: return {10, s(24)};
      case DsKind::PriorityQueue: return {s(2500), s(24)};
      case DsKind::SkipList: return {s(640), s(16)};
      case DsKind::HashTable: return {s(128), s(24)};
      case DsKind::LinkedList: return {s(256), s(3)};
      case DsKind::BstFg: return {s(2500), s(10)};
      case DsKind::BstDrachsler: return {s(1250), s(10)};
    }
    SYNCRON_PANIC("unknown data structure");
}

double
RunOutput::opsPerMs() const
{
    if (time == 0)
        return 0.0;
    return static_cast<double>(ops)
           / (static_cast<double>(time) / 1e9);
}

double
RunOutput::overflowFrac() const
{
    if (totalReqs == 0)
        return 0.0;
    return static_cast<double>(overflowedReqs)
           / static_cast<double>(totalReqs);
}

double
RunOutput::hostEventsPerSec() const
{
    if (hostNs == 0)
        return 0.0;
    return static_cast<double>(hostEvents)
           / (static_cast<double>(hostNs) * 1e-9);
}

namespace {

/** Wall-clock of one run, feeding RunOutput's host perf fields. */
class HostTimer
{
  public:
    std::uint64_t
    elapsedNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

  private:
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/** Fills the scheme-independent tail of a RunOutput. */
void
finishOutput(RunOutput &out, NdpSystem &sys)
{
    out.hostEvents = sys.machine().executedEvents();
    out.stats = sys.stats();
    out.energy = computeEnergy(sys.stats(), sys.config());
    if (engine::SynCronBackend *eng = sys.syncronBackend()) {
        out.stMaxFrac = static_cast<double>(sys.stats().stMaxOccupied)
                        / sys.config().stEntries;
        out.stAvgFrac =
            sys.stats().avgStOccupancy() / sys.config().stEntries;
        out.overflowedReqs = eng->overflowedRequests();
        out.totalReqs = eng->totalRequests();
    }
}

} // namespace

RunOutput
runDataStructure(const SystemConfig &cfg, DsKind kind,
                 unsigned initialSize, unsigned opsPerCore)
{
    HostTimer timer;
    NdpSystem sys(cfg);
    const unsigned n = sys.numClientCores();

    // The structure object must outlive the run.
    std::unique_ptr<workloads::SimStack> stack;
    std::unique_ptr<workloads::SimQueue> queue;
    std::unique_ptr<workloads::SimArrayMap> map;
    std::unique_ptr<workloads::SimPriorityQueue> pq;
    std::unique_ptr<workloads::SimSkipList> skip;
    std::unique_ptr<workloads::SimHashTable> hash;
    std::unique_ptr<workloads::SimLinkedList> list;
    std::unique_ptr<workloads::SimBstFg> bstFg;
    std::unique_ptr<workloads::SimBstDrachsler> bstDr;

    for (unsigned i = 0; i < n; ++i) {
        core::Core &c = sys.clientCore(i);
        switch (kind) {
          case DsKind::Stack:
            if (!stack)
                stack = std::make_unique<workloads::SimStack>(
                    sys, initialSize);
            sys.spawn(stack->worker(c, opsPerCore), c);
            break;
          case DsKind::Queue:
            if (!queue)
                queue = std::make_unique<workloads::SimQueue>(
                    sys, initialSize);
            sys.spawn(queue->worker(c, opsPerCore), c);
            break;
          case DsKind::ArrayMap:
            if (!map)
                map = std::make_unique<workloads::SimArrayMap>(
                    sys, initialSize);
            sys.spawn(map->worker(c, opsPerCore), c);
            break;
          case DsKind::PriorityQueue:
            if (!pq)
                pq = std::make_unique<workloads::SimPriorityQueue>(
                    sys, initialSize);
            sys.spawn(pq->worker(c, opsPerCore), c);
            break;
          case DsKind::SkipList:
            if (!skip)
                skip = std::make_unique<workloads::SimSkipList>(
                    sys, initialSize);
            sys.spawn(skip->worker(c, opsPerCore), c);
            break;
          case DsKind::HashTable:
            if (!hash)
                hash = std::make_unique<workloads::SimHashTable>(
                    sys, initialSize);
            sys.spawn(hash->worker(c, opsPerCore), c);
            break;
          case DsKind::LinkedList:
            if (!list)
                list = std::make_unique<workloads::SimLinkedList>(
                    sys, initialSize);
            sys.spawn(list->worker(c, opsPerCore), c);
            break;
          case DsKind::BstFg:
            if (!bstFg)
                bstFg = std::make_unique<workloads::SimBstFg>(
                    sys, initialSize);
            sys.spawn(bstFg->worker(c, opsPerCore), c);
            break;
          case DsKind::BstDrachsler:
            if (!bstDr)
                bstDr = std::make_unique<workloads::SimBstDrachsler>(
                    sys, initialSize);
            sys.spawn(bstDr->worker(c, opsPerCore), c);
            break;
        }
    }

    sys.run();
    RunOutput out;
    out.time = sys.elapsed();
    out.ops = static_cast<std::uint64_t>(n) * opsPerCore;
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

RunOutput
runPrimitive(const SystemConfig &cfg, workloads::Primitive primitive,
             unsigned interval, unsigned opsPerCore)
{
    HostTimer timer;
    NdpSystem sys(cfg);
    workloads::PrimitiveWorkload workload(sys, primitive, interval,
                                          opsPerCore);
    sys.run();

    RunOutput out;
    out.time = sys.elapsed();
    out.ops = sys.stats().syncOps;
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

RunOutput
runSemFanout(const SystemConfig &cfg, unsigned width, unsigned rounds,
             bool contended)
{
    HostTimer timer;
    NdpSystem sys(cfg);
    workloads::SemFanoutWorkload workload(sys, width, rounds, contended);
    sys.run();

    RunOutput out;
    out.time = sys.elapsed();
    out.ops = sys.stats().syncOps;
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

RunOutput
runReplication(const SystemConfig &cfg,
               const workloads::ReplicationParams &params)
{
    HostTimer timer;
    NdpSystem sys(cfg);
    workloads::ReplicationWorkload workload(sys, params);
    sys.run();

    RunOutput out;
    out.time = sys.elapsed();
    out.ops = sys.stats().syncOps;
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

void
SharedInputs::prepare(const std::vector<AppInput> &combos, double scale)
{
    for (const AppInput &ai : combos) {
        if (ai.app == "ts")
            prepareSeries(ai.input, scale);
        else
            prepareGraph(ai.input, scale);
    }
}

void
SharedInputs::prepareGraph(const std::string &input, double scale)
{
    if (!graphs_.count(input))
        graphs_.emplace(input, workloads::makeProxyInput(input, scale));
}

void
SharedInputs::prepareSeries(const std::string &input, double scale)
{
    if (!series_.count(input))
        series_.emplace(input, workloads::makeProxySeries(input, scale));
}

namespace {

/** Partition policy selection shared by every compute site. */
std::vector<UnitId>
computePartition(const workloads::Graph &g, unsigned numUnits,
                 bool metisPartition)
{
    return metisPartition ? workloads::greedyPartition(g, numUnits)
                          : workloads::rangePartition(g, numUnits);
}

} // namespace

std::string
SharedInputs::partitionKey(const std::string &input, unsigned numUnits,
                           bool metis)
{
    return input + "/" + std::to_string(numUnits)
           + (metis ? "/greedy" : "/range");
}

void
SharedInputs::preparePartition(const std::string &input,
                               unsigned numUnits, bool metis)
{
    const std::string key = partitionKey(input, numUnits, metis);
    if (partitions_.count(key))
        return;
    partitions_.emplace(key,
                        computePartition(graph(input), numUnits, metis));
}

void
SharedInputs::preparePartitions(const std::vector<AppInput> &combos,
                                unsigned numUnits, bool metis)
{
    for (const AppInput &ai : combos) {
        if (ai.app != "ts")
            preparePartition(ai.input, numUnits, metis);
    }
}

const workloads::Graph &
SharedInputs::graph(const std::string &input) const
{
    auto it = graphs_.find(input);
    if (it == graphs_.end())
        SYNCRON_FATAL("graph input '" << input << "' was not prepared");
    return it->second;
}

const workloads::ProxySeries &
SharedInputs::series(const std::string &input) const
{
    auto it = series_.find(input);
    if (it == series_.end())
        SYNCRON_FATAL("series input '" << input << "' was not prepared");
    return it->second;
}

const std::vector<UnitId> &
SharedInputs::partition(const std::string &input, unsigned numUnits,
                        bool metis) const
{
    auto it = partitions_.find(partitionKey(input, numUnits, metis));
    if (it == partitions_.end()) {
        SYNCRON_FATAL("partition of '"
                      << input << "' over " << numUnits << " units ("
                      << (metis ? "greedy" : "range")
                      << ") was not prepared");
    }
    return it->second;
}

namespace {

/** Shared body of the runGraph overloads; owns the graph + partition. */
RunOutput
runGraphOwned(const SystemConfig &cfg, workloads::Graph g,
              workloads::GraphApp app, std::vector<UnitId> part)
{
    // Pre-computed (shared) partitions arrive from the caller, so the
    // old derive-from-cfg invariant no longer holds by construction:
    // catch a partition prepared for another graph or unit count here
    // instead of deep inside placement.
    if (part.size() != g.numVertices)
        SYNCRON_FATAL("partition covers " << part.size()
                                          << " vertices, graph has "
                                          << g.numVertices);
    for (UnitId u : part) {
        if (u >= cfg.numUnits)
            SYNCRON_FATAL("partition places a vertex in unit "
                          << u << " of a " << cfg.numUnits
                          << "-unit system (partition prepared for a "
                             "different unit count?)");
    }

    HostTimer timer;
    NdpSystem sys(cfg);
    workloads::PlacedGraph placed(sys, std::move(g), std::move(part));

    workloads::GraphRunResult r =
        workloads::runGraphApp(sys, placed, app);

    RunOutput out;
    out.time = r.time;
    out.ops = r.updates;
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

} // namespace

RunOutput
runGraph(const SystemConfig &cfg, const workloads::Graph &g,
         workloads::GraphApp app, bool metisPartition)
{
    return runGraphOwned(cfg, g, app,
                         computePartition(g, cfg.numUnits,
                                          metisPartition));
}

RunOutput
runGraph(const SystemConfig &cfg, const workloads::Graph &g,
         workloads::GraphApp app, const std::vector<UnitId> &partition)
{
    return runGraphOwned(cfg, g, app, partition);
}

RunOutput
runGraph(const SystemConfig &cfg, const std::string &input,
         workloads::GraphApp app, double scale, bool metisPartition)
{
    workloads::Graph g = workloads::makeProxyInput(input, scale);
    std::vector<UnitId> part =
        computePartition(g, cfg.numUnits, metisPartition);
    return runGraphOwned(cfg, std::move(g), app, std::move(part));
}

RunOutput
runTimeSeries(const SystemConfig &cfg,
              const workloads::ProxySeries &input)
{
    HostTimer timer;
    NdpSystem sys(cfg);
    workloads::ScrimpWorkload ts(sys, input);
    const Tick time = ts.run();

    RunOutput out;
    out.time = time;
    out.ops = ts.updates();
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

RunOutput
runTimeSeries(const SystemConfig &cfg, const std::string &input,
              double scale)
{
    return runTimeSeries(cfg, workloads::makeProxySeries(input, scale));
}

std::vector<AppInput>
allAppInputs()
{
    std::vector<AppInput> all;
    for (const char *app : {"bfs", "cc", "sssp", "pr", "tf", "tc"}) {
        for (const char *input : {"wk", "sl", "sx", "co"})
            all.push_back(AppInput{app, input});
    }
    all.push_back(AppInput{"ts", "air"});
    all.push_back(AppInput{"ts", "pow"});
    return all;
}

RunOutput
runAppInput(const SystemConfig &cfg, const AppInput &ai,
            const SharedInputs &inputs, bool metisPartition)
{
    if (ai.app == "ts")
        return runTimeSeries(cfg, inputs.series(ai.input));
    return runGraph(cfg, inputs.graph(ai.input),
                    workloads::graphAppFromName(ai.app),
                    inputs.partition(ai.input, cfg.numUnits,
                                     metisPartition));
}

RunOutput
runAppInput(const SystemConfig &cfg, const AppInput &ai, double scale,
            bool metisPartition)
{
    SharedInputs inputs;
    inputs.prepare({ai}, scale);
    if (ai.app != "ts")
        inputs.preparePartition(ai.input, cfg.numUnits, metisPartition);
    return runAppInput(cfg, ai, inputs, metisPartition);
}

RunOutput
runOpenLoop(const SystemConfig &cfg, const load::LoadSpec &spec,
            const load::ArrivalSchedule &sched)
{
    HostTimer timer;
    NdpSystem sys(cfg);
    load::OpenLoopWorkload workload(sys, spec, sched);
    sys.run();

    RunOutput out;
    out.time = sys.elapsed();
    const load::LoadCounters totals = workload.totals();
    out.ops = totals.issued;
    out.offeredOps = sched.totalArrivals();
    out.issuedOps = totals.issued;
    out.droppedOps = totals.dropped;
    out.queuedOps = totals.queued;
    out.queueDelayTicks = totals.queueDelayTicks;
    out.offeredRatePerUs = spec.ratePerUs;
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

RunOutput
runOpenLoop(const SystemConfig &cfg, const load::LoadSpec &spec)
{
    const load::ArrivalSchedule sched =
        load::buildArrivalSchedule(spec, cfg.totalClientCores());
    return runOpenLoop(cfg, spec, sched);
}

RunOutput
runTrace(const SystemConfig &cfg, const trace::Trace &t)
{
    HostTimer timer;
    NdpSystem sys(cfg);
    trace::Replayer replayer(t);
    replayer.install(sys);
    sys.run();

    RunOutput out;
    out.time = sys.elapsed();
    out.ops = replayer.opsReplayed();
    finishOutput(out, sys);
    out.hostNs = timer.elapsedNs();
    return out;
}

std::vector<CorpusRunOutput>
runCorpus(const SystemConfig &base, Scheme scheme,
          const trace::Corpus &corpus)
{
    std::vector<CorpusRunOutput> outputs;
    outputs.reserve(corpus.size());
    for (const trace::CorpusFile &file : corpus.files()) {
        trace::MappedTraceReader reader(file.path);

        CorpusRunOutput out;
        out.file = file;
        out.opCounts = reader.validateAll();

        // Each trace dictates its own machine shape; only the
        // CLI-wide knobs carry over from the base config.
        const trace::Trace t = reader.materialize();
        SystemConfig cfg = trace::replayConfig(t, scheme);
        cfg.backendName = base.backendName;
        cfg.analyze = base.analyze;
        cfg.analyzeFatal = base.analyzeFatal;
        cfg.simShards = base.simShards;
        out.run = runTrace(cfg, t);
        outputs.push_back(std::move(out));
    }
    return outputs;
}

} // namespace syncron::harness
