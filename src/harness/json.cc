#include "harness/json.hh"

#include <cmath>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace syncron::harness {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // value completes a "key": pair, no comma/newline
    }
    if (!hasItem_.empty()) {
        if (hasItem_.back())
            os_ << ",";
        hasItem_.back() = true;
        os_ << "\n";
        indent();
    }
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < hasItem_.size(); ++i)
        os_ << "  ";
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SYNCRON_ASSERT(!hasItem_.empty() && !pendingKey_,
                   "endObject with no open object");
    const bool any = hasItem_.back();
    hasItem_.pop_back();
    if (any) {
        os_ << "\n";
        indent();
    }
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SYNCRON_ASSERT(!hasItem_.empty() && !pendingKey_,
                   "endArray with no open array");
    const bool any = hasItem_.back();
    hasItem_.pop_back();
    if (any) {
        os_ << "\n";
        indent();
    }
    os_ << "]";
    return *this;
}

namespace {

void
writeEscaped(std::ostream &os, std::string_view s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

JsonWriter &
JsonWriter::key(std::string_view name)
{
    SYNCRON_ASSERT(!pendingKey_, "two keys in a row");
    separate();
    writeEscaped(os_, name);
    os_ << ": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    separate();
    writeEscaped(os_, s);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string_view{s});
}

JsonWriter &
JsonWriter::value(double d)
{
    separate();
    if (!std::isfinite(d)) {
        os_ << "null"; // JSON has no inf/nan
        return *this;
    }
    std::ostringstream tmp;
    tmp.precision(15);
    tmp << d;
    os_ << tmp.str();
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t u)
{
    separate();
    os_ << u;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t i)
{
    separate();
    os_ << i;
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned u)
{
    return value(static_cast<std::uint64_t>(u));
}

JsonWriter &
JsonWriter::value(int i)
{
    return value(static_cast<std::int64_t>(i));
}

JsonWriter &
JsonWriter::value(bool b)
{
    separate();
    os_ << (b ? "true" : "false");
    return *this;
}

} // namespace syncron::harness
