/**
 * @file
 * Parallel experiment runner. Every bench binary sweeps a scheme x
 * workload grid whose cells are completely independent simulations (one
 * NdpSystem each), so the grid runs on a std::thread pool: cells are
 * claimed from an atomic cursor, results land at their submission index,
 * and the output vector is therefore identical for any job count —
 * including jobs=1, which runs inline on the calling thread and is the
 * serial reference the determinism tests compare against.
 *
 * The simulations themselves share no mutable state (stats, machines,
 * allocators, and RNGs are all per-NdpSystem; the backend registry is
 * read-only after static init), so no locking is needed beyond the
 * cursor.
 */

#ifndef SYNCRON_HARNESS_GRID_HH
#define SYNCRON_HARNESS_GRID_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <type_traits>
#include <vector>

namespace syncron::harness {

/**
 * Runs every task and returns their results in submission order.
 *
 * @param tasks  callables returning the per-cell result (e.g. RunOutput)
 * @param jobs   worker threads; 1 runs inline, n is capped at the task
 *               count
 *
 * The first exception thrown by a task (lowest submission index) is
 * rethrown after all workers finish, matching what a serial loop would
 * have reported.
 */
template <typename Task>
auto
runGrid(std::vector<Task> tasks, unsigned jobs)
    -> std::vector<std::invoke_result_t<Task &>>
{
    using Result = std::invoke_result_t<Task &>;
    std::vector<Result> results(tasks.size());
    std::vector<std::exception_ptr> errors(tasks.size());

    if (jobs <= 1 || tasks.size() <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            try {
                results[i] = tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        std::atomic<std::size_t> cursor{0};
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= tasks.size())
                    return;
                try {
                    results[i] = tasks[i]();
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };
        const std::size_t n =
            std::min<std::size_t>(jobs, tasks.size());
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace syncron::harness

#endif // SYNCRON_HARNESS_GRID_HH
