/**
 * @file
 * Crash-injection sweep: the end-to-end durability proof harness.
 *
 * One sweep = one replication workload + one backend + one persist
 * mode, exercised as:
 *
 *   1. a clean reference run captures the full WAL (deterministic
 *      simulation: every crashed run's WAL is a strict prefix of it)
 *      and its shadow-oracle final state;
 *   2. for every nth sync-op completion boundary of the reference WAL,
 *      an identical run is crashed just past that boundary and its
 *      persisted image snapshotted;
 *   3. each image round-trips through the SYNCDUR container, feeds
 *      RecoveryEngine against the reference WAL, and the recovery's
 *      `resume` trace is replayed on a fresh system;
 *   4. the oracle over (recovery prefix + resumed records) must be
 *      violation-free, idle, and logically identical to the reference
 *      final state.
 *
 * Any deviation lands in CrashSweepResult::violations; an empty vector
 * is the pass criterion tests and CI assert on.
 */

#ifndef SYNCRON_HARNESS_CRASH_SWEEP_HH
#define SYNCRON_HARNESS_CRASH_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "system/config.hh"
#include "workloads/replication/replication.hh"

namespace syncron::harness {

/** Outcome of one crash-injection sweep. */
struct CrashSweepResult
{
    /** Distinct sync-op completion boundaries in the reference WAL. */
    std::uint64_t boundaries = 0;
    /** Crashes actually injected (runs that tore down mid-flight). */
    std::uint64_t injections = 0;
    /** Durable records rolled back across all injections. */
    std::uint64_t totalRolledBack = 0;
    /** Reference-WAL records of the clean run. */
    std::uint64_t referenceRecords = 0;

    /** Every failed check, tagged with its crash tick; empty = pass. */
    std::vector<std::string> violations;

    bool passed() const { return violations.empty(); }
};

/**
 * Runs the sweep for @p base (crashAtTick ignored; persistMode must
 * not be Off) over the replication workload @p params, injecting at
 * every @p every -th boundary (1 = every sync-op boundary).
 */
CrashSweepResult runCrashSweep(const SystemConfig &base,
                               const workloads::ReplicationParams &params,
                               unsigned every = 1);

} // namespace syncron::harness

#endif // SYNCRON_HARNESS_CRASH_SWEEP_HH
