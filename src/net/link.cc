#include "net/link.hh"

#include <algorithm>

#include "common/log.hh"

namespace syncron::net {

LinkFabric::LinkFabric(unsigned numUnits, const LinkParams &params,
                       SystemStats &stats)
    : LinkFabric(numUnits, params,
                 std::vector<SystemStats *>(numUnits, &stats))
{}

LinkFabric::LinkFabric(unsigned numUnits, const LinkParams &params,
                       std::vector<SystemStats *> perUnitStats)
    : numUnits_(numUnits), params_(params), stats_(std::move(perUnitStats)),
      busyUntil_(static_cast<std::size_t>(numUnits) * numUnits, 0)
{
    SYNCRON_ASSERT(stats_.size() == numUnits_,
                   "LinkFabric needs one stats block per unit");
}

Tick
LinkFabric::serializationTicks(std::uint32_t bytes) const
{
    // 12.8 GB/s = 12.8 bytes/ns; ticks are ps.
    const double ns = static_cast<double>(bytes) / params_.gbPerSec;
    return static_cast<Tick>(ns * 1000.0) + 1;
}

Tick
LinkFabric::send(Tick start, UnitId from, UnitId to, std::uint32_t bytes)
{
    SYNCRON_ASSERT(from != to, "inter-unit send within one unit");
    SYNCRON_ASSERT(from < numUnits_ && to < numUnits_,
                   "link endpoints out of range: " << from << "->" << to);

    Tick &busy = busyUntil_[static_cast<std::size_t>(from) * numUnits_ + to];
    const Tick ctrl =
        static_cast<Tick>(params_.ctrlCycles) * params_.cyclePeriod;
    const Tick begin = std::max(start + ctrl, busy);
    const Tick serial = serializationTicks(bytes);
    busy = begin + serial;

    SystemStats &st = *stats_[from];
    ++st.linkMessages;
    st.linkBits += static_cast<std::uint64_t>(bytes) * 8;
    st.linkFlits += (static_cast<std::uint64_t>(bytes) * 8 + 127) / 128;
    st.bytesAcrossUnits += bytes;

    return busy + params_.flightTicks;
}

Tick
LinkFabric::unloadedLatency(std::uint32_t bytes) const
{
    return static_cast<Tick>(params_.ctrlCycles) * params_.cyclePeriod
           + serializationTicks(bytes) + params_.flightTicks;
}

} // namespace syncron::net
