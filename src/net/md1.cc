#include "net/md1.hh"

#include <algorithm>

#include "common/log.hh"

namespace syncron::net {

namespace {
/// EWMA smoothing factor for inter-arrival times. Small enough to damp
/// single-message noise, large enough to track phase changes within a few
/// tens of messages.
constexpr double kAlpha = 0.05;
} // namespace

Md1Estimator::Md1Estimator(Tick serviceTicks, double maxRho)
    : serviceTicks_(serviceTicks), maxRho_(maxRho)
{
    SYNCRON_ASSERT(serviceTicks_ > 0, "service time must be positive");
    SYNCRON_ASSERT(maxRho_ > 0.0 && maxRho_ < 1.0, "maxRho out of range");
}

Tick
Md1Estimator::onArrival(Tick now)
{
    if (!seenArrival_) {
        seenArrival_ = true;
        lastArrival_ = now;
        return 0;
    }

    const double inter = static_cast<double>(now - lastArrival_);
    lastArrival_ = now;
    if (avgInterArrival_ <= 0.0)
        avgInterArrival_ = inter > 0.0 ? inter : 1.0;
    else
        avgInterArrival_ =
            (1.0 - kAlpha) * avgInterArrival_ + kAlpha * std::max(inter, 1.0);

    const double lambda = 1.0 / avgInterArrival_;
    const double mu = 1.0 / static_cast<double>(serviceTicks_);
    rho_ = std::min(lambda / mu, maxRho_);
    return currentDelay();
}

Tick
Md1Estimator::currentDelay() const
{
    if (rho_ <= 0.0)
        return 0;
    return static_cast<Tick>(waitingTicks(rho_, serviceTicks_));
}

double
Md1Estimator::waitingTicks(double rho, Tick serviceTicks)
{
    SYNCRON_ASSERT(serviceTicks > 0, "service time must be positive");
    SYNCRON_ASSERT(rho >= 0.0 && rho < 1.0,
                   "utilization " << rho << " outside [0, 1)");
    if (rho <= 0.0)
        return 0.0;
    const double mu = 1.0 / static_cast<double>(serviceTicks);
    return rho / (2.0 * mu * (1.0 - rho));
}

} // namespace syncron::net
