/**
 * @file
 * Intra-unit interconnect: a buffered crossbar with packet flow control
 * (Table 5: 1-cycle arbiter, 1 cycle per hop, 0.4 pJ/bit per hop, M/D/1
 * queueing latency).
 *
 * Latency of a message of B bits:
 *   (arbiter + hops + ceil(B / flitBits)) core cycles + M/D/1 queue delay
 *
 * Energy and traffic are recorded in SystemStats (xbarMessages,
 * xbarBitHops, bytesInsideUnits). Like all devices, transfer() takes an
 * explicit start tick and returns the completion tick.
 */

#ifndef SYNCRON_NET_CROSSBAR_HH
#define SYNCRON_NET_CROSSBAR_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "net/md1.hh"

namespace syncron::net {

/** Crossbar configuration. */
struct CrossbarParams
{
    std::uint32_t arbiterCycles = 1; ///< Table 5: 1-cycle arbiter
    std::uint32_t hopCycles = 1;     ///< Table 5: 1 cycle per hop
    std::uint32_t hops = 2;          ///< core -> switch -> destination
    std::uint32_t flitBits = 128;    ///< datapath width per cycle
    Tick cyclePeriod = 400;          ///< 2.5 GHz compute-die clock
    double pjPerBitHop = 0.4;        ///< Table 5: 0.4 pJ/bit per hop
};

/** One NDP unit's crossbar. */
class Crossbar
{
  public:
    Crossbar(const CrossbarParams &params, SystemStats &stats);

    /**
     * Sends a @p bits -bit message through the crossbar starting at
     * @p start.
     * @return absolute completion (arrival) tick
     */
    Tick transfer(Tick start, std::uint32_t bits);

    /** Traversal latency with an idle network (for tests). */
    Tick unloadedLatency(std::uint32_t bits) const;

    const CrossbarParams &params() const { return params_; }

  private:
    CrossbarParams params_;
    SystemStats &stats_;
    Md1Estimator md1_;
    /// Arrival monotonicity clamp: the M/D/1 estimate can shrink between
    /// messages, which must not reorder deliveries (the switch is FIFO
    /// per flow; protocol correctness relies on it).
    Tick lastArrival_ = 0;
};

} // namespace syncron::net

#endif // SYNCRON_NET_CROSSBAR_HH
