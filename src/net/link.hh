/**
 * @file
 * Inter-unit serial interconnection links (Table 5: 12.8 GB/s per
 * direction, 40 ns per cache line, 20-cycle controller overhead,
 * 4 pJ/bit).
 *
 * Units are fully connected by point-to-point links; each ordered pair
 * (src, dst) has its own direction with independent bandwidth. A transfer
 * pays: controller overhead + serialization (bytes / bandwidth, which
 * occupies the link and creates back-pressure) + flight latency. The
 * flight latency is the paper's sweep parameter for Figs. 16/17/21 ("40 ns
 * per cache line" by default, up to 9 us).
 */

#ifndef SYNCRON_NET_LINK_HH
#define SYNCRON_NET_LINK_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace syncron::net {

/** Inter-unit link configuration. */
struct LinkParams
{
    double gbPerSec = 12.8;        ///< Table 5: 12.8 GB/s per direction
    Tick flightTicks = 40 * 1000;  ///< Table 5: 40 ns per cache line
    std::uint32_t ctrlCycles = 20; ///< Table 5: 20-cycle
    Tick cyclePeriod = 400;        ///< controller runs at core clock
    double pjPerBit = 4.0;         ///< Table 5: 4 pJ/bit
};

/** All inter-unit links of the system. */
class LinkFabric
{
  public:
    LinkFabric(unsigned numUnits, const LinkParams &params,
               SystemStats &stats);

    /**
     * Sharded wiring: traffic originating at unit u is charged to
     * @p perUnitStats[u], so concurrently-running shards never touch
     * each other's counters. @p perUnitStats must have numUnits entries
     * and outlive the fabric.
     */
    LinkFabric(unsigned numUnits, const LinkParams &params,
               std::vector<SystemStats *> perUnitStats);

    /**
     * Sends @p bytes from @p from to @p to (must differ), starting at
     * @p start.
     * @return absolute arrival tick at the destination unit
     */
    Tick send(Tick start, UnitId from, UnitId to, std::uint32_t bytes);

    /** One-message latency on an idle link (for tests). */
    Tick unloadedLatency(std::uint32_t bytes) const;

    const LinkParams &params() const { return params_; }

  private:
    Tick serializationTicks(std::uint32_t bytes) const;

    unsigned numUnits_;
    LinkParams params_;
    std::vector<SystemStats *> stats_; ///< per source unit
    std::vector<Tick> busyUntil_; ///< per ordered (from, to) pair
};

} // namespace syncron::net

#endif // SYNCRON_NET_LINK_HH
