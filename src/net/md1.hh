/**
 * @file
 * M/D/1 queueing-latency estimator for the intra-unit crossbar.
 *
 * The paper models intra-unit network queueing latency with an M/D/1
 * model (Table 5, citing Bhat's queueing-theory text): Poisson arrivals,
 * deterministic service. Mean waiting time in queue:
 *
 *      Wq = rho / (2 * mu * (1 - rho)),   rho = lambda / mu
 *
 * where mu = 1 / serviceTime. We estimate lambda online with an
 * exponentially weighted moving average of message inter-arrival times,
 * and clamp rho below 1 so transient bursts produce large-but-finite
 * latencies instead of infinities.
 */

#ifndef SYNCRON_NET_MD1_HH
#define SYNCRON_NET_MD1_HH

#include "common/types.hh"

namespace syncron::net {

/** Online M/D/1 waiting-time estimator. */
class Md1Estimator
{
  public:
    /**
     * @param serviceTicks deterministic service time per message
     * @param maxRho       utilization clamp (default 0.95)
     */
    explicit Md1Estimator(Tick serviceTicks, double maxRho = 0.95);

    /**
     * Records a message arrival at @p now and returns the estimated
     * queueing delay (ticks) this message experiences.
     */
    Tick onArrival(Tick now);

    /** Current utilization estimate rho in [0, maxRho]. */
    double rho() const { return rho_; }

    /** Queueing delay at the current utilization (no state update). */
    Tick currentDelay() const;

    /**
     * Closed-form M/D/1 mean waiting time in ticks:
     * Wq = rho / (2 * mu * (1 - rho)) with mu = 1 / serviceTicks.
     * The single source of the formula — currentDelay() evaluates it at
     * the online rho estimate, and the open-loop load subsystem's
     * analytic reference (and its tests) evaluate it at a known rho.
     */
    static double waitingTicks(double rho, Tick serviceTicks);

  private:
    Tick serviceTicks_;
    double maxRho_;
    double rho_ = 0.0;
    Tick lastArrival_ = 0;
    bool seenArrival_ = false;
    double avgInterArrival_ = 0.0; ///< EWMA of inter-arrival ticks
};

} // namespace syncron::net

#endif // SYNCRON_NET_MD1_HH
