#include "net/crossbar.hh"

namespace syncron::net {

namespace {

/** Deterministic service time of one message (used by the M/D/1 model). */
Tick
serviceTicks(const CrossbarParams &p, std::uint32_t bits)
{
    const std::uint32_t flits = (bits + p.flitBits - 1) / p.flitBits;
    return static_cast<Tick>(p.arbiterCycles + p.hops * p.hopCycles + flits)
           * p.cyclePeriod;
}

} // namespace

Crossbar::Crossbar(const CrossbarParams &params, SystemStats &stats)
    : params_(params), stats_(stats),
      // Model the M/D/1 server as the crossbar switching one
      // average-sized (one-flit payload) message.
      md1_(serviceTicks(params, params.flitBits))
{}

Tick
Crossbar::transfer(Tick start, std::uint32_t bits)
{
    const Tick queue = md1_.onArrival(start);
    const Tick traversal = serviceTicks(params_, bits);

    ++stats_.xbarMessages;
    stats_.xbarBitHops += static_cast<std::uint64_t>(bits) * params_.hops;
    stats_.xbarFlits += (bits + params_.flitBits - 1) / params_.flitBits;
    stats_.bytesInsideUnits += (bits + 7) / 8;

    Tick arrival = start + queue + traversal;
    if (arrival < lastArrival_)
        arrival = lastArrival_;
    lastArrival_ = arrival;
    return arrival;
}

Tick
Crossbar::unloadedLatency(std::uint32_t bits) const
{
    return serviceTicks(params_, bits);
}

} // namespace syncron::net
