#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"

namespace syncron::mem {

const char *
dramTechName(DramTech tech)
{
    switch (tech) {
      case DramTech::Hbm: return "HBM";
      case DramTech::Hmc: return "HMC";
      case DramTech::Ddr4: return "DDR4";
    }
    return "?";
}

DramParams
DramParams::hbm()
{
    DramParams p;
    p.name = "HBM";
    p.tRcdRead = nsToTicks(7);   // Table 5: nRCDR = 7 ns
    p.tRcdWrite = nsToTicks(6);  // Table 5: nRCDW = 6 ns
    p.tRas = nsToTicks(17);      // Table 5: nRAS = 17 ns
    p.tWr = nsToTicks(8);        // Table 5: nWR = 8 ns
    // 500 MHz, 8 channels, 128-bit channel interface, DDR: one 64 B line
    // bursts in 4 beats = 4 ns on one channel.
    p.tBurst = nsToTicks(4);
    p.channels = 8;
    p.banksPerChannel = 16;
    p.rowBytes = 2048;
    p.pjPerBit = 7.0;            // Table 5: 7 pJ/bit
    return p;
}

DramParams
DramParams::hmc()
{
    DramParams p;
    p.name = "HMC";
    p.tRcdRead = nsToTicks(17);  // Table 5: nRCD = 17 ns
    p.tRcdWrite = nsToTicks(17);
    p.tRas = nsToTicks(34);      // Table 5: nRAS = 34 ns
    p.tWr = nsToTicks(19);       // Table 5: nWR = 19 ns
    // 32 vaults per stack; narrower per-vault TSV interface.
    p.tBurst = nsToTicks(4);
    p.channels = 32;
    p.banksPerChannel = 8;
    p.rowBytes = 256;
    p.pjPerBit = 8.0;  // chosen: slightly above HBM (TSV overhead)
    return p;
}

DramParams
DramParams::ddr4()
{
    DramParams p;
    p.name = "DDR4";
    p.tRcdRead = nsToTicks(16);  // Table 5: nRCD = 16 ns
    p.tRcdWrite = nsToTicks(16);
    p.tRas = nsToTicks(39);      // Table 5: nRAS = 39 ns
    p.tWr = nsToTicks(18);       // Table 5: nWR = 18 ns
    // DDR4-2400, 64-bit DIMM interface: 64 B line = 8 beats ~ 3.3 ns,
    // but a single channel per DIMM serializes heavily.
    p.tBurst = nsToTicks(4);
    p.channels = 1;
    p.banksPerChannel = 16;
    p.rowBytes = 8192;
    p.pjPerBit = 15.0; // chosen: off-chip I/O energy ~2x stacked DRAM
    return p;
}

DramParams
DramParams::forTech(DramTech tech)
{
    switch (tech) {
      case DramTech::Hbm: return hbm();
      case DramTech::Hmc: return hmc();
      case DramTech::Ddr4: return ddr4();
    }
    SYNCRON_PANIC("unknown DRAM technology");
}

Dram::Dram(const DramParams &params, SystemStats &stats)
    : params_(params), stats_(stats),
      banks_(params.channels * params.banksPerChannel)
{
    SYNCRON_ASSERT(!banks_.empty(), "DRAM with no banks");
}

void
Dram::decode(Addr lineAddr, std::uint32_t &bankIdx, std::uint64_t &row) const
{
    // Line-interleave across channels, then banks, so sequential lines
    // spread across the parallel resources (standard NDP mapping).
    const std::uint64_t line = lineAddr / kCacheLineBytes;
    const std::uint32_t channel = line % params_.channels;
    const std::uint64_t afterCh = line / params_.channels;
    const std::uint32_t bank = afterCh % params_.banksPerChannel;
    const std::uint64_t linesPerRow =
        std::max<std::uint64_t>(1, params_.rowBytes / kCacheLineBytes);
    row = afterCh / params_.banksPerChannel / linesPerRow;
    bankIdx = channel * params_.banksPerChannel + bank;
}

Tick
Dram::accessLine(Tick start, Addr lineAddr, bool isWrite)
{
    std::uint32_t bankIdx;
    std::uint64_t row;
    decode(lineAddr, bankIdx, row);
    Bank &bank = banks_[bankIdx];

    const Tick begin = std::max(start, bank.busyUntil);
    const bool rowHit = bank.openRow == row;

    Tick latency = rowHit ? 0 : params_.tRas;
    latency += isWrite ? params_.tRcdWrite : params_.tRcdRead;
    latency += params_.tBurst;
    if (isWrite)
        latency += params_.tWr;

    bank.busyUntil = begin + latency;
    bank.openRow = row;

    if (isWrite)
        ++stats_.dramWrites;
    else
        ++stats_.dramReads;
    if (rowHit)
        ++stats_.dramRowHits;
    else
        ++stats_.dramRowMisses;

    return bank.busyUntil;
}

Tick
Dram::access(Tick start, Addr addr, bool isWrite, std::uint32_t bytes)
{
    SYNCRON_ASSERT(bytes >= 1, "zero-size DRAM access");
    Tick done = start;
    Addr line = lineAlign(addr);
    const Addr lastLine = lineAlign(addr + bytes - 1);
    for (; line <= lastLine; line += kCacheLineBytes)
        done = std::max(done, accessLine(start, line, isWrite));
    return done;
}

Tick
Dram::unloadedReadLatency() const
{
    return params_.tRcdRead + params_.tBurst;
}

} // namespace syncron::mem
