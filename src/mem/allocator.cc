#include "mem/allocator.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace syncron::mem {

AddressSpace::AddressSpace(unsigned numUnits)
{
    SYNCRON_ASSERT(numUnits >= 1, "system needs at least one NDP unit");
    next_.reserve(numUnits);
    for (unsigned u = 0; u < numUnits; ++u) {
        // Skip the first line of each window so address 0 never appears
        // as a valid allocation (0 doubles as "null" in workloads).
        next_.push_back(unitBase(u) + kCacheLineBytes);
    }
}

Addr
AddressSpace::allocIn(UnitId unit, std::uint64_t bytes, std::uint64_t align)
{
    SYNCRON_ASSERT(unit < next_.size(), "allocation in unknown unit "
                                            << unit);
    SYNCRON_ASSERT(isPowerOfTwo(align), "alignment must be a power of two");
    Addr base = (next_[unit] + align - 1) & ~(align - 1);
    SYNCRON_ASSERT(unitOfAddr(base + bytes - 1) == unit,
                   "unit " << unit << " out of memory");
    next_[unit] = base + bytes;
    return base;
}

Addr
AddressSpace::allocInterleaved(std::uint64_t bytes, std::uint64_t align)
{
    Addr a = allocIn(rr_, bytes, align);
    rr_ = (rr_ + 1) % next_.size();
    return a;
}

std::uint64_t
AddressSpace::usedIn(UnitId unit) const
{
    SYNCRON_ASSERT(unit < next_.size(), "unknown unit " << unit);
    return next_[unit] - unitBase(unit) - kCacheLineBytes;
}

} // namespace syncron::mem
