/**
 * @file
 * DRAM timing and energy model for the memory arrays of one NDP unit.
 *
 * Three technologies are modeled with the parameters of the paper's
 * Table 5:
 *   - HBM  (2.5D NDP config): nRCDR/nRCDW/nRAS/nWR = 7/6/17/8 ns,
 *     500 MHz, 8 channels, 7 pJ/bit
 *   - HMC  (3D NDP config):   nRCD/nRAS/nWR = 17/34/19 ns, 32 vaults
 *   - DDR4 (2D NDP config):   nRCD/nRAS/nWR = 16/39/18 ns, 1 channel/DIMM
 *
 * The model is a banked open-row busy-until model: each bank remembers its
 * open row and the tick until which it is busy. A row hit pays the column
 * access (nRCDR / nRCDW); a row miss additionally pays the row cycle
 * (nRAS) to precharge + activate; writes add the write recovery (nWR).
 * Requests to a busy bank queue behind it. This reproduces the relative
 * access-latency differences between the three technologies that drive
 * the paper's Fig. 18.
 *
 * Devices in this simulator are pure busy-until resources: every timed
 * method takes an explicit start tick and returns the completion tick, so
 * multi-hop paths (crossbar -> link -> crossbar -> DRAM) compose without
 * global-clock coupling.
 */

#ifndef SYNCRON_MEM_DRAM_HH
#define SYNCRON_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace syncron::mem {

/** Which DRAM technology an NDP unit's memory arrays use. */
enum class DramTech { Hbm, Hmc, Ddr4 };

/** Returns a short human-readable name ("HBM", "HMC", "DDR4"). */
const char *dramTechName(DramTech tech);

/** Timing/energy/geometry parameters of one DRAM technology. */
struct DramParams
{
    std::string name;
    Tick tRcdRead;     ///< activate-to-read column access
    Tick tRcdWrite;    ///< activate-to-write column access
    Tick tRas;         ///< row cycle (precharge + activate) on a row miss
    Tick tWr;          ///< write recovery
    Tick tBurst;       ///< data burst time for one 64 B line
    std::uint32_t channels;        ///< parallel channels (or vaults)
    std::uint32_t banksPerChannel; ///< banks per channel
    std::uint32_t rowBytes;        ///< row-buffer size
    double pjPerBit;   ///< access energy per transferred bit

    /** Table 5 HBM 1.0 parameters. */
    static DramParams hbm();
    /** Table 5 HMC 2.1 parameters. */
    static DramParams hmc();
    /** Table 5 DDR4-2400 parameters. */
    static DramParams ddr4();
    /** Parameters for @p tech. */
    static DramParams forTech(DramTech tech);
};

/**
 * The memory arrays of a single NDP unit.
 *
 * access() computes the completion tick of a read or write of @p bytes at
 * @p addr, advancing the involved banks' busy-until state. Accesses that
 * span cache lines are split per line; the completion is the latest line.
 */
class Dram
{
  public:
    Dram(const DramParams &params, SystemStats &stats);

    /**
     * Performs a timed access.
     *
     * @param start   tick at which the request reaches the arrays
     * @param addr    byte address (only low bits select channel/bank/row)
     * @param isWrite true for stores
     * @param bytes   access size in bytes (>= 1)
     * @return absolute tick at which the access completes
     */
    Tick access(Tick start, Addr addr, bool isWrite, std::uint32_t bytes);

    /** Latency of an ideal row-hit read with no queueing (for tests). */
    Tick unloadedReadLatency() const;

    const DramParams &params() const { return params_; }

  private:
    struct Bank
    {
        Tick busyUntil = 0;
        std::uint64_t openRow = ~std::uint64_t{0};
    };

    /** Maps a line address to a bank slot and row id. */
    void decode(Addr lineAddr, std::uint32_t &bankIdx,
                std::uint64_t &row) const;

    Tick accessLine(Tick start, Addr lineAddr, bool isWrite);

    DramParams params_;
    SystemStats &stats_;
    std::vector<Bank> banks_;
};

} // namespace syncron::mem

#endif // SYNCRON_MEM_DRAM_HH
