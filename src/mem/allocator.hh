/**
 * @file
 * The shared physical address space of the NDP system and per-unit data
 * placement.
 *
 * All NDP units share one flat 64-bit address space (paper Section 2.1:
 * units are "connected with each other via serial interconnection links to
 * share the same physical address space"). We give each unit a 4 GB
 * window: bits [63:32] of an address name the owning unit, which is how
 * every device decides whether an access is local or must cross an
 * inter-unit link, and how SynCron derives the Master SE of a variable
 * ("the Master SE is defined by the address of the synchronization
 * variable", Section 3.1).
 *
 * Workloads place their data with per-unit bump allocators, mirroring the
 * paper's static partitioning of data structures and graphs across units.
 */

#ifndef SYNCRON_MEM_ALLOCATOR_HH
#define SYNCRON_MEM_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace syncron::mem {

/** Bits of address space given to each NDP unit (4 GB). */
constexpr unsigned kUnitAddrShift = 32;

/** Returns the NDP unit that owns @p addr. */
constexpr UnitId
unitOfAddr(Addr addr)
{
    return static_cast<UnitId>(addr >> kUnitAddrShift);
}

/** Returns the first address of @p unit's window. */
constexpr Addr
unitBase(UnitId unit)
{
    return static_cast<Addr>(unit) << kUnitAddrShift;
}

/**
 * Carves data placements out of the system's address space. One bump
 * pointer per NDP unit; allocations never overlap and are aligned as
 * requested.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(unsigned numUnits);

    /**
     * Allocates @p bytes in @p unit's memory.
     * @param align required alignment (power of two, default 8)
     */
    Addr allocIn(UnitId unit, std::uint64_t bytes, std::uint64_t align = 8);

    /** Allocates round-robin across units (for randomly distributed data). */
    Addr allocInterleaved(std::uint64_t bytes, std::uint64_t align = 8);

    /** Bytes currently allocated in @p unit. */
    std::uint64_t usedIn(UnitId unit) const;

    unsigned numUnits() const { return static_cast<unsigned>(next_.size()); }

  private:
    std::vector<Addr> next_;  ///< next free address per unit
    unsigned rr_ = 0;         ///< round-robin cursor for allocInterleaved
};

} // namespace syncron::mem

#endif // SYNCRON_MEM_ALLOCATOR_HH
