/**
 * @file
 * The message format exchanged between NDP cores and Synchronization
 * Engines (paper Fig. 5), and the wire-size constants of the modeled
 * hardware datapath.
 */

#ifndef SYNCRON_SYNC_MESSAGE_HH
#define SYNCRON_SYNC_MESSAGE_HH

#include <cstdint>
#include <span>

#include "common/types.hh"
#include "sync/opcodes.hh"
#include "sync/request.hh"

namespace syncron::sync {

/**
 * Size of the in-memory syncronVar record (Fig. 9):
 * uint16_t Waitlist[4] + uint64_t VarInfo + uint8_t OverflowInfo,
 * padded to 16 bytes.
 */
constexpr std::uint32_t kSyncronVarBytes = 16;

/** Request-message size: 64 addr + 6 opcode + 6 core id + 64 info bits. */
constexpr std::uint32_t kSyncReqBits = 140;

/** Response-message size (Fig. 6 datapath: 149 bits). */
constexpr std::uint32_t kSyncRespBits = 149;

static_assert(kSyncReqBits == 64 + 6 + 6 + 64,
              "message encoding must match paper Fig. 5");

/**
 * Shared header of a coalesced batch message: batch opcode (6) + core
 * id (6) + operation count (8). Batches carry several same-destination
 * operations issued by one core in a single network message, paying
 * the header once instead of once per op.
 */
constexpr std::uint32_t kSyncBatchHeaderBits = 6 + 6 + 8;

/**
 * Base size of a per-operation record inside a coalesced batch:
 * variable address (64) + opcode (6) + a 2-bit MessageInfo tag. The
 * fixed Fig. 5 layout always reserves 64 MessageInfo bits; the batch
 * encoding is tagged instead, appending info only for the kinds that
 * carry it — nothing for lock ops / sem_post / signal / broadcast, a
 * 32-bit count for barrier_wait (participants) and sem_wait (initial
 * resources), the full 64-bit lock address for cond_wait.
 */
constexpr std::uint32_t kSyncBatchRecordBits = 64 + 6 + 2;

/** Wire size of one tagged batch record for operation kind @p kind. */
constexpr std::uint32_t
batchRecordBits(OpKind kind)
{
    switch (kind) {
      case OpKind::BarrierWaitWithinUnit:
      case OpKind::BarrierWaitAcrossUnits:
      case OpKind::SemWait:
        return kSyncBatchRecordBits + 32;
      case OpKind::CondWait:
        return kSyncBatchRecordBits + 64;
      default:
        return kSyncBatchRecordBits;
    }
}

// Coalescing pays from two operations up even for the widest batchable
// records (cond_wait never batches — SyncBatch has no wait(cond) — so
// the 32-bit info records are the worst case); a 1-op batch must go
// out as a plain Fig. 5 message (backends enforce this eligibility).
static_assert(kSyncBatchHeaderBits + 2 * (kSyncBatchRecordBits + 32)
                  < 2 * kSyncReqBits,
              "coalescing two ops must beat two plain messages");

/** Total wire size of a coalesced message carrying @p reqs. */
inline std::uint32_t
batchReqBits(std::span<const SyncRequest> reqs)
{
    std::uint32_t bits = kSyncBatchHeaderBits;
    for (const SyncRequest &req : reqs)
        bits += batchRecordBits(req.kind());
    return bits;
}

/**
 * A synchronization message (Fig. 5). Used between cores and SEs and,
 * with global/overflow opcodes, between SEs.
 */
struct SyncMessage
{
    Addr addr = 0;          ///< synchronization variable address
    Op opcode{};            ///< message opcode (Table 3)
    std::uint32_t coreId = 0; ///< local core id, or global SE id
    std::uint64_t info = 0;   ///< MessageInfo (Fig. 5)

    /**
     * Durability sidecar, not part of the Fig. 5 wire format: the WAL
     * intent sequence stamped by the persist path (0 when durability is
     * off), threaded through so the SE station can account the persist.
     */
    std::uint64_t walSeq = 0;

    // -- Typed MessageInfo views (meaning fixed by the opcode) ----------
    /** Lock address associated with a cond_wait-family message. */
    Addr condLockAddr() const { return static_cast<Addr>(info); }

    /** Barrier participant total carried by barrier-wait messages. */
    std::uint64_t barrierTotal() const { return info; }

    /** Semaphore initial-resource count carried by sem_wait messages. */
    std::uint64_t semResources() const { return info; }
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_MESSAGE_HH
