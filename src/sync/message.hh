/**
 * @file
 * The message format exchanged between NDP cores and Synchronization
 * Engines (paper Fig. 5), and the wire-size constants of the modeled
 * hardware datapath.
 */

#ifndef SYNCRON_SYNC_MESSAGE_HH
#define SYNCRON_SYNC_MESSAGE_HH

#include <cstdint>

#include "common/types.hh"
#include "sync/opcodes.hh"

namespace syncron::sync {

/**
 * Size of the in-memory syncronVar record (Fig. 9):
 * uint16_t Waitlist[4] + uint64_t VarInfo + uint8_t OverflowInfo,
 * padded to 16 bytes.
 */
constexpr std::uint32_t kSyncronVarBytes = 16;

/** Request-message size: 64 addr + 6 opcode + 6 core id + 64 info bits. */
constexpr std::uint32_t kSyncReqBits = 140;

/** Response-message size (Fig. 6 datapath: 149 bits). */
constexpr std::uint32_t kSyncRespBits = 149;

static_assert(kSyncReqBits == 64 + 6 + 6 + 64,
              "message encoding must match paper Fig. 5");

/**
 * A synchronization message (Fig. 5). Used between cores and SEs and,
 * with global/overflow opcodes, between SEs.
 */
struct SyncMessage
{
    Addr addr = 0;          ///< synchronization variable address
    Op opcode{};            ///< message opcode (Table 3)
    std::uint32_t coreId = 0; ///< local core id, or global SE id
    std::uint64_t info = 0;   ///< MessageInfo (Fig. 5)

    // -- Typed MessageInfo views (meaning fixed by the opcode) ----------
    /** Lock address associated with a cond_wait-family message. */
    Addr condLockAddr() const { return static_cast<Addr>(info); }

    /** Barrier participant total carried by barrier-wait messages. */
    std::uint64_t barrierTotal() const { return info; }

    /** Semaphore initial-resource count carried by sem_wait messages. */
    std::uint64_t semResources() const { return info; }
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_MESSAGE_HH
