#include "sync/syncvar.hh"

// SyncVar and SyncMessage are plain value types; this translation unit
// anchors the module in the library.

namespace syncron::sync {

static_assert(kSyncReqBits == 64 + 6 + 6 + 64,
              "message encoding must match paper Fig. 5");

} // namespace syncron::sync
