/**
 * @file
 * Typed synchronization-primitive handles — the programming interface's
 * first-class objects.
 *
 * Primitive state is carried directly on the handle: the address of the
 * backing line (create_syncvar() of the paper's Table 2 — the address
 * determines the Master SE, Section 3.1, and backs the in-memory
 * syncronVar record under ST overflow, Fig. 9) plus the allocation
 * generation that catches stale handles. On top of that shared state,
 * each handle carries the parameters that belong to the primitive rather
 * than to every operation on it: a Barrier knows its participant count
 * and scope, a Semaphore its initial resources. SyncApi's typed
 * operations consume these handles, so a lock can no longer be posted
 * like a semaphore and a barrier's headcount cannot silently change
 * between waits.
 */

#ifndef SYNCRON_SYNC_PRIMITIVES_HH
#define SYNCRON_SYNC_PRIMITIVES_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "mem/allocator.hh"
#include "sync/request.hh"

namespace syncron::sync {

/**
 * State shared by every primitive handle: the backing cache line and its
 * allocation generation. Programmers never dereference the address;
 * SyncApi::destroy() bumps the line's generation before recycling it, so
 * a stale handle held across a destroy/create cycle is detectable
 * (SyncApi panics instead of silently aliasing the new primitive's
 * state).
 */
struct SyncPrimitive
{
    Addr addr = 0;
    std::uint32_t gen = 0;

    /** NDP unit owning the primitive; its SE is the Master SE. */
    UnitId home() const { return mem::unitOfAddr(addr); }

    bool valid() const { return addr != 0; }

    friend bool operator==(const SyncPrimitive &,
                           const SyncPrimitive &) = default;
};

/** Mutual-exclusion lock handle. */
struct Lock : SyncPrimitive
{
};

/** Barrier handle; participant count and scope fixed at creation. */
struct Barrier : SyncPrimitive
{
    std::uint32_t participants = 0;
    BarrierScope scope = BarrierScope::AcrossUnits;

    bool valid() const { return SyncPrimitive::valid() && participants >= 1; }
};

/** Counting-semaphore handle; initial resources fixed at creation. */
struct Semaphore : SyncPrimitive
{
    std::uint32_t initialResources = 0;
};

/** Condition-variable handle; waits name the associated Lock. */
struct CondVar : SyncPrimitive
{
};

/**
 * A pool of fine-grained locks created in one SyncApi call — one per
 * slot (per node / bucket / vertex / output element). Workloads with
 * per-element locks (skip list, hash table, the BSTs, graph kernels,
 * SCRIMP) obtain their whole lock population here instead of
 * hand-rolling variable placement; see SyncApi::createLockSet() for the
 * two placement policies (explicit home units, or homed with the
 * protected datum's address).
 */
class LockSet
{
  public:
    LockSet() = default;

    /** Lock protecting slot @p i. */
    const Lock &
    operator[](std::size_t i) const
    {
        SYNCRON_ASSERT(i < locks_.size(),
                       "LockSet index " << i << " out of range (size "
                                        << locks_.size() << ")");
        return locks_[i];
    }

    std::size_t size() const { return locks_.size(); }
    bool empty() const { return locks_.empty(); }

    auto begin() const { return locks_.begin(); }
    auto end() const { return locks_.end(); }

  private:
    friend class SyncApi;

    explicit LockSet(std::vector<Lock> locks) : locks_(std::move(locks))
    {}

    std::vector<Lock> locks_;
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_PRIMITIVES_HH
