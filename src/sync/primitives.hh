/**
 * @file
 * Typed synchronization-primitive handles — the v2 programming
 * interface's first-class objects.
 *
 * Each handle wraps the opaque SyncVar of the paper's create_syncvar()
 * (Table 2) and carries the parameters that belong to the primitive
 * rather than to every operation on it: a Barrier knows its participant
 * count and scope, a Semaphore its initial resources. SyncApi's typed
 * operations consume these handles, so a lock can no longer be posted
 * like a semaphore and a barrier's headcount cannot silently change
 * between waits.
 */

#ifndef SYNCRON_SYNC_PRIMITIVES_HH
#define SYNCRON_SYNC_PRIMITIVES_HH

#include <cstdint>

#include "sync/request.hh"
#include "sync/syncvar.hh"

namespace syncron::sync {

/** Mutual-exclusion lock handle. */
struct Lock
{
    SyncVar var{};

    bool valid() const { return var.valid(); }
    UnitId home() const { return var.home(); }
};

/** Barrier handle; participant count and scope fixed at creation. */
struct Barrier
{
    SyncVar var{};
    std::uint32_t participants = 0;
    BarrierScope scope = BarrierScope::AcrossUnits;

    bool valid() const { return var.valid() && participants >= 1; }
    UnitId home() const { return var.home(); }
};

/** Counting-semaphore handle; initial resources fixed at creation. */
struct Semaphore
{
    SyncVar var{};
    std::uint32_t initialResources = 0;

    bool valid() const { return var.valid(); }
    UnitId home() const { return var.home(); }
};

/** Condition-variable handle; waits name the associated Lock. */
struct CondVar
{
    SyncVar var{};

    bool valid() const { return var.valid(); }
    UnitId home() const { return var.home(); }
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_PRIMITIVES_HH
