/**
 * @file
 * SynCron's programming interface (paper Table 2), independent of the
 * backend actually providing synchronization.
 *
 * Workload coroutines use it as:
 *
 *   sync::SyncVar lock = api.createSyncVar(homeUnit);
 *   co_await api.lockAcquire(core, lock);
 *   ... critical section ...
 *   co_await api.lockRelease(core, lock);
 *
 * Acquire-type operations map to the req_sync ISA instruction (commit
 * when the response returns); release-type operations map to req_async
 * (commit once issued). Both are realized as awaitables whose completion
 * gate the backend opens.
 */

#ifndef SYNCRON_SYNC_API_HH
#define SYNCRON_SYNC_API_HH

#include <coroutine>
#include <cstdint>
#include <vector>

#include "core/core.hh"
#include "sim/process.hh"
#include "sync/backend.hh"
#include "sync/syncvar.hh"
#include "system/machine.hh"

namespace syncron::sync {

/**
 * Awaitable synchronization operation. The request is issued to the
 * backend when the coroutine suspends; the backend opens the gate when
 * the operation completes (immediately for release-type operations).
 */
class SyncOp
{
  public:
    SyncOp(core::Core &core, SyncBackend &backend, OpKind kind, Addr var,
           std::uint64_t info)
        : core_(core), backend_(backend), gate_(core.machine().eq()),
          var_(var), info_(info), kind_(kind)
    {}

    SyncOp(const SyncOp &) = delete;
    SyncOp &operator=(const SyncOp &) = delete;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        backend_.request(core_, kind_, var_, info_, &gate_);
        // The gate handles both orders: backend already opened it
        // (schedule resume) or will open it later (park the handle).
        gate_.await_suspend(h);
    }

    std::uint64_t await_resume() const noexcept
    {
        return gate_.await_resume();
    }

  private:
    core::Core &core_;
    SyncBackend &backend_;
    sim::Gate gate_;
    Addr var_;
    std::uint64_t info_;
    OpKind kind_;
};

/** Factory for synchronization variables + the Table 2 operations. */
class SyncApi
{
  public:
    SyncApi(Machine &machine, SyncBackend &backend);

    /** create_syncvar(): allocates a variable homed in @p unit. */
    SyncVar createSyncVar(UnitId unit);

    /** Allocates a variable round-robin across units. */
    SyncVar createSyncVarInterleaved();

    /** destroy_syncvar(): releases the variable's line for reuse. */
    void destroySyncVar(SyncVar var);

    // -- Table 2 operations --------------------------------------------
    SyncOp lockAcquire(core::Core &c, SyncVar v);
    SyncOp lockRelease(core::Core &c, SyncVar v);
    SyncOp barrierWaitWithinUnit(core::Core &c, SyncVar v,
                                 std::uint32_t initialCores);
    SyncOp barrierWaitAcrossUnits(core::Core &c, SyncVar v,
                                  std::uint32_t initialCores);
    SyncOp semWait(core::Core &c, SyncVar v,
                   std::uint32_t initialResources);
    SyncOp semPost(core::Core &c, SyncVar v);
    SyncOp condWait(core::Core &c, SyncVar cond, SyncVar lock);
    SyncOp condSignal(core::Core &c, SyncVar cond);
    SyncOp condBroadcast(core::Core &c, SyncVar cond);

    SyncBackend &backend() { return backend_; }

  private:
    SyncOp makeOp(core::Core &c, OpKind kind, SyncVar v,
                  std::uint64_t info);

    Machine &machine_;
    SyncBackend &backend_;
    std::vector<std::vector<Addr>> freeLists_; ///< per-unit recycled vars
    unsigned rr_ = 0;
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_API_HH
