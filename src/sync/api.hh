/**
 * @file
 * SynCron's programming interface (paper Table 2), independent of the
 * backend actually providing synchronization.
 *
 * v2 typed API: primitives are first-class handles created by the api —
 * Lock, Barrier (participant count + scope fixed at creation), Semaphore
 * (initial resources fixed at creation), CondVar — and operations are
 * awaitables built from those handles:
 *
 *   sync::Lock lock = api.createLock(homeUnit);
 *   co_await api.acquire(core, lock);
 *   ... critical section ...
 *   co_await api.release(core, lock);
 *
 * or, with the RAII guard:
 *
 *   {
 *       sync::ScopedLock guard = co_await api.scoped(core, lock);
 *       ... critical section ...
 *       co_await guard.unlock();     // timed release (preferred)
 *   }                                // or: scope exit releases
 *
 * Acquire-type operations map to the req_sync ISA instruction (commit
 * when the response returns); release-type operations map to req_async
 * (commit once issued). Both are realized as awaitables whose completion
 * gate the backend opens; co_await returns a SyncResponse carrying the
 * issue/completion timestamps and the backend's gate payload.
 *
 * The SyncVar-based operation methods at the bottom are thin deprecated
 * shims kept while remaining call sites migrate to the typed handles.
 */

#ifndef SYNCRON_SYNC_API_HH
#define SYNCRON_SYNC_API_HH

#include <coroutine>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/core.hh"
#include "sim/process.hh"
#include "sync/backend.hh"
#include "sync/primitives.hh"
#include "sync/request.hh"
#include "sync/syncvar.hh"
#include "system/machine.hh"

namespace syncron::sync {

class SyncApi;

/**
 * Awaitable synchronization operation. The request is issued to the
 * backend when the coroutine suspends; the backend opens the gate when
 * the operation completes (immediately for release-type operations).
 * co_await yields the operation's SyncResponse and records the observed
 * latency in the machine's per-OpKind statistics.
 */
class SyncOp
{
  public:
    SyncOp(core::Core &core, SyncBackend &backend, const SyncRequest &req)
        : core_(core), backend_(backend), gate_(core.machine().eq()),
          req_(req)
    {}

    SyncOp(const SyncOp &) = delete;
    SyncOp &operator=(const SyncOp &) = delete;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        issuedAt_ = core_.machine().eq().now();
        backend_.request(core_, req_, &gate_);
        // The gate handles both orders: backend already opened it
        // (schedule resume) or will open it later (park the handle).
        gate_.await_suspend(h);
    }

    SyncResponse
    await_resume()
    {
        SyncResponse resp;
        resp.kind = req_.kind();
        resp.issuedAt = issuedAt_;
        resp.completedAt = core_.machine().eq().now();
        resp.payload = gate_.await_resume();
        core_.machine().stats().recordSyncLatency(
            static_cast<unsigned>(resp.kind), resp.latency());
        return resp;
    }

  private:
    core::Core &core_;
    SyncBackend &backend_;
    sim::Gate gate_;
    SyncRequest req_;
    Tick issuedAt_ = 0;
};

/**
 * Move-only lock guard. Obtained by co_await-ing SyncApi::scoped();
 * releases the lock on scope exit unless unlock() already did. The
 * scope-exit release is issued fire-and-forget (legal for req_async
 * operations, which commit at issue); prefer co_await guard.unlock()
 * when the workload should observe the release's issue cycle.
 */
class ScopedLock
{
  public:
    ScopedLock(ScopedLock &&other) noexcept
        : api_(other.api_), core_(other.core_), lock_(other.lock_),
          engaged_(other.engaged_)
    {
        other.engaged_ = false;
    }

    ScopedLock &operator=(ScopedLock &&) = delete;
    ScopedLock(const ScopedLock &) = delete;
    ScopedLock &operator=(const ScopedLock &) = delete;

    ~ScopedLock();

    /** Awaitable explicit release; the guard disengages immediately. */
    SyncOp unlock();

    /** True while this guard still owns the lock. */
    bool owns() const { return engaged_; }

  private:
    friend class ScopedLockOp;

    ScopedLock(SyncApi &api, core::Core &core, const Lock &lock)
        : api_(&api), core_(&core), lock_(lock)
    {}

    SyncApi *api_;
    core::Core *core_;
    Lock lock_;
    bool engaged_ = true;
};

/** Awaitable lock acquisition yielding a ScopedLock guard. */
class ScopedLockOp
{
  public:
    ScopedLockOp(SyncApi &api, core::Core &core, const Lock &lock,
                 SyncBackend &backend)
        : api_(api), core_(core), lock_(lock),
          inner_(core, backend, SyncRequest::lockAcquire(lock.var.addr))
    {}

    ScopedLockOp(const ScopedLockOp &) = delete;
    ScopedLockOp &operator=(const ScopedLockOp &) = delete;

    bool await_ready() const noexcept { return inner_.await_ready(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        inner_.await_suspend(h);
    }

    ScopedLock
    await_resume()
    {
        inner_.await_resume();
        return ScopedLock{api_, core_, lock_};
    }

  private:
    SyncApi &api_;
    core::Core &core_;
    Lock lock_;
    SyncOp inner_;
};

/** Factory for synchronization primitives + the Table 2 operations. */
class SyncApi
{
  public:
    SyncApi(Machine &machine, SyncBackend &backend);

    // -- Typed primitive creation (v2) ---------------------------------
    /** Allocates a lock homed in @p unit. */
    Lock createLock(UnitId unit);
    /** Allocates a lock round-robin across units. */
    Lock createLockInterleaved();
    /** Allocates a barrier for @p participants cores. */
    Barrier createBarrier(UnitId unit, std::uint32_t participants,
                          BarrierScope scope = BarrierScope::AcrossUnits);
    /** Allocates a counting semaphore with @p initialResources. */
    Semaphore createSemaphore(UnitId unit,
                              std::uint32_t initialResources);
    /** Allocates a condition variable. */
    CondVar createCondVar(UnitId unit);

    void destroy(const Lock &lock) { destroySyncVar(lock.var); }
    void destroy(const Barrier &barrier) { destroySyncVar(barrier.var); }
    void destroy(const Semaphore &sem) { destroySyncVar(sem.var); }
    void destroy(const CondVar &cond) { destroySyncVar(cond.var); }

    // -- Typed Table 2 operations (v2) ---------------------------------
    SyncOp acquire(core::Core &c, const Lock &lock);
    SyncOp release(core::Core &c, const Lock &lock);
    /** Acquires @p lock and yields a scope-exit-releasing guard. */
    ScopedLockOp scoped(core::Core &c, const Lock &lock);
    SyncOp wait(core::Core &c, const Barrier &barrier);
    SyncOp wait(core::Core &c, const Semaphore &sem);
    SyncOp post(core::Core &c, const Semaphore &sem);
    SyncOp wait(core::Core &c, const CondVar &cond, const Lock &lock);
    SyncOp signal(core::Core &c, const CondVar &cond);
    SyncOp broadcast(core::Core &c, const CondVar &cond);

    // -- Raw variable management ---------------------------------------
    /** create_syncvar(): allocates a variable homed in @p unit. */
    SyncVar createSyncVar(UnitId unit);

    /** Allocates a variable round-robin across units. */
    SyncVar createSyncVarInterleaved();

    /**
     * destroy_syncvar(): releases the variable's line for reuse. Panics
     * when the backend still tracks state for the variable, and bumps
     * the line's generation so stale handles are caught on use.
     */
    void destroySyncVar(SyncVar var);

    // -- Deprecated SyncVar-based operations (v1 shims) ----------------
    /** @deprecated Use acquire(c, Lock). */
    SyncOp lockAcquire(core::Core &c, SyncVar v);
    /** @deprecated Use release(c, Lock). */
    SyncOp lockRelease(core::Core &c, SyncVar v);
    /** @deprecated Use wait(c, Barrier) with BarrierScope::WithinUnit. */
    SyncOp barrierWaitWithinUnit(core::Core &c, SyncVar v,
                                 std::uint32_t initialCores);
    /** @deprecated Use wait(c, Barrier). */
    SyncOp barrierWaitAcrossUnits(core::Core &c, SyncVar v,
                                  std::uint32_t initialCores);
    /** @deprecated Use wait(c, Semaphore). */
    SyncOp semWait(core::Core &c, SyncVar v,
                   std::uint32_t initialResources);
    /** @deprecated Use post(c, Semaphore). */
    SyncOp semPost(core::Core &c, SyncVar v);
    /** @deprecated Use wait(c, CondVar, Lock). */
    SyncOp condWait(core::Core &c, SyncVar cond, SyncVar lock);
    /** @deprecated Use signal(c, CondVar). */
    SyncOp condSignal(core::Core &c, SyncVar cond);
    /** @deprecated Use broadcast(c, CondVar). */
    SyncOp condBroadcast(core::Core &c, SyncVar cond);

    SyncBackend &backend() { return backend_; }

  private:
    friend class ScopedLock;

    SyncOp makeOp(core::Core &c, const SyncVar &v,
                  const SyncRequest &req);

    /** Panics when @p var is stale (destroyed or recycled). */
    void checkLive(const SyncVar &var) const;

    /**
     * Issues a release-type request without an awaiting coroutine (the
     * ScopedLock scope-exit path). Legal only because req_async
     * operations commit at issue: the backend must open the gate before
     * request() returns.
     */
    void issueDetached(core::Core &c, const SyncVar &v,
                       const SyncRequest &req);

    Machine &machine_;
    SyncBackend &backend_;
    std::vector<std::vector<Addr>> freeLists_; ///< per-unit recycled vars
    /// Current allocation generation per line (absent = 0).
    std::unordered_map<Addr, std::uint32_t> generations_;
    unsigned rr_ = 0;
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_API_HH
