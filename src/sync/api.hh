/**
 * @file
 * SynCron's programming interface (paper Table 2), independent of the
 * backend actually providing synchronization.
 *
 * Primitives are first-class handles created by the api — Lock, Barrier
 * (participant count + scope fixed at creation), Semaphore (initial
 * resources fixed at creation), CondVar — and operations are awaitables
 * built from those handles:
 *
 *   sync::Lock lock = api.createLock(homeUnit);
 *   co_await api.acquire(core, lock);
 *   ... critical section ...
 *   co_await api.release(core, lock);
 *
 * or, with the RAII guard:
 *
 *   {
 *       sync::ScopedLock guard = co_await api.scoped(core, lock);
 *       ... critical section ...
 *       co_await guard.unlock();     // timed release (preferred)
 *   }                                // or: scope exit releases
 *
 * Operations also exist in a split issue/completion form: submit*()
 * issues the request immediately and returns a move-only SyncFuture, so
 * a core can keep several operations in flight (hand-over-hand acquire
 * prefetch, semaphore fan-out) and co_await each future when it needs
 * the response; SyncBatch collects several requests and issues them in
 * one backend call, letting opted-in backends coalesce same-destination
 * members into a single network message. The blocking SyncOp form above
 * is the one-op special case and remains the default idiom.
 *
 * Handle creation through this api is the only way to mint a primitive:
 * there is no raw-variable surface, and every handle is generation-
 * tagged so use after destroy() panics instead of aliasing the recycled
 * line. Fine-grained workloads create their whole lock population at
 * once with createLockSet() (explicit home units or homed with the
 * protected data's addresses).
 *
 * Acquire-type operations map to the req_sync ISA instruction (commit
 * when the response returns); release-type operations map to req_async
 * (commit once issued). Both are realized as awaitables whose completion
 * gate the backend opens; co_await returns a SyncResponse carrying the
 * issue/completion timestamps and the backend's gate payload.
 */

#ifndef SYNCRON_SYNC_API_HH
#define SYNCRON_SYNC_API_HH

#include <coroutine>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/core.hh"
#include "sim/process.hh"
#include "sync/backend.hh"
#include "sync/observer.hh"
#include "sync/primitives.hh"
#include "sync/request.hh"
#include "sync/trace_sink.hh"
#include "system/machine.hh"

namespace syncron::sync {

class SyncApi;

namespace detail {

/**
 * Records one completed operation in the machine's per-OpKind latency
 * statistics and fans it out through SyncApi::notifyOp() (trace sink +
 * observer). Shared by the blocking SyncOp awaitable and the
 * asynchronous SyncFuture so both forms are indistinguishable to
 * observers. @p api may be nullptr (an api-less SyncOp built directly
 * against a backend, as some unit tests do).
 */
void recordCompletion(Machine &machine, SyncApi *api, CoreId core,
                      const SyncRequest &req, Tick issued, Tick completed);

/** Forwards an operation-issue event to the api's observer, if any. */
void recordIssue(SyncApi *api, CoreId core, const SyncRequest &req,
                 Tick issued);

/**
 * State of one in-flight asynchronous operation. The backend keeps a
 * pointer to the gate from submit until it opens it, so the gate needs
 * a stable address while the owning SyncFuture moves freely — which is
 * exactly what pinning this state behind a unique_ptr provides.
 */
struct FutureState
{
    FutureState(Machine &machine, CoreId core, UnitId unit,
                const SyncRequest &req, SyncApi *api)
        : machine(machine), gate(machine.eq(unit)), req(req), api(api),
          core(core), unit(unit)
    {}

    Machine &machine;
    sim::Gate gate; ///< lives on the issuing core's shard queue
    SyncRequest req;
    SyncApi *api;
    CoreId core;
    UnitId unit; ///< issuing core's unit (shard-local clock reads)
    Tick issuedAt = 0;
    bool recorded = false;

    /** Records latency + notifies sink/observer exactly once. */
    void
    finalize(Tick completedAt)
    {
        if (recorded)
            return;
        recorded = true;
        recordCompletion(machine, api, core, req, issuedAt, completedAt);
    }
};

} // namespace detail

/**
 * Handle to one submitted synchronization operation — the split
 * issue/completion form of the api. SyncApi::submit*() issues the
 * request to the backend immediately and returns the future; the core
 * keeps computing (or submits more operations) and co_awaits the future
 * when it needs the result:
 *
 *   sync::SyncFuture next = api.submitAcquire(core, locks[i + 1]);
 *   co_await core.load(node.addr, 16);   // overlapped with the acquire
 *   co_await next;                       // yields the SyncResponse
 *
 * Move-only. A future must not be destroyed while its operation is
 * still in flight (that would dangle the backend's completion gate —
 * the destructor panics); a resolved future may be dropped without
 * being awaited, in which case its completion is still recorded at the
 * gate's ready tick (so statistics and captured traces see every
 * operation exactly once).
 */
class SyncFuture
{
  public:
    SyncFuture(SyncFuture &&) noexcept = default;

    SyncFuture &
    operator=(SyncFuture &&other)
    {
        if (this != &other) {
            finalizeState();
            state_ = std::move(other.state_);
        }
        return *this;
    }

    SyncFuture(const SyncFuture &) = delete;
    SyncFuture &operator=(const SyncFuture &) = delete;

    // noexcept: the in-flight panic in finalizeState() terminates (its
    // message is printed before the throw) — a dropped pending future
    // would otherwise dangle the backend's gate pointer.
    ~SyncFuture() { finalizeState(); }

    /** True while this future refers to a submitted operation. */
    bool valid() const { return state_ != nullptr; }

    /** True once the backend has completed the operation. */
    bool
    resolved() const
    {
        return state_ != nullptr && state_->gate.opened();
    }

    /** The request this future completes. */
    const SyncRequest &
    request() const
    {
        SYNCRON_ASSERT(state_ != nullptr, "request() on an empty future");
        return state_->req;
    }

    // -- Awaitable interface -------------------------------------------
    bool
    await_ready() const
    {
        SYNCRON_ASSERT(state_ != nullptr, "co_await on an empty future");
        return state_->gate.await_ready();
    }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        state_->gate.await_suspend(h);
    }

    SyncResponse
    await_resume()
    {
        SYNCRON_ASSERT(state_ != nullptr, "co_await on an empty future");
        SyncResponse resp;
        resp.kind = state_->req.kind();
        resp.issuedAt = state_->issuedAt;
        resp.completedAt = state_->machine.eq(state_->unit).now();
        resp.payload = state_->gate.await_resume();
        state_->finalize(resp.completedAt);
        return resp;
    }

  private:
    friend class SyncApi;

    explicit SyncFuture(std::unique_ptr<detail::FutureState> state)
        : state_(std::move(state))
    {}

    /**
     * Accounts for a dropped-but-resolved future; panics when the
     * operation is still in flight (the backend still holds the gate).
     */
    void
    finalizeState()
    {
        if (state_ == nullptr)
            return;
        if (state_->machine.crashed()) {
            // Crash teardown: the backend died with the operation in
            // flight, and nothing after the crash tick may enter the
            // durable record stream — drop silently.
            state_.reset();
            return;
        }
        SYNCRON_ASSERT(state_->gate.opened(),
                       "SyncFuture for "
                           << opKindName(state_->req.kind()) << " @"
                           << state_->req.var()
                           << " destroyed while the operation is still "
                              "in flight");
        state_->finalize(state_->gate.readyAt());
        state_.reset();
    }

    std::unique_ptr<detail::FutureState> state_;
};

/**
 * Awaitable synchronization operation — the blocking form of the api,
 * semantically `co_await api.submit...(...)` in one expression. The
 * request is issued to the backend when the coroutine suspends; the
 * backend opens the gate when the operation completes (immediately for
 * release-type operations). co_await yields the operation's
 * SyncResponse and records the observed latency in the machine's
 * per-OpKind statistics. Unlike SyncFuture, the gate lives on the
 * awaiting coroutine's frame, so the blocking path allocates nothing.
 */
class SyncOp
{
  public:
    SyncOp(core::Core &core, SyncBackend &backend, const SyncRequest &req,
           SyncApi *api = nullptr)
        : core_(core), backend_(backend),
          gate_(core.machine().eq(core.unit())), req_(req), api_(api)
    {}

    SyncOp(const SyncOp &) = delete;
    SyncOp &operator=(const SyncOp &) = delete;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        issuedAt_ = core_.machine().eq(core_.unit()).now();
        detail::recordIssue(api_, core_.id(), req_, issuedAt_);
        backend_.request(core_, req_, &gate_);
        // The gate handles both orders: backend already opened it
        // (schedule resume) or will open it later (park the handle).
        gate_.await_suspend(h);
    }

    SyncResponse
    await_resume()
    {
        SyncResponse resp;
        resp.kind = req_.kind();
        resp.issuedAt = issuedAt_;
        resp.completedAt = core_.machine().eq(core_.unit()).now();
        resp.payload = gate_.await_resume();
        detail::recordCompletion(core_.machine(), api_, core_.id(), req_,
                                 issuedAt_, resp.completedAt);
        return resp;
    }

  private:
    core::Core &core_;
    SyncBackend &backend_;
    sim::Gate gate_;
    SyncRequest req_;
    SyncApi *api_;
    Tick issuedAt_ = 0;
};

/**
 * Move-only lock guard. Obtained by co_await-ing SyncApi::scoped();
 * releases the lock on scope exit unless unlock() already did. The
 * scope-exit release is issued fire-and-forget (legal for req_async
 * operations, which commit at issue); prefer co_await guard.unlock()
 * when the workload should observe the release's issue cycle.
 *
 * Move assignment releases the currently held lock (if any) before
 * adopting the other guard, so hand-over-hand traversals are guard
 * chains:
 *
 *   sync::ScopedLock held = co_await api.scoped(core, first);
 *   for (...) {
 *       sync::ScopedLock next = co_await api.scoped(core, child);
 *       co_await held.unlock();
 *       held = std::move(next);
 *   }
 */
class ScopedLock
{
  public:
    ScopedLock(ScopedLock &&other) noexcept
        : api_(other.api_), core_(other.core_), lock_(other.lock_),
          engaged_(other.engaged_)
    {
        other.engaged_ = false;
    }

    /** Releases the held lock (fire-and-forget), then adopts @p other. */
    ScopedLock &operator=(ScopedLock &&other) noexcept;

    ScopedLock(const ScopedLock &) = delete;
    ScopedLock &operator=(const ScopedLock &) = delete;

    ~ScopedLock();

    /** Awaitable explicit release; the guard disengages immediately. */
    SyncOp unlock();

    /** True while this guard still owns the lock. */
    bool owns() const { return engaged_; }

  private:
    friend class ScopedLockOp;

    ScopedLock(SyncApi &api, core::Core &core, const Lock &lock)
        : api_(&api), core_(&core), lock_(lock)
    {}

    /** Issues the fire-and-forget release if still engaged. */
    void releaseDetached();

    SyncApi *api_;
    core::Core *core_;
    Lock lock_;
    bool engaged_ = true;
};

/** Awaitable lock acquisition yielding a ScopedLock guard. */
class ScopedLockOp
{
  public:
    ScopedLockOp(SyncApi &api, core::Core &core, const Lock &lock,
                 SyncBackend &backend)
        : api_(api), core_(core), lock_(lock),
          inner_(core, backend, SyncRequest::lockAcquire(lock.addr), &api)
    {}

    ScopedLockOp(const ScopedLockOp &) = delete;
    ScopedLockOp &operator=(const ScopedLockOp &) = delete;

    bool await_ready() const noexcept { return inner_.await_ready(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        inner_.await_suspend(h);
    }

    ScopedLock
    await_resume()
    {
        inner_.await_resume();
        return ScopedLock{api_, core_, lock_};
    }

  private:
    SyncApi &api_;
    core::Core &core_;
    Lock lock_;
    SyncOp inner_;
};

/**
 * Builder collecting several synchronization requests issued by one
 * core in a single SyncApi/backend call:
 *
 *   sync::SyncBatch batch(api, core);
 *   for (const sync::Semaphore &sem : sems)
 *       batch.post(sem);
 *   std::vector<sync::SyncFuture> posts = batch.submit();
 *   ... compute while the posts are in flight ...
 *   for (sync::SyncFuture &f : posts)
 *       co_await f;
 *
 * Backends that opt into requestBatch() coalesce members targeting the
 * same station into one network message (the Fig. 5 header is paid once
 * per batch instead of once per op); every other backend services the
 * batch as independent requests. submit() clears the builder, so one
 * SyncBatch can be reused across rounds.
 *
 * cond_wait is deliberately absent: its release-the-lock/re-acquire
 * coupling requires the issuing core to be suspended, so it only exists
 * in the blocking form (SyncApi::wait).
 */
class SyncBatch
{
  public:
    SyncBatch(SyncApi &api, core::Core &core) : api_(&api), core_(&core) {}

    SyncBatch &acquire(const Lock &lock);
    SyncBatch &release(const Lock &lock);
    SyncBatch &wait(const Barrier &barrier);
    SyncBatch &wait(const Semaphore &sem);
    SyncBatch &post(const Semaphore &sem);
    SyncBatch &signal(const CondVar &cond);
    SyncBatch &broadcast(const CondVar &cond);

    std::size_t size() const { return reqs_.size(); }
    bool empty() const { return reqs_.empty(); }

    /**
     * Issues every collected request in one backend call and clears the
     * builder. futures[i] completes the i-th collected request.
     */
    std::vector<SyncFuture> submit();

  private:
    SyncBatch &add(const SyncPrimitive &prim, const SyncRequest &req);

    SyncApi *api_;
    core::Core *core_;
    std::vector<SyncRequest> reqs_;
    std::vector<SyncPrimitive> prims_; ///< handle per request (liveness)
};

/** Factory for synchronization primitives + the Table 2 operations. */
class SyncApi
{
  public:
    SyncApi(Machine &machine, SyncBackend &backend);

    // -- Typed primitive creation --------------------------------------
    /** Allocates a lock homed in @p unit. */
    Lock createLock(UnitId unit);
    /** Allocates a lock round-robin across units. */
    Lock createLockInterleaved();
    /** Allocates a barrier for @p participants cores. */
    Barrier createBarrier(UnitId unit, std::uint32_t participants,
                          BarrierScope scope = BarrierScope::AcrossUnits);
    /** Allocates a counting semaphore with @p initialResources. */
    Semaphore createSemaphore(UnitId unit,
                              std::uint32_t initialResources);
    /** Allocates a condition variable. */
    CondVar createCondVar(UnitId unit);

    /**
     * Allocates @p count fine-grained locks. Lock i is homed in
     * homes[i % homes.size()]; an empty @p homes distributes the locks
     * round-robin across all units.
     */
    LockSet createLockSet(std::size_t count,
                          const std::vector<UnitId> &homes = {});

    /**
     * Allocates one lock per protected datum, homed in the unit that
     * owns the datum's address — the distribute-by-address placement
     * used by per-node/per-element locking (the lock always lives with
     * the data it protects, so its Master SE is the data's local SE).
     */
    LockSet createLockSetByAddr(const std::vector<Addr> &protectedAddrs);

    /**
     * Releases a primitive's line for reuse. Panics when the backend
     * still tracks state for it, and bumps the line's generation so
     * stale handles are caught on use.
     */
    void destroy(const Lock &lock) { destroyPrimitive(lock); }
    void destroy(const Barrier &barrier) { destroyPrimitive(barrier); }
    void destroy(const Semaphore &sem) { destroyPrimitive(sem); }
    void destroy(const CondVar &cond) { destroyPrimitive(cond); }
    /** Destroys every lock in the set and empties it. */
    void destroy(LockSet &set);

    // -- Asynchronous submission (split issue/completion) --------------
    /**
     * Issues @p req against @p prim immediately and returns the future
     * the core co_awaits for the response — the pipelined form of the
     * Table 2 operations. Any number of futures may be in flight per
     * core. cond_wait cannot be submitted (see SyncBatch).
     */
    SyncFuture submit(core::Core &c, const SyncPrimitive &prim,
                      const SyncRequest &req);

    SyncFuture submitAcquire(core::Core &c, const Lock &lock);
    SyncFuture submitRelease(core::Core &c, const Lock &lock);
    SyncFuture submitWait(core::Core &c, const Barrier &barrier);
    SyncFuture submitWait(core::Core &c, const Semaphore &sem);
    SyncFuture submitPost(core::Core &c, const Semaphore &sem);
    SyncFuture submitSignal(core::Core &c, const CondVar &cond);
    SyncFuture submitBroadcast(core::Core &c, const CondVar &cond);

    /**
     * Issues every request of a batch in one backend call
     * (SyncBackend::requestBatch); prims[i] is the primitive handle
     * behind reqs[i], used for liveness checking. Normally reached
     * through SyncBatch::submit().
     */
    std::vector<SyncFuture> submitBatch(core::Core &c,
                                        std::span<const SyncRequest> reqs,
                                        std::span<const SyncPrimitive> prims);

    // -- Typed Table 2 operations --------------------------------------
    SyncOp acquire(core::Core &c, const Lock &lock);
    SyncOp release(core::Core &c, const Lock &lock);
    /** Acquires @p lock and yields a scope-exit-releasing guard. */
    ScopedLockOp scoped(core::Core &c, const Lock &lock);
    SyncOp wait(core::Core &c, const Barrier &barrier);
    SyncOp wait(core::Core &c, const Semaphore &sem);
    SyncOp post(core::Core &c, const Semaphore &sem);
    SyncOp wait(core::Core &c, const CondVar &cond, const Lock &lock);
    SyncOp signal(core::Core &c, const CondVar &cond);
    SyncOp broadcast(core::Core &c, const CondVar &cond);

    SyncBackend &backend() { return backend_; }

    /**
     * Installs (or, with nullptr, removes) the sink notified of every
     * completed operation — the capture hook behind
     * SystemConfig::tracePath. The sink must outlive all operations
     * issued while it is installed.
     */
    void setTraceSink(TraceSink *sink) { traceSink_ = sink; }

    /** The installed trace sink; nullptr when not tracing. */
    TraceSink *traceSink() const { return traceSink_; }

    /**
     * Installs (or, with nullptr, removes) the live analysis observer —
     * the hook behind SystemConfig::analyze. Composes with the trace
     * sink: both are fed from the same notifyOp() dispatch, so
     * capture+analyze see identical streams in one run. The observer
     * must outlive all operations issued while it is installed.
     */
    void setObserver(OpObserver *observer) { observer_ = observer; }

    /** The installed analysis observer; nullptr when not analyzing. */
    OpObserver *observer() const { return observer_; }

    /**
     * Registers an additional observer fed from the same notify
     * dispatch as the primary one (durability's WAL capture hooks in
     * this way, composing with tracing and analysis). Must outlive all
     * operations issued while registered; there is no removal — aux
     * observers live for the system's lifetime.
     */
    void addAuxObserver(OpObserver *observer)
    {
        auxObservers_.push_back(observer);
    }

    /**
     * Single completion fan-out: per-OpKind latency statistics are
     * recorded by the caller (detail::recordCompletion); this forwards
     * the completed operation to the trace sink and the observer.
     */
    void
    notifyOp(CoreId core, const SyncRequest &req, Tick issued,
             Tick completed)
    {
        if (traceSink_ != nullptr)
            traceSink_->record(core, req, issued, completed);
        if (observer_ != nullptr)
            observer_->onComplete(core, req, issued, completed);
        for (OpObserver *aux : auxObservers_)
            aux->onComplete(core, req, issued, completed);
    }

    /** Issue-side fan-out (observer only; traces carry completions). */
    void
    notifyIssue(CoreId core, const SyncRequest &req, Tick issued)
    {
        if (observer_ != nullptr)
            observer_->onIssue(core, req, issued);
        for (OpObserver *aux : auxObservers_)
            aux->onIssue(core, req, issued);
    }

    /**
     * Reports a shadow-state access to the analysis observer — the
     * workload-side input of the lockset race checker. Call it for
     * reads/writes of data a lock (or LockSet member) is meant to
     * protect; accesses that are lock-free by design (e.g. optimistic
     * traversals that re-validate) should not be hinted. A no-op
     * without an installed observer.
     */
    void
    accessHint(const core::Core &c, Addr addr, bool isWrite)
    {
        const Tick now = machine_.eq(c.unit()).now();
        if (observer_ != nullptr)
            observer_->onAccess(c.id(), addr, isWrite, now);
        for (OpObserver *aux : auxObservers_)
            aux->onAccess(c.id(), addr, isWrite, now);
    }

  private:
    friend class ScopedLock;

    /** Allocates a fresh (or recycled) line homed in @p unit. */
    SyncPrimitive allocVar(UnitId unit);

    /** Allocates a line round-robin across units. */
    SyncPrimitive allocVarInterleaved();

    void destroyPrimitive(const SyncPrimitive &prim);

    SyncOp makeOp(core::Core &c, const SyncPrimitive &prim,
                  const SyncRequest &req);

    /** Allocates the pinned state of one submitted operation. */
    std::unique_ptr<detail::FutureState>
    makeFutureState(core::Core &c, const SyncRequest &req);

    /** Panics when @p prim is stale (destroyed or recycled). */
    void checkLive(const SyncPrimitive &prim) const;

    /**
     * Issues a release-type request without an awaiting coroutine (the
     * ScopedLock scope-exit path). Legal only because req_async
     * operations commit at issue: the backend must open the gate before
     * request() returns.
     */
    void issueDetached(core::Core &c, const SyncPrimitive &prim,
                       const SyncRequest &req);

    Machine &machine_;
    SyncBackend &backend_;
    TraceSink *traceSink_ = nullptr;
    OpObserver *observer_ = nullptr;
    std::vector<OpObserver *> auxObservers_; ///< durability et al.
    std::vector<std::vector<Addr>> freeLists_; ///< per-unit recycled lines
    /// Current allocation generation per line (absent = 0).
    std::unordered_map<Addr, std::uint32_t> generations_;
    unsigned rr_ = 0;    ///< createLockInterleaved / allocVarInterleaved
    unsigned rrSet_ = 0; ///< createLockSet's own round-robin cursor
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_API_HH
