#include "sync/registry.hh"

#include "common/log.hh"
#include "sync/backend.hh"

namespace syncron::sync {

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::add(std::string name, Factory factory, bool shardable)
{
    SYNCRON_ASSERT(factory != nullptr,
                   "null factory for backend '" << name << "'");
    auto [it, inserted] = factories_.emplace(
        std::move(name), Entry{std::move(factory), shardable});
    SYNCRON_ASSERT(inserted,
                   "backend '" << it->first << "' registered twice");
}

bool
BackendRegistry::contains(std::string_view name) const
{
    return factories_.find(name) != factories_.end();
}

bool
BackendRegistry::shardable(std::string_view name) const
{
    auto it = factories_.find(name);
    return it != factories_.end() && it->second.shardable;
}

std::unique_ptr<SyncBackend>
BackendRegistry::tryCreate(std::string_view name, Machine &machine) const
{
    auto it = factories_.find(name);
    if (it == factories_.end())
        return nullptr;
    return it->second.factory(machine);
}

std::unique_ptr<SyncBackend>
BackendRegistry::create(std::string_view name, Machine &machine) const
{
    std::unique_ptr<SyncBackend> backend = tryCreate(name, machine);
    if (!backend) {
        SYNCRON_FATAL("unknown synchronization backend '"
                      << name << "' (known: " << knownNames() << ")");
    }
    return backend;
}

std::string
BackendRegistry::knownNames() const
{
    std::string out;
    for (const std::string &n : names()) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, entry] : factories_)
        out.push_back(name);
    return out; // std::map iteration is already sorted
}

BackendRegistration::BackendRegistration(const char *name,
                                         BackendRegistry::Factory factory,
                                         bool shardable)
{
    BackendRegistry::instance().add(name, std::move(factory), shardable);
}

} // namespace syncron::sync
