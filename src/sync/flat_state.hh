/**
 * @file
 * Flat (non-hierarchical) semantic state machine for all four
 * synchronization primitives.
 *
 * This is the functional core shared by the Ideal backend (zero cost),
 * the Central baseline (one software server for the whole system), and
 * the SynCron-flat ablation (one Master SE per variable, no local SEs).
 * It tracks owners/waiters/counts per variable and reports which waiting
 * cores become runnable after each operation; the calling backend
 * attaches its own timing and message costs.
 *
 * It is also the reference model against which the hierarchical SynCron
 * protocol is property-tested (same grants must eventually be produced).
 */

#ifndef SYNCRON_SYNC_FLAT_STATE_HH
#define SYNCRON_SYNC_FLAT_STATE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/process.hh"
#include "sync/opcodes.hh"
#include "sync/request.hh"

namespace syncron::sync {

/** A core whose pending operation has been granted. */
struct SyncGrant
{
    CoreId core = kInvalidCore;
    sim::Gate *gate = nullptr;
};

/** Flat semantics for locks, barriers, semaphores, condition variables. */
class FlatSyncState
{
  public:
    /**
     * A lock operation a condition-variable op needs applied at the
     * lock's own home. Backends that partition variables across several
     * FlatSyncState instances (SynCron-flat: one per Master SE) pass a
     * forward list to apply(); cond_wait/signal/broadcast then emit the
     * release / re-acquire of the associated lock here instead of
     * resolving it in-place, and the backend routes each entry to the
     * instance owning @c lock (paying its message cost on the way).
     */
    struct LockOp
    {
        Addr lock = 0;
        CoreId core = kInvalidCore;
        sim::Gate *gate = nullptr; ///< waiter's gate for re-acquires
        bool acquire = false;      ///< false: release by @c core
    };

    /**
     * Applies one operation and returns the cores granted as a result
     * (possibly including the requester, e.g. an uncontended
     * lock_acquire).
     *
     * @param req     typed request descriptor
     * @param core    requesting core (system-wide id)
     * @param gate    requester's gate for acquire-type ops; nullptr for
     *                release-type ops (their gate opens at issue)
     * @param forward when non-null, cond ops emit their associated-lock
     *                manipulation here instead of applying it in-place
     */
    std::vector<SyncGrant> apply(const SyncRequest &req, CoreId core,
                                 sim::Gate *gate,
                                 std::vector<LockOp> *forward = nullptr);

    /** True when @p var has no owner, waiters, or residual state. */
    bool idle(Addr var) const;

    /** Number of variables with live state. */
    std::size_t liveVars() const { return vars_.size(); }

    /** Drops state for @p var (destroy_syncvar). */
    void destroy(Addr var) { vars_.erase(var); }

  private:
    struct CondWaiter
    {
        CoreId core;
        sim::Gate *gate;
        Addr lockAddr;
    };

    struct VarState
    {
        // Lock
        bool locked = false;
        CoreId owner = kInvalidCore;
        std::deque<SyncGrant> lockWaiters;
        // Barrier
        std::uint32_t barrierArrived = 0;
        std::vector<SyncGrant> barrierWaiters;
        // Semaphore
        bool semInitialized = false;
        std::int64_t semCount = 0;
        std::deque<SyncGrant> semWaiters;
        // Condition variable
        std::deque<CondWaiter> condWaiters;

        bool idle() const;
    };

    VarState &state(Addr var) { return vars_[var]; }

    void lockAcquire(VarState &st, CoreId core, sim::Gate *gate,
                     std::vector<SyncGrant> &out);
    void lockRelease(Addr var, CoreId core, std::vector<SyncGrant> &out);

    std::unordered_map<Addr, VarState> vars_;
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_FLAT_STATE_HH
