/**
 * @file
 * String-keyed registry of synchronization backends.
 *
 * Each backend's translation unit self-registers a factory under the
 * scheme name it reports (SYNCRON_REGISTER_BACKEND at namespace scope),
 * and NdpSystem instantiates backends purely by name — no central switch
 * over a Scheme enum, so out-of-tree backends plug in by linking one
 * object file, and harnesses/CLIs/configs can select schemes from
 * strings.
 *
 * Note for embedders: the core must be linked as a whole (the build uses
 * a CMake OBJECT library) so the self-registration objects are not
 * dead-stripped as unreferenced static-library members.
 */

#ifndef SYNCRON_SYNC_REGISTRY_HH
#define SYNCRON_SYNC_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace syncron {
class Machine;
} // namespace syncron

namespace syncron::sync {

class SyncBackend;

/** Global name -> factory table for synchronization backends. */
class BackendRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<SyncBackend>(Machine &)>;

    /** The process-wide registry (initialized on first use). */
    static BackendRegistry &instance();

    /**
     * Registers @p factory under @p name; duplicate names are fatal.
     * @p shardable declares the backend safe for sharded simulation
     * (SystemConfig::simShards > 1): its agents reach other units only
     * through Machine's mailbox primitives. Backends that touch foreign
     * units synchronously (Ideal's zero-latency grants, the MiSAR
     * overflow ablations) stay non-shardable and collapse sharded runs
     * to one shard.
     */
    void add(std::string name, Factory factory, bool shardable = false);

    /** True when a backend is registered under @p name. */
    bool contains(std::string_view name) const;

    /** True when @p name is registered and declared shard-safe. */
    bool shardable(std::string_view name) const;

    /**
     * Instantiates the backend registered under @p name on @p machine.
     * @return nullptr when no such backend exists
     */
    std::unique_ptr<SyncBackend> tryCreate(std::string_view name,
                                           Machine &machine) const;

    /** Like tryCreate(), but unknown names are fatal (lists options). */
    std::unique_ptr<SyncBackend> create(std::string_view name,
                                        Machine &machine) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Registered names joined as "a, b, c" (for error messages). */
    std::string knownNames() const;

  private:
    BackendRegistry() = default;

    struct Entry
    {
        Factory factory;
        bool shardable = false;
    };

    std::map<std::string, Entry, std::less<>> factories_;
};

/** Registers a backend factory at static-initialization time. */
struct BackendRegistration
{
    BackendRegistration(const char *name, BackendRegistry::Factory factory,
                        bool shardable = false);
};

} // namespace syncron::sync

#define SYNCRON_REGISTRY_CONCAT_INNER(a, b) a##b
#define SYNCRON_REGISTRY_CONCAT(a, b) SYNCRON_REGISTRY_CONCAT_INNER(a, b)

/**
 * Self-registers a backend under @p name. Place one per backend at
 * namespace scope in the backend's .cc file:
 *
 *   SYNCRON_REGISTER_BACKEND("Ideal", [](Machine &m) {
 *       return std::make_unique<IdealBackend>(m);
 *   });
 */
#define SYNCRON_REGISTER_BACKEND(name, ...)                                 \
    static const ::syncron::sync::BackendRegistration                       \
        SYNCRON_REGISTRY_CONCAT(syncronBackendRegistration_, __COUNTER__){  \
            name, __VA_ARGS__}

/**
 * Like SYNCRON_REGISTER_BACKEND, but declares the backend safe for
 * sharded simulation (see BackendRegistry::add): its agents never touch
 * a foreign unit's queue, gates, or devices synchronously — all
 * cross-unit work goes through Machine::postMessage()/
 * memoryAccessAsync().
 */
#define SYNCRON_REGISTER_BACKEND_SHARDABLE(name, ...)                       \
    static const ::syncron::sync::BackendRegistration                       \
        SYNCRON_REGISTRY_CONCAT(syncronBackendRegistration_, __COUNTER__){  \
            name, __VA_ARGS__, /*shardable=*/true}

#endif // SYNCRON_SYNC_REGISTRY_HH
