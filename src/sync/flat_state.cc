#include "sync/flat_state.hh"

#include "common/log.hh"

namespace syncron::sync {

bool
FlatSyncState::VarState::idle() const
{
    return !locked && lockWaiters.empty() && barrierArrived == 0
           && barrierWaiters.empty() && semWaiters.empty()
           && condWaiters.empty();
}

void
FlatSyncState::lockAcquire(VarState &st, CoreId core, sim::Gate *gate,
                           std::vector<SyncGrant> &out)
{
    if (!st.locked) {
        st.locked = true;
        st.owner = core;
        out.push_back(SyncGrant{core, gate});
    } else {
        st.lockWaiters.push_back(SyncGrant{core, gate});
    }
}

void
FlatSyncState::lockRelease(Addr var, CoreId core,
                           std::vector<SyncGrant> &out)
{
    VarState &st = state(var);
    SYNCRON_ASSERT(st.locked, "release of unlocked lock @" << var
                                  << " by core " << core);
    SYNCRON_ASSERT(st.owner == core, "release by non-owner core "
                                         << core << " (owner "
                                         << st.owner << ")");
    if (!st.lockWaiters.empty()) {
        SyncGrant next = st.lockWaiters.front();
        st.lockWaiters.pop_front();
        st.owner = next.core;
        out.push_back(next);
    } else {
        st.locked = false;
        st.owner = kInvalidCore;
    }
}

std::vector<SyncGrant>
FlatSyncState::apply(const SyncRequest &req, CoreId core, sim::Gate *gate,
                     std::vector<LockOp> *forward)
{
    std::vector<SyncGrant> out;
    const Addr var = req.var();
    VarState &st = state(var);

    switch (req.kind()) {
      case OpKind::LockAcquire:
        lockAcquire(st, core, gate, out);
        break;

      case OpKind::LockRelease:
        lockRelease(var, core, out);
        break;

      case OpKind::BarrierWaitWithinUnit:
      case OpKind::BarrierWaitAcrossUnits: {
        ++st.barrierArrived;
        st.barrierWaiters.push_back(SyncGrant{core, gate});
        if (st.barrierArrived >= req.participants()) {
            out = std::move(st.barrierWaiters);
            st.barrierWaiters.clear();
            st.barrierArrived = 0; // barrier is reusable
        }
        break;
      }

      case OpKind::SemWait: {
        if (!st.semInitialized) {
            st.semInitialized = true;
            st.semCount = static_cast<std::int64_t>(req.resources());
        }
        if (st.semCount > 0) {
            --st.semCount;
            out.push_back(SyncGrant{core, gate});
        } else {
            st.semWaiters.push_back(SyncGrant{core, gate});
        }
        break;
      }

      case OpKind::SemPost: {
        if (!st.semInitialized) {
            st.semInitialized = true;
            st.semCount = 0;
        }
        if (!st.semWaiters.empty()) {
            SyncGrant next = st.semWaiters.front();
            st.semWaiters.pop_front();
            out.push_back(next);
        } else {
            ++st.semCount;
        }
        break;
      }

      case OpKind::CondWait: {
        const Addr lockAddr = req.condLock();
        // Atomically: queue on the condition, then release the lock.
        st.condWaiters.push_back(CondWaiter{core, gate, lockAddr});
        if (forward != nullptr)
            forward->push_back(LockOp{lockAddr, core, nullptr, false});
        else
            lockRelease(lockAddr, core, out);
        break;
      }

      case OpKind::CondSignal: {
        if (!st.condWaiters.empty()) {
            CondWaiter w = st.condWaiters.front();
            st.condWaiters.pop_front();
            // The woken core must re-acquire the associated lock before
            // its cond_wait returns.
            if (forward != nullptr)
                forward->push_back(LockOp{w.lockAddr, w.core, w.gate,
                                          true});
            else
                lockAcquire(state(w.lockAddr), w.core, w.gate, out);
        }
        break;
      }

      case OpKind::CondBroadcast: {
        std::deque<CondWaiter> waiters = std::move(st.condWaiters);
        st.condWaiters.clear();
        for (const CondWaiter &w : waiters) {
            if (forward != nullptr)
                forward->push_back(LockOp{w.lockAddr, w.core, w.gate,
                                          true});
            else
                lockAcquire(state(w.lockAddr), w.core, w.gate, out);
        }
        break;
      }
    }

    return out;
}

bool
FlatSyncState::idle(Addr var) const
{
    auto it = vars_.find(var);
    return it == vars_.end() || it->second.idle();
}

} // namespace syncron::sync
