/**
 * @file
 * Observer interface for the synchronization-operation stream.
 *
 * SyncApi notifies the installed sink of every completed operation —
 * awaited ops at gate-open time, detached (fire-and-forget) releases at
 * issue time — with the typed request and both timestamps. The sink
 * lives here in sync/ so the api does not depend on the trace
 * subsystem; trace::TraceCapture is the production implementation.
 */

#ifndef SYNCRON_SYNC_TRACE_SINK_HH
#define SYNCRON_SYNC_TRACE_SINK_HH

#include "common/types.hh"
#include "sync/request.hh"

namespace syncron::sync {

/** Receives every synchronization operation the api issues. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * One completed operation.
     *
     * @param core      system-wide id of the issuing core
     * @param req       the typed request as handed to the backend
     * @param issued    tick the request was issued
     * @param completed tick the core observed completion
     */
    virtual void record(CoreId core, const SyncRequest &req, Tick issued,
                       Tick completed) = 0;

    /**
     * The primitive at @p var was destroyed; its line may be recycled
     * for an unrelated primitive. Lets the sink close the current
     * logical primitive so the next use of the line opens a fresh one.
     */
    virtual void recordDestroy(Addr var) { (void)var; }
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_TRACE_SINK_HH
