/**
 * @file
 * Typed synchronization-request and -response descriptors — the v2
 * backend-boundary types.
 *
 * A SyncRequest replaces the old raw (OpKind, Addr, uint64 info) tuple:
 * it is built through named factories, carries a payload whose meaning is
 * discriminated by the operation kind (barrier participant count,
 * semaphore initial resources, or the lock address associated with a
 * cond_wait — the three uses of the paper's MessageInfo field, Fig. 5),
 * and exposes only kind-checked accessors, so backends never decode
 * magic integers.
 *
 * The wire encoding still exists — SynCron's hardware messages carry a
 * 64-bit MessageInfo field — but it is produced and parsed in exactly
 * one place: messageInfo() / fromMessageInfo() below.
 *
 * A SyncResponse is what a completed operation returns to the awaiting
 * coroutine: the operation kind, issue/completion timestamps (feeding
 * the per-OpKind latency statistics), and the backend's gate payload.
 */

#ifndef SYNCRON_SYNC_REQUEST_HH
#define SYNCRON_SYNC_REQUEST_HH

#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"
#include "sync/opcodes.hh"

namespace syncron::sync {

/** Which cores a barrier coordinates (paper Table 2). */
enum class BarrierScope : std::uint8_t
{
    WithinUnit,  ///< participants all live in the variable's home unit
    AcrossUnits, ///< participants span NDP units (hierarchical protocol)
};

/** Typed request descriptor consumed by every SyncBackend. */
class SyncRequest
{
  public:
    // -- Named factories (the only way to build a request) -------------
    static SyncRequest
    lockAcquire(Addr var)
    {
        return SyncRequest{OpKind::LockAcquire, var, 0};
    }

    static SyncRequest
    lockRelease(Addr var)
    {
        return SyncRequest{OpKind::LockRelease, var, 0};
    }

    static SyncRequest
    barrierWait(Addr var, BarrierScope scope, std::uint32_t participants)
    {
        SYNCRON_ASSERT(participants >= 1,
                       "barrier @" << var << " with zero participants");
        return SyncRequest{scope == BarrierScope::WithinUnit
                               ? OpKind::BarrierWaitWithinUnit
                               : OpKind::BarrierWaitAcrossUnits,
                           var, participants};
    }

    static SyncRequest
    semWait(Addr var, std::uint32_t initialResources)
    {
        return SyncRequest{OpKind::SemWait, var, initialResources};
    }

    static SyncRequest
    semPost(Addr var)
    {
        return SyncRequest{OpKind::SemPost, var, 0};
    }

    static SyncRequest
    condWait(Addr cond, Addr assocLock)
    {
        SYNCRON_ASSERT(assocLock != 0,
                       "cond_wait @" << cond << " without associated lock");
        return SyncRequest{OpKind::CondWait, cond, assocLock};
    }

    static SyncRequest
    condSignal(Addr cond)
    {
        return SyncRequest{OpKind::CondSignal, cond, 0};
    }

    static SyncRequest
    condBroadcast(Addr cond)
    {
        return SyncRequest{OpKind::CondBroadcast, cond, 0};
    }

    /**
     * Re-types a request from the Fig. 5 wire encoding — the inverse of
     * messageInfo(). Only the modeled hardware/software boundary (e.g.
     * the MiSAR abort path re-issuing an in-flight message to the
     * software fallback) may use this.
     */
    static SyncRequest
    fromMessageInfo(OpKind kind, Addr var, std::uint64_t info)
    {
        return SyncRequest{kind, var, info};
    }

    // -- Kind and variable ---------------------------------------------
    OpKind kind() const { return kind_; }
    Addr var() const { return var_; }

    /** req_sync semantics: commits when the response returns. */
    bool acquireType() const { return isAcquireType(kind_); }

    /** req_async semantics: commits once issued to the network. */
    bool releaseType() const { return isReleaseType(kind_); }

    // -- Kind-checked payload accessors --------------------------------
    /** Barrier participant count (barrier_wait only). */
    std::uint32_t
    participants() const
    {
        SYNCRON_ASSERT(kind_ == OpKind::BarrierWaitWithinUnit
                           || kind_ == OpKind::BarrierWaitAcrossUnits,
                       "participants() on " << opKindName(kind_));
        return static_cast<std::uint32_t>(payload_);
    }

    /** Semaphore initial resources (sem_wait only). */
    std::uint32_t
    resources() const
    {
        SYNCRON_ASSERT(kind_ == OpKind::SemWait,
                       "resources() on " << opKindName(kind_));
        return static_cast<std::uint32_t>(payload_);
    }

    /** Address of the lock associated with a cond_wait. */
    Addr
    condLock() const
    {
        SYNCRON_ASSERT(kind_ == OpKind::CondWait,
                       "condLock() on " << opKindName(kind_));
        return static_cast<Addr>(payload_);
    }

    /** MessageInfo wire encoding (Fig. 5) for SyncMessage::info. */
    std::uint64_t messageInfo() const { return payload_; }

    // -- Durability metadata -------------------------------------------
    /** WAL intent sequence stamped by the persist path (0 = none). */
    std::uint64_t walSeq() const { return walSeq_; }

    /** Copy of this request carrying WAL intent sequence @p seq. */
    SyncRequest
    withWalSeq(std::uint64_t seq) const
    {
        SyncRequest r = *this;
        r.walSeq_ = seq;
        return r;
    }

    /** Equality ignores durability metadata: same op, var, payload. */
    friend bool
    operator==(const SyncRequest &a, const SyncRequest &b)
    {
        return a.var_ == b.var_ && a.payload_ == b.payload_
               && a.kind_ == b.kind_;
    }

  private:
    SyncRequest(OpKind kind, Addr var, std::uint64_t payload)
        : var_(var), payload_(payload), kind_(kind)
    {}

    Addr var_ = 0;
    std::uint64_t payload_ = 0; ///< discriminated by kind_
    std::uint64_t walSeq_ = 0;  ///< durability WAL intent (0 = none)
    OpKind kind_;
};

/**
 * Completion record of one synchronization operation, carried back
 * through the gate to the awaiting coroutine by SyncOp::await_resume().
 */
struct SyncResponse
{
    OpKind kind{};
    Tick issuedAt = 0;    ///< tick the request was issued to the backend
    Tick completedAt = 0; ///< tick the core observed completion
    std::uint64_t payload = 0; ///< backend-specific gate payload

    /** Core-observed operation latency. */
    Tick latency() const { return completedAt - issuedAt; }
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_REQUEST_HH
