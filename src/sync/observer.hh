/**
 * @file
 * Observer hook over the synchronization-operation stream — the
 * analysis-facing sibling of TraceSink.
 *
 * A TraceSink records completed operations for later replay; an
 * OpObserver watches the same stream live, plus two events a trace
 * does not carry: operation *issue* (needed to model cond_wait's
 * release-the-lock-at-issue semantics) and shadow-state *accesses*
 * reported by workloads through SyncApi::accessHint() (the input of
 * the Eraser-style lockset race checker).
 *
 * Both hooks are fed from the single SyncApi::notifyOp()/notifyIssue()
 * dispatch point, so capture and analysis compose in one run and see
 * identical streams. Events arrive in simulation-time order; per core
 * that order equals program order (the cores are in-order).
 */

#ifndef SYNCRON_SYNC_OBSERVER_HH
#define SYNCRON_SYNC_OBSERVER_HH

#include "common/types.hh"
#include "sync/request.hh"

namespace syncron::sync {

/** Live observer of the synchronization-operation stream. */
class OpObserver
{
  public:
    virtual ~OpObserver() = default;

    /**
     * An operation was issued to the backend. Only cond_wait semantics
     * need this (the associated lock is released at issue, long before
     * the wait completes); the default ignores it.
     */
    virtual void onIssue(CoreId, const SyncRequest &, Tick) {}

    /** An operation completed (same event TraceSink::record sees). */
    virtual void onComplete(CoreId core, const SyncRequest &req,
                            Tick issued, Tick completed) = 0;

    /**
     * A workload touched shadow state at @p addr while holding whatever
     * locks the observer has seen it acquire — the lockset checker's
     * access event, reported via SyncApi::accessHint().
     */
    virtual void onAccess(CoreId, Addr, bool /*isWrite*/, Tick) {}

    /** A primitive's line was destroyed (handle invalidated). */
    virtual void onDestroy(Addr) {}
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_OBSERVER_HH
