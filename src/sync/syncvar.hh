/**
 * @file
 * Synchronization-variable handles and the message format exchanged
 * between NDP cores and Synchronization Engines (paper Fig. 5).
 *
 * A SyncVar is the opaque handle returned by create_syncvar() (Table 2):
 * programmers never dereference it; its address determines the Master SE
 * (Section 3.1) and backs the in-memory syncronVar record under ST
 * overflow (Fig. 9).
 */

#ifndef SYNCRON_SYNC_SYNCVAR_HH
#define SYNCRON_SYNC_SYNCVAR_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/allocator.hh"
#include "sync/opcodes.hh"

namespace syncron::sync {

/** Opaque handle to a synchronization variable. */
struct SyncVar
{
    Addr addr = 0;

    /**
     * Allocation generation of the backing line. destroy_syncvar() bumps
     * the line's generation before recycling it, so a stale handle held
     * across a destroy/create cycle is detectable (SyncApi panics instead
     * of silently aliasing the new variable's state).
     */
    std::uint32_t gen = 0;

    /** NDP unit owning the variable; its SE is the Master SE. */
    UnitId home() const { return mem::unitOfAddr(addr); }

    bool valid() const { return addr != 0; }

    friend bool operator==(const SyncVar &, const SyncVar &) = default;
};

/**
 * Size of the in-memory syncronVar record (Fig. 9):
 * uint16_t Waitlist[4] + uint64_t VarInfo + uint8_t OverflowInfo,
 * padded to 16 bytes.
 */
constexpr std::uint32_t kSyncronVarBytes = 16;

/** Request-message size: 64 addr + 6 opcode + 6 core id + 64 info bits. */
constexpr std::uint32_t kSyncReqBits = 140;

/** Response-message size (Fig. 6 datapath: 149 bits). */
constexpr std::uint32_t kSyncRespBits = 149;

/**
 * A synchronization message (Fig. 5). Used between cores and SEs and,
 * with global/overflow opcodes, between SEs.
 */
struct SyncMessage
{
    Addr addr = 0;          ///< synchronization variable address
    Op opcode{};            ///< message opcode (Table 3)
    std::uint32_t coreId = 0; ///< local core id, or global SE id
    std::uint64_t info = 0;   ///< MessageInfo (Fig. 5)

    // -- Typed MessageInfo views (meaning fixed by the opcode) ----------
    /** Lock address associated with a cond_wait-family message. */
    Addr condLockAddr() const { return static_cast<Addr>(info); }

    /** Barrier participant total carried by barrier-wait messages. */
    std::uint64_t barrierTotal() const { return info; }

    /** Semaphore initial-resource count carried by sem_wait messages. */
    std::uint64_t semResources() const { return info; }
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_SYNCVAR_HH
