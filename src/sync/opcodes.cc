#include "sync/opcodes.hh"

namespace syncron::sync {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::LockAcquire: return "lock_acquire";
      case OpKind::LockRelease: return "lock_release";
      case OpKind::BarrierWaitWithinUnit: return "barrier_wait_within_unit";
      case OpKind::BarrierWaitAcrossUnits:
        return "barrier_wait_across_units";
      case OpKind::SemWait: return "sem_wait";
      case OpKind::SemPost: return "sem_post";
      case OpKind::CondWait: return "cond_wait";
      case OpKind::CondSignal: return "cond_signal";
      case OpKind::CondBroadcast: return "cond_broadcast";
    }
    return "?";
}

bool
isAcquireType(OpKind kind)
{
    switch (kind) {
      case OpKind::LockAcquire:
      case OpKind::BarrierWaitWithinUnit:
      case OpKind::BarrierWaitAcrossUnits:
      case OpKind::SemWait:
      case OpKind::CondWait:
        return true;
      default:
        return false;
    }
}

bool
isReleaseType(OpKind kind)
{
    return !isAcquireType(kind);
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::LockAcquireGlobal: return "lock_acquire_global";
      case Op::LockAcquireLocal: return "lock_acquire_local";
      case Op::LockReleaseGlobal: return "lock_release_global";
      case Op::LockReleaseLocal: return "lock_release_local";
      case Op::LockGrantGlobal: return "lock_grant_global";
      case Op::LockGrantLocal: return "lock_grant_local";
      case Op::LockAcquireOverflow: return "lock_acquire_overflow";
      case Op::LockReleaseOverflow: return "lock_release_overflow";
      case Op::LockGrantOverflow: return "lock_grant_overflow";
      case Op::BarrierWaitGlobal: return "barrier_wait_global";
      case Op::BarrierWaitLocalWithinUnit:
        return "barrier_wait_local_within_unit";
      case Op::BarrierWaitLocalAcrossUnits:
        return "barrier_wait_local_across_units";
      case Op::BarrierDepartGlobal: return "barrier_depart_global";
      case Op::BarrierDepartLocal: return "barrier_depart_local";
      case Op::BarrierWaitOverflow: return "barrier_wait_overflow";
      case Op::BarrierDepartureOverflow:
        return "barrier_departure_overflow";
      case Op::SemWaitGlobal: return "sem_wait_global";
      case Op::SemWaitLocal: return "sem_wait_local";
      case Op::SemGrantGlobal: return "sem_grant_global";
      case Op::SemGrantLocal: return "sem_grant_local";
      case Op::SemPostGlobal: return "sem_post_global";
      case Op::SemPostLocal: return "sem_post_local";
      case Op::SemWaitOverflow: return "sem_wait_overflow";
      case Op::SemGrantOverflow: return "sem_grant_overflow";
      case Op::SemPostOverflow: return "sem_post_overflow";
      case Op::CondWaitGlobal: return "cond_wait_global";
      case Op::CondWaitLocal: return "cond_wait_local";
      case Op::CondSignalGlobal: return "cond_signal_global";
      case Op::CondSignalLocal: return "cond_signal_local";
      case Op::CondBroadGlobal: return "cond_broad_global";
      case Op::CondBroadLocal: return "cond_broad_local";
      case Op::CondGrantGlobal: return "cond_grant_global";
      case Op::CondGrantLocal: return "cond_grant_local";
      case Op::CondWaitOverflow: return "cond_wait_overflow";
      case Op::CondSignalOverflow: return "cond_signal_overflow";
      case Op::CondBroadOverflow: return "cond_broad_overflow";
      case Op::CondGrantOverflow: return "cond_grant_overflow";
      case Op::DecreaseIndexingCounter:
        return "decrease_indexing_counter";
    }
    return "?";
}

bool
isGlobalOp(Op op)
{
    switch (op) {
      case Op::LockAcquireGlobal:
      case Op::LockReleaseGlobal:
      case Op::LockGrantGlobal:
      case Op::BarrierWaitGlobal:
      case Op::BarrierDepartGlobal:
      case Op::SemWaitGlobal:
      case Op::SemGrantGlobal:
      case Op::SemPostGlobal:
      case Op::CondWaitGlobal:
      case Op::CondSignalGlobal:
      case Op::CondBroadGlobal:
      case Op::CondGrantGlobal:
      case Op::DecreaseIndexingCounter:
        return true;
      default:
        return isOverflowOp(op);
    }
}

bool
isOverflowOp(Op op)
{
    switch (op) {
      case Op::LockAcquireOverflow:
      case Op::LockReleaseOverflow:
      case Op::LockGrantOverflow:
      case Op::BarrierWaitOverflow:
      case Op::BarrierDepartureOverflow:
      case Op::SemWaitOverflow:
      case Op::SemGrantOverflow:
      case Op::SemPostOverflow:
      case Op::CondWaitOverflow:
      case Op::CondSignalOverflow:
      case Op::CondBroadOverflow:
      case Op::CondGrantOverflow:
        return true;
      default:
        return false;
    }
}

bool
isAcquireOp(Op op)
{
    switch (op) {
      case Op::LockAcquireGlobal:
      case Op::LockAcquireLocal:
      case Op::LockAcquireOverflow:
      case Op::BarrierWaitGlobal:
      case Op::BarrierWaitLocalWithinUnit:
      case Op::BarrierWaitLocalAcrossUnits:
      case Op::BarrierWaitOverflow:
      case Op::SemWaitGlobal:
      case Op::SemWaitLocal:
      case Op::SemWaitOverflow:
      case Op::CondWaitGlobal:
      case Op::CondWaitLocal:
      case Op::CondWaitOverflow:
        return true;
      default:
        return false;
    }
}

bool
isReleaseOp(Op op)
{
    switch (op) {
      case Op::LockReleaseGlobal:
      case Op::LockReleaseLocal:
      case Op::LockReleaseOverflow:
      case Op::SemPostGlobal:
      case Op::SemPostLocal:
      case Op::SemPostOverflow:
      case Op::CondSignalGlobal:
      case Op::CondSignalLocal:
      case Op::CondSignalOverflow:
      case Op::CondBroadGlobal:
      case Op::CondBroadLocal:
      case Op::CondBroadOverflow:
        return true;
      default:
        return false;
    }
}

} // namespace syncron::sync
