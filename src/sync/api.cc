#include "sync/api.hh"

#include "common/log.hh"

namespace syncron::sync {

SyncApi::SyncApi(Machine &machine, SyncBackend &backend)
    : machine_(machine), backend_(backend),
      freeLists_(machine.config().numUnits)
{}

SyncVar
SyncApi::createSyncVar(UnitId unit)
{
    SYNCRON_ASSERT(unit < freeLists_.size(),
                   "createSyncVar in unknown unit " << unit);
    if (!freeLists_[unit].empty()) {
        Addr addr = freeLists_[unit].back();
        freeLists_[unit].pop_back();
        return SyncVar{addr};
    }
    // The driver allocates each syncronVar on its own cache line so that
    // distinct variables never false-share and the 8-LSB line index used
    // by the indexing counters is meaningful.
    Addr addr = machine_.addrSpace().allocIn(unit, kCacheLineBytes,
                                             kCacheLineBytes);
    return SyncVar{addr};
}

SyncVar
SyncApi::createSyncVarInterleaved()
{
    SyncVar v = createSyncVar(rr_);
    rr_ = (rr_ + 1) % machine_.config().numUnits;
    return v;
}

void
SyncApi::destroySyncVar(SyncVar var)
{
    SYNCRON_ASSERT(var.valid(), "destroy of invalid sync var");
    freeLists_[var.home()].push_back(var.addr);
}

SyncOp
SyncApi::makeOp(core::Core &c, OpKind kind, SyncVar v, std::uint64_t info)
{
    ++machine_.stats().syncOps;
    return SyncOp{c, backend_, kind, v.addr, info};
}

SyncOp
SyncApi::lockAcquire(core::Core &c, SyncVar v)
{
    return makeOp(c, OpKind::LockAcquire, v, 0);
}

SyncOp
SyncApi::lockRelease(core::Core &c, SyncVar v)
{
    return makeOp(c, OpKind::LockRelease, v, 0);
}

SyncOp
SyncApi::barrierWaitWithinUnit(core::Core &c, SyncVar v,
                               std::uint32_t initialCores)
{
    return makeOp(c, OpKind::BarrierWaitWithinUnit, v, initialCores);
}

SyncOp
SyncApi::barrierWaitAcrossUnits(core::Core &c, SyncVar v,
                                std::uint32_t initialCores)
{
    return makeOp(c, OpKind::BarrierWaitAcrossUnits, v, initialCores);
}

SyncOp
SyncApi::semWait(core::Core &c, SyncVar v, std::uint32_t initialResources)
{
    return makeOp(c, OpKind::SemWait, v, initialResources);
}

SyncOp
SyncApi::semPost(core::Core &c, SyncVar v)
{
    return makeOp(c, OpKind::SemPost, v, 0);
}

SyncOp
SyncApi::condWait(core::Core &c, SyncVar cond, SyncVar lock)
{
    return makeOp(c, OpKind::CondWait, cond, lock.addr);
}

SyncOp
SyncApi::condSignal(core::Core &c, SyncVar cond)
{
    return makeOp(c, OpKind::CondSignal, cond, 0);
}

SyncOp
SyncApi::condBroadcast(core::Core &c, SyncVar cond)
{
    return makeOp(c, OpKind::CondBroadcast, cond, 0);
}

} // namespace syncron::sync
