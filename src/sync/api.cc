#include "sync/api.hh"

#include "common/log.hh"

namespace syncron::sync {

// The stats layer sizes its per-OpKind latency table without seeing the
// enum (common/ cannot depend on sync/); keep the two in lockstep.
static_assert(kNumSyncOpKinds
                  == static_cast<unsigned>(OpKind::CondBroadcast) + 1,
              "kNumSyncOpKinds must match the sync::OpKind enumerators");

namespace detail {

void
recordCompletion(Machine &machine, SyncApi *api, CoreId core,
                 const SyncRequest &req, Tick issued, Tick completed)
{
    // Charge the latency to the issuing core's shard (the core-ID
    // layout invariant: id = unit * coresPerUnit + local).
    const UnitId unit = core / machine.config().coresPerUnit;
    machine.statsFor(unit).recordSyncLatency(
        static_cast<unsigned>(req.kind()), completed - issued);
    if (api != nullptr)
        api->notifyOp(core, req, issued, completed);
}

void
recordIssue(SyncApi *api, CoreId core, const SyncRequest &req, Tick issued)
{
    if (api != nullptr)
        api->notifyIssue(core, req, issued);
}

} // namespace detail

// --------------------------------------------------------------------
// SyncBatch
// --------------------------------------------------------------------

SyncBatch &
SyncBatch::add(const SyncPrimitive &prim, const SyncRequest &req)
{
    reqs_.push_back(req);
    prims_.push_back(prim);
    return *this;
}

SyncBatch &
SyncBatch::acquire(const Lock &lock)
{
    return add(lock, SyncRequest::lockAcquire(lock.addr));
}

SyncBatch &
SyncBatch::release(const Lock &lock)
{
    return add(lock, SyncRequest::lockRelease(lock.addr));
}

SyncBatch &
SyncBatch::wait(const Barrier &barrier)
{
    SYNCRON_ASSERT(barrier.valid(), "batched wait on invalid barrier");
    return add(barrier,
               SyncRequest::barrierWait(barrier.addr, barrier.scope,
                                        barrier.participants));
}

SyncBatch &
SyncBatch::wait(const Semaphore &sem)
{
    return add(sem, SyncRequest::semWait(sem.addr, sem.initialResources));
}

SyncBatch &
SyncBatch::post(const Semaphore &sem)
{
    return add(sem, SyncRequest::semPost(sem.addr));
}

SyncBatch &
SyncBatch::signal(const CondVar &cond)
{
    return add(cond, SyncRequest::condSignal(cond.addr));
}

SyncBatch &
SyncBatch::broadcast(const CondVar &cond)
{
    return add(cond, SyncRequest::condBroadcast(cond.addr));
}

std::vector<SyncFuture>
SyncBatch::submit()
{
    std::vector<SyncFuture> futures =
        api_->submitBatch(*core_, reqs_, prims_);
    reqs_.clear();
    prims_.clear();
    return futures;
}

// --------------------------------------------------------------------
// ScopedLock
// --------------------------------------------------------------------

void
ScopedLock::releaseDetached()
{
    if (!engaged_)
        return;
    engaged_ = false;
    api_->issueDetached(*core_, lock_,
                        SyncRequest::lockRelease(lock_.addr));
}

ScopedLock::~ScopedLock()
{
    releaseDetached();
}

ScopedLock &
ScopedLock::operator=(ScopedLock &&other) noexcept
{
    if (this != &other) {
        releaseDetached();
        api_ = other.api_;
        core_ = other.core_;
        lock_ = other.lock_;
        engaged_ = other.engaged_;
        other.engaged_ = false;
    }
    return *this;
}

SyncOp
ScopedLock::unlock()
{
    SYNCRON_ASSERT(engaged_, "unlock() on a guard that no longer owns "
                             "the lock");
    engaged_ = false;
    return api_->release(*core_, lock_);
}

// --------------------------------------------------------------------
// SyncApi
// --------------------------------------------------------------------

SyncApi::SyncApi(Machine &machine, SyncBackend &backend)
    : machine_(machine), backend_(backend),
      freeLists_(machine.config().numUnits)
{}

SyncPrimitive
SyncApi::allocVar(UnitId unit)
{
    SYNCRON_ASSERT(unit < freeLists_.size(),
                   "primitive creation in unknown unit " << unit);
    SYNCRON_ASSERT(!machine_.inParallelRegion(),
                   "primitive creation while a sharded window is running "
                   "(create primitives before run())");
    if (!freeLists_[unit].empty()) {
        Addr addr = freeLists_[unit].back();
        freeLists_[unit].pop_back();
        return SyncPrimitive{addr, generations_[addr]};
    }
    // The driver allocates each syncronVar on its own cache line so that
    // distinct variables never false-share and the 8-LSB line index used
    // by the indexing counters is meaningful.
    Addr addr = machine_.addrSpace().allocIn(unit, kCacheLineBytes,
                                             kCacheLineBytes);
    return SyncPrimitive{addr, 0};
}

SyncPrimitive
SyncApi::allocVarInterleaved()
{
    SyncPrimitive prim = allocVar(rr_);
    rr_ = (rr_ + 1) % machine_.config().numUnits;
    return prim;
}

void
SyncApi::checkLive(const SyncPrimitive &prim) const
{
    SYNCRON_ASSERT(prim.valid(), "operation on invalid primitive handle");
    auto it = generations_.find(prim.addr);
    const std::uint32_t current = it == generations_.end() ? 0 : it->second;
    SYNCRON_ASSERT(prim.gen == current,
                   "stale primitive handle @" << prim.addr << " (gen "
                       << prim.gen << ", line is at gen " << current
                       << "): handle used after destroy()");
}

void
SyncApi::destroyPrimitive(const SyncPrimitive &prim)
{
    SYNCRON_ASSERT(!machine_.inParallelRegion(),
                   "destroy while a sharded window is running (idleVar "
                   "sweeps foreign shards; destroy at quiescence)");
    checkLive(prim);
    SYNCRON_ASSERT(backend_.idleVar(prim.addr),
                   "destroy @" << prim.addr << " while backend "
                       << backend_.name()
                       << " still tracks state for it");
    backend_.releaseVar(prim.addr);
    if (traceSink_ != nullptr)
        traceSink_->recordDestroy(prim.addr);
    if (observer_ != nullptr)
        observer_->onDestroy(prim.addr);
    for (OpObserver *aux : auxObservers_)
        aux->onDestroy(prim.addr);
    ++generations_[prim.addr];
    freeLists_[prim.home()].push_back(prim.addr);
}

SyncOp
SyncApi::makeOp(core::Core &c, const SyncPrimitive &prim,
                const SyncRequest &req)
{
    checkLive(prim);
    ++machine_.statsFor(c.unit()).syncOps;
    return SyncOp{c, backend_, req, this};
}

std::unique_ptr<detail::FutureState>
SyncApi::makeFutureState(core::Core &c, const SyncRequest &req)
{
    SYNCRON_ASSERT(req.kind() != OpKind::CondWait,
                   "cond_wait cannot be submitted asynchronously; use "
                   "the blocking SyncApi::wait(core, cond, lock)");
    ++machine_.statsFor(c.unit()).syncOps;
    auto state = std::make_unique<detail::FutureState>(machine_, c.id(),
                                                       c.unit(), req, this);
    state->issuedAt = machine_.eq(c.unit()).now();
    notifyIssue(c.id(), req, state->issuedAt);
    return state;
}

SyncFuture
SyncApi::submit(core::Core &c, const SyncPrimitive &prim,
                const SyncRequest &req)
{
    checkLive(prim);
    auto state = makeFutureState(c, req);
    backend_.request(c, req, &state->gate);
    return SyncFuture{std::move(state)};
}

std::vector<SyncFuture>
SyncApi::submitBatch(core::Core &c, std::span<const SyncRequest> reqs,
                     std::span<const SyncPrimitive> prims)
{
    SYNCRON_ASSERT(reqs.size() == prims.size(),
                   "batch of " << reqs.size() << " requests with "
                               << prims.size() << " primitive handles");
    SYNCRON_ASSERT(!reqs.empty(), "submit of an empty batch");
    for (const SyncPrimitive &prim : prims)
        checkLive(prim);

    std::vector<SyncFuture> futures;
    futures.reserve(reqs.size());
    std::vector<sim::Gate *> gates;
    gates.reserve(reqs.size());
    for (const SyncRequest &req : reqs) {
        auto state = makeFutureState(c, req);
        gates.push_back(&state->gate);
        futures.emplace_back(SyncFuture{std::move(state)});
    }
    backend_.requestBatch(c, reqs, gates);
    return futures;
}

SyncFuture
SyncApi::submitAcquire(core::Core &c, const Lock &lock)
{
    return submit(c, lock, SyncRequest::lockAcquire(lock.addr));
}

SyncFuture
SyncApi::submitRelease(core::Core &c, const Lock &lock)
{
    return submit(c, lock, SyncRequest::lockRelease(lock.addr));
}

SyncFuture
SyncApi::submitWait(core::Core &c, const Barrier &barrier)
{
    SYNCRON_ASSERT(barrier.valid(), "submitted wait on invalid barrier");
    return submit(c, barrier,
                  SyncRequest::barrierWait(barrier.addr, barrier.scope,
                                           barrier.participants));
}

SyncFuture
SyncApi::submitWait(core::Core &c, const Semaphore &sem)
{
    return submit(c, sem,
                  SyncRequest::semWait(sem.addr, sem.initialResources));
}

SyncFuture
SyncApi::submitPost(core::Core &c, const Semaphore &sem)
{
    return submit(c, sem, SyncRequest::semPost(sem.addr));
}

SyncFuture
SyncApi::submitSignal(core::Core &c, const CondVar &cond)
{
    return submit(c, cond, SyncRequest::condSignal(cond.addr));
}

SyncFuture
SyncApi::submitBroadcast(core::Core &c, const CondVar &cond)
{
    return submit(c, cond, SyncRequest::condBroadcast(cond.addr));
}

void
SyncApi::issueDetached(core::Core &c, const SyncPrimitive &prim,
                       const SyncRequest &req)
{
    SYNCRON_ASSERT(req.releaseType(),
                   "detached issue of acquire-type "
                       << opKindName(req.kind()));
    if (machine_.crashed()) {
        // Crash teardown: guard destructors run while coroutine frames
        // unwind, but the machine is gone — the release never happened.
        return;
    }
    checkLive(prim);
    ++machine_.statsFor(c.unit()).syncOps;
    sim::Gate gate(machine_.eq(c.unit()));
    const Tick issued = machine_.eq(c.unit()).now();
    notifyIssue(c.id(), req, issued);
    backend_.request(c, req, &gate);
    SYNCRON_ASSERT(gate.opened(),
                   "backend " << backend_.name() << " did not commit "
                              << opKindName(req.kind()) << " at issue");
    machine_.statsFor(c.unit()).recordSyncLatency(
        static_cast<unsigned>(req.kind()),
        machine_.eq(c.unit()).now() + c.cyclePeriod() - issued);
    // req_async commits at issue and no coroutine ever observes this
    // operation, so the record carries completion == issue tick; a
    // trace must count every guard-scope-exit release.
    notifyOp(c.id(), req, issued, issued);
}

// -- Typed primitive creation ------------------------------------------

Lock
SyncApi::createLock(UnitId unit)
{
    return Lock{allocVar(unit)};
}

Lock
SyncApi::createLockInterleaved()
{
    return Lock{allocVarInterleaved()};
}

Barrier
SyncApi::createBarrier(UnitId unit, std::uint32_t participants,
                       BarrierScope scope)
{
    SYNCRON_ASSERT(participants >= 1,
                   "barrier with zero participants");
    return Barrier{allocVar(unit), participants, scope};
}

Semaphore
SyncApi::createSemaphore(UnitId unit, std::uint32_t initialResources)
{
    return Semaphore{allocVar(unit), initialResources};
}

CondVar
SyncApi::createCondVar(UnitId unit)
{
    return CondVar{allocVar(unit)};
}

LockSet
SyncApi::createLockSet(std::size_t count,
                       const std::vector<UnitId> &homes)
{
    const unsigned units = machine_.config().numUnits;
    std::vector<Lock> locks;
    locks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Sets round-robin on their own cursor (rrSet_), not the
        // single-primitive cursor rr_: interleaved singles created
        // before or between sets must not skew set placement, and a
        // set must not shift where the next single lands.
        UnitId unit;
        if (homes.empty()) {
            unit = static_cast<UnitId>(rrSet_);
            rrSet_ = (rrSet_ + 1) % units;
        } else {
            unit = homes[i % homes.size()];
        }
        locks.push_back(createLock(unit));
    }
    return LockSet{std::move(locks)};
}

LockSet
SyncApi::createLockSetByAddr(const std::vector<Addr> &protectedAddrs)
{
    std::vector<Lock> locks;
    locks.reserve(protectedAddrs.size());
    for (Addr addr : protectedAddrs)
        locks.push_back(createLock(mem::unitOfAddr(addr)));
    return LockSet{std::move(locks)};
}

void
SyncApi::destroy(LockSet &set)
{
    for (const Lock &lock : set)
        destroyPrimitive(lock);
    set.locks_.clear();
}

// -- Typed Table 2 operations ------------------------------------------

SyncOp
SyncApi::acquire(core::Core &c, const Lock &lock)
{
    return makeOp(c, lock, SyncRequest::lockAcquire(lock.addr));
}

SyncOp
SyncApi::release(core::Core &c, const Lock &lock)
{
    return makeOp(c, lock, SyncRequest::lockRelease(lock.addr));
}

ScopedLockOp
SyncApi::scoped(core::Core &c, const Lock &lock)
{
    checkLive(lock);
    ++machine_.statsFor(c.unit()).syncOps;
    return ScopedLockOp{*this, c, lock, backend_};
}

SyncOp
SyncApi::wait(core::Core &c, const Barrier &barrier)
{
    SYNCRON_ASSERT(barrier.valid(), "wait on invalid barrier");
    return makeOp(c, barrier,
                  SyncRequest::barrierWait(barrier.addr, barrier.scope,
                                           barrier.participants));
}

SyncOp
SyncApi::wait(core::Core &c, const Semaphore &sem)
{
    return makeOp(c, sem,
                  SyncRequest::semWait(sem.addr, sem.initialResources));
}

SyncOp
SyncApi::post(core::Core &c, const Semaphore &sem)
{
    return makeOp(c, sem, SyncRequest::semPost(sem.addr));
}

SyncOp
SyncApi::wait(core::Core &c, const CondVar &cond, const Lock &lock)
{
    checkLive(lock);
    return makeOp(c, cond,
                  SyncRequest::condWait(cond.addr, lock.addr));
}

SyncOp
SyncApi::signal(core::Core &c, const CondVar &cond)
{
    return makeOp(c, cond, SyncRequest::condSignal(cond.addr));
}

SyncOp
SyncApi::broadcast(core::Core &c, const CondVar &cond)
{
    return makeOp(c, cond, SyncRequest::condBroadcast(cond.addr));
}

} // namespace syncron::sync
