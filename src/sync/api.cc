#include "sync/api.hh"

#include "common/log.hh"

namespace syncron::sync {

// The stats layer sizes its per-OpKind latency table without seeing the
// enum (common/ cannot depend on sync/); keep the two in lockstep.
static_assert(kNumSyncOpKinds
                  == static_cast<unsigned>(OpKind::CondBroadcast) + 1,
              "kNumSyncOpKinds must match the sync::OpKind enumerators");

// --------------------------------------------------------------------
// ScopedLock
// --------------------------------------------------------------------

ScopedLock::~ScopedLock()
{
    if (!engaged_)
        return;
    engaged_ = false;
    api_->issueDetached(*core_, lock_.var,
                        SyncRequest::lockRelease(lock_.var.addr));
}

SyncOp
ScopedLock::unlock()
{
    SYNCRON_ASSERT(engaged_, "unlock() on a guard that no longer owns "
                             "the lock");
    engaged_ = false;
    return api_->release(*core_, lock_);
}

// --------------------------------------------------------------------
// SyncApi
// --------------------------------------------------------------------

SyncApi::SyncApi(Machine &machine, SyncBackend &backend)
    : machine_(machine), backend_(backend),
      freeLists_(machine.config().numUnits)
{}

SyncVar
SyncApi::createSyncVar(UnitId unit)
{
    SYNCRON_ASSERT(unit < freeLists_.size(),
                   "createSyncVar in unknown unit " << unit);
    if (!freeLists_[unit].empty()) {
        Addr addr = freeLists_[unit].back();
        freeLists_[unit].pop_back();
        return SyncVar{addr, generations_[addr]};
    }
    // The driver allocates each syncronVar on its own cache line so that
    // distinct variables never false-share and the 8-LSB line index used
    // by the indexing counters is meaningful.
    Addr addr = machine_.addrSpace().allocIn(unit, kCacheLineBytes,
                                             kCacheLineBytes);
    return SyncVar{addr, 0};
}

SyncVar
SyncApi::createSyncVarInterleaved()
{
    SyncVar v = createSyncVar(rr_);
    rr_ = (rr_ + 1) % machine_.config().numUnits;
    return v;
}

void
SyncApi::checkLive(const SyncVar &var) const
{
    SYNCRON_ASSERT(var.valid(), "operation on invalid sync var");
    auto it = generations_.find(var.addr);
    const std::uint32_t current = it == generations_.end() ? 0 : it->second;
    SYNCRON_ASSERT(var.gen == current,
                   "stale sync var handle @" << var.addr << " (gen "
                       << var.gen << ", line is at gen " << current
                       << "): handle used after destroy_syncvar()");
}

void
SyncApi::destroySyncVar(SyncVar var)
{
    checkLive(var);
    SYNCRON_ASSERT(backend_.idleVar(var.addr),
                   "destroy_syncvar @" << var.addr << " while backend "
                       << backend_.name()
                       << " still tracks state for it");
    backend_.releaseVar(var.addr);
    ++generations_[var.addr];
    freeLists_[var.home()].push_back(var.addr);
}

SyncOp
SyncApi::makeOp(core::Core &c, const SyncVar &v, const SyncRequest &req)
{
    checkLive(v);
    ++machine_.stats().syncOps;
    return SyncOp{c, backend_, req};
}

void
SyncApi::issueDetached(core::Core &c, const SyncVar &v,
                       const SyncRequest &req)
{
    SYNCRON_ASSERT(req.releaseType(),
                   "detached issue of acquire-type "
                       << opKindName(req.kind()));
    checkLive(v);
    ++machine_.stats().syncOps;
    sim::Gate gate(machine_.eq());
    const Tick issued = machine_.eq().now();
    backend_.request(c, req, &gate);
    SYNCRON_ASSERT(gate.opened(),
                   "backend " << backend_.name() << " did not commit "
                              << opKindName(req.kind()) << " at issue");
    machine_.stats().recordSyncLatency(
        static_cast<unsigned>(req.kind()),
        machine_.eq().now() + c.cyclePeriod() - issued);
}

// -- Typed primitive creation ------------------------------------------

Lock
SyncApi::createLock(UnitId unit)
{
    return Lock{createSyncVar(unit)};
}

Lock
SyncApi::createLockInterleaved()
{
    return Lock{createSyncVarInterleaved()};
}

Barrier
SyncApi::createBarrier(UnitId unit, std::uint32_t participants,
                       BarrierScope scope)
{
    SYNCRON_ASSERT(participants >= 1,
                   "barrier with zero participants");
    return Barrier{createSyncVar(unit), participants, scope};
}

Semaphore
SyncApi::createSemaphore(UnitId unit, std::uint32_t initialResources)
{
    return Semaphore{createSyncVar(unit), initialResources};
}

CondVar
SyncApi::createCondVar(UnitId unit)
{
    return CondVar{createSyncVar(unit)};
}

// -- Typed Table 2 operations ------------------------------------------

SyncOp
SyncApi::acquire(core::Core &c, const Lock &lock)
{
    return makeOp(c, lock.var, SyncRequest::lockAcquire(lock.var.addr));
}

SyncOp
SyncApi::release(core::Core &c, const Lock &lock)
{
    return makeOp(c, lock.var, SyncRequest::lockRelease(lock.var.addr));
}

ScopedLockOp
SyncApi::scoped(core::Core &c, const Lock &lock)
{
    checkLive(lock.var);
    ++machine_.stats().syncOps;
    return ScopedLockOp{*this, c, lock, backend_};
}

SyncOp
SyncApi::wait(core::Core &c, const Barrier &barrier)
{
    SYNCRON_ASSERT(barrier.valid(), "wait on invalid barrier");
    return makeOp(c, barrier.var,
                  SyncRequest::barrierWait(barrier.var.addr, barrier.scope,
                                           barrier.participants));
}

SyncOp
SyncApi::wait(core::Core &c, const Semaphore &sem)
{
    return makeOp(c, sem.var,
                  SyncRequest::semWait(sem.var.addr,
                                       sem.initialResources));
}

SyncOp
SyncApi::post(core::Core &c, const Semaphore &sem)
{
    return makeOp(c, sem.var, SyncRequest::semPost(sem.var.addr));
}

SyncOp
SyncApi::wait(core::Core &c, const CondVar &cond, const Lock &lock)
{
    checkLive(lock.var);
    return makeOp(c, cond.var,
                  SyncRequest::condWait(cond.var.addr, lock.var.addr));
}

SyncOp
SyncApi::signal(core::Core &c, const CondVar &cond)
{
    return makeOp(c, cond.var, SyncRequest::condSignal(cond.var.addr));
}

SyncOp
SyncApi::broadcast(core::Core &c, const CondVar &cond)
{
    return makeOp(c, cond.var, SyncRequest::condBroadcast(cond.var.addr));
}

// -- Deprecated SyncVar-based shims ------------------------------------

SyncOp
SyncApi::lockAcquire(core::Core &c, SyncVar v)
{
    return makeOp(c, v, SyncRequest::lockAcquire(v.addr));
}

SyncOp
SyncApi::lockRelease(core::Core &c, SyncVar v)
{
    return makeOp(c, v, SyncRequest::lockRelease(v.addr));
}

SyncOp
SyncApi::barrierWaitWithinUnit(core::Core &c, SyncVar v,
                               std::uint32_t initialCores)
{
    return makeOp(c, v,
                  SyncRequest::barrierWait(v.addr,
                                           BarrierScope::WithinUnit,
                                           initialCores));
}

SyncOp
SyncApi::barrierWaitAcrossUnits(core::Core &c, SyncVar v,
                                std::uint32_t initialCores)
{
    return makeOp(c, v,
                  SyncRequest::barrierWait(v.addr,
                                           BarrierScope::AcrossUnits,
                                           initialCores));
}

SyncOp
SyncApi::semWait(core::Core &c, SyncVar v, std::uint32_t initialResources)
{
    return makeOp(c, v, SyncRequest::semWait(v.addr, initialResources));
}

SyncOp
SyncApi::semPost(core::Core &c, SyncVar v)
{
    return makeOp(c, v, SyncRequest::semPost(v.addr));
}

SyncOp
SyncApi::condWait(core::Core &c, SyncVar cond, SyncVar lock)
{
    checkLive(lock);
    return makeOp(c, cond, SyncRequest::condWait(cond.addr, lock.addr));
}

SyncOp
SyncApi::condSignal(core::Core &c, SyncVar cond)
{
    return makeOp(c, cond, SyncRequest::condSignal(cond.addr));
}

SyncOp
SyncApi::condBroadcast(core::Core &c, SyncVar cond)
{
    return makeOp(c, cond, SyncRequest::condBroadcast(cond.addr));
}

} // namespace syncron::sync
