/**
 * @file
 * The synchronization-backend interface.
 *
 * Every scheme the paper compares — Ideal, Central, Hier, SynCron,
 * SynCron-flat, and the MiSAR-style overflow variants — implements this
 * interface, so workloads run unmodified on every scheme (exactly how the
 * paper's evaluation holds the main kernel constant and swaps the
 * synchronization mechanism).
 *
 * Contract:
 *  - request() is called at the requesting core's current time with the
 *    gate the core will co_await.
 *  - Acquire-type operations (req_sync semantics, Section 4.1.1) open the
 *    gate when the operation is granted.
 *  - Release-type operations (req_async semantics) open the gate as soon
 *    as the message has been issued to the network; the protocol
 *    continues in the background.
 */

#ifndef SYNCRON_SYNC_BACKEND_HH
#define SYNCRON_SYNC_BACKEND_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/process.hh"
#include "sync/opcodes.hh"

namespace syncron::core {
class Core;
} // namespace syncron::core

namespace syncron::sync {

/** Abstract synchronization mechanism. */
class SyncBackend
{
  public:
    virtual ~SyncBackend() = default;

    /**
     * Issues a synchronization operation.
     *
     * @param requester the issuing NDP core
     * @param kind      API-level operation
     * @param var       synchronization-variable address
     * @param info      MessageInfo: barrier participant count, semaphore
     *                  initial resources, or associated lock address for
     *                  cond_wait (paper Fig. 5)
     * @param gate      completion gate the core awaits
     */
    virtual void request(core::Core &requester, OpKind kind, Addr var,
                         std::uint64_t info, sim::Gate *gate) = 0;

    /** Scheme name for reports. */
    virtual const char *name() const = 0;
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_BACKEND_HH
