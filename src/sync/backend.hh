/**
 * @file
 * The synchronization-backend interface.
 *
 * Every scheme the paper compares — Ideal, Central, Hier, SynCron,
 * SynCron-flat, and the MiSAR-style overflow variants — implements this
 * interface, so workloads run unmodified on every scheme (exactly how the
 * paper's evaluation holds the main kernel constant and swaps the
 * synchronization mechanism). Concrete backends self-register with
 * sync::BackendRegistry under their scheme name, so systems select them
 * by string at run time.
 *
 * Contract:
 *  - request() is called at the requesting core's current time with a
 *    typed SyncRequest descriptor and the gate the core will co_await.
 *  - Acquire-type operations (req_sync semantics, Section 4.1.1) open the
 *    gate when the operation is granted.
 *  - Release-type operations (req_async semantics) open the gate as soon
 *    as the message has been issued to the network; the protocol
 *    continues in the background.
 *  - idleVar()/releaseVar() let SyncApi verify a variable holds no live
 *    backend state before its line is recycled by destroy_syncvar().
 */

#ifndef SYNCRON_SYNC_BACKEND_HH
#define SYNCRON_SYNC_BACKEND_HH

#include "common/types.hh"
#include "sim/process.hh"
#include "sync/request.hh"

namespace syncron::core {
class Core;
} // namespace syncron::core

namespace syncron::sync {

/** Abstract synchronization mechanism. */
class SyncBackend
{
  public:
    virtual ~SyncBackend() = default;

    /**
     * Issues a synchronization operation.
     *
     * @param requester the issuing NDP core
     * @param req       typed request descriptor
     * @param gate      completion gate the core awaits
     */
    virtual void request(core::Core &requester, const SyncRequest &req,
                         sim::Gate *gate) = 0;

    /**
     * True when the backend tracks no live state for @p var — owners,
     * waiters, ST entries, in-memory records, or in-flight protocol
     * messages. destroy_syncvar() refuses to recycle a line that is not
     * idle.
     */
    virtual bool idleVar(Addr var) const = 0;

    /**
     * Drops any residual bookkeeping for the given variable; called by
     * destroy_syncvar() after the idleVar() check passes.
     */
    virtual void releaseVar(Addr) {}

    /** Scheme name for reports. */
    virtual const char *name() const = 0;
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_BACKEND_HH
