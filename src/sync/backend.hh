/**
 * @file
 * The synchronization-backend interface.
 *
 * Every scheme the paper compares — Ideal, Central, Hier, SynCron,
 * SynCron-flat, and the MiSAR-style overflow variants — implements this
 * interface, so workloads run unmodified on every scheme (exactly how the
 * paper's evaluation holds the main kernel constant and swaps the
 * synchronization mechanism). Concrete backends self-register with
 * sync::BackendRegistry under their scheme name, so systems select them
 * by string at run time.
 *
 * Contract:
 *  - request() is called at the requesting core's current time with a
 *    typed SyncRequest descriptor and the gate the core will co_await.
 *  - Acquire-type operations (req_sync semantics, Section 4.1.1) open the
 *    gate when the operation is granted.
 *  - Release-type operations (req_async semantics) open the gate as soon
 *    as the message has been issued to the network; the protocol
 *    continues in the background.
 *  - requestBatch() issues several operations from one core in one call.
 *    The default implementation loops over request(), so backends behave
 *    identically until they opt in; an overriding backend may coalesce
 *    batch members that target the same station into a single network
 *    message (batchReqBits in message.hh), but must preserve per-op
 *    semantics: one gate per member, member order preserved at the
 *    servicing station, and per-op protocol records. A core may hold
 *    any number of operations in flight; backends must not assume one
 *    pending gate per core.
 *  - idleVar()/releaseVar() let SyncApi verify a variable holds no live
 *    backend state before its line is recycled by destroy().
 */

#ifndef SYNCRON_SYNC_BACKEND_HH
#define SYNCRON_SYNC_BACKEND_HH

#include <span>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/process.hh"
#include "sync/request.hh"

namespace syncron::core {
class Core;
} // namespace syncron::core

namespace syncron::sync {

/** Abstract synchronization mechanism. */
class SyncBackend
{
  public:
    virtual ~SyncBackend() = default;

    /**
     * Issues a synchronization operation.
     *
     * @param requester the issuing NDP core
     * @param req       typed request descriptor
     * @param gate      completion gate the core awaits
     */
    virtual void request(core::Core &requester, const SyncRequest &req,
                         sim::Gate *gate) = 0;

    /**
     * Issues several synchronization operations submitted by one core in
     * a single call (SyncApi::SyncBatch). gates[i] completes reqs[i];
     * the spans must have equal length. The default implementation
     * preserves existing backend behavior exactly by looping over
     * request(); backends opt in to same-destination message coalescing
     * by overriding.
     */
    virtual void
    requestBatch(core::Core &requester, std::span<const SyncRequest> reqs,
                 std::span<sim::Gate *const> gates)
    {
        SYNCRON_ASSERT(reqs.size() == gates.size(),
                       "batch of " << reqs.size() << " requests with "
                                   << gates.size() << " gates");
        for (std::size_t i = 0; i < reqs.size(); ++i)
            request(requester, reqs[i], gates[i]);
    }

    /**
     * True when the backend tracks no live state for @p var — owners,
     * waiters, ST entries, in-memory records, or in-flight protocol
     * messages. destroy_syncvar() refuses to recycle a line that is not
     * idle.
     */
    virtual bool idleVar(Addr var) const = 0;

    /**
     * Drops any residual bookkeeping for the given variable; called by
     * destroy_syncvar() after the idleVar() check passes.
     */
    virtual void releaseVar(Addr) {}

    /** Scheme name for reports. */
    virtual const char *name() const = 0;
};

} // namespace syncron::sync

#endif // SYNCRON_SYNC_BACKEND_HH
