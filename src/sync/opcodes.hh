/**
 * @file
 * Message opcodes of SynCron's hierarchical protocol — the complete set
 * of the paper's Table 3, plus the API-level operation kinds (Table 2).
 *
 * Opcode name structure:
 *   - *_local:    NDP core <-> its local SE
 *   - *_global:   local SE <-> Master SE (may cross NDP units)
 *   - *_overflow: overflowed local SE <-> Master SE (ST overflow path)
 */

#ifndef SYNCRON_SYNC_OPCODES_HH
#define SYNCRON_SYNC_OPCODES_HH

#include <cstdint>

namespace syncron::sync {

/** API-level synchronization operations (paper Table 2). */
enum class OpKind : std::uint8_t
{
    LockAcquire,
    LockRelease,
    BarrierWaitWithinUnit,
    BarrierWaitAcrossUnits,
    SemWait,
    SemPost,
    CondWait,
    CondSignal,
    CondBroadcast,
};

/** Returns a printable name for @p kind. */
const char *opKindName(OpKind kind);

/** True for operations with acquire semantics (req_sync, blocks). */
bool isAcquireType(OpKind kind);

/** True for operations with release semantics (req_async, non-blocking). */
bool isReleaseType(OpKind kind);

/** Message opcodes (paper Table 3). 6 bits cover all values. */
enum class Op : std::uint8_t
{
    // -- Locks
    LockAcquireGlobal,
    LockAcquireLocal,
    LockReleaseGlobal,
    LockReleaseLocal,
    LockGrantGlobal,
    LockGrantLocal,
    LockAcquireOverflow,
    LockReleaseOverflow,
    LockGrantOverflow,

    // -- Barriers
    BarrierWaitGlobal,
    BarrierWaitLocalWithinUnit,
    BarrierWaitLocalAcrossUnits,
    BarrierDepartGlobal,
    BarrierDepartLocal,
    BarrierWaitOverflow,
    BarrierDepartureOverflow,

    // -- Semaphores
    SemWaitGlobal,
    SemWaitLocal,
    SemGrantGlobal,
    SemGrantLocal,
    SemPostGlobal,
    SemPostLocal,
    SemWaitOverflow,
    SemGrantOverflow,
    SemPostOverflow,

    // -- Condition variables
    CondWaitGlobal,
    CondWaitLocal,
    CondSignalGlobal,
    CondSignalLocal,
    CondBroadGlobal,
    CondBroadLocal,
    CondGrantGlobal,
    CondGrantLocal,
    CondWaitOverflow,
    CondSignalOverflow,
    CondBroadOverflow,
    CondGrantOverflow,

    // -- Other
    DecreaseIndexingCounter,
};

/** Returns a printable name for @p op. */
const char *opName(Op op);

/** True for opcodes exchanged between SEs (global/overflow/decrease). */
bool isGlobalOp(Op op);

/** True for the overflow-path opcodes. */
bool isOverflowOp(Op op);

/** True for opcodes with acquire-type semantics (indexing counter ++). */
bool isAcquireOp(Op op);

/** True for opcodes with release-type semantics (indexing counter --). */
bool isReleaseOp(Op op);

} // namespace syncron::sync

#endif // SYNCRON_SYNC_OPCODES_HH
