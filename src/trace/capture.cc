#include "trace/capture.hh"

#include "common/log.hh"
#include "mem/allocator.hh"

namespace syncron::trace {

TraceCapture::TraceCapture(const SystemConfig &cfg) : cfg_(cfg)
{
    trace_.numUnits = cfg.numUnits;
    trace_.clientCoresPerUnit = cfg.clientCoresPerUnit;
}

std::uint32_t
TraceCapture::primId(Addr addr, PrimKind kind)
{
    auto [it, inserted] = addrToPrim_.try_emplace(
        addr, static_cast<std::uint32_t>(trace_.primitives.size()));
    if (!inserted && trace_.primitives[it->second].kind != kind) {
        // Defensive: generation boundaries normally arrive through
        // recordDestroy() (which erases the mapping), but a sink that
        // missed the destroy must still split on a kind flip rather
        // than conflate two unrelated primitives.
        it->second =
            static_cast<std::uint32_t>(trace_.primitives.size());
        inserted = true;
    }
    if (inserted) {
        TracePrimitive p;
        p.kind = kind;
        p.home = mem::unitOfAddr(addr);
        trace_.primitives.push_back(p);
    }
    return it->second;
}

void
TraceCapture::record(CoreId core, const sync::SyncRequest &req,
                     Tick issued, Tick completed)
{
    TraceRecord r;
    r.issued = issued;
    r.completed = completed;
    r.kind = req.kind();

    SYNCRON_ASSERT(core % cfg_.coresPerUnit < cfg_.clientCoresPerUnit,
                   "sync op from non-client core " << core);
    r.core = cfg_.denseClientIndex(core);

    const PrimKind pk = primKindOf(req.kind());
    r.prim = primId(req.var(), pk);

    // Primitive parameters ride on the requests that carry them.
    TracePrimitive &p = trace_.primitives[r.prim];
    switch (req.kind()) {
      case sync::OpKind::BarrierWaitWithinUnit:
        p.param = req.participants();
        p.scope = sync::BarrierScope::WithinUnit;
        break;
      case sync::OpKind::BarrierWaitAcrossUnits:
        p.param = req.participants();
        p.scope = sync::BarrierScope::AcrossUnits;
        break;
      case sync::OpKind::SemWait:
        p.param = req.resources();
        break;
      case sync::OpKind::CondWait:
        r.assocPrim = primId(req.condLock(), PrimKind::Lock);
        break;
      default:
        break;
    }

    trace_.records.push_back(r);
}

} // namespace syncron::trace
