/**
 * @file
 * The trace container's integer encodings — LEB128 varints and the
 * zigzag mapping for signed deltas — shared by every consumer of the
 * `SYNCTRC` byte layout: the streaming TraceWriter/TraceReader
 * (iostreams), the zero-copy MappedTraceReader (bounds-checked reads
 * from an mmap'd buffer), and the tracenet wire marshaller (append to /
 * cursor over in-memory frame payloads). Single-sourcing them here is
 * what lets the wire protocol's frame header reuse the container's
 * encoding byte-for-byte.
 */

#ifndef SYNCRON_TRACE_VARINT_HH
#define SYNCRON_TRACE_VARINT_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "common/log.hh"

namespace syncron::trace {

/** Appends @p v to @p os as a LEB128 varint. */
inline void
putVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

/** Reads one LEB128 varint from @p is; fatal() on EOF or overlength. */
inline std::uint64_t
getVarint(std::istream &is)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int byte = is.get();
        if (byte == std::istream::traits_type::eof())
            SYNCRON_FATAL("trace truncated inside a varint");
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
    }
    SYNCRON_FATAL("trace varint longer than 64 bits (corrupt stream)");
}

/** Appends @p v to the byte buffer @p buf as a LEB128 varint. */
inline void
appendVarint(std::string &buf, std::uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
}

/** Maps a signed delta onto the varint-friendly zigzag encoding. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1)
           ^ static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzag(). */
inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1)
           ^ -static_cast<std::int64_t>(v & 1);
}

/**
 * Bounds-checked varint cursor over a borrowed byte range — the
 * allocation-free read primitive under both the mmap'd trace reader and
 * the frame-payload unmarshaller. Every read is range-checked against
 * the end of the buffer; @p what names the enclosing structure in the
 * truncation fatal so a corrupt mmap'd corpus file and a malformed
 * network frame each produce a self-describing error.
 */
class VarintCursor
{
  public:
    VarintCursor(const unsigned char *begin, const unsigned char *end,
                 const char *what)
        : cur_(begin), end_(end), what_(what)
    {
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - cur_);
    }

    bool atEnd() const { return cur_ == end_; }

    /** Current position (for offset-based resumption). */
    const unsigned char *position() const { return cur_; }

    /** Reads one varint; fatal() when the buffer ends inside it. */
    std::uint64_t
    get()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (cur_ == end_)
                SYNCRON_FATAL(what_ << " truncated inside a varint");
            const unsigned char byte = *cur_++;
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0)
                return v;
        }
        SYNCRON_FATAL(what_ << " varint longer than 64 bits (corrupt)");
    }

    /** Reads @p n raw bytes; fatal() when fewer remain. */
    const unsigned char *
    getBytes(std::size_t n)
    {
        if (remaining() < n)
            SYNCRON_FATAL(what_ << " truncated inside a " << n
                                << "-byte field");
        const unsigned char *p = cur_;
        cur_ += n;
        return p;
    }

  private:
    const unsigned char *cur_;
    const unsigned char *end_;
    const char *what_;
};

} // namespace syncron::trace

#endif // SYNCRON_TRACE_VARINT_HH
