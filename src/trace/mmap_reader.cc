#include "trace/mmap_reader.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.hh"
#include "sync/opcodes.hh"

namespace syncron::trace {

namespace {

/** Bounds-checks an enum read from the mapping. */
template <typename Enum>
Enum
checkedEnum(std::uint64_t raw, std::uint64_t last, const char *what)
{
    if (raw > last)
        SYNCRON_FATAL("trace contains out-of-range " << what << " value "
                                                     << raw);
    return static_cast<Enum>(raw);
}

/**
 * RAII file descriptor so every fatal() path between open and mmap
 * still closes the fd (fatal throws, it does not exit).
 */
struct ScopedFd
{
    int fd = -1;
    ~ScopedFd()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

} // namespace

MappedTraceReader::MappedTraceReader(const std::string &path)
    : path_(path)
{
    ScopedFd f;
    f.fd = ::open(path.c_str(), O_RDONLY);
    if (f.fd < 0)
        SYNCRON_FATAL("cannot open trace file '" << path << "': "
                                                 << std::strerror(errno));
    struct stat st{};
    if (::fstat(f.fd, &st) != 0)
        SYNCRON_FATAL("cannot stat trace file '" << path << "': "
                                                 << std::strerror(errno));
    if (st.st_size == 0) {
        // mmap(len = 0) is EINVAL; reject explicitly so an empty file
        // reads as a format error, not a system error.
        SYNCRON_FATAL("not a SynCron trace (empty file '" << path
                                                          << "')");
    }
    mapBytes_ = static_cast<std::size_t>(st.st_size);
    void *map =
        ::mmap(nullptr, mapBytes_, PROT_READ, MAP_PRIVATE, f.fd, 0);
    if (map == MAP_FAILED) {
        mapBytes_ = 0;
        SYNCRON_FATAL("cannot mmap trace file '" << path << "': "
                                                 << std::strerror(errno));
    }
    map_ = static_cast<const unsigned char *>(map);

    // -- Header + primitive table (eager, same checks as TraceReader)
    VarintCursor cur(map_, map_ + mapBytes_, "mapped trace");
    if (mapBytes_ < kTraceMagic.size()
        || std::memcmp(map_, kTraceMagic.data(), kTraceMagic.size())
               != 0) {
        SYNCRON_FATAL("not a SynCron trace (bad magic)");
    }
    cur.getBytes(kTraceMagic.size());
    const std::uint64_t version = cur.get();
    if (version == 1) {
        SYNCRON_FATAL("trace version 1 is no longer readable (its "
                      "cond_wait records carry no reliable associated "
                      "lock); recapture the trace with this build");
    }
    if (version != kTraceVersion) {
        SYNCRON_FATAL("unsupported trace version " << version
                                                   << " (this build reads "
                                                   << kTraceVersion << ")");
    }
    numUnits_ = static_cast<std::uint32_t>(cur.get());
    coresPerUnit_ = static_cast<std::uint32_t>(cur.get());
    if (numUnits_ == 0 || coresPerUnit_ == 0)
        SYNCRON_FATAL("trace header describes a machine with no cores");

    constexpr std::uint64_t kReserveCap = 1 << 16;
    const std::uint64_t primCount = cur.get();
    primitives_.reserve(
        static_cast<std::size_t>(std::min(primCount, kReserveCap)));
    for (std::uint64_t i = 0; i < primCount; ++i) {
        TracePrimitive p;
        p.kind = checkedEnum<PrimKind>(
            cur.get(), static_cast<std::uint64_t>(PrimKind::CondVar),
            "PrimKind");
        p.home = static_cast<UnitId>(cur.get());
        if (p.home >= numUnits_)
            SYNCRON_FATAL("trace primitive " << i << " homed in unit "
                                             << p.home << " of a "
                                             << numUnits_
                                             << "-unit machine");
        p.param = static_cast<std::uint32_t>(cur.get());
        p.scope = checkedEnum<sync::BarrierScope>(
            cur.get(),
            static_cast<std::uint64_t>(sync::BarrierScope::AcrossUnits),
            "BarrierScope");
        primitives_.push_back(p);
    }

    recordCount_ = cur.get();
    recordsBegin_ = cur.position();
}

MappedTraceReader::~MappedTraceReader()
{
    if (map_ != nullptr)
        ::munmap(const_cast<unsigned char *>(map_), mapBytes_);
}

MappedTraceReader::RecordCursor
MappedTraceReader::records() const
{
    return RecordCursor(*this, recordsBegin_, map_ + mapBytes_);
}

bool
MappedTraceReader::RecordCursor::next(TraceRecord &out)
{
    const MappedTraceReader &r = reader_;
    if (index_ == r.recordCount_) {
        if (!cursor_.atEnd())
            SYNCRON_FATAL("trailing bytes after the last trace record");
        return false;
    }

    const std::int64_t issued = static_cast<std::int64_t>(prevIssued_)
                                + unzigzag(cursor_.get());
    if (issued < 0)
        SYNCRON_FATAL("trace record " << index_
                                      << " has a negative issue tick");
    out.issued = static_cast<Tick>(issued);
    out.completed = out.issued + cursor_.get();
    out.core = static_cast<std::uint32_t>(cursor_.get());
    if (out.core >= r.numClientCores())
        SYNCRON_FATAL("trace record " << index_ << " issued by core "
                                      << out.core << " of a "
                                      << r.numClientCores()
                                      << "-core machine");
    out.kind = checkedEnum<sync::OpKind>(
        cursor_.get(),
        static_cast<std::uint64_t>(sync::OpKind::CondBroadcast),
        "OpKind");
    out.prim = static_cast<std::uint32_t>(cursor_.get());
    if (out.prim >= r.primitives_.size())
        SYNCRON_FATAL("trace record " << index_
                                      << " names unknown primitive "
                                      << out.prim);
    if (primKindOf(out.kind) != r.primitives_[out.prim].kind) {
        SYNCRON_FATAL("trace record "
                      << index_ << " applies "
                      << sync::opKindName(out.kind) << " to a "
                      << primKindName(r.primitives_[out.prim].kind));
    }
    out.assocPrim = 0;
    if (out.kind == sync::OpKind::CondWait) {
        out.assocPrim = static_cast<std::uint32_t>(cursor_.get());
        if (out.assocPrim >= r.primitives_.size()
            || r.primitives_[out.assocPrim].kind != PrimKind::Lock) {
            SYNCRON_FATAL("trace record " << index_
                                          << " is a cond_wait without a "
                                             "valid associated lock");
        }
    }
    prevIssued_ = out.issued;
    ++index_;
    return true;
}

std::array<std::uint64_t, kNumSyncOpKinds>
MappedTraceReader::validateAll() const
{
    std::array<std::uint64_t, kNumSyncOpKinds> counts{};
    RecordCursor cur = records();
    TraceRecord rec;
    while (cur.next(rec))
        ++counts[static_cast<unsigned>(rec.kind)];
    return counts;
}

Trace
MappedTraceReader::materialize() const
{
    Trace t;
    t.numUnits = numUnits_;
    t.clientCoresPerUnit = coresPerUnit_;
    t.primitives = primitives_;
    constexpr std::uint64_t kReserveCap = 1 << 16;
    t.records.reserve(
        static_cast<std::size_t>(std::min(recordCount_, kReserveCap)));
    RecordCursor cur = records();
    TraceRecord rec;
    while (cur.next(rec))
        t.records.push_back(rec);
    return t;
}

} // namespace syncron::trace
