#include "trace/replay.hh"

#include "common/log.hh"
#include "system/system.hh"

namespace syncron::trace {

SystemConfig
replayConfig(const Trace &trace, Scheme scheme)
{
    return SystemConfig::make(scheme, trace.numUnits,
                              trace.clientCoresPerUnit);
}

Replayer::Replayer(const Trace &trace) : trace_(trace) {}

void
Replayer::install(NdpSystem &sys)
{
    const SystemConfig &cfg = sys.config();
    if (cfg.numUnits != trace_.numUnits
        || sys.numClientCores() != trace_.numClientCores()) {
        SYNCRON_FATAL("replay system shape ("
                      << cfg.numUnits << " units, "
                      << sys.numClientCores()
                      << " client cores) does not match the trace ("
                      << trace_.numUnits << " units, "
                      << trace_.numClientCores()
                      << " client cores); build the config with "
                         "trace::replayConfig()");
    }
    SYNCRON_ASSERT(minted_.empty(), "Replayer installed twice");

    sync::SyncApi &api = sys.api();
    minted_.reserve(trace_.primitives.size());
    for (const TracePrimitive &p : trace_.primitives) {
        Minted m;
        m.kind = p.kind;
        switch (p.kind) {
          case PrimKind::Lock:
            m.lock = api.createLock(p.home);
            break;
          case PrimKind::Barrier:
            m.barrier = api.createBarrier(
                p.home, p.param == 0 ? 1 : p.param, p.scope);
            break;
          case PrimKind::Semaphore:
            m.sem = api.createSemaphore(p.home, p.param);
            break;
          case PrimKind::CondVar:
            m.cond = api.createCondVar(p.home);
            break;
        }
        minted_.push_back(m);
    }

    // Group the stream per traced core; stream order is program order.
    std::vector<std::vector<std::uint32_t>> perCore(
        trace_.numClientCores());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(trace_.records.size()); ++i) {
        perCore[trace_.records[i].core].push_back(i);
    }
    for (std::uint32_t c = 0; c < trace_.numClientCores(); ++c) {
        if (perCore[c].empty())
            continue;
        sys.spawn(
            replayCore(sys, sys.clientCore(c), std::move(perCore[c])),
            sys.clientCore(c));
    }
}

sim::Process
Replayer::replayCore(NdpSystem &sys, core::Core &core,
                     std::vector<std::uint32_t> recordIdxs)
{
    sync::SyncApi &api = sys.api();
    sim::EventQueue &eq = core.machine().eq();

    /** One submitted-but-not-yet-awaited operation. */
    struct InFlight
    {
        std::uint32_t prim;
        sync::SyncFuture future;
    };
    std::vector<InFlight> inflight;
    inflight.reserve(kMaxInFlight + 1);

    for (const std::uint32_t idx : recordIdxs) {
        const TraceRecord &r = trace_.records[idx];
        const bool condFamily = r.kind == sync::OpKind::CondWait
                                || r.kind == sync::OpKind::CondSignal
                                || r.kind == sync::OpKind::CondBroadcast;

        // Program-order dependencies: an op waits for every in-flight
        // op on the same primitive (FIFO, so per-variable issue order
        // matches the trace and a release can never overtake its
        // acquire). cond-family ops drain the whole pipeline — their
        // lock coupling must observe everything this core issued.
        for (std::size_t i = 0; i < inflight.size();) {
            const bool depends =
                condFamily || inflight[i].prim == r.prim;
            if (depends) {
                // Named reference: GCC 12 rejects co_await on the
                // reference returned straight from operator[].
                sync::SyncFuture &dep = inflight[i].future;
                co_await dep;
                inflight.erase(inflight.begin()
                               + static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        // Open-loop arrival: wait out the recorded issue tick, unless a
        // dependency's real completion already passed it.
        if (r.issued > eq.now())
            co_await sim::Delay{eq, r.issued - eq.now()};

        const Minted &m = minted_[r.prim];
        switch (r.kind) {
          case sync::OpKind::LockAcquire:
            inflight.push_back(
                InFlight{r.prim, api.submitAcquire(core, m.lock)});
            break;
          case sync::OpKind::LockRelease:
            inflight.push_back(
                InFlight{r.prim, api.submitRelease(core, m.lock)});
            break;
          case sync::OpKind::BarrierWaitWithinUnit:
          case sync::OpKind::BarrierWaitAcrossUnits:
            inflight.push_back(
                InFlight{r.prim, api.submitWait(core, m.barrier)});
            break;
          case sync::OpKind::SemWait:
            inflight.push_back(
                InFlight{r.prim, api.submitWait(core, m.sem)});
            break;
          case sync::OpKind::SemPost:
            inflight.push_back(
                InFlight{r.prim, api.submitPost(core, m.sem)});
            break;
          case sync::OpKind::CondWait:
            // Blocking by construction: the pipeline is already dry.
            co_await api.wait(core, m.cond, minted_[r.assocPrim].lock);
            break;
          case sync::OpKind::CondSignal:
            co_await api.signal(core, m.cond);
            break;
          case sync::OpKind::CondBroadcast:
            co_await api.broadcast(core, m.cond);
            break;
        }

        // Bound the pipeline: retire the oldest op once the window is
        // exceeded.
        while (inflight.size() > kMaxInFlight) {
            sync::SyncFuture &oldest = inflight.front().future;
            co_await oldest;
            inflight.erase(inflight.begin());
        }
        ++opsReplayed_;
    }

    // Retire everything still in flight before the core finishes.
    while (!inflight.empty()) {
        sync::SyncFuture &oldest = inflight.front().future;
        co_await oldest;
        inflight.erase(inflight.begin());
    }
}

} // namespace syncron::trace
