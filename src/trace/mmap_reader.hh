/**
 * @file
 * Zero-copy trace reading: the `SYNCTRC` container mapped into the
 * address space and decoded in place.
 *
 * The streaming TraceReader materializes a whole Trace on the heap —
 * one vector push per record — which is fine for the small capture
 * files PR 4 dealt in but wrong for multi-gigabyte corpora: a corpus
 * replay would spend its time in allocator traffic before the first
 * simulated tick. MappedTraceReader mmap()s the file read-only,
 * validates the header and primitive table once at open, and then hands
 * out records through a RecordCursor that does nothing but
 * bounds-checked pointer arithmetic over the mapping: no per-record
 * allocation, no copy of the record stream, and the file's pages are
 * faulted in lazily as the cursor walks them.
 *
 * The rejection surface is the streaming reader's, byte for byte: bad
 * magic, unknown (and the retired v1) versions, truncation anywhere —
 * including mid-varint at the mapping's end — trailing bytes after the
 * last record, and records referencing out-of-range primitives, cores,
 * or kind-mismatched primitives all fatal() with the same diagnostics.
 * The equivalence is pinned by tests: materialize() must equal what
 * TraceReader::read() produces on the same bytes, for every scenario
 * family.
 */

#ifndef SYNCRON_TRACE_MMAP_READER_HH
#define SYNCRON_TRACE_MMAP_READER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/format.hh"
#include "trace/varint.hh"

namespace syncron::trace {

/** mmap-backed `SYNCTRC` reader; records decode in place, zero-copy. */
class MappedTraceReader
{
  public:
    /**
     * Opens and maps @p path, then validates magic, version, machine
     * shape, and the complete primitive table. fatal()s on IO errors,
     * empty or short files, and every header-level format violation.
     * Record-level validation happens as the cursor walks (so a
     * multi-GB file never needs a full up-front pass); validateAll()
     * forces it eagerly.
     */
    explicit MappedTraceReader(const std::string &path);
    ~MappedTraceReader();

    MappedTraceReader(const MappedTraceReader &) = delete;
    MappedTraceReader &operator=(const MappedTraceReader &) = delete;

    // -- Header (validated at open)
    std::uint32_t numUnits() const { return numUnits_; }
    std::uint32_t clientCoresPerUnit() const { return coresPerUnit_; }
    std::uint32_t
    numClientCores() const
    {
        return numUnits_ * coresPerUnit_;
    }
    const std::vector<TracePrimitive> &primitives() const
    {
        return primitives_;
    }
    /** Record count from the header (the cursor must yield exactly
     *  this many before hitting the mapping's end). */
    std::uint64_t recordCount() const { return recordCount_; }
    /** Mapped file size in bytes. */
    std::size_t fileBytes() const { return mapBytes_; }
    const std::string &path() const { return path_; }

    /**
     * Allocation-free forward iteration over the record stream. The
     * cursor borrows the reader (which must outlive it); next() is pure
     * pointer arithmetic over the mapping and fatal()s on any record-
     * level format violation at the exact offending record index.
     */
    class RecordCursor
    {
      public:
        /**
         * Decodes the next record into @p out. Returns false once all
         * recordCount() records have been yielded — at which point the
         * cursor has also verified that the mapping holds no trailing
         * bytes. fatal()s on truncation and malformed records.
         */
        bool next(TraceRecord &out);

        /** Records yielded so far. */
        std::uint64_t index() const { return index_; }

      private:
        friend class MappedTraceReader;
        RecordCursor(const MappedTraceReader &reader,
                     const unsigned char *begin,
                     const unsigned char *end)
            : reader_(reader), cursor_(begin, end, "mapped trace")
        {
        }

        const MappedTraceReader &reader_;
        VarintCursor cursor_;
        std::uint64_t index_ = 0;
        Tick prevIssued_ = 0;
    };

    /** A fresh cursor positioned at the first record. */
    RecordCursor records() const;

    /**
     * Walks every record once, discarding them — forces the full
     * record-level validation pass (corpus validation uses this).
     * @return the per-OpKind operation counts of the stream
     */
    std::array<std::uint64_t, kNumSyncOpKinds> validateAll() const;

    /**
     * Copies the mapped trace into an owning Trace — the bridge to
     * consumers of the PR 4 API (Replayer, analyzers). Byte-for-byte
     * equivalent to TraceReader::read() on the same file.
     */
    Trace materialize() const;

  private:
    std::string path_;
    const unsigned char *map_ = nullptr; ///< mmap base (whole file)
    std::size_t mapBytes_ = 0;
    const unsigned char *recordsBegin_ = nullptr; ///< first record byte

    std::uint32_t numUnits_ = 0;
    std::uint32_t coresPerUnit_ = 0;
    std::uint64_t recordCount_ = 0;
    std::vector<TracePrimitive> primitives_;
};

} // namespace syncron::trace

#endif // SYNCRON_TRACE_MMAP_READER_HH
