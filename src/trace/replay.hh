/**
 * @file
 * Trace replay: re-issues a captured or synthesized operation stream
 * through the typed sync api against any registered backend.
 *
 * The Replayer re-mints the trace's primitive population with
 * SyncApi::create* / createLockSet (same kinds, home units, barrier
 * headcounts, and semaphore resources as the traced run — but fresh
 * lines from the replay system's allocator; primitive ids, not
 * addresses, bridge the two) and spawns one coroutine per traced core
 * that walks its records in program order:
 *
 *   - each op waits until its recorded issue tick (open-loop arrival),
 *     then issues through SyncApi::submit as a pipelined SyncFuture —
 *     the core keeps up to kMaxInFlight operations outstanding, so the
 *     replay reproduces the async api's submission behavior instead of
 *     serializing every op;
 *   - program-order dependencies are preserved per primitive: before a
 *     record issues, every in-flight operation on the same primitive
 *     is awaited first, so a release can never overtake its acquire
 *     and per-variable issue order matches the trace. cond-family
 *     records drain the whole pipeline (which covers their associated
 *     lock) and replay blocking — their lock coupling requires the
 *     core to be suspended;
 *   - latency, queuing, and protocol traffic come entirely from the
 *     replay backend.
 *
 * Replay is deterministic: the same trace on the same backend yields
 * identical SystemStats, which the tests enforce. The machine shape
 * must match the trace header (barrier headcounts and per-core streams
 * are baked into the records); replayConfig() builds a matching config.
 */

#ifndef SYNCRON_TRACE_REPLAY_HH
#define SYNCRON_TRACE_REPLAY_HH

#include <cstdint>
#include <vector>

#include "sim/process.hh"
#include "sync/primitives.hh"
#include "system/config.hh"
#include "trace/format.hh"

namespace syncron {
class NdpSystem;
namespace core {
class Core;
}
} // namespace syncron

namespace syncron::trace {

/**
 * A SystemConfig whose machine shape matches @p trace, ready for a
 * scheme/backend of the caller's choice.
 */
SystemConfig replayConfig(const Trace &trace, Scheme scheme);

/** Re-issues a trace's operation stream on a live system. */
class Replayer
{
  public:
    /** @p trace must outlive the replayer. */
    explicit Replayer(const Trace &trace);

    Replayer(const Replayer &) = delete;
    Replayer &operator=(const Replayer &) = delete;

    /**
     * Mints the primitive population on @p sys and spawns one replay
     * coroutine per traced core. fatal()s when the system's shape does
     * not match the trace header. Call once, then sys.run().
     */
    void install(NdpSystem &sys);

    /** Operations re-issued so far (== trace records after run()). */
    std::uint64_t opsReplayed() const { return opsReplayed_; }

    /** Per-core cap on outstanding replayed operations. */
    static constexpr std::size_t kMaxInFlight = 8;

  private:
    /** Handles of one re-minted primitive (kind selects the member). */
    struct Minted
    {
        PrimKind kind = PrimKind::Lock;
        sync::Lock lock;
        sync::Barrier barrier;
        sync::Semaphore sem;
        sync::CondVar cond;
    };

    sim::Process replayCore(NdpSystem &sys, core::Core &core,
                            std::vector<std::uint32_t> recordIdxs);

    const Trace &trace_;
    std::vector<Minted> minted_;
    std::uint64_t opsReplayed_ = 0;
};

} // namespace syncron::trace

#endif // SYNCRON_TRACE_REPLAY_HH
