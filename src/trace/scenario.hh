/**
 * @file
 * Synthetic synchronization-scenario generation: declarative specs in,
 * replayable traces out.
 *
 * Each scenario family models a contention regime that none of the
 * Table 6 structures or the three real applications pins down in
 * isolation, so backends can be compared on exactly the stress of
 * interest:
 *
 *   ZipfLock       — closed-loop lock contention with Zipf-skewed lock
 *                    selection: lock 0 is the hot lock; the exponent
 *                    dials the skew from uniform (0) to single-hot-lock.
 *   BurstyLock     — open-loop arrivals in bursts: back-to-back op
 *                    trains separated by long idle gaps, the antithesis
 *                    of the benches' steady closed loops.
 *   PhasedBarrierLock — BSP-style phases: a block of fine-grained lock
 *                    work, then a full-machine barrier, repeated.
 *   ReaderSemaphore — reader-heavy admission: most cores cycle through
 *                    a shared counting semaphore (wait ... post), a
 *                    minority contend on a small lock set.
 *   Replication    — per-partition ordered apply: each core drains a
 *                    bursty upstream into its partition (admission
 *                    semaphore, then the partition's watermark lock),
 *                    with a full-machine barrier between epochs — the
 *                    shape of the replication workload family that
 *                    drives crash-recovery testing.
 *
 * Generation is deterministic in the spec (every random draw flows
 * through the seeded common Rng) and always yields a feasible stream:
 * every acquire is released by the same core, every semaphore wait is
 * re-posted by its waiter, and barriers are waited on by every client
 * core — so replay cannot deadlock on any correct backend.
 */

#ifndef SYNCRON_TRACE_SCENARIO_HH
#define SYNCRON_TRACE_SCENARIO_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/format.hh"

namespace syncron::trace {

/** The synthetic scenario families. */
enum class ScenarioFamily
{
    ZipfLock,
    BurstyLock,
    PhasedBarrierLock,
    ReaderSemaphore,
    Replication,
};

/** Short name ("zipf", "bursty", "phased", "readers", "replication"). */
const char *scenarioFamilyName(ScenarioFamily family);

/** All families, in declaration order. */
inline constexpr ScenarioFamily kAllScenarioFamilies[] = {
    ScenarioFamily::ZipfLock,
    ScenarioFamily::BurstyLock,
    ScenarioFamily::PhasedBarrierLock,
    ScenarioFamily::ReaderSemaphore,
    ScenarioFamily::Replication,
};

/** Declarative description of one synthetic scenario. */
struct ScenarioSpec
{
    ScenarioFamily family = ScenarioFamily::ZipfLock;

    // -- Machine shape (matches SystemConfig defaults)
    unsigned numUnits = 4;
    unsigned clientCoresPerUnit = 15;

    // -- Stream volume
    unsigned opsPerCore = 32; ///< acquire/release (or wait/post) pairs
    Tick meanGap = 4000;      ///< mean inter-arrival gap per core [ticks]
    std::uint64_t seed = 1;

    // -- ZipfLock / BurstyLock / PhasedBarrierLock
    unsigned numLocks = 64;    ///< lock population, round-robin homed
    double zipfExponent = 1.0; ///< 0 = uniform; >= 1 strongly skewed

    // -- BurstyLock
    unsigned burstLen = 8;        ///< ops per burst
    double burstGapFactor = 50.0; ///< inter-burst gap = factor * meanGap

    // -- PhasedBarrierLock / Replication
    unsigned phases = 4; ///< lock blocks (or epochs) between barriers

    // -- ReaderSemaphore / Replication
    double readerFraction = 0.75; ///< cores cycling the semaphore
    unsigned semResources = 4;    ///< semaphore's initial resources

    unsigned
    numClientCores() const
    {
        return numUnits * clientCoresPerUnit;
    }
};

/** Synthesizes traces from declarative scenario specs. */
class ScenarioGenerator
{
  public:
    explicit ScenarioGenerator(const ScenarioSpec &spec);

    /** Produces the scenario's trace; deterministic in the spec. */
    Trace generate() const;

  private:
    ScenarioSpec spec_;
};

/**
 * The three scenario specs exercised by bench/trace_replay.cc and CI's
 * smoke (Zipf contention, bursty arrivals, phased barrier/lock mix),
 * scaled so opsPerCore ~ 32 * scale.
 */
std::vector<ScenarioSpec> benchScenarioSpecs(double scale);

} // namespace syncron::trace

#endif // SYNCRON_TRACE_SCENARIO_HH
