/**
 * @file
 * The synchronization-operation trace format — the first subsystem whose
 * input is data rather than code.
 *
 * A Trace is a machine-shape header (NDP units, client cores per unit),
 * a table of the synchronization primitives the traced run used (kind,
 * home unit, creation parameter), and a time-ordered stream of operation
 * records `{issue tick, completion tick, client core, OpKind, primitive
 * id, associated primitive}`. Primitive ids are dense indices into the
 * table, not simulated addresses, so a trace replays on a freshly built
 * system whose allocator hands out different lines.
 *
 * On disk the container is a compact varint encoding (decided contract,
 * see ROADMAP):
 *
 *   magic "SYNCTRC\0" | varint version (= 2)
 *   varint numUnits | varint clientCoresPerUnit
 *   varint primitive count | per primitive: kind, home, param, scope
 *   varint record count   | per record:
 *       zigzag(issue delta vs previous record) | latency (completed -
 *       issued) | core | OpKind | primitive id
 *       | associated lock (cond_wait records only)
 *
 * All multi-byte fields are LEB128 varints; issue ticks are
 * delta-encoded against the previous record (zigzag, so capture order —
 * completion order — need not be issue-ordered). TraceWriter and
 * TraceReader guarantee a lossless round trip; the reader rejects bad
 * magic, unknown versions, truncation, trailing garbage, and records
 * referencing out-of-range primitives or cores.
 *
 * v1 -> v2: v1 wrote an associated-primitive varint on EVERY record
 * (always 0 outside cond_wait) and did not require writers to populate
 * it, so offline consumers could not rely on the field. v2 makes the
 * associated lock a mandatory, writer-validated field of cond_wait
 * records and drops the dead varint everywhere else — the deadlock
 * analyzer (analysis::analyzeTrace) depends on it. Readers reject v1
 * traces; recapture them with this build.
 */

#ifndef SYNCRON_TRACE_FORMAT_HH
#define SYNCRON_TRACE_FORMAT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sync/opcodes.hh"
#include "sync/request.hh"

namespace syncron::trace {

/** Trace container version written/accepted by this build. */
inline constexpr std::uint64_t kTraceVersion = 2;

/** 8-byte container magic ("SYNCTRC\0"). */
inline constexpr std::array<char, 8> kTraceMagic = {'S', 'Y', 'N', 'C',
                                                    'T', 'R', 'C', '\0'};

/** Kind of a traced synchronization primitive. */
enum class PrimKind : std::uint8_t
{
    Lock,
    Barrier,
    Semaphore,
    CondVar,
};

/** Printable name for @p kind. */
const char *primKindName(PrimKind kind);

/** Kind of primitive @p kind operates on (every OpKind has one). */
PrimKind primKindOf(sync::OpKind kind);

/** One entry of the trace's primitive table. */
struct TracePrimitive
{
    PrimKind kind = PrimKind::Lock;
    UnitId home = 0; ///< NDP unit the primitive was homed in
    /** Barrier participant count / semaphore initial resources. */
    std::uint32_t param = 0;
    sync::BarrierScope scope = sync::BarrierScope::AcrossUnits;

    friend bool operator==(const TracePrimitive &,
                           const TracePrimitive &) = default;
};

/** One captured (or synthesized) synchronization operation. */
struct TraceRecord
{
    Tick issued = 0;    ///< tick the request was issued to the backend
    Tick completed = 0; ///< tick the core observed completion
    std::uint32_t core = 0; ///< dense client-core index
    sync::OpKind kind = sync::OpKind::LockAcquire;
    std::uint32_t prim = 0; ///< index into Trace::primitives
    /** CondWait's associated lock (primitive id); 0 otherwise. */
    std::uint32_t assocPrim = 0;

    Tick latency() const { return completed - issued; }

    friend bool operator==(const TraceRecord &,
                           const TraceRecord &) = default;
};

/** A complete synchronization-operation trace. */
struct Trace
{
    std::uint32_t numUnits = 0;
    std::uint32_t clientCoresPerUnit = 0;
    std::vector<TracePrimitive> primitives;
    std::vector<TraceRecord> records;

    /** Client cores of the traced machine (record::core < this). */
    std::uint32_t
    numClientCores() const
    {
        return numUnits * clientCoresPerUnit;
    }

    /** Operation count per sync::OpKind over the whole stream. */
    std::array<std::uint64_t, kNumSyncOpKinds> opCounts() const;

    /**
     * Share of lock operations going to the most-operated-on lock —
     * the contention-skew statistic the Zipfian scenario tests assert
     * on. Returns 0 when the trace has no lock operations.
     */
    double hottestLockShare() const;

    friend bool operator==(const Trace &, const Trace &) = default;
};

/** Serializes traces into the varint container format. */
class TraceWriter
{
  public:
    /** Writes to @p os; the stream must outlive the writer. */
    explicit TraceWriter(std::ostream &os) : os_(os) {}

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Emits one complete trace; fatal() on stream errors. */
    void write(const Trace &trace);

  private:
    std::ostream &os_;
};

/** Deserializes and validates the varint container format. */
class TraceReader
{
  public:
    /** Reads from @p is; the stream must outlive the reader. */
    explicit TraceReader(std::istream &is) : is_(is) {}

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Parses one complete trace. fatal()s on bad magic, unknown
     * version, truncation, trailing bytes, or records referencing
     * out-of-range primitives/cores.
     */
    Trace read();

  private:
    std::istream &is_;
};

/** Writes @p trace to @p path; fatal() when the file cannot be written. */
void writeTraceFile(const Trace &trace, const std::string &path);

/** Reads a trace from @p path; fatal() on IO or format errors. */
Trace readTraceFile(const std::string &path);

} // namespace syncron::trace

#endif // SYNCRON_TRACE_FORMAT_HH
