#include "trace/scenario.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"

namespace syncron::trace {

const char *
scenarioFamilyName(ScenarioFamily family)
{
    switch (family) {
      case ScenarioFamily::ZipfLock: return "zipf";
      case ScenarioFamily::BurstyLock: return "bursty";
      case ScenarioFamily::PhasedBarrierLock: return "phased";
      case ScenarioFamily::ReaderSemaphore: return "readers";
      case ScenarioFamily::Replication: return "replication";
    }
    return "?";
}

namespace {

/** Nominal per-op service latency stamped on synthetic records. The
 *  replayed latency comes from the real backend; this only keeps the
 *  synthetic issue/completion timeline self-consistent. */
constexpr Tick kNominalLatency = 600;

/** Nominal critical-section / resource hold time. */
constexpr Tick kNominalHold = 400;

/** Zipf sampler over ranks 0..n-1 (rank 0 hottest). */
class ZipfSampler
{
  public:
    ZipfSampler(unsigned n, double exponent)
    {
        cdf_.reserve(n);
        double sum = 0.0;
        for (unsigned r = 0; r < n; ++r) {
            sum += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
            cdf_.push_back(sum);
        }
    }

    unsigned
    operator()(Rng &rng) const
    {
        const double u = rng.uniform() * cdf_.back();
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<unsigned>(it - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

/** Builds one scenario trace; shared state for the family emitters. */
class Builder
{
  public:
    explicit Builder(const ScenarioSpec &spec) : spec_(spec)
    {
        trace_.numUnits = spec.numUnits;
        trace_.clientCoresPerUnit = spec.clientCoresPerUnit;
    }

    /** Adds @p count locks homed round-robin across units. */
    std::uint32_t
    addLocks(unsigned count)
    {
        const std::uint32_t base =
            static_cast<std::uint32_t>(trace_.primitives.size());
        for (unsigned i = 0; i < count; ++i) {
            trace_.primitives.push_back(TracePrimitive{
                PrimKind::Lock, i % spec_.numUnits, 0,
                sync::BarrierScope::AcrossUnits});
        }
        return base;
    }

    std::uint32_t
    addBarrier(std::uint32_t participants)
    {
        trace_.primitives.push_back(
            TracePrimitive{PrimKind::Barrier, 0, participants,
                           sync::BarrierScope::AcrossUnits});
        return static_cast<std::uint32_t>(trace_.primitives.size() - 1);
    }

    std::uint32_t
    addSemaphore(std::uint32_t resources, UnitId home = 0)
    {
        trace_.primitives.push_back(
            TracePrimitive{PrimKind::Semaphore, home, resources,
                           sync::BarrierScope::AcrossUnits});
        return static_cast<std::uint32_t>(trace_.primitives.size() - 1);
    }

    /** Adds one lock homed in @p home. */
    std::uint32_t
    addLockAt(UnitId home)
    {
        trace_.primitives.push_back(
            TracePrimitive{PrimKind::Lock, home, 0,
                           sync::BarrierScope::AcrossUnits});
        return static_cast<std::uint32_t>(trace_.primitives.size() - 1);
    }

    /** Emits one op; returns its nominal completion tick. */
    Tick
    emit(std::uint32_t core, sync::OpKind kind, std::uint32_t prim,
         Tick issued)
    {
        TraceRecord r;
        r.issued = issued;
        r.completed = issued + kNominalLatency;
        r.core = core;
        r.kind = kind;
        r.prim = prim;
        trace_.records.push_back(r);
        return r.completed;
    }

    /** Emits an acquire/release pair starting at @p t. */
    Tick
    emitLockPair(std::uint32_t core, std::uint32_t lock, Tick t)
    {
        const Tick granted =
            emit(core, sync::OpKind::LockAcquire, lock, t);
        return emit(core, sync::OpKind::LockRelease, lock,
                    granted + kNominalHold);
    }

    /** Time-orders the global stream, keeping per-core program order. */
    Trace
    finish()
    {
        std::stable_sort(trace_.records.begin(), trace_.records.end(),
                         [](const TraceRecord &a, const TraceRecord &b) {
                             return a.issued < b.issued;
                         });
        return std::move(trace_);
    }

    const ScenarioSpec &spec() const { return spec_; }

  private:
    ScenarioSpec spec_;
    Trace trace_;
};

/** Per-core jittered inter-arrival gap around the spec's mean. */
Tick
arrivalGap(Rng &rng, Tick mean)
{
    return static_cast<Tick>(
        static_cast<double>(mean) * (0.5 + rng.uniform()));
}

Trace
generateZipf(const ScenarioSpec &spec)
{
    Builder b(spec);
    const std::uint32_t locks = b.addLocks(spec.numLocks);
    const ZipfSampler zipf(spec.numLocks, spec.zipfExponent);
    for (unsigned core = 0; core < spec.numClientCores(); ++core) {
        Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + core + 1);
        Tick t = arrivalGap(rng, spec.meanGap);
        for (unsigned op = 0; op < spec.opsPerCore; ++op) {
            t = b.emitLockPair(core, locks + zipf(rng), t);
            t += arrivalGap(rng, spec.meanGap);
        }
    }
    return b.finish();
}

Trace
generateBursty(const ScenarioSpec &spec)
{
    Builder b(spec);
    const std::uint32_t locks = b.addLocks(spec.numLocks);
    // Within a burst ops arrive nearly back-to-back; bursts are
    // separated by gaps burstGapFactor times the mean.
    const Tick intraGap = std::max<Tick>(1, spec.meanGap / 10);
    for (unsigned core = 0; core < spec.numClientCores(); ++core) {
        Rng rng(spec.seed * 0x2545f4914f6cdd1dULL + core + 1);
        Tick t = arrivalGap(rng, spec.meanGap);
        for (unsigned op = 0; op < spec.opsPerCore; ++op) {
            if (op != 0 && op % spec.burstLen == 0) {
                t += static_cast<Tick>(
                    static_cast<double>(
                        arrivalGap(rng, spec.meanGap))
                    * spec.burstGapFactor);
            }
            t = b.emitLockPair(
                core,
                locks
                    + static_cast<std::uint32_t>(
                        rng.below(spec.numLocks)),
                t);
            t += arrivalGap(rng, intraGap);
        }
    }
    return b.finish();
}

Trace
generatePhased(const ScenarioSpec &spec)
{
    SYNCRON_ASSERT(spec.phases >= 1, "phased scenario needs >= 1 phase");
    Builder b(spec);
    const std::uint32_t locks = b.addLocks(spec.numLocks);
    const unsigned cores = spec.numClientCores();
    std::vector<std::uint32_t> barriers;
    for (unsigned p = 0; p < spec.phases; ++p)
        barriers.push_back(b.addBarrier(cores));

    const unsigned opsPerPhase =
        std::max(1u, spec.opsPerCore / spec.phases);
    const unsigned locksPerPhase =
        std::max(1u, spec.numLocks / spec.phases);
    for (unsigned core = 0; core < cores; ++core) {
        Rng rng(spec.seed * 0xbf58476d1ce4e5b9ULL + core + 1);
        Tick t = arrivalGap(rng, spec.meanGap);
        for (unsigned p = 0; p < spec.phases; ++p) {
            for (unsigned op = 0; op < opsPerPhase; ++op) {
                // Each phase works a phase-local slice of the lock
                // population, so the hot set moves between barriers.
                const std::uint32_t slot =
                    (p * locksPerPhase
                     + static_cast<std::uint32_t>(
                         rng.below(locksPerPhase)))
                    % spec.numLocks;
                t = b.emitLockPair(core, locks + slot, t);
                t += arrivalGap(rng, spec.meanGap);
            }
            t = b.emit(core, sync::OpKind::BarrierWaitAcrossUnits,
                       barriers[p], t);
        }
    }
    return b.finish();
}

Trace
generateReaders(const ScenarioSpec &spec)
{
    Builder b(spec);
    const std::uint32_t sem = b.addSemaphore(spec.semResources);
    const unsigned writerLocks = std::max(1u, spec.numLocks / 8);
    const std::uint32_t locks = b.addLocks(writerLocks);
    const unsigned cores = spec.numClientCores();
    const unsigned readers = std::min<unsigned>(
        cores, static_cast<unsigned>(
                   std::lround(spec.readerFraction * cores)));
    for (unsigned core = 0; core < cores; ++core) {
        Rng rng(spec.seed * 0x94d049bb133111ebULL + core + 1);
        Tick t = arrivalGap(rng, spec.meanGap);
        for (unsigned op = 0; op < spec.opsPerCore; ++op) {
            if (core < readers) {
                // Reader: admit through the semaphore, hold, re-post.
                const Tick admitted =
                    b.emit(core, sync::OpKind::SemWait, sem, t);
                t = b.emit(core, sync::OpKind::SemPost, sem,
                           admitted + kNominalHold);
            } else {
                t = b.emitLockPair(
                    core,
                    locks
                        + static_cast<std::uint32_t>(
                            rng.below(writerLocks)),
                    t);
            }
            t += arrivalGap(rng, spec.meanGap);
        }
    }
    return b.finish();
}

Trace
generateReplication(const ScenarioSpec &spec)
{
    // Per-partition ordered apply (one partition per unit): a core
    // serving partition p admits each upstream batch through the
    // partition's semaphore, advances the partition watermark under its
    // lock, and re-posts; a full-machine barrier closes every epoch.
    // Upstream arrivals are bursty: batches of burstLen nearly
    // back-to-back records separated by long idle gaps. Mirrors
    // workloads/replication/ReplicationWorkload.
    Builder b(spec);
    const unsigned cores = spec.numClientCores();
    const unsigned partitions = spec.numUnits;
    std::vector<std::uint32_t> locks, sems;
    for (unsigned p = 0; p < partitions; ++p) {
        locks.push_back(b.addLockAt(p));
        sems.push_back(b.addSemaphore(spec.semResources, p));
    }
    std::vector<std::uint32_t> barriers;
    for (unsigned e = 0; e < spec.phases; ++e)
        barriers.push_back(b.addBarrier(cores));

    const unsigned opsPerEpoch =
        std::max(1u, spec.opsPerCore / spec.phases);
    const Tick intraGap = std::max<Tick>(1, spec.meanGap / 10);
    for (unsigned core = 0; core < cores; ++core) {
        Rng rng(spec.seed * 0xd6e8feb86659fd93ULL + core + 1);
        const unsigned p = core % partitions;
        Tick t = arrivalGap(rng, spec.meanGap);
        for (unsigned e = 0; e < spec.phases; ++e) {
            for (unsigned op = 0; op < opsPerEpoch; ++op) {
                if (op != 0 && op % spec.burstLen == 0)
                    t += arrivalGap(rng, spec.meanGap) * 4;
                const Tick admitted =
                    b.emit(core, sync::OpKind::SemWait, sems[p], t);
                const Tick granted =
                    b.emit(core, sync::OpKind::LockAcquire, locks[p],
                           admitted);
                const Tick released =
                    b.emit(core, sync::OpKind::LockRelease, locks[p],
                           granted + kNominalHold);
                t = b.emit(core, sync::OpKind::SemPost, sems[p],
                           released);
                t += arrivalGap(rng, intraGap);
            }
            t = b.emit(core, sync::OpKind::BarrierWaitAcrossUnits,
                       barriers[e], t);
        }
    }
    return b.finish();
}

} // namespace

ScenarioGenerator::ScenarioGenerator(const ScenarioSpec &spec)
    : spec_(spec)
{
    SYNCRON_ASSERT(spec_.numUnits >= 1 && spec_.clientCoresPerUnit >= 1,
                   "scenario machine shape must have cores");
    SYNCRON_ASSERT(spec_.numLocks >= 1, "scenario needs >= 1 lock");
    SYNCRON_ASSERT(spec_.opsPerCore >= 1, "scenario needs >= 1 op/core");
    SYNCRON_ASSERT(spec_.burstLen >= 1, "scenario needs burstLen >= 1");
    SYNCRON_ASSERT(spec_.phases >= 1, "scenario needs phases >= 1");
}

Trace
ScenarioGenerator::generate() const
{
    switch (spec_.family) {
      case ScenarioFamily::ZipfLock: return generateZipf(spec_);
      case ScenarioFamily::BurstyLock: return generateBursty(spec_);
      case ScenarioFamily::PhasedBarrierLock:
        return generatePhased(spec_);
      case ScenarioFamily::ReaderSemaphore:
        return generateReaders(spec_);
      case ScenarioFamily::Replication:
        return generateReplication(spec_);
    }
    SYNCRON_PANIC("unknown scenario family");
}

std::vector<ScenarioSpec>
benchScenarioSpecs(double scale)
{
    const unsigned ops = std::max(
        4u, static_cast<unsigned>(32.0 * scale));
    std::vector<ScenarioSpec> specs;
    for (ScenarioFamily family : kAllScenarioFamilies) {
        ScenarioSpec spec;
        spec.family = family;
        spec.opsPerCore = ops;
        specs.push_back(spec);
    }
    return specs;
}

} // namespace syncron::trace
