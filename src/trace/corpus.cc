#include "trace/corpus.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <filesystem>

#include "common/log.hh"
#include "trace/mmap_reader.hh"

namespace syncron::trace {

bool
Corpus::isDirectory(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Corpus
Corpus::open(const std::string &dir)
{
    if (!isDirectory(dir))
        SYNCRON_FATAL("trace corpus '" << dir
                                       << "' is not a directory");
    Corpus corpus;
    corpus.dir_ = dir;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::filesystem::path &p = entry.path();
        if (p.extension() != ".trc")
            continue;
        CorpusFile f;
        f.path = p.string();
        f.name = p.filename().string();
        f.bytes = entry.file_size();
        corpus.files_.push_back(std::move(f));
    }
    if (ec)
        SYNCRON_FATAL("cannot enumerate trace corpus '"
                      << dir << "': " << ec.message());
    if (corpus.files_.empty())
        SYNCRON_FATAL("trace corpus '" << dir
                                       << "' holds no .trc files");
    // readdir order is filesystem-dependent; replay and analysis order
    // must not be, so the corpus is its files sorted by name.
    std::sort(corpus.files_.begin(), corpus.files_.end(),
              [](const CorpusFile &a, const CorpusFile &b) {
                  return a.name < b.name;
              });
    return corpus;
}

std::uint64_t
Corpus::totalBytes() const
{
    std::uint64_t total = 0;
    for (const CorpusFile &f : files_)
        total += f.bytes;
    return total;
}

std::vector<CorpusFileStatus>
Corpus::validate() const
{
    std::vector<CorpusFileStatus> statuses;
    statuses.reserve(files_.size());
    for (const CorpusFile &f : files_) {
        CorpusFileStatus s;
        s.file = f;
        try {
            MappedTraceReader reader(f.path);
            s.opCounts = reader.validateAll();
            s.records = reader.recordCount();
            s.ok = true;
        } catch (const std::exception &e) {
            s.error = e.what();
        }
        statuses.push_back(std::move(s));
    }
    return statuses;
}

} // namespace syncron::trace
