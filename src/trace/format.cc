#include "trace/format.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "common/log.hh"
#include "trace/varint.hh"

namespace syncron::trace {

const char *
primKindName(PrimKind kind)
{
    switch (kind) {
      case PrimKind::Lock: return "lock";
      case PrimKind::Barrier: return "barrier";
      case PrimKind::Semaphore: return "semaphore";
      case PrimKind::CondVar: return "condvar";
    }
    return "?";
}

PrimKind
primKindOf(sync::OpKind kind)
{
    switch (kind) {
      case sync::OpKind::LockAcquire:
      case sync::OpKind::LockRelease:
        return PrimKind::Lock;
      case sync::OpKind::BarrierWaitWithinUnit:
      case sync::OpKind::BarrierWaitAcrossUnits:
        return PrimKind::Barrier;
      case sync::OpKind::SemWait:
      case sync::OpKind::SemPost:
        return PrimKind::Semaphore;
      case sync::OpKind::CondWait:
      case sync::OpKind::CondSignal:
      case sync::OpKind::CondBroadcast:
        return PrimKind::CondVar;
    }
    SYNCRON_PANIC("unknown OpKind " << static_cast<unsigned>(kind));
}

std::array<std::uint64_t, kNumSyncOpKinds>
Trace::opCounts() const
{
    std::array<std::uint64_t, kNumSyncOpKinds> counts{};
    for (const TraceRecord &r : records)
        ++counts[static_cast<unsigned>(r.kind)];
    return counts;
}

double
Trace::hottestLockShare() const
{
    std::vector<std::uint64_t> perPrim(primitives.size(), 0);
    std::uint64_t lockOps = 0;
    for (const TraceRecord &r : records) {
        if (r.kind != sync::OpKind::LockAcquire)
            continue;
        ++perPrim[r.prim];
        ++lockOps;
    }
    if (lockOps == 0)
        return 0.0;
    std::uint64_t hottest = 0;
    for (std::uint64_t c : perPrim)
        hottest = std::max(hottest, c);
    return static_cast<double>(hottest) / static_cast<double>(lockOps);
}

namespace {

// LEB128/zigzag primitives live in trace/varint.hh, shared with the
// mmap'd reader and the tracenet wire marshaller.

/** Bounds-checks an enum read from the wire. */
template <typename Enum>
Enum
checkedEnum(std::uint64_t raw, std::uint64_t last, const char *what)
{
    if (raw > last)
        SYNCRON_FATAL("trace contains out-of-range " << what << " value "
                                                     << raw);
    return static_cast<Enum>(raw);
}

} // namespace

void
TraceWriter::write(const Trace &trace)
{
    os_.write(kTraceMagic.data(), kTraceMagic.size());
    putVarint(os_, kTraceVersion);
    putVarint(os_, trace.numUnits);
    putVarint(os_, trace.clientCoresPerUnit);

    putVarint(os_, trace.primitives.size());
    for (const TracePrimitive &p : trace.primitives) {
        putVarint(os_, static_cast<std::uint64_t>(p.kind));
        putVarint(os_, p.home);
        putVarint(os_, p.param);
        putVarint(os_, static_cast<std::uint64_t>(p.scope));
    }

    putVarint(os_, trace.records.size());
    Tick prevIssued = 0;
    for (const TraceRecord &r : trace.records) {
        SYNCRON_ASSERT(r.completed >= r.issued,
                       "record completed before it was issued");
        putVarint(os_, zigzag(static_cast<std::int64_t>(r.issued)
                              - static_cast<std::int64_t>(prevIssued)));
        putVarint(os_, r.completed - r.issued);
        putVarint(os_, r.core);
        putVarint(os_, static_cast<std::uint64_t>(r.kind));
        putVarint(os_, r.prim);
        // v2: the associated lock is a mandatory cond_wait-only field;
        // consumers (the offline deadlock analyzer) rely on it, so an
        // unset or dangling value is a writer error, not a reader one.
        if (r.kind == sync::OpKind::CondWait) {
            if (r.assocPrim >= trace.primitives.size()
                || trace.primitives[r.assocPrim].kind != PrimKind::Lock) {
                SYNCRON_FATAL("cond_wait record without a valid "
                              "associated lock (assocPrim "
                              << r.assocPrim << ")");
            }
            putVarint(os_, r.assocPrim);
        } else if (r.assocPrim != 0) {
            SYNCRON_FATAL("record carries an associated primitive but "
                          "is not a cond_wait ("
                          << sync::opKindName(r.kind) << ")");
        }
        prevIssued = r.issued;
    }

    if (!os_)
        SYNCRON_FATAL("stream error while writing trace");
}

Trace
TraceReader::read()
{
    std::array<char, 8> magic{};
    is_.read(magic.data(), magic.size());
    if (is_.gcount() != static_cast<std::streamsize>(magic.size())
        || magic != kTraceMagic) {
        SYNCRON_FATAL("not a SynCron trace (bad magic)");
    }
    const std::uint64_t version = getVarint(is_);
    if (version == 1) {
        // v1's associated-primitive field was unreliable (see the
        // format.hh changelog); silently accepting it would hand the
        // deadlock analyzer cond_waits with no lock.
        SYNCRON_FATAL("trace version 1 is no longer readable (its "
                      "cond_wait records carry no reliable associated "
                      "lock); recapture the trace with this build");
    }
    if (version != kTraceVersion) {
        SYNCRON_FATAL("unsupported trace version " << version
                                                   << " (this build reads "
                                                   << kTraceVersion << ")");
    }

    Trace trace;
    trace.numUnits = static_cast<std::uint32_t>(getVarint(is_));
    trace.clientCoresPerUnit =
        static_cast<std::uint32_t>(getVarint(is_));
    if (trace.numUnits == 0 || trace.clientCoresPerUnit == 0)
        SYNCRON_FATAL("trace header describes a machine with no cores");

    // Counts come off the wire unvalidated: cap the reserve so a
    // corrupt count fails as a clean truncation fatal inside the read
    // loop, not as a giant up-front allocation.
    constexpr std::uint64_t kReserveCap = 1 << 16;
    const std::uint64_t primCount = getVarint(is_);
    trace.primitives.reserve(
        static_cast<std::size_t>(std::min(primCount, kReserveCap)));
    for (std::uint64_t i = 0; i < primCount; ++i) {
        TracePrimitive p;
        p.kind = checkedEnum<PrimKind>(
            getVarint(is_),
            static_cast<std::uint64_t>(PrimKind::CondVar), "PrimKind");
        p.home = static_cast<UnitId>(getVarint(is_));
        if (p.home >= trace.numUnits)
            SYNCRON_FATAL("trace primitive " << i << " homed in unit "
                                             << p.home << " of a "
                                             << trace.numUnits
                                             << "-unit machine");
        p.param = static_cast<std::uint32_t>(getVarint(is_));
        p.scope = checkedEnum<sync::BarrierScope>(
            getVarint(is_),
            static_cast<std::uint64_t>(sync::BarrierScope::AcrossUnits),
            "BarrierScope");
        trace.primitives.push_back(p);
    }

    const std::uint64_t recordCount = getVarint(is_);
    trace.records.reserve(
        static_cast<std::size_t>(std::min(recordCount, kReserveCap)));
    Tick prevIssued = 0;
    for (std::uint64_t i = 0; i < recordCount; ++i) {
        TraceRecord r;
        const std::int64_t issued =
            static_cast<std::int64_t>(prevIssued)
            + unzigzag(getVarint(is_));
        if (issued < 0)
            SYNCRON_FATAL("trace record " << i
                                          << " has a negative issue tick");
        r.issued = static_cast<Tick>(issued);
        r.completed = r.issued + getVarint(is_);
        r.core = static_cast<std::uint32_t>(getVarint(is_));
        if (r.core >= trace.numClientCores())
            SYNCRON_FATAL("trace record " << i << " issued by core "
                                          << r.core << " of a "
                                          << trace.numClientCores()
                                          << "-core machine");
        r.kind = checkedEnum<sync::OpKind>(
            getVarint(is_),
            static_cast<std::uint64_t>(sync::OpKind::CondBroadcast),
            "OpKind");
        r.prim = static_cast<std::uint32_t>(getVarint(is_));
        if (r.prim >= trace.primitives.size())
            SYNCRON_FATAL("trace record " << i
                                          << " names unknown primitive "
                                          << r.prim);
        if (primKindOf(r.kind) != trace.primitives[r.prim].kind) {
            SYNCRON_FATAL(
                "trace record "
                << i << " applies " << sync::opKindName(r.kind)
                << " to a "
                << primKindName(trace.primitives[r.prim].kind));
        }
        if (r.kind == sync::OpKind::CondWait) {
            r.assocPrim = static_cast<std::uint32_t>(getVarint(is_));
            if (r.assocPrim >= trace.primitives.size()
                || trace.primitives[r.assocPrim].kind
                       != PrimKind::Lock) {
                SYNCRON_FATAL("trace record "
                              << i << " is a cond_wait without a valid "
                                      "associated lock");
            }
        }
        trace.records.push_back(r);
        prevIssued = r.issued;
    }

    if (is_.peek() != std::istream::traits_type::eof())
        SYNCRON_FATAL("trailing bytes after the last trace record");
    return trace;
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    // A multi-cell bench run with --trace-out builds one system per
    // grid cell, and every cell's run() lands here with the same path:
    // the file then holds only the last cell's stream. That is legal
    // (and sequential — the --jobs=1 guard rules out races) but easy
    // to mistake for a whole-bench capture, so the overwrite warns.
    {
        static std::mutex mutex;
        static std::map<std::string, unsigned> writes;
        std::lock_guard<std::mutex> lock(mutex);
        if (++writes[path] == 2) {
            SYNCRON_WARN("rewriting trace file '"
                         << path
                         << "' (multi-cell bench? the file keeps only "
                            "the last run's stream)");
        }
    }

    std::ofstream f(path, std::ios::binary);
    if (!f)
        SYNCRON_FATAL("cannot write trace file '" << path << "'");
    TraceWriter(f).write(trace);
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        SYNCRON_FATAL("cannot read trace file '" << path << "'");
    // Pull the whole file through a stringstream so peek()-based
    // trailing-byte detection is cheap and IO errors surface here.
    std::stringstream buf;
    buf << f.rdbuf();
    return TraceReader(buf).read();
}

} // namespace syncron::trace
