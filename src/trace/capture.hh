/**
 * @file
 * Capture of a live run's synchronization-operation stream.
 *
 * TraceCapture is the sync::TraceSink that NdpSystem installs on its
 * SyncApi when SystemConfig::tracePath is set (benches reach it through
 * --trace-out). Every completed operation is appended as a TraceRecord;
 * the primitive table is learned on the fly from the typed requests
 * themselves — the first operation on an address mints its table entry
 * (kind from the OpKind, home from the address, barrier headcount and
 * semaphore resources from the request payload), so any existing bench,
 * example, or test emits a replayable trace without code changes.
 *
 * Record order is completion order (the order the sink observes), which
 * per core equals program order: an in-order core's next sync op issues
 * only after the previous one completed, and detached releases are
 * recorded at issue. The Replayer relies on exactly this per-core
 * ordering.
 */

#ifndef SYNCRON_TRACE_CAPTURE_HH
#define SYNCRON_TRACE_CAPTURE_HH

#include <cstdint>
#include <unordered_map>

#include "sync/trace_sink.hh"
#include "system/config.hh"
#include "trace/format.hh"

namespace syncron::trace {

/** Accumulates a Trace from the api's operation stream. */
class TraceCapture final : public sync::TraceSink
{
  public:
    /** Captures runs of a system built from @p cfg (must outlive us). */
    explicit TraceCapture(const SystemConfig &cfg);

    void record(CoreId core, const sync::SyncRequest &req, Tick issued,
                Tick completed) override;

    /**
     * Closes the line's logical primitive: a recycled line (same
     * address, new create*) must open a fresh table entry, never merge
     * two generations whose parameters — or leftover semaphore
     * balance — could differ.
     */
    void recordDestroy(Addr var) override { addrToPrim_.erase(var); }

    /** The trace accumulated so far. */
    const Trace &trace() const { return trace_; }

  private:
    /** Table id for @p addr, minting an entry on first sight. */
    std::uint32_t primId(Addr addr, PrimKind kind);

    Trace trace_;
    std::unordered_map<Addr, std::uint32_t> addrToPrim_;
    const SystemConfig &cfg_;
};

} // namespace syncron::trace

#endif // SYNCRON_TRACE_CAPTURE_HH
