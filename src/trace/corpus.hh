/**
 * @file
 * Trace corpora: a directory of `SYNCTRC` files treated as one dataset.
 *
 * A corpus is how "scenario diversity" becomes data you accumulate
 * rather than code you write: every capture (local --trace-out, or
 * collected over tracenet) and every generated scenario lands as one
 * more `.trc` file in a directory, and the corpus abstraction gives all
 * consumers the same view of it — deterministic enumeration (sorted by
 * file name, so replay order never depends on readdir order), per-file
 * validation through the zero-copy MappedTraceReader, and back-to-back
 * replay via harness::runCorpus. tools/analyze_trace accepts a corpus
 * directory through the same enumeration.
 */

#ifndef SYNCRON_TRACE_CORPUS_HH
#define SYNCRON_TRACE_CORPUS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace syncron::trace {

/** One enumerated corpus member. */
struct CorpusFile
{
    std::string path;       ///< full path, directory-prefixed
    std::string name;       ///< file name within the corpus directory
    std::uint64_t bytes = 0; ///< file size
};

/** Validation outcome of one corpus member (validate()). */
struct CorpusFileStatus
{
    CorpusFile file;
    bool ok = false;
    std::uint64_t records = 0;  ///< record count when ok
    std::string error;          ///< rejection reason when !ok
    /** Per-OpKind operation counts when ok (from the validation walk). */
    std::array<std::uint64_t, kNumSyncOpKinds> opCounts{};
};

/**
 * An enumerated trace-corpus directory. Enumeration is eager and
 * deterministic; file contents are only touched by validate() /
 * consumers, so opening a corpus of thousands of traces is cheap.
 */
class Corpus
{
  public:
    /**
     * Enumerates every `*.trc` file directly under @p dir, sorted by
     * name. fatal()s when @p dir is not a readable directory or holds
     * no trace files.
     */
    static Corpus open(const std::string &dir);

    /** True when @p path names a directory (corpus vs single file). */
    static bool isDirectory(const std::string &path);

    const std::string &dir() const { return dir_; }
    const std::vector<CorpusFile> &files() const { return files_; }
    std::size_t size() const { return files_.size(); }
    std::uint64_t totalBytes() const;

    /**
     * Runs the full MappedTraceReader validation pass over every file
     * (header, primitive table, and a complete record walk), catching
     * rejections instead of propagating them so one corrupt member
     * yields a per-file diagnostic rather than aborting the sweep.
     */
    std::vector<CorpusFileStatus> validate() const;

  private:
    std::string dir_;
    std::vector<CorpusFile> files_;
};

} // namespace syncron::trace

#endif // SYNCRON_TRACE_CORPUS_HH
