#include "syncron/engine.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/units.hh"
#include "durability/persist.hh"
#include "sync/registry.hh"

namespace syncron::engine {

using sync::Op;
using sync::OpKind;
using sync::SyncMessage;
using sync::SyncRequest;

namespace {

/** Maps an API operation to its local-message opcode (Table 3). */
Op
localOpcodeFor(OpKind kind)
{
    switch (kind) {
      case OpKind::LockAcquire: return Op::LockAcquireLocal;
      case OpKind::LockRelease: return Op::LockReleaseLocal;
      case OpKind::BarrierWaitWithinUnit:
        return Op::BarrierWaitLocalWithinUnit;
      case OpKind::BarrierWaitAcrossUnits:
        return Op::BarrierWaitLocalAcrossUnits;
      case OpKind::SemWait: return Op::SemWaitLocal;
      case OpKind::SemPost: return Op::SemPostLocal;
      case OpKind::CondWait: return Op::CondWaitLocal;
      case OpKind::CondSignal: return Op::CondSignalLocal;
      case OpKind::CondBroadcast: return Op::CondBroadLocal;
    }
    SYNCRON_PANIC("unknown OpKind");
}

} // namespace

SynCronBackend::Station::Station(UnitId u, std::uint32_t entries,
                                 std::uint32_t counterCount,
                                 SystemStats &stats)
    : unit(u), table(entries, stats), counters(counterCount)
{}

SynCronBackend::SynCronBackend(Machine &machine, EngineOptions opts)
    : machine_(machine), opts_(opts)
{
    const SystemConfig &cfg = machine.config();
    const std::uint32_t entries =
        opts_.stEntries != 0 ? opts_.stEntries
        : opts_.station == StationKind::ServerCore
            ? (1u << 20) // Hier: state lives in memory, no ST limit
            : cfg.stEntries;

    name_ = opts_.name != nullptr ? opts_.name
            : opts_.station == StationKind::ServerCore ? "Hier"
                                                       : "SynCron";

    for (unsigned u = 0; u < cfg.numUnits; ++u) {
        stations_.push_back(std::make_unique<Station>(
            u, entries, cfg.indexingCounters, machine.statsFor(u)));
        if (opts_.station == StationKind::ServerCore) {
            Station &s = *stations_.back();
            s.l1 = std::make_unique<cache::Cache>(cfg.l1,
                                                  machine.statsFor(u));
            // Shadow tracking records come from a per-station region
            // reserved here (host side, deterministic order) rather than
            // the shared allocator, whose state would otherwise depend
            // on cross-shard allocation order.
            constexpr Addr kShadowRegionBytes = 1u << 20;
            s.shadowNext = machine.addrSpace().allocIn(
                u, kShadowRegionBytes, kCacheLineBytes);
            s.shadowEnd = s.shadowNext + kShadowRegionBytes;
        }
    }
    gates_.resize(cfg.totalCores());

    if (misarActive()) {
        const unsigned servers =
            opts_.overflow == OverflowPolicy::MisarCentral ? 1
                                                           : cfg.numUnits;
        for (unsigned u = 0; u < servers; ++u) {
            SoftServer server;
            server.unit = u;
            server.l1 =
                std::make_unique<cache::Cache>(cfg.l1, machine.stats());
            softServers_.push_back(std::move(server));
        }
    }
}

SynCronBackend::~SynCronBackend() = default;

bool
SynCronBackend::isMaster(const Station &s, Addr var) const
{
    return masterOf(var) == s.unit;
}

CoreId
SynCronBackend::globalCoreId(UnitId unit, unsigned local) const
{
    return unit * machine_.config().coresPerUnit + local;
}

void
SynCronBackend::finalizeStats()
{
    // maxNow() is the tick of the run's last event — identical whether
    // the run was sharded or not, keeping the occupancy integrals in the
    // bit-identity contract.
    const Tick now = machine_.maxNow();
    for (auto &s : stations_)
        s->table.finalize(now);
}

std::uint64_t
SynCronBackend::overflowedRequests() const
{
    std::uint64_t n = 0;
    for (const auto &s : stations_)
        n += s->overflowedReqs;
    return n;
}

std::uint64_t
SynCronBackend::totalRequests() const
{
    std::uint64_t n = 0;
    for (const auto &s : stations_)
        n += s->totalReqs;
    return n;
}

void
SynCronBackend::setPersistHook(durability::PersistHook *hook)
{
    persistHook_ = hook;
    for (auto &s : stations_) {
        s->table.setPersistHook(hook, s->unit);
        s->counters.setPersistHook(hook, s->unit);
    }
}

std::uint32_t
SynCronBackend::stOccupied(UnitId unit) const
{
    return stations_.at(unit)->table.occupied();
}

std::uint32_t
SynCronBackend::counterValue(UnitId unit, Addr var) const
{
    return stations_.at(unit)->counters.value(var);
}

bool
SynCronBackend::idleVar(Addr var) const
{
    if (misarVars_.count(var) != 0 || misarPending_.count(var) != 0
        || !misarState_.idle(var)) {
        return false;
    }
    for (const auto &s : stations_) {
        if (s->table.entries().count(var) != 0 || s->hasRedirected(var)
            || s->inFlightLocal.count(var) != 0
            || s->memVars.count(var) != 0) {
            return false;
        }
    }
    return true;
}

void
SynCronBackend::releaseVar(Addr var)
{
    // Hardware state frees itself when a variable goes idle (ST entries
    // are released, in-memory records cleaned up); nothing to drop, but
    // a destroy of a still-tracked variable is a program error.
    SYNCRON_ASSERT(idleVar(var), "releaseVar @" << var
                                     << " with live engine state");
}

// --------------------------------------------------------------------
// Request issue and transport
// --------------------------------------------------------------------

Addr
SynCronBackend::gateKeyFor(const SyncRequest &req)
{
    return req.kind() == OpKind::CondWait ? req.condLock() : req.var();
}

void
SynCronBackend::addPendingGate(CoreId core, Addr key, sim::Gate *gate)
{
    gates_[core].push_back(PendingGate{key, gate});
}

sim::Gate *
SynCronBackend::takePendingGate(CoreId core, Addr key)
{
    auto &pending = gates_[core];
    for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->key == key) {
            sim::Gate *gate = it->gate;
            pending.erase(it);
            return gate;
        }
    }
    SYNCRON_PANIC("core " << core << " has no pending sync op on @"
                          << key);
}

void
SynCronBackend::request(core::Core &requester, const SyncRequest &req,
                        sim::Gate *gate)
{
    ++stations_[requester.unit()]->totalReqs;
    if (req.acquireType()) {
        addPendingGate(requester.id(), gateKeyFor(req), gate);
    } else {
        // req_async: commits once the message is issued to the network.
        gate->open(0, requester.cyclePeriod());
    }

    // MiSAR ablation: variables in software mode bypass the SEs.
    if (misarActive() && misarVars_.count(req.var()) != 0) {
        misarRequest(requester, req, gate);
        return;
    }

    // The sole spot where a typed request becomes a Fig. 5 hardware
    // message; MessageInfo is the request payload's wire encoding.
    SyncMessage msg;
    msg.addr = req.var();
    msg.opcode = localOpcodeFor(req.kind());
    msg.coreId = requester.localId();
    msg.info = req.messageInfo();
    msg.walSeq = req.walSeq();

    const UnitId unit = requester.unit();
    const Tick arrival = machine_.routeMessage(
        machine_.eq(unit).now(), unit, unit, sync::kSyncReqBits);
    ++machine_.statsFor(unit).syncLocalMsgs;
    ++stations_[unit]->inFlightLocal[req.var()];
    machine_.eq(unit).schedule(arrival,
                               [this, unit, msg] { receive(unit, msg); });
}

void
SynCronBackend::requestBatch(core::Core &requester,
                             std::span<const SyncRequest> reqs,
                             std::span<sim::Gate *const> gates)
{
    SYNCRON_ASSERT(reqs.size() == gates.size(),
                   "batch of " << reqs.size() << " requests with "
                               << gates.size() << " gates");
    // Coalescing eligibility: at least two operations, and never under
    // the MiSAR ablation — software-mode variables bypass the SEs with
    // per-op abort bookkeeping that a shared message cannot carry.
    if (reqs.size() < 2 || misarActive()) {
        for (std::size_t i = 0; i < reqs.size(); ++i)
            request(requester, reqs[i], gates[i]);
        return;
    }

    // Every member's first hop is the requesting core's local SE, so
    // the whole batch coalesces into a single core -> SE message with
    // one shared header and per-op records (the SPU still services each
    // record — and the protocol still forwards/grants each operation —
    // individually, in batch order).
    const UnitId unit = requester.unit();
    Station &local = *stations_[unit];
    std::vector<SyncMessage> msgs;
    msgs.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const SyncRequest &req = reqs[i];
        ++local.totalReqs;
        if (req.acquireType()) {
            addPendingGate(requester.id(), gateKeyFor(req), gates[i]);
        } else {
            gates[i]->open(0, requester.cyclePeriod());
        }
        SyncMessage msg;
        msg.addr = req.var();
        msg.opcode = localOpcodeFor(req.kind());
        msg.coreId = requester.localId();
        msg.info = req.messageInfo();
        msg.walSeq = req.walSeq();
        msgs.push_back(msg);
        ++local.inFlightLocal[req.var()];
    }

    const auto n = static_cast<std::uint32_t>(reqs.size());
    const Tick arrival = machine_.routeMessage(
        machine_.eq(unit).now(), unit, unit, sync::batchReqBits(reqs));
    SystemStats &st = machine_.statsFor(unit);
    ++st.syncLocalMsgs;
    st.batchedOps += n;
    st.messagesSaved += n - 1;
    machine_.eq(unit).schedule(arrival, [this, unit,
                                         msgs = std::move(msgs)] {
        for (const SyncMessage &m : msgs)
            receive(unit, m);
    });
}

void
SynCronBackend::sendToStation(UnitId from, UnitId to, SyncMessage msg,
                              Tick depart)
{
    SYNCRON_ASSERT(from != to, "station self-send of " << opName(msg.opcode));
    if (sync::isOverflowOp(msg.opcode)
        || msg.opcode == Op::DecreaseIndexingCounter) {
        ++machine_.statsFor(from).syncOverflowMsgs;
    } else {
        ++machine_.statsFor(from).syncGlobalMsgs;
    }
    // The engine's only cross-unit transport: under sharded simulation
    // this becomes a mailbox envelope delivered on @p to 's shard.
    machine_.postMessage(depart, from, to, sync::kSyncReqBits,
                         [this, to, msg] { receive(to, msg); });
}

void
SynCronBackend::grantCore(UnitId seUnit, CoreId core, Addr var,
                          Tick depart)
{
    SYNCRON_ASSERT(core / machine_.config().coresPerUnit == seUnit,
                   "grant must come from the core's own unit");
    const Tick arrival = machine_.routeMessage(depart, seUnit, seUnit,
                                               sync::kSyncRespBits);
    ++machine_.statsFor(seUnit).syncLocalMsgs;
    sim::Gate *gate = takePendingGate(core, var);
    gate->open(0, arrival - machine_.eq(seUnit).now());
}

// --------------------------------------------------------------------
// SPU scheduling
// --------------------------------------------------------------------

Tick
SynCronBackend::baseServiceTicks(Station &, Addr)
{
    const SystemConfig &cfg = machine_.config();
    if (opts_.station == StationKind::SyncronSe) {
        // Table 5: every message is served in 12 SPU cycles @1 GHz
        // (the time of the slowest message, barrier_depart_global).
        return static_cast<Tick>(cfg.seServiceCycles) * cfg.seCyclePeriod;
    }
    // Software server: decode/dispatch/bookkeeping instructions on an
    // in-order core; the state access is added separately (it can miss).
    return static_cast<Tick>(cfg.serverSwOverheadCycles)
           * kCoreClock.period();
}

Tick
SynCronBackend::serverStateAccess(Station &s, Addr var, Tick start)
{
    // The server keeps tracking state for the variable in its own unit's
    // memory and accesses it through its L1 (read-modify-write). The
    // Master-unit server uses the variable's own address; other units use
    // a local shadow record.
    Addr track = var;
    if (!isMaster(s, var)) {
        auto it = s.shadow.find(var);
        if (it == s.shadow.end()) {
            // Carve from the station's private region (deterministic and
            // shard-local; see the reservation in the constructor).
            SYNCRON_ASSERT(s.shadowNext < s.shadowEnd,
                           "server shadow region exhausted at unit "
                               << s.unit);
            track = s.shadowNext;
            s.shadowNext += kCacheLineBytes;
            s.shadow.emplace(var, track);
        } else {
            track = it->second;
        }
    }

    const Tick hit = static_cast<Tick>(s.l1->params().hitCycles)
                     * kCoreClock.period();
    cache::CacheAccessResult res = s.l1->access(track, false);
    Tick t = start + hit;
    if (!res.hit) {
        t = machine_.memoryAccess(t, s.unit, lineAlign(track), false,
                                  kCacheLineBytes);
        if (res.writeback) {
            machine_.memoryAccess(start + hit, s.unit, res.victimAddr,
                                  true, kCacheLineBytes);
        }
    }
    // The modifying write hits the just-filled line.
    s.l1->access(track, true);
    return t + hit;
}

void
SynCronBackend::receive(UnitId unit, SyncMessage msg)
{
    Station &s = *stations_[unit];
    const Tick now = machine_.eq(unit).now();
    const Tick start = std::max(now, s.busyUntil);
    // Reserve the SPU; handle() extends the reservation if the message
    // needs memory accesses (overflow path / server state access).
    s.busyUntil = start + baseServiceTicks(s, msg.addr);
    machine_.eq(unit).schedule(start, [this, unit, msg] {
        handle(*stations_[unit], msg);
    });
}

void
SynCronBackend::handle(Station &s, SyncMessage msg)
{
    const Tick now = machine_.eq(s.unit).now();
    Tick done = now + baseServiceTicks(s, msg.addr);

    // Local-opcode messages come only from cores via request(); once the
    // station consumes one, the variable's state is resident somewhere
    // (ST entry, in-memory record, or the misar pending counter).
    if (!sync::isGlobalOp(msg.opcode)) {
        auto it = s.inFlightLocal.find(msg.addr);
        SYNCRON_ASSERT(it != s.inFlightLocal.end() && it->second > 0,
                       "local message with no in-flight accounting");
        if (--it->second == 0)
            s.inFlightLocal.erase(it);
    }

    // MiSAR ablation: local operations on a variable in software mode
    // divert before touching any hardware state (condition variables
    // are pinned to the integrated path; see redirectOverflow).
    if (misarActive() && misarVars_.count(msg.addr) != 0) {
        switch (msg.opcode) {
          case Op::LockAcquireLocal:
          case Op::LockReleaseLocal:
          case Op::BarrierWaitLocalWithinUnit:
          case Op::BarrierWaitLocalAcrossUnits:
          case Op::SemWaitLocal:
          case Op::SemPostLocal:
            s.busyUntil = std::max(s.busyUntil, done);
            misarDivertLocal(s, msg, done);
            return;
          default:
            break;
        }
    }
    if (opts_.station == StationKind::ServerCore)
        done = serverStateAccess(s, msg.addr, done);
    s.busyUntil = std::max(s.busyUntil, done);

    if (persistHook_ != nullptr) {
        // Durability: the station's state transition for this message
        // reaches the PM domain before the operation may proceed.
        done = persistHook_->persistStation(s.unit, msg.addr, msg.walSeq,
                                            done);
        s.busyUntil = std::max(s.busyUntil, done);
    }

    switch (msg.opcode) {
      case Op::LockAcquireLocal: onLockAcquireLocal(s, msg, done); break;
      case Op::LockReleaseLocal: onLockReleaseLocal(s, msg, done); break;
      case Op::LockAcquireGlobal: onLockAcquireGlobal(s, msg, done); break;
      case Op::LockReleaseGlobal: onLockReleaseGlobal(s, msg, done); break;
      case Op::LockGrantGlobal: onLockGrantGlobal(s, msg, done); break;

      case Op::BarrierWaitLocalWithinUnit:
        onBarrierWaitLocal(s, msg, true, done);
        break;
      case Op::BarrierWaitLocalAcrossUnits:
        onBarrierWaitLocal(s, msg, false, done);
        break;
      case Op::BarrierWaitGlobal: onBarrierWaitGlobal(s, msg, done); break;
      case Op::BarrierDepartGlobal:
        onBarrierDepartGlobal(s, msg, done);
        break;

      case Op::SemWaitLocal: onSemWaitLocal(s, msg, done); break;
      case Op::SemPostLocal: onSemPostLocal(s, msg, done); break;
      case Op::SemWaitGlobal: onSemWaitGlobal(s, msg, done); break;
      case Op::SemPostGlobal: onSemPostGlobal(s, msg, done); break;
      case Op::SemGrantGlobal: onSemGrantGlobal(s, msg, done); break;

      case Op::CondWaitLocal: onCondWaitLocal(s, msg, done); break;
      case Op::CondSignalLocal:
        onCondSignalLocal(s, msg, false, done);
        break;
      case Op::CondBroadLocal:
        onCondSignalLocal(s, msg, true, done);
        break;
      case Op::CondWaitGlobal: onCondWaitGlobal(s, msg, done); break;
      case Op::CondSignalGlobal:
        onCondSignalGlobal(s, msg, false, done);
        break;
      case Op::CondBroadGlobal:
        // Used in both directions: SE -> Master (forwarded broadcast)
        // and Master -> SE (wake-all grant).
        if (isMaster(s, msg.addr))
            onCondSignalGlobal(s, msg, true, done);
        else
            onCondGrantGlobal(s, msg, true, done);
        break;
      case Op::CondGrantGlobal:
        onCondGrantGlobal(s, msg, false, done);
        break;

      case Op::LockAcquireOverflow:
      case Op::LockReleaseOverflow:
      case Op::BarrierWaitOverflow:
      case Op::SemWaitOverflow:
      case Op::SemPostOverflow:
      case Op::CondWaitOverflow:
      case Op::CondSignalOverflow:
      case Op::CondBroadOverflow:
        handleOverflowAtMaster(s, msg, done);
        break;

      case Op::LockGrantOverflow:
      case Op::SemGrantOverflow:
      case Op::CondGrantOverflow:
      case Op::BarrierDepartureOverflow:
        onOverflowGrant(s, msg, done);
        break;

      case Op::DecreaseIndexingCounter:
        onDecreaseIndexingCounter(s, msg);
        break;

      default:
        SYNCRON_PANIC("unhandled opcode " << opName(msg.opcode));
    }
}

// --------------------------------------------------------------------
// Fig. 8 control flow
// --------------------------------------------------------------------

SynCronBackend::Route
SynCronBackend::routeFor(Station &s, Addr var, bool acquireType,
                         bool global)
{
    ++machine_.statsFor(s.unit).stRequests;
    if (s.table.find(var) != nullptr)
        return Route::Table;

    if (isMaster(s, var)) {
        // A live in-memory record forces the memory path even when the
        // indexing counter aliases away (split-brain protection).
        if (s.memVars.count(var) != 0
            || s.counters.servicedViaMemory(var) || s.table.full()) {
            ++s.overflowedReqs;
            ++machine_.statsFor(s.unit).stOverflowEvents;
            return Route::Memory;
        }
    } else if (s.counters.servicedViaMemory(var) || s.table.full()
               || s.hasRedirected(var)) {
        ++s.overflowedReqs;
        ++machine_.statsFor(s.unit).stOverflowEvents;
        SYNCRON_ASSERT(!global, "global message routed to non-master");
        // Non-master overflowed SE: redirect to the Master SE and track
        // the variable as serviced-via-memory (Section 4.3.2). Under the
        // MiSAR ablation the counters are managed by the abort/notify
        // protocol instead.
        if (!misarActive()) {
            if (acquireType)
                s.counters.increment(var);
            else
                s.counters.decrement(var);
        }
        return Route::Redirect;
    }

    StEntry *e = s.table.alloc(var, machine_.eq(s.unit).now());
    SYNCRON_ASSERT(e != nullptr, "alloc failed with non-full table");
    return Route::Table;
}

StEntry *
SynCronBackend::entryOf(Station &s, Addr var)
{
    StEntry *e = s.table.find(var);
    SYNCRON_ASSERT(e != nullptr, "missing ST entry for @" << var);
    return e;
}

void
SynCronBackend::maybeFree(Station &s, StEntry &e, Tick now)
{
    if (e.idle())
        s.table.release(e.addr, now);
}

// --------------------------------------------------------------------
// Lock protocol (Section 3.2)
// --------------------------------------------------------------------

void
SynCronBackend::localGrantNext(Station &s, StEntry &e, Tick done)
{
    SYNCRON_ASSERT(e.localWaitBits != 0, "grant with no local waiters");
    const unsigned c = lowestSetBit(e.localWaitBits);
    e.localWaitBits = withoutBit(e.localWaitBits, c);
    e.ownerKind = LockOwner::LocalCore;
    e.ownerId = c;
    ++e.grantStreak;
    grantCore(s.unit, globalCoreId(s.unit, c), e.addr, done);
}

void
SynCronBackend::masterNextGrant(Station &s, StEntry &e, Tick done)
{
    const std::uint32_t threshold = machine_.config().localGrantThreshold;
    const bool transferDue = threshold > 0 && e.grantStreak >= threshold
                             && e.globalWaitBits != 0;

    if (e.localWaitBits != 0 && !transferDue) {
        // The Master SE prioritizes its local waiting list (Section 3.2).
        localGrantNext(s, e, done);
    } else if (e.globalWaitBits != 0) {
        const unsigned j = lowestSetBit(e.globalWaitBits);
        e.globalWaitBits = withoutBit(e.globalWaitBits, j);
        e.ownerKind = LockOwner::Unit;
        e.ownerId = j;
        e.grantStreak = 0;
        SyncMessage grant;
        grant.addr = e.addr;
        grant.opcode = Op::LockGrantGlobal;
        grant.coreId = s.unit;
        sendToStation(s.unit, j, grant, done);
    } else if (e.localWaitBits != 0) {
        localGrantNext(s, e, done);
    } else {
        e.ownerKind = LockOwner::None;
        e.grantStreak = 0;
        maybeFree(s, e, machine_.eq(s.unit).now());
    }
}

void
SynCronBackend::onLockAcquireLocal(Station &s, const SyncMessage &m,
                                   Tick done)
{
    const Route route = routeFor(s, m.addr, true, false);
    if (route == Route::Redirect) {
        redirectOverflow(s, m, done);
        return;
    }
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memLockOp(s, v, m, true, s.unit, static_cast<int>(m.coreId), false,
                  done);
        return;
    }

    StEntry &e = *entryOf(s, m.addr);
    const unsigned c = m.coreId;

    if (isMaster(s, m.addr)) {
        if (e.ownerKind == LockOwner::None) {
            e.ownerKind = LockOwner::LocalCore;
            e.ownerId = c;
            ++e.grantStreak;
            grantCore(s.unit, globalCoreId(s.unit, c), m.addr, done);
        } else {
            e.localWaitBits = withBit(e.localWaitBits, c);
        }
        return;
    }

    // Non-master local SE.
    if (e.holdsGrant && e.ownerKind == LockOwner::None) {
        e.ownerKind = LockOwner::LocalCore;
        e.ownerId = c;
        ++e.grantStreak;
        grantCore(s.unit, globalCoreId(s.unit, c), m.addr, done);
        return;
    }
    e.localWaitBits = withBit(e.localWaitBits, c);
    if (!e.holdsGrant && !e.requestedGlobal) {
        e.requestedGlobal = true;
        SyncMessage req;
        req.addr = m.addr;
        req.opcode = Op::LockAcquireGlobal;
        req.coreId = s.unit;
        sendToStation(s.unit, masterOf(m.addr), req, done);
    }
}

void
SynCronBackend::onLockReleaseLocal(Station &s, const SyncMessage &m,
                                   Tick done)
{
    const Route route = routeFor(s, m.addr, false, false);
    if (route == Route::Redirect) {
        redirectOverflow(s, m, done);
        return;
    }
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memLockOp(s, v, m, false, s.unit, static_cast<int>(m.coreId),
                  false, done);
        return;
    }

    StEntry &e = *entryOf(s, m.addr);
    SYNCRON_ASSERT(e.ownerKind == LockOwner::LocalCore
                       && e.ownerId == m.coreId,
                   "lock release by non-owner core "
                       << m.coreId << " @" << m.addr << " unit=" << s.unit
                       << " master=" << isMaster(s, m.addr)
                       << " ownerKind=" << static_cast<int>(e.ownerKind)
                       << " ownerId=" << e.ownerId
                       << " holds=" << e.holdsGrant
                       << " reqGlobal=" << e.requestedGlobal
                       << " waitBits=" << e.localWaitBits
                       << " counter=" << s.counters.value(m.addr)
                       << " redirected=" << s.hasRedirected(m.addr));
    e.ownerKind = LockOwner::None;

    if (isMaster(s, m.addr)) {
        masterNextGrant(s, e, done);
        return;
    }

    // Non-master local SE: serve successive local requests while any
    // exist (Section 3.2), unless the fairness threshold forces a
    // transfer (Section 4.4.2 extension).
    const std::uint32_t threshold = machine_.config().localGrantThreshold;
    const bool transferDue = threshold > 0 && e.grantStreak >= threshold;
    if (e.localWaitBits != 0 && !transferDue) {
        localGrantNext(s, e, done);
        return;
    }

    // Release the unit's hold with one aggregated global message.
    e.holdsGrant = false;
    e.grantStreak = 0;
    SyncMessage rel;
    rel.addr = m.addr;
    rel.opcode = Op::LockReleaseGlobal;
    rel.coreId = s.unit;
    sendToStation(s.unit, masterOf(m.addr), rel, done);
    if (e.localWaitBits != 0) {
        // Fairness transfer: local waiters re-request at the master's
        // queue tail.
        e.requestedGlobal = true;
        SyncMessage req;
        req.addr = m.addr;
        req.opcode = Op::LockAcquireGlobal;
        req.coreId = s.unit;
        sendToStation(s.unit, masterOf(m.addr), req, done);
    } else {
        maybeFree(s, e, machine_.eq(s.unit).now());
    }
}

void
SynCronBackend::onLockAcquireGlobal(Station &s, const SyncMessage &m,
                                    Tick done)
{
    const Route route = routeFor(s, m.addr, true, true);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memLockOp(s, v, m, true, m.coreId, -1, true, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    const unsigned j = m.coreId;
    if (e.ownerKind == LockOwner::None) {
        e.ownerKind = LockOwner::Unit;
        e.ownerId = j;
        SyncMessage grant;
        grant.addr = m.addr;
        grant.opcode = Op::LockGrantGlobal;
        grant.coreId = s.unit;
        sendToStation(s.unit, j, grant, done);
    } else {
        e.globalWaitBits = withBit(e.globalWaitBits, j);
    }
}

void
SynCronBackend::onLockReleaseGlobal(Station &s, const SyncMessage &m,
                                    Tick done)
{
    const Route route = routeFor(s, m.addr, false, true);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memLockOp(s, v, m, false, m.coreId, -1, true, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    SYNCRON_ASSERT(e.ownerKind == LockOwner::Unit && e.ownerId == m.coreId,
                   "global release by non-owner unit " << m.coreId);
    e.ownerKind = LockOwner::None;
    masterNextGrant(s, e, done);
}

void
SynCronBackend::onLockGrantGlobal(Station &s, const SyncMessage &m,
                                  Tick done)
{
    StEntry *e = s.table.find(m.addr);
    SYNCRON_ASSERT(e != nullptr,
                   "lock grant for @" << m.addr << " with no ST entry");
    e->holdsGrant = true;
    e->requestedGlobal = false;
    if (e->localWaitBits != 0) {
        localGrantNext(s, *e, done);
    } else {
        // All local waiters vanished (possible only through exotic
        // interleavings); return the lock immediately.
        e->holdsGrant = false;
        SyncMessage rel;
        rel.addr = m.addr;
        rel.opcode = Op::LockReleaseGlobal;
        rel.coreId = s.unit;
        sendToStation(s.unit, masterOf(m.addr), rel, done);
        maybeFree(s, *e, machine_.eq(s.unit).now());
    }
}

void
SynCronBackend::internalLockAcquire(Station &s, unsigned localCore,
                                    Addr lock, Tick done)
{
    SyncMessage m;
    m.addr = lock;
    m.opcode = Op::LockAcquireLocal;
    m.coreId = localCore;
    if (misarActive() && misarVars_.count(lock) != 0) {
        misarDivertLocal(s, m, done);
        return;
    }
    onLockAcquireLocal(s, m, done);
}

void
SynCronBackend::internalLockRelease(Station &s, unsigned localCore,
                                    Addr lock, Tick done)
{
    SyncMessage m;
    m.addr = lock;
    m.opcode = Op::LockReleaseLocal;
    m.coreId = localCore;
    if (misarActive() && misarVars_.count(lock) != 0) {
        misarDivertLocal(s, m, done);
        return;
    }
    onLockReleaseLocal(s, m, done);
}

// --------------------------------------------------------------------
// Barrier protocol (Section 4.1)
// --------------------------------------------------------------------

void
SynCronBackend::departLocalWaiters(Station &s, StEntry &e, Tick done)
{
    std::uint64_t bits = e.localWaitBits;
    e.localWaitBits = 0;
    while (bits != 0) {
        const unsigned c = lowestSetBit(bits);
        bits = withoutBit(bits, c);
        grantCore(s.unit, globalCoreId(s.unit, c), e.addr, done);
    }
}

void
SynCronBackend::masterBarrierCheck(Station &s, StEntry &e,
                                   std::uint64_t total, Tick done)
{
    const SystemConfig &cfg = machine_.config();
    const bool hier =
        total == cfg.totalClientCores() && cfg.numUnits > 1;

    bool complete;
    if (hier) {
        complete = e.barrierArrived == cfg.clientCoresPerUnit
                   && e.barrierUnitsArrived == cfg.numUnits - 1;
    } else {
        complete = e.barrierArrived == total;
    }
    if (!complete)
        return;

    std::uint64_t units = e.globalWaitBits;
    e.globalWaitBits = 0;
    e.barrierArrived = 0;
    e.barrierUnitsArrived = 0;
    while (units != 0) {
        const unsigned j = lowestSetBit(units);
        units = withoutBit(units, j);
        SyncMessage depart;
        depart.addr = e.addr;
        depart.opcode = Op::BarrierDepartGlobal;
        depart.coreId = s.unit;
        sendToStation(s.unit, j, depart, done);
    }
    departLocalWaiters(s, e, done);
    maybeFree(s, e, machine_.eq(s.unit).now());
}

void
SynCronBackend::onBarrierWaitLocal(Station &s, const SyncMessage &m,
                                   bool withinUnit, Tick done)
{
    const Route route = routeFor(s, m.addr, true, false);
    if (route == Route::Redirect) {
        redirectOverflow(s, m, done);
        return;
    }
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memBarrierOp(s, v, m, s.unit, static_cast<int>(m.coreId), false,
                     done);
        return;
    }

    StEntry &e = *entryOf(s, m.addr);
    const SystemConfig &cfg = machine_.config();
    e.localWaitBits = withBit(e.localWaitBits, m.coreId);
    ++e.barrierArrived;

    if (withinUnit) {
        // Coordinated entirely by the local SE.
        if (e.barrierArrived == m.barrierTotal()) {
            e.barrierArrived = 0;
            departLocalWaiters(s, e, done);
            maybeFree(s, e, machine_.eq(s.unit).now());
        }
        return;
    }

    if (isMaster(s, m.addr)) {
        masterBarrierCheck(s, e, m.barrierTotal(), done);
        return;
    }

    const bool hier =
        m.barrierTotal() == cfg.totalClientCores() && cfg.numUnits > 1;
    if (hier) {
        // Two-level: one aggregated message once every local core of
        // this unit has arrived (Section 3.2).
        if (e.barrierArrived == cfg.clientCoresPerUnit
            && !e.barrierGlobalSent) {
            e.barrierGlobalSent = true;
            SyncMessage wait;
            wait.addr = m.addr;
            wait.opcode = Op::BarrierWaitGlobal;
            wait.coreId = s.unit;
            wait.info = m.info;
            sendToStation(s.unit, masterOf(m.addr), wait, done);
        }
    } else {
        // Partial participation: one-level communication — re-direct
        // every local arrival to the Master SE (Section 4.1).
        SyncMessage wait;
        wait.addr = m.addr;
        wait.opcode = Op::BarrierWaitGlobal;
        wait.coreId = s.unit;
        wait.info = m.info;
        sendToStation(s.unit, masterOf(m.addr), wait, done);
    }
}

void
SynCronBackend::onBarrierWaitGlobal(Station &s, const SyncMessage &m,
                                    Tick done)
{
    const Route route = routeFor(s, m.addr, true, true);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memBarrierOp(s, v, m, m.coreId, -1, true, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    const SystemConfig &cfg = machine_.config();
    const bool hier =
        m.barrierTotal() == cfg.totalClientCores() && cfg.numUnits > 1;

    e.globalWaitBits = withBit(e.globalWaitBits, m.coreId);
    if (hier)
        ++e.barrierUnitsArrived;
    else
        ++e.barrierArrived;
    masterBarrierCheck(s, e, m.barrierTotal(), done);
}

void
SynCronBackend::onBarrierDepartGlobal(Station &s, const SyncMessage &m,
                                      Tick done)
{
    StEntry *e = s.table.find(m.addr);
    SYNCRON_ASSERT(e != nullptr, "barrier departure with no ST entry");
    e->barrierArrived = 0;
    e->barrierGlobalSent = false;
    departLocalWaiters(s, *e, done);
    maybeFree(s, *e, machine_.eq(s.unit).now());
}

// --------------------------------------------------------------------
// Semaphore protocol
// --------------------------------------------------------------------

namespace {
void
initSem(StEntry &e, std::uint64_t info)
{
    if (!e.semInit) {
        e.semInit = true;
        e.semAvail = static_cast<std::int64_t>(info);
    }
}
} // namespace

void
SynCronBackend::masterSemPost(Station &s, StEntry &e, Tick done)
{
    if (e.localWaitBits != 0) {
        const unsigned c = lowestSetBit(e.localWaitBits);
        e.localWaitBits = withoutBit(e.localWaitBits, c);
        grantCore(s.unit, globalCoreId(s.unit, c), e.addr, done);
    } else if (e.globalWaitBits != 0) {
        const unsigned j = lowestSetBit(e.globalWaitBits);
        e.globalWaitBits = withoutBit(e.globalWaitBits, j);
        SyncMessage grant;
        grant.addr = e.addr;
        grant.opcode = Op::SemGrantGlobal;
        grant.coreId = s.unit;
        sendToStation(s.unit, j, grant, done);
    } else {
        ++e.semAvail;
    }
}

void
SynCronBackend::onSemWaitLocal(Station &s, const SyncMessage &m, Tick done)
{
    const Route route = routeFor(s, m.addr, true, false);
    if (route == Route::Redirect) {
        redirectOverflow(s, m, done);
        return;
    }
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memSemOp(s, v, m, true, s.unit, static_cast<int>(m.coreId), false,
                 done);
        return;
    }

    StEntry &e = *entryOf(s, m.addr);
    if (isMaster(s, m.addr)) {
        initSem(e, m.semResources());
        if (e.semAvail > 0) {
            --e.semAvail;
            grantCore(s.unit, globalCoreId(s.unit, m.coreId), m.addr,
                      done);
        } else {
            e.localWaitBits = withBit(e.localWaitBits, m.coreId);
        }
        return;
    }

    e.localWaitBits = withBit(e.localWaitBits, m.coreId);
    if (!e.semArmed) {
        e.semArmed = true;
        SyncMessage wait;
        wait.addr = m.addr;
        wait.opcode = Op::SemWaitGlobal;
        wait.coreId = s.unit;
        wait.info = m.info;
        sendToStation(s.unit, masterOf(m.addr), wait, done);
    }
}

void
SynCronBackend::onSemPostLocal(Station &s, const SyncMessage &m, Tick done)
{
    if (!isMaster(s, m.addr)) {
        // Hierarchical combining: a local post can satisfy a local
        // waiter directly — the resource never needs to travel to the
        // Master SE and back.
        if (StEntry *e = s.table.find(m.addr);
            e != nullptr && e->localWaitBits != 0) {
            const unsigned c = lowestSetBit(e->localWaitBits);
            e->localWaitBits = withoutBit(e->localWaitBits, c);
            grantCore(s.unit, globalCoreId(s.unit, c), m.addr, done);
            return;
        }
        // Otherwise forward (or redirect) to the master without
        // reserving an ST entry.
        if (s.counters.servicedViaMemory(m.addr)
            || s.hasRedirected(m.addr)) {
            redirectOverflow(s, m, done);
            return;
        }
        SyncMessage post;
        post.addr = m.addr;
        post.opcode = Op::SemPostGlobal;
        post.coreId = s.unit;
        sendToStation(s.unit, masterOf(m.addr), post, done);
        return;
    }

    const Route route = routeFor(s, m.addr, false, false);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memSemOp(s, v, m, false, s.unit, static_cast<int>(m.coreId), false,
                 done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    initSem(e, 0);
    masterSemPost(s, e, done);
}

void
SynCronBackend::onSemWaitGlobal(Station &s, const SyncMessage &m,
                                Tick done)
{
    const Route route = routeFor(s, m.addr, true, true);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memSemOp(s, v, m, true, m.coreId, -1, true, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    initSem(e, m.semResources());
    if (e.semAvail > 0) {
        // Batched grant: hand the requesting SE up to a unit's worth of
        // resources in one message (MessageInfo carries the count); the
        // SE returns any excess. This amortizes the serial SE<->master
        // round trips of the bit-queue.
        const std::int64_t batch = std::min<std::int64_t>(
            e.semAvail, machine_.config().clientCoresPerUnit);
        e.semAvail -= batch;
        SyncMessage grant;
        grant.addr = m.addr;
        grant.opcode = Op::SemGrantGlobal;
        grant.coreId = s.unit;
        grant.info = static_cast<std::uint64_t>(batch);
        sendToStation(s.unit, m.coreId, grant, done);
    } else {
        e.globalWaitBits = withBit(e.globalWaitBits, m.coreId);
    }
}

void
SynCronBackend::onSemPostGlobal(Station &s, const SyncMessage &m,
                                Tick done)
{
    const Route route = routeFor(s, m.addr, false, true);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memSemOp(s, v, m, false, m.coreId, -1, true, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    initSem(e, 0);
    // Global posts may carry a batch count (returned grant excess).
    const std::uint64_t count = m.info > 0 ? m.info : 1;
    for (std::uint64_t i = 0; i < count; ++i)
        masterSemPost(s, e, done);
}

void
SynCronBackend::onSemGrantGlobal(Station &s, const SyncMessage &m,
                                 Tick done)
{
    StEntry *e = s.table.find(m.addr);
    SYNCRON_ASSERT(e != nullptr, "sem grant with no ST entry");
    std::uint64_t granted = m.info > 0 ? m.info : 1;

    // Wake as many local waiters as the batch allows.
    while (granted > 0 && e->localWaitBits != 0) {
        const unsigned c = lowestSetBit(e->localWaitBits);
        e->localWaitBits = withoutBit(e->localWaitBits, c);
        grantCore(s.unit, globalCoreId(s.unit, c), m.addr, done);
        --granted;
    }

    if (granted > 0) {
        // Excess resources (waiters were satisfied by locally-combined
        // posts, or the batch was generous): return them to the master.
        SyncMessage post;
        post.addr = m.addr;
        post.opcode = Op::SemPostGlobal;
        post.coreId = s.unit;
        post.info = granted;
        sendToStation(s.unit, masterOf(m.addr), post, done);
    }
    if (e->localWaitBits != 0) {
        // Bit-queue semantics: re-arm the request for remaining waiters.
        SyncMessage wait;
        wait.addr = m.addr;
        wait.opcode = Op::SemWaitGlobal;
        wait.coreId = s.unit;
        sendToStation(s.unit, masterOf(m.addr), wait, done);
    } else {
        e->semArmed = false;
        maybeFree(s, *e, machine_.eq(s.unit).now());
    }
}

// --------------------------------------------------------------------
// Condition-variable protocol
// --------------------------------------------------------------------

void
SynCronBackend::masterCondSignal(Station &s, StEntry &e, bool broadcast,
                                 Tick done)
{
    const Addr lockAddr = static_cast<Addr>(e.tableInfo);
    do {
        if (e.localWaitBits != 0) {
            const unsigned c = lowestSetBit(e.localWaitBits);
            e.localWaitBits = withoutBit(e.localWaitBits, c);
            // The woken core re-acquires the associated lock before its
            // cond_wait returns; the SE issues the acquire on its behalf.
            internalLockAcquire(s, c, lockAddr, done);
        } else if (e.globalWaitBits != 0) {
            const unsigned j = lowestSetBit(e.globalWaitBits);
            e.globalWaitBits = withoutBit(e.globalWaitBits, j);
            SyncMessage grant;
            grant.addr = e.addr;
            grant.opcode =
                broadcast ? Op::CondBroadGlobal : Op::CondGrantGlobal;
            grant.coreId = s.unit;
            grant.info = lockAddr;
            sendToStation(s.unit, j, grant, done);
        } else {
            // No waiter is recorded yet. A waiter may logically precede
            // this signal but its arming message may still be in flight;
            // remember the signal so the next wait consumes it (spurious
            // wakeup instead of lost wakeup).
            ++e.condPending;
            break;
        }
    } while (broadcast
             && (e.localWaitBits != 0 || e.globalWaitBits != 0));
    maybeFree(s, e, machine_.eq(s.unit).now());
}

void
SynCronBackend::onCondWaitLocal(Station &s, const SyncMessage &m,
                                Tick done)
{
    const Route route = routeFor(s, m.addr, true, false);
    if (route == Route::Redirect) {
        redirectOverflow(s, m, done);
        // Still release the lock locally on the core's behalf.
        internalLockRelease(s, m.coreId, m.condLockAddr(), done);
        return;
    }
    if (route == Route::Memory) {
        // Condition variables always use the integrated memory path,
        // even under the MiSAR ablation: their lock coupling cannot
        // straddle the hardware/software boundary.
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memCondOp(s, v, m, OpKind::CondWait, s.unit,
                  static_cast<int>(m.coreId), false, done);
        internalLockRelease(s, m.coreId, m.condLockAddr(), done);
        return;
    }

    StEntry &e = *entryOf(s, m.addr);
    SYNCRON_ASSERT(e.tableInfo == 0 || e.tableInfo == m.condLockAddr(),
                   "condition variable used with two different locks");
    e.tableInfo = m.info;
    e.localWaitBits = withBit(e.localWaitBits, m.coreId);

    if (!isMaster(s, m.addr) && !e.condArmed) {
        e.condArmed = true;
        SyncMessage wait;
        wait.addr = m.addr;
        wait.opcode = Op::CondWaitGlobal;
        wait.coreId = s.unit;
        wait.info = m.info;
        sendToStation(s.unit, masterOf(m.addr), wait, done);
    }
    // Queue first, then release the associated lock — no missed wakeups.
    internalLockRelease(s, m.coreId, m.condLockAddr(), done);

    // Consume a signal that raced ahead of this wait (master role only;
    // must happen after the lock release above so the woken core can
    // re-acquire it).
    if (isMaster(s, m.addr) && e.condPending > 0) {
        --e.condPending;
        masterCondSignal(s, e, false, done);
    }
}

void
SynCronBackend::onCondSignalLocal(Station &s, const SyncMessage &m,
                                  bool broadcast, Tick done)
{
    if (!isMaster(s, m.addr)) {
        // Hierarchical combining (signal only): waking a local waiter
        // satisfies "wake one" without a round trip to the master.
        if (!broadcast) {
            if (StEntry *e = s.table.find(m.addr);
                e != nullptr && e->localWaitBits != 0) {
                const unsigned c = lowestSetBit(e->localWaitBits);
                e->localWaitBits = withoutBit(e->localWaitBits, c);
                internalLockAcquire(s, c,
                                    static_cast<Addr>(e->tableInfo),
                                    done);
                return;
            }
        }
        if (s.counters.servicedViaMemory(m.addr)
            || s.hasRedirected(m.addr)) {
            redirectOverflow(s, m, done);
            return;
        }
        SyncMessage sig;
        sig.addr = m.addr;
        sig.opcode =
            broadcast ? Op::CondBroadGlobal : Op::CondSignalGlobal;
        sig.coreId = s.unit;
        sendToStation(s.unit, masterOf(m.addr), sig, done);
        return;
    }

    const Route route = routeFor(s, m.addr, false, false);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memCondOp(s, v, m,
                  broadcast ? OpKind::CondBroadcast : OpKind::CondSignal,
                  s.unit, static_cast<int>(m.coreId), false, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    masterCondSignal(s, e, broadcast, done);
}

void
SynCronBackend::onCondWaitGlobal(Station &s, const SyncMessage &m,
                                 Tick done)
{
    const Route route = routeFor(s, m.addr, true, true);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memCondOp(s, v, m, OpKind::CondWait, m.coreId, -1, true, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    e.tableInfo = m.info;
    e.globalWaitBits = withBit(e.globalWaitBits, m.coreId);
    if (e.condPending > 0) {
        --e.condPending;
        masterCondSignal(s, e, false, done);
    }
}

void
SynCronBackend::onCondSignalGlobal(Station &s, const SyncMessage &m,
                                   bool broadcast, Tick done)
{
    const Route route = routeFor(s, m.addr, false, true);
    if (route == Route::Memory) {
        MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                        .first->second;
        memCondOp(s, v, m,
                  broadcast ? OpKind::CondBroadcast : OpKind::CondSignal,
                  m.coreId, -1, true, done);
        return;
    }
    StEntry &e = *entryOf(s, m.addr);
    masterCondSignal(s, e, broadcast, done);
}

void
SynCronBackend::onCondGrantGlobal(Station &s, const SyncMessage &m, bool,
                                  Tick done)
{
    StEntry *e = s.table.find(m.addr);
    SYNCRON_ASSERT(e != nullptr, "cond grant with no ST entry");
    const bool broadcast = m.opcode == Op::CondBroadGlobal;
    const Addr lockAddr = m.condLockAddr();

    if (e->localWaitBits == 0) {
        // All local waiters were woken by locally-combined signals in
        // the meantime. A single grant must not be lost — bounce it
        // back to the master; a broadcast wakes "everyone present",
        // which is now nobody.
        e->condArmed = false;
        if (!broadcast) {
            SyncMessage sig;
            sig.addr = m.addr;
            sig.opcode = Op::CondSignalGlobal;
            sig.coreId = s.unit;
            sendToStation(s.unit, masterOf(m.addr), sig, done);
        }
        maybeFree(s, *e, machine_.eq(s.unit).now());
        return;
    }
    do {
        const unsigned c = lowestSetBit(e->localWaitBits);
        e->localWaitBits = withoutBit(e->localWaitBits, c);
        internalLockAcquire(s, c, lockAddr, done);
    } while (broadcast && e->localWaitBits != 0);

    if (e->localWaitBits != 0) {
        // Waiters remain after a single grant: re-arm at the master.
        SyncMessage wait;
        wait.addr = m.addr;
        wait.opcode = Op::CondWaitGlobal;
        wait.coreId = s.unit;
        wait.info = lockAddr;
        sendToStation(s.unit, masterOf(m.addr), wait, done);
    } else {
        e->condArmed = false;
        maybeFree(s, *e, machine_.eq(s.unit).now());
    }
}

SYNCRON_REGISTER_BACKEND_SHARDABLE("SynCron", [](Machine &m) {
    return std::make_unique<SynCronBackend>(m);
});

} // namespace syncron::engine
