/**
 * @file
 * SynCron overflow management (paper Section 4.3) and the MiSAR-style
 * overflow ablation (Section 6.7.3, Fig. 23).
 *
 * Integrated scheme: when an ST cannot hold a variable, the Master SE
 * keeps its state in a syncronVar record in its local memory. Overflowed
 * local SEs redirect requests with dedicated overflow opcodes; both sides
 * track the variable with their indexing counters, and the Master SE
 * sends decrease_indexing_counter messages when the episode ends.
 *
 * MiSAR-style ablation: on overflow the SEs abort the NDP cores to an
 * alternative software synchronization solution (one global server core,
 * or one per unit), and the cores notify the SEs to switch back when
 * done — reproducing the abort/notify traffic the paper charges against
 * that design.
 */

#include <algorithm>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/units.hh"
#include "durability/persist.hh"
#include "syncron/engine.hh"

namespace syncron::engine {

using sync::Op;
using sync::OpKind;
using sync::SyncMessage;
using sync::SyncRequest;

namespace {

/** Local opcode -> overflow opcode (Table 3). */
Op
overflowOpcodeFor(Op local)
{
    switch (local) {
      case Op::LockAcquireLocal: return Op::LockAcquireOverflow;
      case Op::LockReleaseLocal: return Op::LockReleaseOverflow;
      case Op::BarrierWaitLocalWithinUnit:
      case Op::BarrierWaitLocalAcrossUnits:
        return Op::BarrierWaitOverflow;
      case Op::SemWaitLocal: return Op::SemWaitOverflow;
      case Op::SemPostLocal: return Op::SemPostOverflow;
      case Op::CondWaitLocal: return Op::CondWaitOverflow;
      case Op::CondSignalLocal: return Op::CondSignalOverflow;
      case Op::CondBroadLocal: return Op::CondBroadOverflow;
      default:
        SYNCRON_PANIC("no overflow form for " << opName(local));
    }
}

/** Local opcode -> API operation (for the MiSAR software fallback). */
OpKind
opKindOfLocal(Op local)
{
    switch (local) {
      case Op::LockAcquireLocal: return OpKind::LockAcquire;
      case Op::LockReleaseLocal: return OpKind::LockRelease;
      case Op::BarrierWaitLocalWithinUnit:
        return OpKind::BarrierWaitWithinUnit;
      case Op::BarrierWaitLocalAcrossUnits:
        return OpKind::BarrierWaitAcrossUnits;
      case Op::SemWaitLocal: return OpKind::SemWait;
      case Op::SemPostLocal: return OpKind::SemPost;
      case Op::CondWaitLocal: return OpKind::CondWait;
      case Op::CondSignalLocal: return OpKind::CondSignal;
      case Op::CondBroadLocal: return OpKind::CondBroadcast;
      default:
        SYNCRON_PANIC("not a local opcode: " << opName(local));
    }
}

std::uint32_t
packSeCore(UnitId se, unsigned localCore)
{
    return se * 256 + localCore;
}

} // namespace

bool
SynCronBackend::MemVar::idle() const
{
    if (st.ownerKind != LockOwner::None || st.globalWaitBits != 0
        || st.barrierArrived != 0 || st.semInit)
        return false;
    for (std::uint16_t bits : coreBits) {
        if (bits != 0)
            return false;
    }
    return true;
}

Tick
SynCronBackend::memVarAccess(Station &s, Addr var, Tick start)
{
    // The SPU of the Master SE reads and writes the syncronVar record in
    // its local memory arrays (Section 4.3.2).
    Tick t = machine_.memoryAccess(start, s.unit, var, false,
                                   sync::kSyncronVarBytes);
    t = machine_.memoryAccess(t, s.unit, var, true,
                              sync::kSyncronVarBytes);
    machine_.statsFor(s.unit).syncMemAccesses += 2;
    if (persistHook_ != nullptr)
        persistHook_->persistMemVar(s.unit, var);
    return t;
}

// --------------------------------------------------------------------
// Overflowed local SE: redirect to the Master SE
// --------------------------------------------------------------------

void
SynCronBackend::misarDivertLocal(Station &s, const SyncMessage &m,
                                 Tick done)
{
    const Addr var = m.addr;
    const OpKind kind = opKindOfLocal(m.opcode);
    const CoreId core = globalCoreId(s.unit, m.coreId % 256);
    // Re-type the in-flight hardware message for the software fallback.
    const SyncRequest req = SyncRequest::fromMessageInfo(kind, var, m.info);
    sim::Gate *gate = nullptr;
    if (sync::isAcquireType(kind))
        gate = takePendingGate(core, gateKeyFor(req));
    SoftServer &server = softServerFor(var);
    const Tick arrival = machine_.routeMessage(done, s.unit, server.unit,
                                               sync::kSyncReqBits);
    ++machine_.stats().syncOverflowMsgs;
    ++misarPending_[var];
    machine_.eq().schedule(arrival, [this, &server, req, core, gate] {
        misarProcess(server, req, core, gate);
    });
}

bool
SynCronBackend::misarCanEnter(Addr var) const
{
    // A variable may enter software mode only when it has no hardware
    // state anywhere: no ST entry at any station, no in-memory record at
    // the master, and no redirected operations in flight. (The real
    // MiSAR protocol quiesces participants with aborts; the model
    // requires quiescence up front instead.)
    if (stations_[masterOf(var)]->memVars.count(var) != 0)
        return false;
    for (const auto &station : stations_) {
        if (station->table.entries().count(var) != 0
            || station->hasRedirected(var))
            return false;
    }
    return true;
}

void
SynCronBackend::redirectOverflow(Station &s, const SyncMessage &m,
                                 Tick done)
{
    const bool condOp = m.opcode == Op::CondWaitLocal
                        || m.opcode == Op::CondSignalLocal
                        || m.opcode == Op::CondBroadLocal;
    if (misarActive() && !condOp
        && (misarVars_.count(m.addr) != 0 || misarCanEnter(m.addr))) {
        // MiSAR-style ablation: divert to the software fallback instead
        // of the integrated memory path.
        if (misarVars_.count(m.addr) == 0)
            misarEnter(m.addr, done);
        misarDivertLocal(s, m, done);
        return;
    }

    SyncMessage fwd;
    fwd.addr = m.addr;
    fwd.opcode = overflowOpcodeFor(m.opcode);
    fwd.coreId = packSeCore(s.unit, m.coreId);
    fwd.info = m.info;
    // Track outstanding redirected acquires exactly (see Station).
    if (sync::isAcquireOp(fwd.opcode))
        s.redirectedInc(m.addr);
    else if (fwd.opcode == Op::LockReleaseOverflow)
        s.redirectedDec(m.addr);
    sendToStation(s.unit, masterOf(m.addr), fwd, done);
}

// --------------------------------------------------------------------
// Master SE: memory-backed servicing
// --------------------------------------------------------------------

void
SynCronBackend::handleOverflowAtMaster(Station &s, const SyncMessage &m,
                                       Tick done)
{
    SYNCRON_ASSERT(isMaster(s, m.addr),
                   "overflow message at non-master SE");

    // If the Master SE still holds an ST entry for this variable, its
    // state migrates to the in-memory record: core-granular tracking for
    // the overflowed unit cannot be expressed in the ST.
    MemVar &v = s.memVars.try_emplace(m.addr, machine_.config().numUnits)
                    .first->second;
    if (StEntry *e = s.table.find(m.addr)) {
        v.st.ownerKind = e->ownerKind;
        v.st.ownerId = e->ownerKind == LockOwner::LocalCore
                           ? packSeCore(s.unit, e->ownerId)
                           : e->ownerId;
        v.st.globalWaitBits = e->globalWaitBits;
        v.coreBits[s.unit] |= static_cast<std::uint16_t>(e->localWaitBits);
        v.st.barrierArrived = e->barrierArrived;
        // Unit-aggregates already arrived keep their headcount.
        v.st.barrierArrived +=
            e->barrierUnitsArrived * machine_.config().clientCoresPerUnit;
        v.st.semInit = e->semInit;
        v.st.semAvail = e->semAvail;
        v.st.tableInfo = e->tableInfo;
        *e = StEntry{};
        e->addr = m.addr;
        e->occupied = true;
        s.table.release(m.addr, machine_.eq(s.unit).now());
    }

    const UnitId fromSe = m.coreId / 256;
    const int fromCore = static_cast<int>(m.coreId % 256);
    v.overflowInfo |= static_cast<std::uint16_t>(1u << fromSe);

    switch (m.opcode) {
      case Op::LockAcquireOverflow:
        memLockOp(s, v, m, true, fromSe, fromCore, false, done);
        break;
      case Op::LockReleaseOverflow:
        memLockOp(s, v, m, false, fromSe, fromCore, false, done);
        break;
      case Op::BarrierWaitOverflow:
        memBarrierOp(s, v, m, fromSe, fromCore, false, done);
        break;
      case Op::SemWaitOverflow:
        memSemOp(s, v, m, true, fromSe, fromCore, false, done);
        break;
      case Op::SemPostOverflow:
        memSemOp(s, v, m, false, fromSe, fromCore, false, done);
        break;
      case Op::CondWaitOverflow:
        memCondOp(s, v, m, OpKind::CondWait, fromSe, fromCore, false,
                  done);
        break;
      case Op::CondSignalOverflow:
        memCondOp(s, v, m, OpKind::CondSignal, fromSe, fromCore, false,
                  done);
        break;
      case Op::CondBroadOverflow:
        memCondOp(s, v, m, OpKind::CondBroadcast, fromSe, fromCore, false,
                  done);
        break;
      default:
        SYNCRON_PANIC("unexpected overflow opcode "
                      << opName(m.opcode));
    }
}

void
SynCronBackend::memGrantTo(Station &s, MemVar &v, Op grantOp, UnitId unit,
                           int coreBit, bool unitLevel, Tick done)
{
    if (unitLevel) {
        SyncMessage grant;
        grant.addr = v.st.addr;
        grant.opcode = grantOp == Op::LockGrantOverflow ? Op::LockGrantGlobal
                       : grantOp == Op::SemGrantOverflow ? Op::SemGrantGlobal
                       : grantOp == Op::CondGrantOverflow
                           ? Op::CondGrantGlobal
                           : Op::BarrierDepartGlobal;
        grant.coreId = s.unit;
        grant.info = v.st.tableInfo;
        sendToStation(s.unit, unit, grant, done);
        return;
    }
    if (unit == s.unit && grantOp != Op::CondGrantOverflow) {
        grantCore(s.unit, globalCoreId(unit, coreBit), v.st.addr, done);
        return;
    }
    if (unit == s.unit) {
        // Master's own local core woken from a condition variable:
        // re-acquire the associated lock on its behalf.
        internalLockAcquire(s, coreBit,
                            static_cast<Addr>(v.st.tableInfo), done);
        return;
    }
    SyncMessage grant;
    grant.addr = v.st.addr;
    grant.opcode = grantOp;
    grant.coreId = packSeCore(unit, coreBit);
    grant.info = v.st.tableInfo;
    sendToStation(s.unit, unit, grant, done);
}

void
SynCronBackend::memNextLockGrant(Station &s, MemVar &v, Tick done)
{
    // Master-local cores first (Section 3.2's local priority), then the
    // other units' core-granular waiters, then unit-granular waiters.
    if (v.coreBits[s.unit] != 0) {
        const unsigned c = lowestSetBit(v.coreBits[s.unit]);
        v.coreBits[s.unit] =
            static_cast<std::uint16_t>(withoutBit(v.coreBits[s.unit], c));
        v.st.ownerKind = LockOwner::LocalCore;
        v.st.ownerId = packSeCore(s.unit, c);
        memGrantTo(s, v, Op::LockGrantOverflow, s.unit,
                   static_cast<int>(c), false, done);
        return;
    }
    for (UnitId j = 0; j < v.coreBits.size(); ++j) {
        if (v.coreBits[j] != 0) {
            const unsigned c = lowestSetBit(v.coreBits[j]);
            v.coreBits[j] =
                static_cast<std::uint16_t>(withoutBit(v.coreBits[j], c));
            v.st.ownerKind = LockOwner::LocalCore;
            v.st.ownerId = packSeCore(j, c);
            memGrantTo(s, v, Op::LockGrantOverflow, j,
                       static_cast<int>(c), false, done);
            return;
        }
    }
    if (v.st.globalWaitBits != 0) {
        const unsigned j = lowestSetBit(v.st.globalWaitBits);
        v.st.globalWaitBits = withoutBit(v.st.globalWaitBits, j);
        v.st.ownerKind = LockOwner::Unit;
        v.st.ownerId = j;
        memGrantTo(s, v, Op::LockGrantOverflow, j, -1, true, done);
        return;
    }
    v.st.ownerKind = LockOwner::None;
}

void
SynCronBackend::memLockOp(Station &s, MemVar &v, const SyncMessage &m,
                          bool acquire, UnitId fromUnit, int fromCore,
                          bool unitLevel, Tick done)
{
    v.st.addr = m.addr;
    const Tick done2 = memVarAccess(s, m.addr, done);
    s.busyUntil = std::max(s.busyUntil, done2);

    if (acquire) {
        s.counters.increment(m.addr);
        ++v.outstanding;
        if (v.st.ownerKind == LockOwner::None) {
            if (unitLevel) {
                v.st.ownerKind = LockOwner::Unit;
                v.st.ownerId = fromUnit;
                memGrantTo(s, v, Op::LockGrantOverflow, fromUnit, -1, true,
                           done2);
            } else {
                v.st.ownerKind = LockOwner::LocalCore;
                v.st.ownerId = packSeCore(fromUnit, fromCore);
                memGrantTo(s, v, Op::LockGrantOverflow, fromUnit, fromCore,
                           false, done2);
            }
        } else if (unitLevel) {
            v.st.globalWaitBits = withBit(v.st.globalWaitBits, fromUnit);
        } else {
            v.coreBits[fromUnit] = static_cast<std::uint16_t>(
                withBit(v.coreBits[fromUnit], fromCore));
        }
    } else {
        s.counters.decrement(m.addr);
        if (v.outstanding > 0)
            --v.outstanding;
        if (unitLevel) {
            SYNCRON_ASSERT(v.st.ownerKind == LockOwner::Unit
                               && v.st.ownerId == fromUnit,
                           "memory-mode release by non-owner unit");
        } else {
            SYNCRON_ASSERT(
                v.st.ownerKind == LockOwner::LocalCore
                    && v.st.ownerId
                           == packSeCore(fromUnit,
                                         static_cast<unsigned>(fromCore)),
                "memory-mode release by non-owner core");
        }
        v.st.ownerKind = LockOwner::None;
        memNextLockGrant(s, v, done2);
    }
    memMaybeCleanup(s, m.addr, v, done2);
}

void
SynCronBackend::memBarrierOp(Station &s, MemVar &v, const SyncMessage &m,
                             UnitId fromUnit, int fromCore, bool unitLevel,
                             Tick done)
{
    v.st.addr = m.addr;
    const Tick done2 = memVarAccess(s, m.addr, done);
    s.busyUntil = std::max(s.busyUntil, done2);

    const SystemConfig &cfg = machine_.config();
    const std::uint64_t total = m.info != 0 ? m.info : v.st.tableInfo;
    v.st.tableInfo = total;
    const bool hier =
        total == cfg.totalClientCores() && cfg.numUnits > 1;

    s.counters.increment(m.addr);
    ++v.outstanding;

    if (unitLevel) {
        v.st.globalWaitBits = withBit(v.st.globalWaitBits, fromUnit);
        v.st.barrierArrived += hier ? cfg.clientCoresPerUnit : 1;
    } else {
        v.coreBits[fromUnit] = static_cast<std::uint16_t>(
            withBit(v.coreBits[fromUnit], fromCore));
        ++v.st.barrierArrived;
    }

    if (v.st.barrierArrived >= total) {
        std::uint64_t units = v.st.globalWaitBits;
        v.st.globalWaitBits = 0;
        while (units != 0) {
            const unsigned j = lowestSetBit(units);
            units = withoutBit(units, j);
            memGrantTo(s, v, Op::BarrierDepartureOverflow, j, -1, true,
                       done2);
        }
        for (UnitId j = 0; j < v.coreBits.size(); ++j) {
            std::uint16_t bits = v.coreBits[j];
            v.coreBits[j] = 0;
            while (bits != 0) {
                const unsigned c = lowestSetBit(bits);
                bits = static_cast<std::uint16_t>(withoutBit(bits, c));
                if (j == s.unit) {
                    grantCore(s.unit, globalCoreId(j, c), m.addr, done2);
                } else {
                    memGrantTo(s, v, Op::BarrierDepartureOverflow, j,
                               static_cast<int>(c), false, done2);
                }
            }
        }
        v.st.barrierArrived = 0;
        // Barrier departures carry the release semantics: drain the
        // episode's acquire contributions from the indexing counter.
        while (v.outstanding > 0) {
            s.counters.decrement(m.addr);
            --v.outstanding;
        }
    }
    memMaybeCleanup(s, m.addr, v, done2);
}

void
SynCronBackend::memSemOp(Station &s, MemVar &v, const SyncMessage &m,
                         bool wait, UnitId fromUnit, int fromCore,
                         bool unitLevel, Tick done)
{
    v.st.addr = m.addr;
    const Tick done2 = memVarAccess(s, m.addr, done);
    s.busyUntil = std::max(s.busyUntil, done2);

    if (!v.st.semInit) {
        v.st.semInit = true;
        v.st.semAvail = wait ? static_cast<std::int64_t>(m.info) : 0;
    }

    if (wait) {
        s.counters.increment(m.addr);
        ++v.outstanding;
        if (v.st.semAvail > 0) {
            --v.st.semAvail;
            memGrantTo(s, v, Op::SemGrantOverflow, fromUnit, fromCore,
                       unitLevel, done2);
        } else if (unitLevel) {
            v.st.globalWaitBits = withBit(v.st.globalWaitBits, fromUnit);
        } else {
            v.coreBits[fromUnit] = static_cast<std::uint16_t>(
                withBit(v.coreBits[fromUnit], fromCore));
        }
        return;
    }

    // Post.
    s.counters.decrement(m.addr);
    if (v.outstanding > 0)
        --v.outstanding;
    if (v.coreBits[s.unit] != 0) {
        const unsigned c = lowestSetBit(v.coreBits[s.unit]);
        v.coreBits[s.unit] =
            static_cast<std::uint16_t>(withoutBit(v.coreBits[s.unit], c));
        grantCore(s.unit, globalCoreId(s.unit, c), m.addr, done2);
        return;
    }
    for (UnitId j = 0; j < v.coreBits.size(); ++j) {
        if (v.coreBits[j] != 0) {
            const unsigned c = lowestSetBit(v.coreBits[j]);
            v.coreBits[j] =
                static_cast<std::uint16_t>(withoutBit(v.coreBits[j], c));
            memGrantTo(s, v, Op::SemGrantOverflow, j, static_cast<int>(c),
                       false, done2);
            return;
        }
    }
    if (v.st.globalWaitBits != 0) {
        const unsigned j = lowestSetBit(v.st.globalWaitBits);
        v.st.globalWaitBits = withoutBit(v.st.globalWaitBits, j);
        memGrantTo(s, v, Op::SemGrantOverflow, j, -1, true, done2);
        return;
    }
    ++v.st.semAvail;
}

void
SynCronBackend::memCondOp(Station &s, MemVar &v, const SyncMessage &m,
                          OpKind kind, UnitId fromUnit, int fromCore,
                          bool unitLevel, Tick done)
{
    v.st.addr = m.addr;
    const Tick done2 = memVarAccess(s, m.addr, done);
    s.busyUntil = std::max(s.busyUntil, done2);

    if (kind == OpKind::CondWait) {
        s.counters.increment(m.addr);
        ++v.outstanding;
        v.st.tableInfo = m.info; // associated lock address
        if (unitLevel) {
            v.st.globalWaitBits = withBit(v.st.globalWaitBits, fromUnit);
        } else {
            v.coreBits[fromUnit] = static_cast<std::uint16_t>(
                withBit(v.coreBits[fromUnit], fromCore));
        }
        if (v.st.condPending > 0) {
            // A signal raced ahead of this wait: wake immediately.
            --v.st.condPending;
            SyncMessage sig;
            sig.addr = m.addr;
            sig.info = v.st.tableInfo;
            memCondOp(s, v, sig, OpKind::CondSignal, s.unit, -1, false,
                      done);
        }
        return;
    }

    // Signal / broadcast.
    const bool broadcast = kind == OpKind::CondBroadcast;
    s.counters.decrement(m.addr);
    if (v.outstanding > 0)
        --v.outstanding;

    bool first = true;
    for (;;) {
        bool woke = false;
        if (v.coreBits[s.unit] != 0) {
            const unsigned c = lowestSetBit(v.coreBits[s.unit]);
            v.coreBits[s.unit] = static_cast<std::uint16_t>(
                withoutBit(v.coreBits[s.unit], c));
            memGrantTo(s, v, Op::CondGrantOverflow, s.unit,
                       static_cast<int>(c), false, done2);
            woke = true;
        } else {
            for (UnitId j = 0; j < v.coreBits.size() && !woke; ++j) {
                if (v.coreBits[j] != 0) {
                    const unsigned c = lowestSetBit(v.coreBits[j]);
                    v.coreBits[j] = static_cast<std::uint16_t>(
                        withoutBit(v.coreBits[j], c));
                    memGrantTo(s, v, Op::CondGrantOverflow, j,
                               static_cast<int>(c), false, done2);
                    woke = true;
                }
            }
            if (!woke && v.st.globalWaitBits != 0) {
                const unsigned j = lowestSetBit(v.st.globalWaitBits);
                v.st.globalWaitBits = withoutBit(v.st.globalWaitBits, j);
                memGrantTo(s, v,
                           broadcast ? Op::CondBroadOverflow
                                     : Op::CondGrantOverflow,
                           j, -1, true, done2);
                woke = true;
            }
        }
        if (!woke)
            break;
        if (!first) {
            // Each wake beyond the one covered by the signal's own
            // release-decrement drains another acquire contribution.
            s.counters.decrement(m.addr);
            if (v.outstanding > 0)
                --v.outstanding;
        }
        first = false;
        if (!broadcast)
            break;
    }
    memMaybeCleanup(s, m.addr, v, done2);
}

void
SynCronBackend::memMaybeCleanup(Station &s, Addr var, MemVar &v, Tick done)
{
    if (!v.idle())
        return;
    // Episode over: notify every overflowed SE to decrease its indexing
    // counter (Section 4.3.2), flush the master's residual contribution,
    // and drop the in-memory record so future requests use the ST again.
    std::uint16_t info = v.overflowInfo;
    while (info != 0) {
        const unsigned j = lowestSetBit(info);
        info = static_cast<std::uint16_t>(withoutBit(info, j));
        if (j == s.unit)
            continue;
        SyncMessage dec;
        dec.addr = var;
        dec.opcode = Op::DecreaseIndexingCounter;
        dec.coreId = s.unit;
        sendToStation(s.unit, j, dec, done);
    }
    while (v.outstanding > 0) {
        s.counters.decrement(var);
        --v.outstanding;
    }
    s.memVars.erase(var);
}

void
SynCronBackend::onDecreaseIndexingCounter(Station &s, const SyncMessage &m)
{
    s.counters.decrement(m.addr);
}

void
SynCronBackend::onOverflowGrant(Station &s, const SyncMessage &m,
                                Tick done)
{
    const unsigned core = m.coreId % 256;
    SYNCRON_ASSERT(m.coreId / 256 == s.unit,
                   "overflow grant delivered to wrong SE");
    switch (m.opcode) {
      case Op::LockGrantOverflow:
        // The lock's release will decrement the counter; grants do not.
        grantCore(s.unit, globalCoreId(s.unit, core), m.addr, done);
        break;
      case Op::SemGrantOverflow:
        s.counters.decrement(m.addr);
        s.redirectedDec(m.addr);
        grantCore(s.unit, globalCoreId(s.unit, core), m.addr, done);
        break;
      case Op::BarrierDepartureOverflow:
        s.counters.decrement(m.addr);
        s.redirectedDec(m.addr);
        grantCore(s.unit, globalCoreId(s.unit, core), m.addr, done);
        break;
      case Op::CondGrantOverflow:
        s.counters.decrement(m.addr);
        s.redirectedDec(m.addr);
        // Re-acquire the associated lock before cond_wait returns.
        internalLockAcquire(s, core, m.condLockAddr(), done);
        break;
      default:
        SYNCRON_PANIC("unexpected grant opcode " << opName(m.opcode));
    }
}

// --------------------------------------------------------------------
// MiSAR-style overflow ablation
// --------------------------------------------------------------------

bool
SynCronBackend::misarActive() const
{
    return opts_.overflow != OverflowPolicy::Integrated;
}

SynCronBackend::SoftServer &
SynCronBackend::softServerFor(Addr var)
{
    // The software fallback runs every diverted op through one shared
    // server on shard 0's queue (eq()) with synchronous routeMessage
    // hops — a single-queue path. Under sharding that would be a
    // cross-shard schedule from a foreign worker thread, so fail loudly
    // instead of racing. (Both divert entry points come through here.)
    SYNCRON_ASSERT(machine_.numShards() == 1,
                   "ST overflow software fallback is a single-queue "
                   "path; run overflow configs with --sim-shards=1");
    if (opts_.overflow == OverflowPolicy::MisarCentral)
        return softServers_[0];
    return softServers_[masterOf(var)];
}

void
SynCronBackend::misarEnter(Addr var, Tick when)
{
    misarVars_.insert(var);
    // Abort broadcast: every SE notifies its local client cores to use
    // the alternative software solution, and the cores acknowledge —
    // the communication cost the paper charges against MiSAR's scheme.
    // Software servicing of the variable cannot start before the whole
    // round trip completes.
    const SystemConfig &cfg = machine_.config();
    Tick ready = when;
    for (UnitId u = 0; u < cfg.numUnits; ++u) {
        for (unsigned c = 0; c < cfg.clientCoresPerUnit; ++c) {
            Tick t = machine_.routeMessage(when, u, u,
                                           sync::kSyncRespBits);
            t = machine_.routeMessage(t, u, u, sync::kSyncReqBits);
            machine_.stats().syncOverflowMsgs += 2;
            ready = std::max(ready, t);
        }
    }
    misarReadyAt_[var] = ready;
}

void
SynCronBackend::misarRequest(core::Core &core, const SyncRequest &req,
                             sim::Gate *gate)
{
    // Cores in software mode bypass the SEs entirely. request() just
    // registered the pending gate; reclaim exactly that entry (matching
    // by identity, since a pipelining core may hold several operations
    // on the same variable in flight).
    sim::Gate *acquireGate = nullptr;
    if (req.acquireType()) {
        auto &pending = gates_[core.id()];
        auto it = pending.begin();
        while (it != pending.end() && it->gate != gate)
            ++it;
        SYNCRON_ASSERT(it != pending.end(), "gate bookkeeping mismatch");
        pending.erase(it);
        acquireGate = gate;
    }
    SoftServer &server = softServerFor(req.var());
    const Tick arrival = machine_.routeMessage(
        machine_.eq().now(), core.unit(), server.unit, sync::kSyncReqBits);
    ++machine_.stats().syncOverflowMsgs;
    ++misarPending_[req.var()];
    const CoreId coreId = core.id();
    machine_.eq().schedule(arrival, [this, &server, req, coreId,
                                     acquireGate] {
        misarProcess(server, req, coreId, acquireGate);
    });
}

void
SynCronBackend::misarProcess(SoftServer &server, const SyncRequest &req,
                             CoreId core, sim::Gate *gate)
{
    const Addr var = req.var();
    const SystemConfig &cfg = machine_.config();
    const Tick now = machine_.eq().now();
    Tick start = std::max(now, server.busyUntil);
    if (auto it = misarReadyAt_.find(var); it != misarReadyAt_.end())
        start = std::max(start, it->second);
    Tick done = start
                + static_cast<Tick>(cfg.serverSwOverheadCycles)
                      * kCoreClock.period();

    // Software RMW on the variable through the server's L1.
    const Tick hit = static_cast<Tick>(server.l1->params().hitCycles)
                     * kCoreClock.period();
    cache::CacheAccessResult res = server.l1->access(var, false);
    done += hit;
    if (!res.hit) {
        done = machine_.memoryAccess(done, server.unit, lineAlign(var),
                                     false, kCacheLineBytes);
        if (res.writeback) {
            machine_.memoryAccess(start, server.unit, res.victimAddr,
                                  true, kCacheLineBytes);
        }
    }
    server.l1->access(var, true);
    done += hit;
    server.busyUntil = done;

    machine_.eq().schedule(done, [this, &server, req, core, gate] {
        const Addr var = req.var();
        const Tick when = machine_.eq().now();
        auto grants = misarState_.apply(req, core, gate);
        for (const sync::SyncGrant &g : grants) {
            const UnitId coreUnit = g.core / machine_.config().coresPerUnit;
            const Tick arrival = machine_.routeMessage(
                when, server.unit, coreUnit, sync::kSyncRespBits);
            ++machine_.stats().syncOverflowMsgs;
            SYNCRON_ASSERT(g.gate != nullptr, "grant without gate");
            g.gate->open(0, arrival - when);
        }
        auto pending = misarPending_.find(var);
        SYNCRON_ASSERT(pending != misarPending_.end()
                           && pending->second > 0,
                       "misar pending-op underflow");
        if (--pending->second == 0)
            misarPending_.erase(pending);
        misarMaybeExit(var, when);
    });
}

void
SynCronBackend::misarMaybeExit(Addr var, Tick when)
{
    if (misarVars_.count(var) == 0 || !misarState_.idle(var)
        || misarPending_.count(var) != 0)
        return;
    misarVars_.erase(var);
    misarReadyAt_.erase(var);
    misarState_.destroy(var);
    // Switch-back notifications: the cores tell the SEs to resume
    // hardware synchronization; each SE processes one message per local
    // client core (occupying its SPU) and decreases its counter.
    const SystemConfig &cfg = machine_.config();
    for (UnitId u = 0; u < cfg.numUnits; ++u) {
        Station &st = *stations_[u];
        for (unsigned c = 0; c < cfg.clientCoresPerUnit; ++c) {
            const Tick t =
                machine_.routeMessage(when, u, u, sync::kSyncReqBits);
            ++machine_.stats().syncOverflowMsgs;
            st.busyUntil = std::max(st.busyUntil, t)
                           + baseServiceTicks(st, var);
        }
        st.counters.decrement(var);
    }
}

} // namespace syncron::engine
