/**
 * @file
 * Analytic area/power model for the Synchronization Engine — reproduces
 * the paper's Table 8, which compares one SE against an ARM Cortex-A7.
 *
 * The paper obtained the SPU numbers with Aladdin (40 nm, 1 GHz) and the
 * ST / indexing-counter numbers with CACTI; we reproduce the published
 * component values and scale the two SRAM structures linearly with their
 * capacity so the Fig. 22/23 ST-size sweeps can report hardware cost.
 */

#ifndef SYNCRON_SYNCRON_AREA_MODEL_HH
#define SYNCRON_SYNCRON_AREA_MODEL_HH

#include <cstdint>
#include <string>

namespace syncron::engine {

/** Area/power of one SE configuration. */
struct SeAreaPower
{
    double spuMm2;      ///< control unit + buffer + registers
    double stMm2;       ///< Synchronization Table SRAM
    double countersMm2; ///< indexing-counter SRAM
    double totalMm2;
    double powerMw;

    /// Reference comparison point (Table 8): ARM Cortex-A7, 28 nm,
    /// with 32 KB L1.
    static constexpr double kCortexA7Mm2 = 0.45;
    static constexpr double kCortexA7Mw = 100.0;
};

/**
 * Computes the SE area/power for a configuration.
 *
 * @param stEntries        ST entries (Table 5 default: 64)
 * @param indexingCounters counters (Table 5 default: 256)
 */
SeAreaPower seAreaPower(std::uint32_t stEntries = 64,
                        std::uint32_t indexingCounters = 256);

/** Formats the Table 8 comparison as printable text. */
std::string formatAreaPowerTable(const SeAreaPower &se);

} // namespace syncron::engine

#endif // SYNCRON_SYNCRON_AREA_MODEL_HH
