#include "syncron/sync_table.hh"

#include <algorithm>

#include "common/log.hh"
#include "durability/persist.hh"

namespace syncron::engine {

bool
StEntry::idle() const
{
    return localWaitBits == 0 && globalWaitBits == 0
           && ownerKind == LockOwner::None && !holdsGrant
           && !requestedGlobal && barrierArrived == 0
           && barrierUnitsArrived == 0 && !barrierGlobalSent && !semInit
           && !semArmed && !condArmed && condPending == 0;
}

SyncTable::SyncTable(std::uint32_t capacity, SystemStats &stats)
    : capacity_(capacity), stats_(stats)
{
    SYNCRON_ASSERT(capacity_ >= 1, "ST needs at least one entry");
}

void
SyncTable::accountOccupancy(Tick now)
{
    SYNCRON_ASSERT(now >= lastChange_, "occupancy time went backwards");
    stats_.stOccupancyIntegral +=
        static_cast<std::uint64_t>(occupied_) * (now - lastChange_);
    stats_.stOccupancyTime += now - lastChange_;
    lastChange_ = now;
}

StEntry *
SyncTable::find(Addr var)
{
    auto it = entries_.find(var);
    return it == entries_.end() ? nullptr : &it->second;
}

StEntry *
SyncTable::alloc(Addr var, Tick now)
{
    SYNCRON_ASSERT(!find(var), "double allocation for var @" << var);
    if (full())
        return nullptr;
    accountOccupancy(now);
    ++occupied_;
    stats_.stMaxOccupied =
        std::max<std::uint64_t>(stats_.stMaxOccupied, occupied_);
    ++stats_.stAllocs;
    StEntry &e = entries_[var];
    e = StEntry{};
    e.addr = var;
    e.occupied = true;
    if (persistHook_ != nullptr)
        persistHook_->persistTableEntry(unit_, var, true);
    return &e;
}

void
SyncTable::release(Addr var, Tick now)
{
    auto it = entries_.find(var);
    SYNCRON_ASSERT(it != entries_.end(), "release of absent entry @"
                                             << var);
    SYNCRON_ASSERT(it->second.idle(),
                   "releasing non-idle ST entry @" << var);
    accountOccupancy(now);
    SYNCRON_ASSERT(occupied_ > 0, "occupancy underflow");
    --occupied_;
    if (persistHook_ != nullptr)
        persistHook_->persistTableEntry(unit_, var, false);
    entries_.erase(it);
}

void
SyncTable::finalize(Tick now)
{
    accountOccupancy(now);
}

} // namespace syncron::engine
