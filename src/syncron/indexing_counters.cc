#include "syncron/indexing_counters.hh"

#include "common/bits.hh"
#include "common/log.hh"
#include "durability/persist.hh"

namespace syncron::engine {

IndexingCounters::IndexingCounters(std::uint32_t count)
    : counters_(count, 0), mask_(count - 1)
{
    SYNCRON_ASSERT(isPowerOfTwo(count),
                   "indexing counter count must be a power of two");
}

std::uint32_t
IndexingCounters::indexOf(Addr var) const
{
    // Variables are line-granular (the driver allocates one per line), so
    // the 8 LSBs referenced by the paper are taken above the line offset.
    return static_cast<std::uint32_t>((var / kCacheLineBytes) & mask_);
}

bool
IndexingCounters::servicedViaMemory(Addr var) const
{
    return counters_[indexOf(var)] > 0;
}

void
IndexingCounters::increment(Addr var)
{
    ++counters_[indexOf(var)];
    if (persistHook_ != nullptr)
        persistHook_->persistCounter(unit_, var);
}

void
IndexingCounters::decrement(Addr var)
{
    std::uint32_t &c = counters_[indexOf(var)];
    if (c > 0)
        --c;
    if (persistHook_ != nullptr)
        persistHook_->persistCounter(unit_, var);
}

std::uint32_t
IndexingCounters::value(Addr var) const
{
    return counters_[indexOf(var)];
}

} // namespace syncron::engine
