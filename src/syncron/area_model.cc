#include "syncron/area_model.hh"

#include <sstream>

namespace syncron::engine {

namespace {
// Paper Table 8 values at the evaluated configuration (40 nm):
constexpr double kSpuMm2 = 0.0141;       // Aladdin @1 GHz
constexpr double kSt64Mm2 = 0.0112;      // CACTI, 1192 B / 64 entries
constexpr double kCounters256Mm2 = 0.0208; // CACTI, 2304 B / 256 counters
constexpr double kPower64Mw = 2.7;
} // namespace

SeAreaPower
seAreaPower(std::uint32_t stEntries, std::uint32_t indexingCounters)
{
    SeAreaPower r;
    r.spuMm2 = kSpuMm2;
    r.stMm2 = kSt64Mm2 * static_cast<double>(stEntries) / 64.0;
    r.countersMm2 =
        kCounters256Mm2 * static_cast<double>(indexingCounters) / 256.0;
    r.totalMm2 = r.spuMm2 + r.stMm2 + r.countersMm2;
    // Power scales with the SRAM fraction; the SPU share is constant.
    const double sramScale =
        (r.stMm2 + r.countersMm2) / (kSt64Mm2 + kCounters256Mm2);
    r.powerMw = kPower64Mw * (0.5 + 0.5 * sramScale);
    return r;
}

std::string
formatAreaPowerTable(const SeAreaPower &se)
{
    std::ostringstream os;
    os << "Table 8: SE vs. ARM Cortex-A7 (paper values in parentheses)\n";
    os << "  SE @40nm:\n";
    os << "    SPU:               " << se.spuMm2 << " mm^2 (0.0141)\n";
    os << "    ST:                " << se.stMm2 << " mm^2 (0.0112)\n";
    os << "    Indexing counters: " << se.countersMm2
       << " mm^2 (0.0208)\n";
    os << "    Total area:        " << se.totalMm2 << " mm^2 (0.0461)\n";
    os << "    Power:             " << se.powerMw << " mW (2.7)\n";
    os << "  ARM Cortex-A7 @28nm (32KB L1): "
       << SeAreaPower::kCortexA7Mm2 << " mm^2, "
       << SeAreaPower::kCortexA7Mw << " mW\n";
    return os.str();
}

} // namespace syncron::engine
