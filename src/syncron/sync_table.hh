/**
 * @file
 * The Synchronization Table (ST) — the specialized cache structure inside
 * each Synchronization Engine that directly buffers synchronization
 * variables (paper Section 4.2.2, Fig. 7).
 *
 * Each entry holds: the variable's 64-bit address, the global waiting
 * list (one bit per SE, used in the Master role), the local waiting list
 * (one bit per NDP core of the unit), an occupied/free state bit, and a
 * 64-bit TableInfo field whose meaning depends on the primitive (lock
 * owner, barrier arrival count, semaphore resources, or the lock address
 * associated with a condition variable). The evaluated configuration has
 * 64 entries per ST (Table 5); the size is a constructor parameter so
 * Fig. 22/23 can sweep it.
 *
 * Occupancy is tracked as a time integral (sum of occupied-entries x
 * elapsed ticks) to reproduce Table 7's max/avg occupancy statistics.
 */

#ifndef SYNCRON_SYNCRON_SYNC_TABLE_HH
#define SYNCRON_SYNCRON_SYNC_TABLE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "sync/opcodes.hh"

namespace syncron::durability {
class PersistHook;
} // namespace syncron::durability

namespace syncron::engine {

/** Who currently owns a lock tracked by an entry. */
enum class LockOwner : std::uint8_t
{
    None,      ///< lock free
    LocalCore, ///< a core of this SE's unit (Local ID in TableInfo)
    Unit,      ///< another SE's unit (Global ID in TableInfo)
};

/**
 * One ST entry (Fig. 7) plus the protocol bookkeeping the SPU keeps in
 * its registers while the entry is live. Fields are grouped by the role
 * (local SE vs. Master SE) and primitive that uses them.
 */
struct StEntry
{
    Addr addr = 0;
    bool occupied = false;

    /// Local waiting list: one bit per NDP core of this unit (Fig. 7).
    std::uint64_t localWaitBits = 0;
    /// Global waiting list: one bit per SE (Master role only).
    std::uint64_t globalWaitBits = 0;
    /// Per-primitive TableInfo payload (barrier count, sem resources,
    /// cond-var lock address).
    std::uint64_t tableInfo = 0;

    // -- Lock
    LockOwner ownerKind = LockOwner::None;
    std::uint32_t ownerId = 0;   ///< local core id or SE global id
    bool holdsGrant = false;     ///< local role: unit holds the lock
    bool requestedGlobal = false;///< local role: acquire_global in flight
    std::uint32_t grantStreak = 0; ///< consecutive local grants (4.4.2)

    // -- Barrier
    std::uint32_t barrierArrived = 0;      ///< local arrivals (or total
                                           ///< at master in one-level mode)
    std::uint32_t barrierUnitsArrived = 0; ///< master: SEs fully arrived
    bool barrierGlobalSent = false;        ///< local role: aggregate sent

    // -- Semaphore
    bool semInit = false;
    std::int64_t semAvail = 0; ///< master: available resources
    bool semArmed = false;     ///< local role: sem_wait_global in flight

    // -- Condition variable
    bool condArmed = false;    ///< local role: cond_wait_global in flight
    /// Master role: signals that arrived before any waiter's arming
    /// message (a network race); consumed by the next wait — turning a
    /// would-be lost wakeup into a Mesa-legal spurious wakeup.
    std::uint32_t condPending = 0;

    /** True when the entry holds no live protocol state. */
    bool idle() const;
};

/** Fixed-capacity table of StEntry with occupancy accounting. */
class SyncTable
{
  public:
    /**
     * @param capacity number of entries (Table 5: 64)
     * @param stats    global stat sink (occupancy integral, max, allocs)
     */
    SyncTable(std::uint32_t capacity, SystemStats &stats);

    /** Returns the entry for @p var, or nullptr. */
    StEntry *find(Addr var);

    /**
     * Reserves a new entry for @p var at time @p now.
     * @return the entry, or nullptr when the table is full
     */
    StEntry *alloc(Addr var, Tick now);

    /** Releases @p var's entry at time @p now. */
    void release(Addr var, Tick now);

    bool full() const { return occupied_ >= capacity_; }
    std::uint32_t occupied() const { return occupied_; }
    std::uint32_t capacity() const { return capacity_; }

    /** Read-only view of the live entries (model introspection). */
    const std::unordered_map<Addr, StEntry> &
    entries() const
    {
        return entries_;
    }

    /** Closes the occupancy integral at simulation end. */
    void finalize(Tick now);

    /** Mirrors entry alloc/free into the durability persist path. */
    void
    setPersistHook(durability::PersistHook *hook, UnitId unit)
    {
        persistHook_ = hook;
        unit_ = unit;
    }

  private:
    void accountOccupancy(Tick now);

    std::uint32_t capacity_;
    SystemStats &stats_;
    durability::PersistHook *persistHook_ = nullptr;
    UnitId unit_ = 0;
    std::unordered_map<Addr, StEntry> entries_;
    std::uint32_t occupied_ = 0;
    Tick lastChange_ = 0;
};

} // namespace syncron::engine

#endif // SYNCRON_SYNCRON_SYNC_TABLE_HH
