/**
 * @file
 * The SynCron synchronization mechanism (paper Sections 3-4): one
 * Synchronization Engine (SE) per NDP unit, each with a Synchronization
 * Processing Unit (SPU), a Synchronization Table (ST), and indexing
 * counters, coordinating locks, barriers, semaphores, and condition
 * variables with a hierarchical message-passing protocol and a
 * hardware-only overflow scheme.
 *
 * The same protocol implementation also realizes the paper's Hier
 * baseline: with StationKind::ServerCore, each per-unit station is an NDP
 * core acting as a software server — identical message flow, but each
 * message costs software-processing cycles plus an L1/DRAM access for the
 * variable's tracking state instead of the SE's 12 SPU cycles, and there
 * is no ST capacity limit (state lives in memory through the server's
 * cache). This mirrors how the paper contrasts the two designs: the
 * hierarchy is shared; the station microarchitecture differs.
 *
 * Overflow handling (Section 4.3) is selectable for the Fig. 23 ablation:
 *   - Integrated:    SynCron's hardware-only scheme (syncronVar record in
 *     the Master SE's local memory + overflow message opcodes).
 *   - MisarCentral / MisarDistrib: MiSAR-style abort to an alternative
 *     software solution (one global server core / one server core per
 *     unit), with abort/switch-back notification traffic.
 */

#ifndef SYNCRON_SYNCRON_ENGINE_HH
#define SYNCRON_SYNCRON_ENGINE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/cache.hh"
#include "core/core.hh"
#include "sim/process.hh"
#include "sync/backend.hh"
#include "sync/flat_state.hh"
#include "sync/message.hh"
#include "syncron/indexing_counters.hh"
#include "syncron/sync_table.hh"
#include "system/machine.hh"

namespace syncron::durability {
class PersistHook;
} // namespace syncron::durability

namespace syncron::engine {

/** Microarchitecture of the per-unit synchronization station. */
enum class StationKind
{
    SyncronSe,  ///< SynCron SE: SPU @1 GHz, 12-cycle service, ST-limited
    ServerCore, ///< Hier baseline: software server on an NDP core
};

/** Overflow-handling policy (Fig. 23 ablation). */
enum class OverflowPolicy
{
    Integrated,   ///< SynCron's hardware-only scheme (Section 4.3)
    MisarCentral, ///< abort to one global software server
    MisarDistrib, ///< abort to one software server per NDP unit
};

/** Construction options. */
struct EngineOptions
{
    StationKind station = StationKind::SyncronSe;
    OverflowPolicy overflow = OverflowPolicy::Integrated;
    /// ST entries per SE; 0 = take SystemConfig::stEntries.
    std::uint32_t stEntries = 0;
    /// Reported scheme name (defaults by station kind).
    const char *name = nullptr;
};

/** The hierarchical SynCron/Hier backend. */
class SynCronBackend : public sync::SyncBackend
{
  public:
    SynCronBackend(Machine &machine, EngineOptions opts = {});
    ~SynCronBackend() override;

    void request(core::Core &requester, const sync::SyncRequest &req,
                 sim::Gate *gate) override;

    /**
     * Batch issue with SE message coalescing: every batch member's
     * first hop targets the requesting core's local SE, so eligible
     * batches (>= 2 ops, not under the MiSAR ablation) travel as one
     * core -> SE message of batchReqBits(n) bits carrying per-op
     * records; the SPU then services the members in batch order.
     * Accounted in SystemStats::batchedOps / messagesSaved.
     */
    void requestBatch(core::Core &requester,
                      std::span<const sync::SyncRequest> reqs,
                      std::span<sim::Gate *const> gates) override;

    bool idleVar(Addr var) const override;
    void releaseVar(Addr var) override;

    const char *name() const override { return name_; }

    /** Closes ST occupancy integrals (call once after the run). */
    void finalizeStats();

    /**
     * Installs the durability persist hook: station state transitions
     * (ST entry alloc/free, indexing-counter updates, syncronVar
     * writes, WAL completion records) are mirrored into the modeled PM
     * write path. nullptr (the default) models no durability. The hook
     * must outlive the backend.
     */
    void setPersistHook(durability::PersistHook *hook);

    // -- Introspection for tests and the harness ------------------------
    std::uint32_t stOccupied(UnitId unit) const;
    std::uint32_t counterValue(UnitId unit, Addr var) const;
    /** Sum of overflowed requests across stations (quiescence only). */
    std::uint64_t overflowedRequests() const;
    /** Sum of issued requests across stations (quiescence only). */
    std::uint64_t totalRequests() const;

  private:
    /**
     * Master-side in-memory synchronization state (the syncronVar record
     * of Fig. 9). coreBits[j] is Waitlist[j]: core-granular waiting bits
     * for overflowed unit j (and the master's own local cores);
     * unit-granular requests from non-overflowed SEs live in
     * st.globalWaitBits.
     */
    struct MemVar
    {
        StEntry st;
        std::vector<std::uint16_t> coreBits;
        std::uint16_t overflowInfo = 0;
        /// Net acquire-type messages serviced via memory that the Master
        /// SE's indexing counter still reflects (flushed at cleanup).
        std::uint32_t outstanding = 0;
        explicit MemVar(unsigned numUnits) : coreBits(numUnits, 0) {}
        bool idle() const;
    };

    /**
     * Per-unit synchronization station (SE or software server). All of a
     * station's state — including the in-memory overflow records for
     * variables homed in its unit and the in-flight accounting for its
     * local cores' requests — is touched only from the shard owning the
     * unit, which is what makes the backend shardable.
     */
    struct Station
    {
        UnitId unit = 0;
        SyncTable table;
        IndexingCounters counters;
        Tick busyUntil = 0;
        /// ServerCore mode: the server's private L1.
        std::unique_ptr<cache::Cache> l1;
        /// ServerCore mode: local shadow tracking addresses per variable.
        std::unordered_map<Addr, Addr> shadow;
        /// ServerCore mode: deterministic bump region for shadow records
        /// (reserved at construction; a shared allocator would make the
        /// addresses depend on cross-shard allocation order).
        Addr shadowNext = 0;
        Addr shadowEnd = 0;
        /// syncronVar records for variables homed in this unit (only the
        /// master station of a variable services its memory path).
        std::unordered_map<Addr, MemVar> memVars;
        /// Core requests issued by this unit's cores but not yet consumed
        /// by the station (keeps idleVar() honest about messages still in
        /// flight; once the station handles a message the variable has
        /// resident state).
        std::unordered_map<Addr, std::uint32_t> inFlightLocal;
        std::uint64_t totalReqs = 0;
        std::uint64_t overflowedReqs = 0;
        /// Exact per-variable count of redirected acquire-type
        /// operations still outstanding at the Master SE. The hardware
        /// relies on the (aliased) indexing counters for this; aliasing
        /// there is only a performance hazard, but the model keeps an
        /// exact count so a variable never splits between a fresh ST
        /// entry here and in-memory state at the master.
        std::unordered_map<Addr, std::uint32_t> redirected;

        Station(UnitId u, std::uint32_t entries, std::uint32_t counters,
                SystemStats &stats);

        void redirectedInc(Addr var) { ++redirected[var]; }
        void
        redirectedDec(Addr var)
        {
            auto it = redirected.find(var);
            if (it != redirected.end() && --it->second == 0)
                redirected.erase(it);
        }
        bool
        hasRedirected(Addr var) const
        {
            return redirected.count(var) != 0;
        }
    };

    /** How a message is serviced (Fig. 8 control flow). */
    enum class Route
    {
        Table,    ///< ST entry found or reserved
        Memory,   ///< master services via syncronVar in local memory
        Redirect, ///< non-master SE overflowed: forward to Master SE
    };

    /** MiSAR-ablation software fallback server. */
    struct SoftServer
    {
        UnitId unit = 0;
        Tick busyUntil = 0;
        std::unique_ptr<cache::Cache> l1;
    };

    // -- Identity helpers ----------------------------------------------
    UnitId masterOf(Addr var) const { return mem::unitOfAddr(var); }
    bool isMaster(const Station &s, Addr var) const;
    CoreId globalCoreId(UnitId unit, unsigned local) const;

    // -- Transport ------------------------------------------------------
    /** Core -> its local station (request issue). */
    void sendRequest(core::Core &core, sync::SyncMessage msg);
    /** Station -> station (global / overflow opcodes). */
    void sendToStation(UnitId from, UnitId to, sync::SyncMessage msg,
                       Tick depart);
    /** Station -> core grant: opens the core's pending gate for @p var. */
    void grantCore(UnitId seUnit, CoreId core, Addr var, Tick depart);

    // -- Pending-gate bookkeeping ----------------------------------------
    /**
     * The gate-matching key of an acquire-type request. A core may keep
     * several operations in flight, so pending gates are matched by
     * (core, key) in FIFO order. cond_wait completes through the
     * re-acquisition of its associated lock (the grant the core finally
     * observes names the lock, not the condition variable), so its key
     * is the associated lock's address.
     */
    static Addr gateKeyFor(const sync::SyncRequest &req);
    void addPendingGate(CoreId core, Addr key, sim::Gate *gate);
    /** Removes and returns the oldest pending gate for (core, key). */
    sim::Gate *takePendingGate(CoreId core, Addr key);

    // -- SPU scheduling --------------------------------------------------
    void receive(UnitId unit, sync::SyncMessage msg);
    void handle(Station &s, sync::SyncMessage msg);
    /** Station service latency excluding overflow memory accesses. */
    Tick baseServiceTicks(Station &s, Addr var);

    // -- Fig. 8 routing ---------------------------------------------------
    Route routeFor(Station &s, Addr var, bool acquireType, bool global);

    // -- Lock -------------------------------------------------------------
    void onLockAcquireLocal(Station &s, const sync::SyncMessage &m,
                            Tick done);
    void onLockReleaseLocal(Station &s, const sync::SyncMessage &m,
                            Tick done);
    void onLockAcquireGlobal(Station &s, const sync::SyncMessage &m,
                             Tick done);
    void onLockReleaseGlobal(Station &s, const sync::SyncMessage &m,
                             Tick done);
    void onLockGrantGlobal(Station &s, const sync::SyncMessage &m,
                           Tick done);
    void masterNextGrant(Station &s, StEntry &e, Tick done);
    void localGrantNext(Station &s, StEntry &e, Tick done);
    /** Lock acquire/release on behalf of @p localCore (cond-var path). */
    void internalLockAcquire(Station &s, unsigned localCore, Addr lock,
                             Tick done);
    void internalLockRelease(Station &s, unsigned localCore, Addr lock,
                             Tick done);

    // -- Barrier ------------------------------------------------------------
    void onBarrierWaitLocal(Station &s, const sync::SyncMessage &m,
                            bool withinUnit, Tick done);
    void onBarrierWaitGlobal(Station &s, const sync::SyncMessage &m,
                             Tick done);
    void onBarrierDepartGlobal(Station &s, const sync::SyncMessage &m,
                               Tick done);
    void masterBarrierCheck(Station &s, StEntry &e, std::uint64_t total,
                            Tick done);
    void departLocalWaiters(Station &s, StEntry &e, Tick done);

    // -- Semaphore ------------------------------------------------------------
    void onSemWaitLocal(Station &s, const sync::SyncMessage &m, Tick done);
    void onSemPostLocal(Station &s, const sync::SyncMessage &m, Tick done);
    void onSemWaitGlobal(Station &s, const sync::SyncMessage &m,
                         Tick done);
    void onSemPostGlobal(Station &s, const sync::SyncMessage &m,
                         Tick done);
    void onSemGrantGlobal(Station &s, const sync::SyncMessage &m,
                          Tick done);
    void masterSemPost(Station &s, StEntry &e, Tick done);

    // -- Condition variable ----------------------------------------------------
    void onCondWaitLocal(Station &s, const sync::SyncMessage &m,
                         Tick done);
    void onCondSignalLocal(Station &s, const sync::SyncMessage &m,
                           bool broadcast, Tick done);
    void onCondWaitGlobal(Station &s, const sync::SyncMessage &m,
                          Tick done);
    void onCondSignalGlobal(Station &s, const sync::SyncMessage &m,
                            bool broadcast, Tick done);
    void onCondGrantGlobal(Station &s, const sync::SyncMessage &m,
                           bool broadcast, Tick done);
    void masterCondSignal(Station &s, StEntry &e, bool broadcast,
                          Tick done);

    // -- Overflow: integrated hardware scheme (overflow.cc) -------------
    void redirectOverflow(Station &s, const sync::SyncMessage &m,
                          Tick done);
    void handleOverflowAtMaster(Station &s, const sync::SyncMessage &m,
                                Tick done);
    void memLockOp(Station &s, MemVar &v, const sync::SyncMessage &m,
                   bool acquire, UnitId fromUnit, int fromCore,
                   bool unitLevel, Tick done);
    void memBarrierOp(Station &s, MemVar &v, const sync::SyncMessage &m,
                      UnitId fromUnit, int fromCore, bool unitLevel,
                      Tick done);
    void memSemOp(Station &s, MemVar &v, const sync::SyncMessage &m,
                  bool wait, UnitId fromUnit, int fromCore, bool unitLevel,
                  Tick done);
    void memCondOp(Station &s, MemVar &v, const sync::SyncMessage &m,
                   sync::OpKind kind, UnitId fromUnit, int fromCore,
                   bool unitLevel, Tick done);
    void memNextLockGrant(Station &s, MemVar &v, Tick done);
    void memGrantTo(Station &s, MemVar &v, sync::Op grantOp,
                    UnitId unit, int coreBit, bool unitLevel, Tick done);
    void memMaybeCleanup(Station &s, Addr var, MemVar &v, Tick done);
    /** Timed syncronVar read-modify-write at the master's local memory. */
    Tick memVarAccess(Station &s, Addr var, Tick start);
    void onDecreaseIndexingCounter(Station &s,
                                   const sync::SyncMessage &m);
    void onOverflowGrant(Station &s, const sync::SyncMessage &m,
                         Tick done);

    // -- Overflow: MiSAR-style ablation (overflow.cc) --------------------
    bool misarActive() const;
    /** True when @p var has no hardware state at any station. */
    bool misarCanEnter(Addr var) const;
    void misarEnter(Addr var, Tick when);
    /** Diverts a local-opcode message to the software fallback. */
    void misarDivertLocal(Station &s, const sync::SyncMessage &m,
                          Tick done);
    void misarRequest(core::Core &core, const sync::SyncRequest &req,
                      sim::Gate *gate);
    void misarProcess(SoftServer &server, const sync::SyncRequest &req,
                      CoreId core, sim::Gate *gate);
    void misarMaybeExit(Addr var, Tick when);
    SoftServer &softServerFor(Addr var);

    // -- Common helpers ---------------------------------------------------
    void maybeFree(Station &s, StEntry &e, Tick now);
    StEntry *entryOf(Station &s, Addr var);
    /** Cost of the station's state access in ServerCore mode. */
    Tick serverStateAccess(Station &s, Addr var, Tick start);

    /** One in-flight acquire-type operation awaiting its grant. */
    struct PendingGate
    {
        Addr key = 0;
        sim::Gate *gate = nullptr;
    };

    Machine &machine_;
    EngineOptions opts_;
    const char *name_;
    std::vector<std::unique_ptr<Station>> stations_;
    /// Pending gates per global core id, FIFO within a matching key —
    /// one entry per in-flight acquire-type operation (plural since the
    /// async submission api lets a core pipeline operations). Sized at
    /// construction; a core's slot is only touched from its own shard
    /// (requests are added there, and grants always come from the core's
    /// local station).
    std::vector<std::vector<PendingGate>> gates_;
    durability::PersistHook *persistHook_ = nullptr;

    // MiSAR ablation state
    std::unordered_set<Addr> misarVars_;
    /// Software operations issued but not yet applied at the fallback
    /// server, per variable. A variable may only leave software mode
    /// once these drain — otherwise a core could acquire in software
    /// and release in hardware.
    std::unordered_map<Addr, std::uint32_t> misarPending_;
    /// Software servicing cannot begin before the abort round trip to
    /// every participating core completes.
    std::unordered_map<Addr, Tick> misarReadyAt_;
    sync::FlatSyncState misarState_;
    std::vector<SoftServer> softServers_;
};

} // namespace syncron::engine

#endif // SYNCRON_SYNCRON_ENGINE_HH
