/**
 * @file
 * Indexing counters (paper Section 4.2.3): a small array of counters in
 * each SE, indexed by the low bits of a synchronization variable's
 * address, that track which variables are currently serviced via main
 * memory because the ST overflowed.
 *
 * The evaluated configuration uses 256 counters indexed by 8 LSBs of the
 * (line-granular) variable address. Different variables may alias to the
 * same counter; aliasing only forces a variable onto the memory path
 * unnecessarily — it never affects correctness (Section 4.2.3).
 */

#ifndef SYNCRON_SYNCRON_INDEXING_COUNTERS_HH
#define SYNCRON_SYNCRON_INDEXING_COUNTERS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace syncron::durability {
class PersistHook;
} // namespace syncron::durability

namespace syncron::engine {

/** The per-SE indexing-counter array. */
class IndexingCounters
{
  public:
    explicit IndexingCounters(std::uint32_t count);

    /** Counter index for @p var (line-granular low address bits). */
    std::uint32_t indexOf(Addr var) const;

    /** True when @p var is currently serviced via main memory. */
    bool servicedViaMemory(Addr var) const;

    /** Acquire-type message routed to memory: counter++. */
    void increment(Addr var);

    /** Release-type message for a memory-serviced variable: counter--. */
    void decrement(Addr var);

    /** Raw counter value (tests/debug). */
    std::uint32_t value(Addr var) const;

    /** Mirrors counter updates into the durability persist path. */
    void
    setPersistHook(durability::PersistHook *hook, UnitId unit)
    {
        persistHook_ = hook;
        unit_ = unit;
    }

  private:
    std::vector<std::uint32_t> counters_;
    std::uint32_t mask_;
    durability::PersistHook *persistHook_ = nullptr;
    UnitId unit_ = 0;
};

} // namespace syncron::engine

#endif // SYNCRON_SYNCRON_INDEXING_COUNTERS_HH
