/**
 * @file
 * The Ideal comparison point (paper Section 5): a synchronization scheme
 * with zero performance overhead. Semantics (mutual exclusion, barrier
 * release order, semaphore counting, condition signaling) are fully
 * enforced — critical sections still serialize — but acquiring,
 * releasing, and coordinating cost zero time, zero messages, and zero
 * energy. Ideal therefore "reflects the actual behavior of the main
 * workload" (Section 6.4.1) and upper-bounds every real scheme.
 */

#ifndef SYNCRON_BASELINES_IDEAL_HH
#define SYNCRON_BASELINES_IDEAL_HH

#include "sync/backend.hh"
#include "sync/flat_state.hh"
#include "system/machine.hh"

namespace syncron::baselines {

/** Zero-overhead synchronization. */
class IdealBackend : public sync::SyncBackend
{
  public:
    explicit IdealBackend(Machine &machine) : machine_(machine) {}

    void request(core::Core &requester, const sync::SyncRequest &req,
                 sim::Gate *gate) override;

    bool idleVar(Addr var) const override { return state_.idle(var); }
    void releaseVar(Addr var) override { state_.destroy(var); }

    const char *name() const override { return "Ideal"; }

  private:
    Machine &machine_;
    sync::FlatSyncState state_;
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_IDEAL_HH
