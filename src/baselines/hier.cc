#include "baselines/hier.hh"

// HierBackend is a thin configuration of engine::SynCronBackend (the
// hierarchical protocol is shared; only the station cost model differs).

#include "sync/registry.hh"

namespace syncron::baselines {

SYNCRON_REGISTER_BACKEND_SHARDABLE("Hier", [](Machine &m) {
    return std::make_unique<HierBackend>(m);
});

} // namespace syncron::baselines
