#include "baselines/hier.hh"

// HierBackend is a thin configuration of engine::SynCronBackend (the
// hierarchical protocol is shared; only the station cost model differs).

namespace syncron::baselines {
} // namespace syncron::baselines
