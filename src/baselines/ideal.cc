#include "baselines/ideal.hh"

#include "core/core.hh"
#include "sync/registry.hh"

namespace syncron::baselines {

void
IdealBackend::request(core::Core &requester, const sync::SyncRequest &req,
                      sim::Gate *gate)
{
    const bool acquire = req.acquireType();
    auto grants = state_.apply(req, requester.id(),
                               acquire ? gate : nullptr);
    if (!acquire)
        gate->open(0, 0);
    for (const sync::SyncGrant &g : grants)
        g.gate->open(0, 0);
}

SYNCRON_REGISTER_BACKEND("Ideal", [](Machine &m) {
    return std::make_unique<IdealBackend>(m);
});

} // namespace syncron::baselines
