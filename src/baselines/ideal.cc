#include "baselines/ideal.hh"

#include "core/core.hh"

namespace syncron::baselines {

void
IdealBackend::request(core::Core &requester, sync::OpKind kind, Addr var,
                      std::uint64_t info, sim::Gate *gate)
{
    const bool acquire = sync::isAcquireType(kind);
    auto grants = state_.apply(kind, requester.id(), var, info,
                               acquire ? gate : nullptr);
    if (!acquire)
        gate->open(0, 0);
    for (const sync::SyncGrant &g : grants)
        g.gate->open(0, 0);
}

} // namespace syncron::baselines
