/**
 * @file
 * The Central baseline (paper Section 5): one dedicated NDP core in the
 * entire system acts as a synchronization server, extending the
 * message-passing barrier of Tesseract to all primitives. Every client
 * core sends its requests to that single server — crossing the expensive
 * inter-unit links for three quarters of the system — and the server
 * processes each message in software, accessing the synchronization
 * variable through its own memory hierarchy (private L1, then DRAM,
 * possibly in a remote unit).
 */

#ifndef SYNCRON_BASELINES_CENTRAL_HH
#define SYNCRON_BASELINES_CENTRAL_HH

#include <memory>
#include <unordered_map>

#include "cache/cache.hh"
#include "sync/backend.hh"
#include "sync/flat_state.hh"
#include "system/machine.hh"

namespace syncron::baselines {

/** One software synchronization server for the whole NDP system. */
class CentralBackend : public sync::SyncBackend
{
  public:
    /**
     * @param machine    the platform
     * @param serverUnit unit housing the server core (default 0)
     */
    explicit CentralBackend(Machine &machine, UnitId serverUnit = 0);

    void request(core::Core &requester, const sync::SyncRequest &req,
                 sim::Gate *gate) override;

    /**
     * Batch issue with message coalescing: every operation in the
     * system targets the single server, so an eligible batch (>= 2 ops)
     * always shares its destination and travels as one request message
     * of batchReqBits(n) bits. The server still processes the members
     * one by one in batch order (per-op software overhead + variable
     * RMW), and each grant travels as its own response.
     */
    void requestBatch(core::Core &requester,
                      std::span<const sync::SyncRequest> reqs,
                      std::span<sim::Gate *const> gates) override;

    bool
    idleVar(Addr var) const override
    {
        return pending_.count(var) == 0 && state_.idle(var);
    }

    void releaseVar(Addr var) override { state_.destroy(var); }

    const char *name() const override { return "Central"; }

  private:
    /** Runs at the server when a request message arrives. */
    void process(const sync::SyncRequest &req, CoreId core,
                 sim::Gate *gate);

    /** Timed software RMW of @p var through the server's L1. */
    Tick varAccess(Tick start, Addr var);

    Machine &machine_;
    cache::Cache l1_;
    sync::FlatSyncState state_;
    UnitId serverUnit_;
    Tick busyUntil_ = 0;
    /// Requests issued but not yet applied at the server, per variable
    /// (keeps idleVar() honest about messages still in flight).
    std::unordered_map<Addr, std::uint32_t> pending_;
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_CENTRAL_HH
