/**
 * @file
 * The Central baseline (paper Section 5): one dedicated NDP core in the
 * entire system acts as a synchronization server, extending the
 * message-passing barrier of Tesseract to all primitives. Every client
 * core sends its requests to that single server — crossing the expensive
 * inter-unit links for three quarters of the system — and the server
 * processes each message in software, accessing the synchronization
 * variable through its own memory hierarchy (private L1, then DRAM,
 * possibly in a remote unit).
 */

#ifndef SYNCRON_BASELINES_CENTRAL_HH
#define SYNCRON_BASELINES_CENTRAL_HH

#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cache/cache.hh"
#include "sync/backend.hh"
#include "sync/flat_state.hh"
#include "system/machine.hh"

namespace syncron::baselines {

/** One software synchronization server for the whole NDP system. */
class CentralBackend : public sync::SyncBackend
{
  public:
    /**
     * @param machine    the platform
     * @param serverUnit unit housing the server core (default 0)
     */
    explicit CentralBackend(Machine &machine, UnitId serverUnit = 0);

    void request(core::Core &requester, const sync::SyncRequest &req,
                 sim::Gate *gate) override;

    /**
     * Batch issue with message coalescing: every operation in the
     * system targets the single server, so an eligible batch (>= 2 ops)
     * always shares its destination and travels as one request message
     * of batchReqBits(n) bits. The server still processes the members
     * one by one in batch order (per-op software overhead + variable
     * RMW), and each grant travels as its own response.
     */
    void requestBatch(core::Core &requester,
                      std::span<const sync::SyncRequest> reqs,
                      std::span<sim::Gate *const> gates) override;

    bool idleVar(Addr var) const override;

    void releaseVar(Addr var) override { state_.destroy(var); }

    const char *name() const override { return "Central"; }

  private:
    /** One request waiting for (or in) software service at the server. */
    struct Job
    {
        sync::SyncRequest req;
        CoreId core = 0;
        sim::Gate *gate = nullptr; ///< nullptr for release-type members
        Tick arrival = 0;
    };

    /** Enqueues an arrived request at the server (server shard only). */
    void enqueue(const sync::SyncRequest &req, CoreId core,
                 sim::Gate *gate);
    /** Begins servicing the queue head; may suspend on a miss fill. */
    void serveNext();
    /** Resumes the in-service job once its L1 miss fill arrives. */
    void onFillDone();
    /** Schedules job completion at @p done . */
    void finishJob(Tick done);
    /** Applies the head job, sends its grants, serves the next one. */
    void completeFront();

    void pendingInc(Addr var);
    void pendingDec(Addr var);

    Machine &machine_;
    cache::Cache l1_;
    sync::FlatSyncState state_;
    UnitId serverUnit_;
    Tick busyUntil_ = 0;
    /// Arrival-ordered software service queue. The whole service path
    /// (queue, L1, state_) runs on the server's shard; only pending_ is
    /// shared with requester shards.
    std::deque<Job> queue_;
    bool serving_ = false;
    /// Requests issued but not yet applied at the server, per variable
    /// (keeps idleVar() honest about messages still in flight).
    /// Incremented on the requester's shard, decremented on the
    /// server's; only read for its keys at quiescence.
    std::unordered_map<Addr, std::uint32_t> pending_;
    mutable std::mutex pendingMu_;
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_CENTRAL_HH
