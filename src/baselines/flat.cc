#include "baselines/flat.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/core.hh"
#include "mem/allocator.hh"
#include "sync/registry.hh"
#include "sync/message.hh"

namespace syncron::baselines {

FlatSynCronBackend::FlatSynCronBackend(Machine &machine)
    : machine_(machine), busyUntil_(machine.config().numUnits, 0)
{}

void
FlatSynCronBackend::request(core::Core &requester,
                            const sync::SyncRequest &req, sim::Gate *gate)
{
    const bool acquire = req.acquireType();
    if (!acquire)
        gate->open(0, requester.cyclePeriod());

    const UnitId master = mem::unitOfAddr(req.var());
    const Tick arrival = machine_.routeMessage(
        machine_.eq().now(), requester.unit(), master, sync::kSyncReqBits);
    if (requester.unit() == master)
        ++machine_.stats().syncLocalMsgs;
    else
        ++machine_.stats().syncGlobalMsgs;

    const CoreId core = requester.id();
    sim::Gate *acquireGate = acquire ? gate : nullptr;
    ++pending_[req.var()];
    machine_.eq().schedule(arrival, [this, master, req, core,
                                     acquireGate] {
        process(master, req, core, acquireGate);
    });
}

void
FlatSynCronBackend::process(UnitId se, const sync::SyncRequest &req,
                            CoreId core, sim::Gate *gate)
{
    const SystemConfig &cfg = machine_.config();
    const Tick start = std::max(machine_.eq().now(), busyUntil_[se]);
    // Same SPU cost as hierarchical SynCron: the variable is buffered
    // directly in the Master SE's ST.
    const Tick done = start
                      + static_cast<Tick>(cfg.seServiceCycles)
                            * cfg.seCyclePeriod;
    busyUntil_[se] = done;

    machine_.eq().schedule(done, [this, se, req, core, gate] {
        const Tick when = machine_.eq().now();
        auto grants = state_.apply(req, core, gate);
        if (auto it = pending_.find(req.var());
            it != pending_.end() && --it->second == 0) {
            pending_.erase(it);
        }
        for (const sync::SyncGrant &g : grants) {
            const UnitId unit = g.core / machine_.config().coresPerUnit;
            const Tick arrival = machine_.routeMessage(
                when, se, unit, sync::kSyncRespBits);
            if (unit == se)
                ++machine_.stats().syncLocalMsgs;
            else
                ++machine_.stats().syncGlobalMsgs;
            SYNCRON_ASSERT(g.gate != nullptr, "grant without gate");
            g.gate->open(0, arrival - when);
        }
    });
}

SYNCRON_REGISTER_BACKEND("SynCron-flat", [](Machine &m) {
    return std::make_unique<FlatSynCronBackend>(m);
});

} // namespace syncron::baselines
