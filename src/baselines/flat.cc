#include "baselines/flat.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/core.hh"
#include "mem/allocator.hh"
#include "sync/syncvar.hh"

namespace syncron::baselines {

FlatSynCronBackend::FlatSynCronBackend(Machine &machine)
    : machine_(machine), busyUntil_(machine.config().numUnits, 0)
{}

void
FlatSynCronBackend::request(core::Core &requester, sync::OpKind kind,
                            Addr var, std::uint64_t info, sim::Gate *gate)
{
    const bool acquire = sync::isAcquireType(kind);
    if (!acquire)
        gate->open(0, requester.cyclePeriod());

    const UnitId master = mem::unitOfAddr(var);
    const Tick arrival = machine_.routeMessage(
        machine_.eq().now(), requester.unit(), master, sync::kSyncReqBits);
    if (requester.unit() == master)
        ++machine_.stats().syncLocalMsgs;
    else
        ++machine_.stats().syncGlobalMsgs;

    const CoreId core = requester.id();
    sim::Gate *acquireGate = acquire ? gate : nullptr;
    machine_.eq().schedule(arrival, [this, master, kind, core, var, info,
                                     acquireGate] {
        process(master, kind, core, var, info, acquireGate);
    });
}

void
FlatSynCronBackend::process(UnitId se, sync::OpKind kind, CoreId core,
                            Addr var, std::uint64_t info, sim::Gate *gate)
{
    const SystemConfig &cfg = machine_.config();
    const Tick start = std::max(machine_.eq().now(), busyUntil_[se]);
    // Same SPU cost as hierarchical SynCron: the variable is buffered
    // directly in the Master SE's ST.
    const Tick done = start
                      + static_cast<Tick>(cfg.seServiceCycles)
                            * cfg.seCyclePeriod;
    busyUntil_[se] = done;

    machine_.eq().schedule(done, [this, se, kind, core, var, info, gate] {
        const Tick when = machine_.eq().now();
        auto grants = state_.apply(kind, core, var, info, gate);
        for (const sync::SyncGrant &g : grants) {
            const UnitId unit = g.core / machine_.config().coresPerUnit;
            const Tick arrival = machine_.routeMessage(
                when, se, unit, sync::kSyncRespBits);
            if (unit == se)
                ++machine_.stats().syncLocalMsgs;
            else
                ++machine_.stats().syncGlobalMsgs;
            SYNCRON_ASSERT(g.gate != nullptr, "grant without gate");
            g.gate->open(0, arrival - when);
        }
    });
}

} // namespace syncron::baselines
