#include "baselines/flat.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/core.hh"
#include "mem/allocator.hh"
#include "sync/registry.hh"
#include "sync/message.hh"

namespace syncron::baselines {

FlatSynCronBackend::FlatSynCronBackend(Machine &machine)
    : machine_(machine), state_(machine.config().numUnits),
      busyUntil_(machine.config().numUnits, 0)
{}

bool
FlatSynCronBackend::idleVar(Addr var) const
{
    std::lock_guard<std::mutex> lock(pendingMu_);
    if (pending_.count(var) != 0)
        return false;
    // Condition variables are homed at their lock's master, not their
    // own, so check every unit's state rather than unitOfAddr(var)'s.
    for (const sync::FlatSyncState &s : state_)
        if (!s.idle(var))
            return false;
    return true;
}

void
FlatSynCronBackend::releaseVar(Addr var)
{
    for (sync::FlatSyncState &s : state_)
        s.destroy(var);
}

void
FlatSynCronBackend::pendingInc(Addr var)
{
    std::lock_guard<std::mutex> lock(pendingMu_);
    ++pending_[var];
}

void
FlatSynCronBackend::pendingDec(Addr var)
{
    std::lock_guard<std::mutex> lock(pendingMu_);
    auto it = pending_.find(var);
    if (it != pending_.end() && --it->second == 0)
        pending_.erase(it);
}

void
FlatSynCronBackend::request(core::Core &requester,
                            const sync::SyncRequest &req, sim::Gate *gate)
{
    const bool acquire = req.acquireType();
    if (!acquire)
        gate->open(0, requester.cyclePeriod());

    const UnitId master = mem::unitOfAddr(req.var());
    const UnitId from = requester.unit();
    if (from == master)
        ++machine_.statsFor(from).syncLocalMsgs;
    else
        ++machine_.statsFor(from).syncGlobalMsgs;

    const CoreId core = requester.id();
    sim::Gate *acquireGate = acquire ? gate : nullptr;
    pendingInc(req.var());
    machine_.postMessage(machine_.eq(from).now(), from, master,
                         sync::kSyncReqBits,
                         [this, master, req, core, acquireGate] {
                             process(master, req, core, acquireGate);
                         });
}

void
FlatSynCronBackend::process(UnitId se, const sync::SyncRequest &req,
                            CoreId core, sim::Gate *gate)
{
    const SystemConfig &cfg = machine_.config();
    const Tick start = std::max(machine_.eq(se).now(), busyUntil_[se]);
    // Same SPU cost as hierarchical SynCron: the variable is buffered
    // directly in the Master SE's ST.
    const Tick done = start
                      + static_cast<Tick>(cfg.seServiceCycles)
                            * cfg.seCyclePeriod;
    busyUntil_[se] = done;

    machine_.eq(se).schedule(done, [this, se, req, core, gate] {
        const Tick when = machine_.eq(se).now();
        // A cond op's associated-lock manipulation is emitted here and
        // forwarded below to the LOCK's Master SE: the condition and
        // its lock may be homed at different units.
        std::vector<sync::FlatSyncState::LockOp> fwd;
        auto grants = state_[se].apply(req, core, gate, &fwd);
        pendingDec(req.var());
        for (const sync::FlatSyncState::LockOp &op : fwd) {
            const UnitId lockSe = mem::unitOfAddr(op.lock);
            const sync::SyncRequest lockReq =
                sync::SyncRequest::fromMessageInfo(
                    op.acquire ? sync::OpKind::LockAcquire
                               : sync::OpKind::LockRelease,
                    op.lock, 0);
            SystemStats &st = machine_.statsFor(se);
            if (lockSe == se)
                ++st.syncLocalMsgs;
            else
                ++st.syncGlobalMsgs;
            pendingInc(op.lock);
            const CoreId lockCore = op.core;
            sim::Gate *lockGate = op.gate;
            machine_.postMessage(when, se, lockSe, sync::kSyncReqBits,
                                 [this, lockSe, lockReq, lockCore,
                                  lockGate] {
                                     process(lockSe, lockReq, lockCore,
                                             lockGate);
                                 });
        }
        for (const sync::SyncGrant &g : grants) {
            const UnitId unit = g.core / machine_.config().coresPerUnit;
            SystemStats &st = machine_.statsFor(se);
            if (unit == se)
                ++st.syncLocalMsgs;
            else
                ++st.syncGlobalMsgs;
            SYNCRON_ASSERT(g.gate != nullptr, "grant without gate");
            // Opens the requester's gate on its own shard at the
            // response's arrival tick.
            sim::Gate *grantGate = g.gate;
            machine_.postMessage(when, se, unit, sync::kSyncRespBits,
                                 [grantGate] { grantGate->open(0, 0); });
        }
    });
}

SYNCRON_REGISTER_BACKEND_SHARDABLE("SynCron-flat", [](Machine &m) {
    return std::make_unique<FlatSynCronBackend>(m);
});

} // namespace syncron::baselines
