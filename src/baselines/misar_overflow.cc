#include "baselines/misar_overflow.hh"

// Thin configurations of engine::SynCronBackend; the MiSAR-style abort
// and switch-back machinery lives in syncron/overflow.cc.

#include "sync/registry.hh"

namespace syncron::baselines {

SYNCRON_REGISTER_BACKEND("SynCron_CentralOvrfl", [](Machine &m) {
    return std::make_unique<CentralOvrflBackend>(m);
});

SYNCRON_REGISTER_BACKEND("SynCron_DistribOvrfl", [](Machine &m) {
    return std::make_unique<DistribOvrflBackend>(m);
});

} // namespace syncron::baselines
