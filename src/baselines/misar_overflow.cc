#include "baselines/misar_overflow.hh"

// Thin configurations of engine::SynCronBackend; the MiSAR-style abort
// and switch-back machinery lives in syncron/overflow.cc.

namespace syncron::baselines {
} // namespace syncron::baselines
