/**
 * @file
 * The Hier baseline (paper Section 5): one NDP core per unit acts as a
 * software synchronization server, mirroring the hierarchical barrier of
 * Gao et al. and the hierarchical lock of pLock. The protocol is the
 * same hierarchy SynCron uses — implemented once in
 * engine::SynCronBackend — but the per-unit station is a software server
 * whose per-message cost is instruction overhead plus an L1/DRAM access
 * for the variable's tracking state (instead of the SE's 12 SPU cycles
 * and direct ST buffering).
 */

#ifndef SYNCRON_BASELINES_HIER_HH
#define SYNCRON_BASELINES_HIER_HH

#include "syncron/engine.hh"

namespace syncron::baselines {

/** Hierarchical software-server baseline. */
class HierBackend : public engine::SynCronBackend
{
  public:
    explicit HierBackend(Machine &machine)
        : engine::SynCronBackend(
              machine,
              engine::EngineOptions{
                  engine::StationKind::ServerCore,
                  engine::OverflowPolicy::Integrated, 0, "Hier"})
    {}
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_HIER_HH
