#include "baselines/central.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"
#include "core/core.hh"
#include "sync/registry.hh"
#include "sync/message.hh"

namespace syncron::baselines {

CentralBackend::CentralBackend(Machine &machine, UnitId serverUnit)
    : machine_(machine), l1_(machine.config().l1, machine.stats()),
      serverUnit_(serverUnit)
{
    SYNCRON_ASSERT(serverUnit < machine.config().numUnits,
                   "server unit out of range");
}

void
CentralBackend::request(core::Core &requester,
                        const sync::SyncRequest &req, sim::Gate *gate)
{
    const bool acquire = req.acquireType();
    if (!acquire) {
        // req_async: commit once the message has been issued.
        gate->open(0, requester.cyclePeriod());
    }

    const Tick arrival =
        machine_.routeMessage(machine_.eq().now(), requester.unit(),
                              serverUnit_, sync::kSyncReqBits);
    if (requester.unit() == serverUnit_)
        ++machine_.stats().syncLocalMsgs;
    else
        ++machine_.stats().syncGlobalMsgs;

    const CoreId core = requester.id();
    sim::Gate *acquireGate = acquire ? gate : nullptr;
    ++pending_[req.var()];
    machine_.eq().schedule(arrival, [this, req, core, acquireGate] {
        process(req, core, acquireGate);
    });
}

void
CentralBackend::requestBatch(core::Core &requester,
                             std::span<const sync::SyncRequest> reqs,
                             std::span<sim::Gate *const> gates)
{
    SYNCRON_ASSERT(reqs.size() == gates.size(),
                   "batch of " << reqs.size() << " requests with "
                               << gates.size() << " gates");
    // Coalescing eligibility: at least two operations (a 1-op batch is
    // a plain Fig. 5 message).
    if (reqs.size() < 2) {
        for (std::size_t i = 0; i < reqs.size(); ++i)
            request(requester, reqs[i], gates[i]);
        return;
    }

    struct Member
    {
        sync::SyncRequest req;
        sim::Gate *gate; ///< nullptr for release-type members
    };
    std::vector<Member> members;
    members.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const sync::SyncRequest &req = reqs[i];
        const bool acquire = req.acquireType();
        if (!acquire)
            gates[i]->open(0, requester.cyclePeriod());
        ++pending_[req.var()];
        members.push_back(Member{req, acquire ? gates[i] : nullptr});
    }

    const auto n = static_cast<std::uint32_t>(reqs.size());
    const Tick arrival = machine_.routeMessage(
        machine_.eq().now(), requester.unit(), serverUnit_,
        sync::batchReqBits(reqs));
    if (requester.unit() == serverUnit_)
        ++machine_.stats().syncLocalMsgs;
    else
        ++machine_.stats().syncGlobalMsgs;
    machine_.stats().batchedOps += n;
    machine_.stats().messagesSaved += n - 1;

    const CoreId core = requester.id();
    machine_.eq().schedule(arrival, [this, core,
                                     members = std::move(members)] {
        for (const Member &m : members)
            process(m.req, core, m.gate);
    });
}

Tick
CentralBackend::varAccess(Tick start, Addr var)
{
    // Software read-modify-write of the variable's line through the
    // server's private L1; a miss fetches the line from the owning
    // unit's DRAM — across the serial links when the variable is remote.
    const Tick hit = static_cast<Tick>(l1_.params().hitCycles)
                     * kCoreClock.period();
    cache::CacheAccessResult res = l1_.access(var, false);
    Tick t = start + hit;
    if (!res.hit) {
        t = machine_.memoryAccess(t, serverUnit_, lineAlign(var), false,
                                  kCacheLineBytes);
        if (res.writeback) {
            machine_.memoryAccess(start + hit, serverUnit_,
                                  res.victimAddr, true, kCacheLineBytes);
        }
    }
    l1_.access(var, true); // the modifying write hits
    return t + hit;
}

void
CentralBackend::process(const sync::SyncRequest &req, CoreId core,
                        sim::Gate *gate)
{
    const SystemConfig &cfg = machine_.config();
    const Tick start = std::max(machine_.eq().now(), busyUntil_);
    Tick done = start
                + static_cast<Tick>(cfg.serverSwOverheadCycles)
                      * kCoreClock.period();
    done = varAccess(done, req.var());
    busyUntil_ = done;

    machine_.eq().schedule(done, [this, req, core, gate] {
        const Tick when = machine_.eq().now();
        auto grants = state_.apply(req, core, gate);
        if (auto it = pending_.find(req.var());
            it != pending_.end() && --it->second == 0) {
            pending_.erase(it);
        }
        for (const sync::SyncGrant &g : grants) {
            const UnitId unit = g.core / machine_.config().coresPerUnit;
            const Tick arrival = machine_.routeMessage(
                when, serverUnit_, unit, sync::kSyncRespBits);
            if (unit == serverUnit_)
                ++machine_.stats().syncLocalMsgs;
            else
                ++machine_.stats().syncGlobalMsgs;
            SYNCRON_ASSERT(g.gate != nullptr, "grant without gate");
            g.gate->open(0, arrival - when);
        }
    });
}

SYNCRON_REGISTER_BACKEND("Central", [](Machine &m) {
    return std::make_unique<CentralBackend>(m);
});

} // namespace syncron::baselines
