#include "baselines/central.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"
#include "core/core.hh"
#include "sync/registry.hh"
#include "sync/message.hh"

namespace syncron::baselines {

CentralBackend::CentralBackend(Machine &machine, UnitId serverUnit)
    : machine_(machine),
      l1_(machine.config().l1, machine.statsFor(serverUnit)),
      serverUnit_(serverUnit)
{
    SYNCRON_ASSERT(serverUnit < machine.config().numUnits,
                   "server unit out of range");
}

bool
CentralBackend::idleVar(Addr var) const
{
    std::lock_guard<std::mutex> lock(pendingMu_);
    return pending_.count(var) == 0 && state_.idle(var);
}

void
CentralBackend::pendingInc(Addr var)
{
    std::lock_guard<std::mutex> lock(pendingMu_);
    ++pending_[var];
}

void
CentralBackend::pendingDec(Addr var)
{
    std::lock_guard<std::mutex> lock(pendingMu_);
    auto it = pending_.find(var);
    if (it != pending_.end() && --it->second == 0)
        pending_.erase(it);
}

void
CentralBackend::request(core::Core &requester,
                        const sync::SyncRequest &req, sim::Gate *gate)
{
    const bool acquire = req.acquireType();
    if (!acquire) {
        // req_async: commit once the message has been issued.
        gate->open(0, requester.cyclePeriod());
    }

    const UnitId from = requester.unit();
    if (from == serverUnit_)
        ++machine_.statsFor(from).syncLocalMsgs;
    else
        ++machine_.statsFor(from).syncGlobalMsgs;

    const CoreId core = requester.id();
    sim::Gate *acquireGate = acquire ? gate : nullptr;
    pendingInc(req.var());
    machine_.postMessage(machine_.eq(from).now(), from, serverUnit_,
                         sync::kSyncReqBits,
                         [this, req, core, acquireGate] {
                             enqueue(req, core, acquireGate);
                         });
}

void
CentralBackend::requestBatch(core::Core &requester,
                             std::span<const sync::SyncRequest> reqs,
                             std::span<sim::Gate *const> gates)
{
    SYNCRON_ASSERT(reqs.size() == gates.size(),
                   "batch of " << reqs.size() << " requests with "
                               << gates.size() << " gates");
    // Coalescing eligibility: at least two operations (a 1-op batch is
    // a plain Fig. 5 message).
    if (reqs.size() < 2) {
        for (std::size_t i = 0; i < reqs.size(); ++i)
            request(requester, reqs[i], gates[i]);
        return;
    }

    struct Member
    {
        sync::SyncRequest req;
        sim::Gate *gate; ///< nullptr for release-type members
    };
    std::vector<Member> members;
    members.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const sync::SyncRequest &req = reqs[i];
        const bool acquire = req.acquireType();
        if (!acquire)
            gates[i]->open(0, requester.cyclePeriod());
        pendingInc(req.var());
        members.push_back(Member{req, acquire ? gates[i] : nullptr});
    }

    const UnitId from = requester.unit();
    const auto n = static_cast<std::uint32_t>(reqs.size());
    SystemStats &st = machine_.statsFor(from);
    if (from == serverUnit_)
        ++st.syncLocalMsgs;
    else
        ++st.syncGlobalMsgs;
    st.batchedOps += n;
    st.messagesSaved += n - 1;

    const CoreId core = requester.id();
    machine_.postMessage(machine_.eq(from).now(), from, serverUnit_,
                         sync::batchReqBits(reqs),
                         [this, core, members = std::move(members)] {
                             for (const Member &m : members)
                                 enqueue(m.req, core, m.gate);
                         });
}

void
CentralBackend::enqueue(const sync::SyncRequest &req, CoreId core,
                        sim::Gate *gate)
{
    queue_.push_back(
        Job{req, core, gate, machine_.eq(serverUnit_).now()});
    if (!serving_)
        serveNext();
}

void
CentralBackend::serveNext()
{
    if (queue_.empty()) {
        serving_ = false;
        return;
    }
    serving_ = true;
    const Job &job = queue_.front();
    const SystemConfig &cfg = machine_.config();
    const Tick start = std::max(job.arrival, busyUntil_);
    const Tick ready = start
                       + static_cast<Tick>(cfg.serverSwOverheadCycles)
                             * kCoreClock.period();

    // Software read-modify-write of the variable's line through the
    // server's private L1; a miss fetches the line from the owning
    // unit's DRAM — across the serial links when the variable is remote
    // (an asynchronous round trip under sharded simulation).
    const Addr var = job.req.var();
    const Tick hit = static_cast<Tick>(l1_.params().hitCycles)
                     * kCoreClock.period();
    cache::CacheAccessResult res = l1_.access(var, false);
    const Tick t = ready + hit;
    if (!res.hit) {
        if (res.writeback) {
            machine_.memoryAccessDetached(t, serverUnit_, res.victimAddr,
                                          true, kCacheLineBytes);
        }
        machine_.memoryAccessAsync(t, serverUnit_, lineAlign(var), false,
                                   kCacheLineBytes,
                                   [this] { onFillDone(); });
        return;
    }
    l1_.access(var, true); // the modifying write hits
    finishJob(t + hit);
}

void
CentralBackend::onFillDone()
{
    SYNCRON_ASSERT(serving_ && !queue_.empty(),
                   "fill completion with no job in service");
    const Addr var = queue_.front().req.var();
    const Tick hit = static_cast<Tick>(l1_.params().hitCycles)
                     * kCoreClock.period();
    l1_.access(var, true); // the modifying write hits the filled line
    finishJob(machine_.eq(serverUnit_).now() + hit);
}

void
CentralBackend::finishJob(Tick done)
{
    busyUntil_ = done;
    machine_.eq(serverUnit_).schedule(done,
                                      [this] { completeFront(); });
}

void
CentralBackend::completeFront()
{
    Job job = queue_.front();
    queue_.pop_front();
    const Tick when = machine_.eq(serverUnit_).now();
    auto grants = state_.apply(job.req, job.core, job.gate);
    pendingDec(job.req.var());
    for (const sync::SyncGrant &g : grants) {
        const UnitId unit = g.core / machine_.config().coresPerUnit;
        SystemStats &st = machine_.statsFor(serverUnit_);
        if (unit == serverUnit_)
            ++st.syncLocalMsgs;
        else
            ++st.syncGlobalMsgs;
        SYNCRON_ASSERT(g.gate != nullptr, "grant without gate");
        // The grant opens the requester's gate on its own shard at the
        // response's arrival tick.
        sim::Gate *gate = g.gate;
        machine_.postMessage(when, serverUnit_, unit, sync::kSyncRespBits,
                             [gate] { gate->open(0, 0); });
    }
    serveNext();
}

SYNCRON_REGISTER_BACKEND_SHARDABLE("Central", [](Machine &m) {
    return std::make_unique<CentralBackend>(m);
});

} // namespace syncron::baselines
