/**
 * @file
 * SynCron's flat variant (paper Section 6.7.1): every core sends its
 * synchronization requests directly to the Master SE of the variable,
 * with no local-SE level. The station microarchitecture is identical to
 * SynCron's SE (SPU service time, ST buffering), so the comparison
 * isolates exactly the hierarchy: under high contention and/or slow
 * inter-unit links, flat floods the serial links with per-core messages
 * where hierarchical SynCron sends one aggregated message per unit.
 */

#ifndef SYNCRON_BASELINES_FLAT_HH
#define SYNCRON_BASELINES_FLAT_HH

#include <unordered_map>
#include <vector>

#include "sync/backend.hh"
#include "sync/flat_state.hh"
#include "system/machine.hh"

namespace syncron::baselines {

/** Non-hierarchical SynCron: direct core -> Master SE messaging. */
class FlatSynCronBackend : public sync::SyncBackend
{
  public:
    explicit FlatSynCronBackend(Machine &machine);

    void request(core::Core &requester, const sync::SyncRequest &req,
                 sim::Gate *gate) override;

    bool
    idleVar(Addr var) const override
    {
        return pending_.count(var) == 0 && state_.idle(var);
    }

    void releaseVar(Addr var) override { state_.destroy(var); }

    const char *name() const override { return "SynCron-flat"; }

  private:
    void process(UnitId se, const sync::SyncRequest &req, CoreId core,
                 sim::Gate *gate);

    Machine &machine_;
    sync::FlatSyncState state_;
    std::vector<Tick> busyUntil_; ///< per-unit SE SPU
    /// Requests issued but not yet applied at their Master SE, per
    /// variable (keeps idleVar() honest about in-flight messages).
    std::unordered_map<Addr, std::uint32_t> pending_;
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_FLAT_HH
