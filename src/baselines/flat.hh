/**
 * @file
 * SynCron's flat variant (paper Section 6.7.1): every core sends its
 * synchronization requests directly to the Master SE of the variable,
 * with no local-SE level. The station microarchitecture is identical to
 * SynCron's SE (SPU service time, ST buffering), so the comparison
 * isolates exactly the hierarchy: under high contention and/or slow
 * inter-unit links, flat floods the serial links with per-core messages
 * where hierarchical SynCron sends one aggregated message per unit.
 */

#ifndef SYNCRON_BASELINES_FLAT_HH
#define SYNCRON_BASELINES_FLAT_HH

#include <vector>

#include "sync/backend.hh"
#include "sync/flat_state.hh"
#include "system/machine.hh"

namespace syncron::baselines {

/** Non-hierarchical SynCron: direct core -> Master SE messaging. */
class FlatSynCronBackend : public sync::SyncBackend
{
  public:
    explicit FlatSynCronBackend(Machine &machine);

    void request(core::Core &requester, sync::OpKind kind, Addr var,
                 std::uint64_t info, sim::Gate *gate) override;

    const char *name() const override { return "SynCron-flat"; }

  private:
    void process(UnitId se, sync::OpKind kind, CoreId core, Addr var,
                 std::uint64_t info, sim::Gate *gate);

    Machine &machine_;
    sync::FlatSyncState state_;
    std::vector<Tick> busyUntil_; ///< per-unit SE SPU
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_FLAT_HH
