/**
 * @file
 * SynCron's flat variant (paper Section 6.7.1): every core sends its
 * synchronization requests directly to the Master SE of the variable,
 * with no local-SE level. The station microarchitecture is identical to
 * SynCron's SE (SPU service time, ST buffering), so the comparison
 * isolates exactly the hierarchy: under high contention and/or slow
 * inter-unit links, flat floods the serial links with per-core messages
 * where hierarchical SynCron sends one aggregated message per unit.
 */

#ifndef SYNCRON_BASELINES_FLAT_HH
#define SYNCRON_BASELINES_FLAT_HH

#include <mutex>
#include <unordered_map>
#include <vector>

#include "sync/backend.hh"
#include "sync/flat_state.hh"
#include "system/machine.hh"

namespace syncron::baselines {

/** Non-hierarchical SynCron: direct core -> Master SE messaging. */
class FlatSynCronBackend : public sync::SyncBackend
{
  public:
    explicit FlatSynCronBackend(Machine &machine);

    void request(core::Core &requester, const sync::SyncRequest &req,
                 sim::Gate *gate) override;

    bool idleVar(Addr var) const override;

    void releaseVar(Addr var) override;

    const char *name() const override { return "SynCron-flat"; }

  private:
    void process(UnitId se, const sync::SyncRequest &req, CoreId core,
                 sim::Gate *gate);

    void pendingInc(Addr var);
    void pendingDec(Addr var);

    Machine &machine_;
    /// Per-master-unit tracking state: a variable's state lives at its
    /// Master SE and is only touched from that unit's shard.
    std::vector<sync::FlatSyncState> state_;
    std::vector<Tick> busyUntil_; ///< per-unit SE SPU
    /// Requests issued but not yet applied at their Master SE, per
    /// variable (keeps idleVar() honest about in-flight messages).
    /// Incremented on requester shards, decremented at the master;
    /// only read for its keys at quiescence.
    std::unordered_map<Addr, std::uint32_t> pending_;
    mutable std::mutex pendingMu_;
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_FLAT_HH
