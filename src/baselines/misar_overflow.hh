/**
 * @file
 * The MiSAR-style overflow variants of SynCron used in the Fig. 23
 * ablation (paper Section 6.7.3): on ST overflow the SEs abort the
 * participating cores to an alternative software synchronization
 * solution, and the cores notify the SEs to switch back afterwards.
 *
 *  - SynCron_CentralOvrfl: one dedicated NDP core handles all overflowed
 *    variables.
 *  - SynCron_DistribOvrfl: one NDP core per unit handles the overflowed
 *    variables homed in its unit.
 */

#ifndef SYNCRON_BASELINES_MISAR_OVERFLOW_HH
#define SYNCRON_BASELINES_MISAR_OVERFLOW_HH

#include "syncron/engine.hh"

namespace syncron::baselines {

/** SynCron with MiSAR-style central software overflow handling. */
class CentralOvrflBackend : public engine::SynCronBackend
{
  public:
    explicit CentralOvrflBackend(Machine &machine,
                                 std::uint32_t stEntries = 0)
        : engine::SynCronBackend(
              machine,
              engine::EngineOptions{engine::StationKind::SyncronSe,
                                    engine::OverflowPolicy::MisarCentral,
                                    stEntries, "SynCron_CentralOvrfl"})
    {}
};

/** SynCron with MiSAR-style distributed software overflow handling. */
class DistribOvrflBackend : public engine::SynCronBackend
{
  public:
    explicit DistribOvrflBackend(Machine &machine,
                                 std::uint32_t stEntries = 0)
        : engine::SynCronBackend(
              machine,
              engine::EngineOptions{engine::StationKind::SyncronSe,
                                    engine::OverflowPolicy::MisarDistrib,
                                    stEntries, "SynCron_DistribOvrfl"})
    {}
};

} // namespace syncron::baselines

#endif // SYNCRON_BASELINES_MISAR_OVERFLOW_HH
