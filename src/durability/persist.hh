/**
 * @file
 * The persist-hook seam between the SynCron engine and the durability
 * subsystem.
 *
 * The SE structures (syncron/engine.cc station service loop,
 * sync_table alloc/release, indexing_counters increment/decrement,
 * overflow's in-memory syncronVar writes) call these hooks at every
 * state transition; DurabilityManager implements them to account PM
 * writes and keep the write-ahead log. When no hook is installed
 * (PersistMode::Off) the engine skips the calls entirely, so the
 * volatile baseline is untouched.
 *
 * Contract (enforced by tools/lint_contracts.py): persist hooks are
 * called only from src/durability/ and src/syncron/ — the durability
 * boundary stays exactly the SE-state surface.
 */

#ifndef SYNCRON_DURABILITY_PERSIST_HH
#define SYNCRON_DURABILITY_PERSIST_HH

#include <cstdint>

#include "common/types.hh"

namespace syncron::durability {

/** Receiver of SE state-transition persist events. */
class PersistHook
{
  public:
    virtual ~PersistHook() = default;

    /**
     * A station is servicing the message for WAL sequence @p walSeq
     * (0 for protocol-internal messages) touching @p var; returns the
     * (possibly extended) service-done tick.
     */
    virtual Tick
    persistStation(UnitId, Addr, std::uint64_t /*walSeq*/, Tick done)
    {
        return done;
    }

    /** An ST entry for @p var was allocated (@p alloc) or released. */
    virtual void persistTableEntry(UnitId, Addr, bool /*alloc*/) {}

    /** An indexing counter backing @p var changed. */
    virtual void persistCounter(UnitId, Addr) {}

    /** The overflowed in-memory record for @p var was rewritten. */
    virtual void persistMemVar(UnitId, Addr) {}
};

} // namespace syncron::durability

#endif // SYNCRON_DURABILITY_PERSIST_HH
