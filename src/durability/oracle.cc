#include "durability/oracle.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace syncron::durability {

namespace {

/** Non-zero entries of a map (zero balances == absent balances). */
template <typename Map>
Map
nonZero(const Map &m)
{
    Map out;
    for (const auto &[k, v] : m) {
        if (v != 0)
            out.emplace(k, v);
    }
    return out;
}

} // namespace

ShadowOracle::ShadowOracle(
    const std::vector<trace::TracePrimitive> &prims)
    : prims_(prims)
{
    for (std::uint32_t i = 0; i < prims_.size(); ++i) {
        if (prims_[i].kind != trace::PrimKind::Semaphore)
            continue;
        SemSt &s = sems_[i];
        s.initial = prims_[i].param;
        s.avail = prims_[i].param;
    }
}

void
ShadowOracle::violation(std::string msg)
{
    violations_.push_back(std::move(msg));
}

void
ShadowOracle::apply(const trace::TraceRecord &r)
{
    SYNCRON_ASSERT(r.prim < prims_.size(),
                   "oracle record references primitive "
                       << r.prim << " past the table");
    switch (r.kind) {
      case sync::OpKind::LockAcquire: {
        LockSt &s = locks_[r.prim];
        ++s.acquires;
        if (s.owned && s.owner != r.core)
            ++s.pendingReleases[s.owner];
        s.owned = true;
        s.owner = r.core;
        break;
      }

      case sync::OpKind::LockRelease: {
        LockSt &s = locks_[r.prim];
        ++s.releases;
        if (s.owned && s.owner == r.core) {
            s.owned = false;
            break;
        }
        if (auto it = s.pendingReleases.find(r.core);
            it != s.pendingReleases.end()) {
            if (--it->second == 0)
                s.pendingReleases.erase(it);
            break;
        }
        std::ostringstream os;
        os << "lock prim#" << r.prim << ": release by core " << r.core
           << " with no matching grant (double-granted or lost "
              "ownership state)";
        violation(os.str());
        break;
      }

      case sync::OpKind::BarrierWaitWithinUnit:
      case sync::OpKind::BarrierWaitAcrossUnits:
        ++barriers_[r.prim].arrivals[r.core];
        break;

      case sync::OpKind::SemWait: {
        SemSt &s = sems_[r.prim];
        ++s.balance[r.core];
        --s.avail;
        s.grantTicks.push_back(r.completed);
        break;
      }

      case sync::OpKind::SemPost: {
        SemSt &s = sems_[r.prim];
        --s.balance[r.core];
        ++s.avail;
        // Posts commit SE-side at issue (req_async); account there so
        // the merged underflow check never reorders real time.
        s.postTicks.push_back(r.issued);
        break;
      }

      case sync::OpKind::CondWait:
      case sync::OpKind::CondSignal:
      case sync::OpKind::CondBroadcast:
        break; // outside the oracle's scope (see file comment)
    }
}

void
ShadowOracle::checkInvariants(std::uint32_t totalCores)
{
    for (const auto &[prim, b] : barriers_) {
        std::uint64_t lo = ~std::uint64_t{0};
        std::uint64_t hi = 0;
        for (std::uint32_t core = 0; core < totalCores; ++core) {
            const auto it = b.arrivals.find(core);
            const std::uint64_t n =
                it == b.arrivals.end() ? 0 : it->second;
            lo = std::min(lo, n);
            hi = std::max(hi, n);
        }
        if (totalCores != 0 && hi > lo + 1) {
            std::ostringstream os;
            os << "barrier prim#" << prim
               << ": arrivals not conserved (core spread " << lo << ".."
               << hi << " exceeds one round)";
            violation(os.str());
        }
    }

    for (auto &[prim, s] : sems_) {
        std::vector<Tick> posts = s.postTicks;
        std::vector<Tick> grants = s.grantTicks;
        std::sort(posts.begin(), posts.end());
        std::sort(grants.begin(), grants.end());
        std::int64_t balance = s.initial;
        std::size_t post = 0;
        std::uint64_t waits = 0;
        for (const Tick g : grants) {
            while (post < posts.size() && posts[post] <= g) {
                ++post;
                ++balance;
            }
            ++waits;
            --balance;
            if (balance < 0) {
                std::ostringstream os;
                os << "semaphore prim#" << prim << ": wait #" << waits
                   << " granted with no resource available (lost "
                      "wakeup bookkeeping; initial "
                   << s.initial << ", posts so far " << post << ")";
                violation(os.str());
                break;
            }
        }
    }
}

bool
ShadowOracle::idle() const
{
    for (const auto &[prim, s] : locks_) {
        if (s.owned || !s.pendingReleases.empty())
            return false;
    }
    for (const auto &[prim, s] : sems_) {
        if (s.avail != s.initial)
            return false;
    }
    return true;
}

bool
ShadowOracle::sameStateAs(const ShadowOracle &other) const
{
    auto lockLive = [](const std::map<std::uint32_t, LockSt> &m) {
        std::map<std::uint32_t,
                 std::pair<std::int64_t,
                           std::map<std::uint32_t, unsigned>>>
            out;
        for (const auto &[prim, s] : m) {
            if (s.owned || !s.pendingReleases.empty()) {
                out.emplace(prim,
                            std::make_pair(
                                s.owned ? std::int64_t{s.owner} : -1,
                                nonZero(s.pendingReleases)));
            }
        }
        return out;
    };
    if (lockLive(locks_) != lockLive(other.locks_))
        return false;

    auto semLive = [](const std::map<std::uint32_t, SemSt> &m) {
        std::map<std::uint32_t,
                 std::pair<std::int64_t,
                           std::map<std::uint32_t, std::int64_t>>>
            out;
        for (const auto &[prim, s] : m) {
            auto live = nonZero(s.balance);
            if (s.avail != s.initial || !live.empty()) {
                out.emplace(prim, std::make_pair(s.avail - s.initial,
                                                 std::move(live)));
            }
        }
        return out;
    };
    if (semLive(sems_) != semLive(other.sems_))
        return false;

    auto barLive = [](const std::map<std::uint32_t, BarSt> &m) {
        std::map<std::uint32_t, std::map<std::uint32_t, std::uint64_t>>
            out;
        for (const auto &[prim, b] : m) {
            auto live = nonZero(b.arrivals);
            if (!live.empty())
                out.emplace(prim, std::move(live));
        }
        return out;
    };
    return barLive(barriers_) == barLive(other.barriers_);
}

} // namespace syncron::durability
