#include "durability/backend.hh"

#include "common/log.hh"
#include "durability/manager.hh"
#include "system/machine.hh"

namespace syncron::durability {

PersistingBackend::PersistingBackend(
    std::unique_ptr<sync::SyncBackend> inner, Machine &machine,
    DurabilityManager &durability)
    : inner_(std::move(inner)), machine_(machine),
      durability_(durability)
{
    SYNCRON_ASSERT(inner_ != nullptr,
                   "PersistingBackend wrapping nothing");
}

void
PersistingBackend::request(core::Core &requester,
                           const sync::SyncRequest &req, sim::Gate *gate)
{
    const sync::SyncRequest stamped =
        req.withWalSeq(durability_.nextIntentSeq());
    if (stamped.releaseType()) {
        // req_async commits at issue; its WAL append rides completion.
        inner_->request(requester, stamped, gate);
        return;
    }

    // Write-ahead: the intent record reaches the PM durability domain
    // before the operation is admitted to the SE.
    ++pending_[stamped.var()];
    machine_.eq().scheduleIn(
        machine_.config().pm.writeTicks,
        [this, &requester, stamped, gate] {
            auto it = pending_.find(stamped.var());
            SYNCRON_ASSERT(it != pending_.end() && it->second > 0,
                           "persist-delay accounting lost @"
                               << stamped.var());
            if (--it->second == 0)
                pending_.erase(it);
            inner_->request(requester, stamped, gate);
        });
}

bool
PersistingBackend::idleVar(Addr var) const
{
    return pending_.count(var) == 0 && inner_->idleVar(var);
}

void
PersistingBackend::releaseVar(Addr var)
{
    inner_->releaseVar(var);
}

} // namespace syncron::durability
