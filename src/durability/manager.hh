/**
 * @file
 * DurabilityManager: the write-ahead log for SE state.
 *
 * Installed by NdpSystem when SystemConfig::persistMode != Off, in two
 * roles at once:
 *
 *   - As a sync::OpObserver (auxiliary observer on SyncApi) it appends
 *     every completed operation to the WAL — an internal
 *     trace::TraceCapture, so the persisted log is by construction the
 *     same logical stream the trace subsystem captures and the
 *     recovery engine replays. Eager mode makes each record durable as
 *     it lands (one PM write per record); Epoch mode stages records
 *     and flushes every epochOps completions (one batched PM write),
 *     so a crash loses the staged tail.
 *
 *   - As a durability::PersistHook (installed on the SynCron engine)
 *     it accounts the PM writes of the SE-state images themselves: ST
 *     entry allocate/release, indexing-counter updates, and overflowed
 *     in-memory records.
 *
 * PM write latency is charged on the request path by
 * durability::PersistingBackend (Eager mode only); energy is derived
 * from the pmBitsWritten counter by system/energy.
 *
 * snapshot() freezes the durable image — after a crash (noteCrash())
 * it is exactly what a post-crash recovery can see.
 */

#ifndef SYNCRON_DURABILITY_MANAGER_HH
#define SYNCRON_DURABILITY_MANAGER_HH

#include <cstdint>

#include "durability/image.hh"
#include "durability/persist.hh"
#include "durability/pm_model.hh"
#include "sync/observer.hh"
#include "trace/capture.hh"

namespace syncron {
class Machine;
} // namespace syncron

namespace syncron::durability {

/** WAL + PM accounting for one system; see the file comment. */
class DurabilityManager final : public sync::OpObserver,
                               public PersistHook
{
  public:
    explicit DurabilityManager(Machine &machine);

    DurabilityManager(const DurabilityManager &) = delete;
    DurabilityManager &operator=(const DurabilityManager &) = delete;

    // -- sync::OpObserver ----------------------------------------------
    void onComplete(CoreId core, const sync::SyncRequest &req,
                    Tick issued, Tick completed) override;
    void onDestroy(Addr addr) override;

    // -- durability::PersistHook ---------------------------------------
    Tick persistStation(UnitId unit, Addr var, std::uint64_t walSeq,
                        Tick done) override;
    void persistTableEntry(UnitId unit, Addr var, bool alloc) override;
    void persistCounter(UnitId unit, Addr var) override;
    void persistMemVar(UnitId unit, Addr var) override;

    // -- Lifecycle -----------------------------------------------------
    /** Next write-ahead intent sequence (stamped on requests). */
    std::uint64_t nextIntentSeq() { return ++intentSeq_; }

    /** The machine tore down mid-run at @p tick. */
    void noteCrash(Tick tick) { crashTick_ = tick; }

    /** Clean end of run: flushes any staged epoch tail. */
    void shutdownFlush() { flushStaged(); }

    /** Freezes the durable image (the PM domain's contents). */
    PersistedImage snapshot() const;

    /** The full WAL as a replayable trace (durable + staged). */
    const trace::Trace &walTrace() const { return capture_.trace(); }

    std::uint64_t appended() const { return appended_; }
    std::uint64_t durable() const { return durable_; }
    std::uint64_t stationPersists() const { return stationPersists_; }
    PersistMode mode() const { return mode_; }

  private:
    void flushStaged();

    Machine &machine_;
    PersistMode mode_;
    std::uint32_t epochOps_;
    trace::TraceCapture capture_;
    std::uint64_t appended_ = 0;
    std::uint64_t durable_ = 0;
    std::uint64_t staged_ = 0;
    std::uint64_t intentSeq_ = 0;
    std::uint64_t stationPersists_ = 0;
    Tick crashTick_ = 0;
};

} // namespace syncron::durability

#endif // SYNCRON_DURABILITY_MANAGER_HH
