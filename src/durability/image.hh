/**
 * @file
 * The persisted image: what survives a crash.
 *
 * The durability subsystem's write-ahead log is a logical
 * completion-record stream (the same TraceRecord/TracePrimitive values
 * the trace subsystem captures — recovery is a trace consumer), plus
 * the header state needed to interpret it: machine shape, persist mode,
 * and the crash tick. `records` holds the *durable* prefix of the WAL —
 * everything flushed to the PM durability domain before the crash;
 * `appended` counts every record the manager saw, so `appended -
 * records.size()` is the staged tail an epoch-mode crash lost.
 *
 * On-disk container, versioned like the trace container ("SYNCTRC"):
 * magic "SYNCDUR\0", varint version, header fields, primitive table,
 * delta/zigzag records keyed by dense primitive ids. Readers reject
 * unknown versions, truncation, trailing bytes, and dangling primitive
 * references.
 */

#ifndef SYNCRON_DURABILITY_IMAGE_HH
#define SYNCRON_DURABILITY_IMAGE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "durability/pm_model.hh"
#include "trace/format.hh"

namespace syncron::durability {

/** On-disk magic: "SYNCDUR\0". */
inline constexpr char kImageMagic[8] = {'S', 'Y', 'N', 'C',
                                        'D', 'U', 'R', '\0'};

/** Current persisted-image layout version. */
inline constexpr std::uint32_t kImageVersion = 1;

/** Snapshot of the PM durability domain at a crash (or clean end). */
struct PersistedImage
{
    std::uint32_t numUnits = 0;
    std::uint32_t clientCoresPerUnit = 0;
    PersistMode mode = PersistMode::Off;
    std::uint32_t epochOps = 0; ///< flush interval (Epoch mode)
    Tick crashTick = 0;         ///< 0 == clean shutdown
    std::uint64_t appended = 0; ///< WAL records appended (>= durable)

    /** Primitive metadata; persisted eagerly at mint in every mode. */
    std::vector<trace::TracePrimitive> primitives;
    /** The durable WAL prefix, in completion order. */
    std::vector<trace::TraceRecord> records;

    std::uint64_t durable() const { return records.size(); }

    friend bool operator==(const PersistedImage &,
                           const PersistedImage &) = default;
};

/** Serializes @p img; fatal()s on stream errors. */
void writeImage(std::ostream &os, const PersistedImage &img);

/** Parses an image; fatal()s on any corruption (see file comment). */
PersistedImage readImage(std::istream &is);

/** File variants. */
void writeImageFile(const std::string &path, const PersistedImage &img);
PersistedImage readImageFile(const std::string &path);

} // namespace syncron::durability

#endif // SYNCRON_DURABILITY_IMAGE_HH
