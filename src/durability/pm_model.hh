/**
 * @file
 * Persistent-memory durability model parameters.
 *
 * NearPM-style persistent memory sits behind the NDP units; the SE's
 * synchronization state (ST entries, indexing counters, overflowed
 * in-memory records) can be made crash-consistent by logging every
 * state transition through a modeled PM write. This header carries only
 * the knobs and record geometries so SystemConfig can embed them
 * without pulling the durability subsystem into every translation unit.
 *
 * Two persist granularities are modeled:
 *   - Eager: every completed sync op is persisted before the next one
 *     is admitted — a PM write (PmParams::writeTicks) is charged on the
 *     issue path of every acquire-type operation, and the WAL is
 *     durable up to the last completed op at any crash point.
 *   - Epoch: completions are staged in a volatile buffer and flushed as
 *     one batched PM write every epochOps completions — no per-op
 *     latency, but a crash loses the staged tail back to the last
 *     epoch boundary.
 */

#ifndef SYNCRON_DURABILITY_PM_MODEL_HH
#define SYNCRON_DURABILITY_PM_MODEL_HH

#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace syncron::durability {

/** Persist granularity for SE state (see file comment). */
enum class PersistMode : std::uint8_t
{
    Off,   ///< no durability: SE state is volatile (the paper's design)
    Eager, ///< per-op write-ahead persist
    Epoch, ///< epoch-batched persist (staged tail lost on crash)
};

/** Printable name. */
inline const char *
persistModeName(PersistMode m)
{
    switch (m) {
      case PersistMode::Off: return "off";
      case PersistMode::Eager: return "eager";
      case PersistMode::Epoch: return "epoch";
    }
    return "?";
}

/** Parses a mode name; returns false on an unknown name. */
inline bool
persistModeFromName(std::string_view name, PersistMode &out)
{
    if (name == "off") {
        out = PersistMode::Off;
    } else if (name == "eager") {
        out = PersistMode::Eager;
    } else if (name == "epoch") {
        out = PersistMode::Epoch;
    } else {
        return false;
    }
    return true;
}

/** Modeled PM write path (NearPM-class device behind each unit). */
struct PmParams
{
    /** Latency of one persisted write reaching the PM durability
     *  domain; charged on every eager-persisted acquire-type op. */
    Tick writeTicks = 30000; // 30 ns

    /** Energy per persisted bit (pJ); charged via system/energy. */
    double pjPerBit = 15.0;

    friend bool operator==(const PmParams &, const PmParams &) = default;
};

// Persisted-record geometries (bits written per log append). A WAL
// record mirrors the wire-level request descriptor plus sequencing;
// the SE-state images mirror the structures they shadow.
inline constexpr unsigned kWalRecordBits = 128;
/** One ST entry image (sync_table.hh StEntry, rounded up). */
inline constexpr unsigned kStEntryBits = 256;
/** One indexing-counter image. */
inline constexpr unsigned kCounterBits = 32;
/** One overflowed in-memory syncronVar record (16 B, Section 4.3.2). */
inline constexpr unsigned kMemVarBits = 128;

} // namespace syncron::durability

#endif // SYNCRON_DURABILITY_PM_MODEL_HH
