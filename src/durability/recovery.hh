/**
 * @file
 * The recovery engine: rebuilds synchronization state after a crash
 * from the persisted image plus the reference log of completed
 * operations — a new consumer of the trace format.
 *
 * Inputs:
 *   - the PersistedImage snapshotted at the crash (the durable WAL
 *     prefix; see durability/image.hh);
 *   - the reference WAL of the same program's clean run (simulation is
 *     deterministic, so the crashed run's stream is a strict prefix of
 *     the reference stream — recover() verifies exactly that).
 *
 * recover() then:
 *   1. validates the image against the reference (shape, primitive
 *      table prefix, record-stream prefix);
 *   2. rebuilds the recovered state as a ShadowOracle over the durable
 *      records and runs the conservation invariants (no double grants,
 *      no lost wakeups, barrier arrivals conserved);
 *   3. computes a consistent rollback cut: per core, the latest
 *      quiescent point (no lock held, semaphore wait/post balanced) at
 *      or before its durable frontier, globally aligned so that every
 *      barrier round is re-executed by all of its participants or by
 *      none (a crash splits a round's completion records; rolling the
 *      durable arrivals back lets the whole round re-run);
 *   4. splits the reference log at the cut into a `prefix` (state that
 *      stands) and a `resume` trace — the undone tail, replayable
 *      as-is by trace::Replayer on a fresh system.
 *
 * Scope: lock/barrier/semaphore streams (cond-family records are
 * reported as a violation — the replication family that drives crash
 * testing has none).
 */

#ifndef SYNCRON_DURABILITY_RECOVERY_HH
#define SYNCRON_DURABILITY_RECOVERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "durability/image.hh"
#include "durability/oracle.hh"
#include "trace/format.hh"

namespace syncron::durability {

/** Outcome of one recovery; see the file comment. */
struct RecoveryResult
{
    /** Validation + invariant failures; empty on a clean recovery. */
    std::vector<std::string> violations;

    std::uint64_t durableRecords = 0;
    /** Durable records undone to reach the consistent cut. */
    std::uint64_t rolledBack = 0;

    /** Oracle over the durable records (the recovered SE state). */
    ShadowOracle recovered;

    /** Reference records that stand (per-core prefix of the cut). */
    trace::Trace prefix;
    /** The undone tail; replay on a fresh system to finish the run. */
    trace::Trace resume;
};

/** Rebuilds state from a persisted image + reference log. */
class RecoveryEngine
{
  public:
    /** Both inputs must outlive the engine. */
    RecoveryEngine(const PersistedImage &image,
                   const trace::Trace &reference)
        : image_(image), ref_(reference)
    {}

    RecoveryResult recover() const;

  private:
    const PersistedImage &image_;
    const trace::Trace &ref_;
};

} // namespace syncron::durability

#endif // SYNCRON_DURABILITY_RECOVERY_HH
