#include "durability/image.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/log.hh"

namespace syncron::durability {

namespace {

// -- LEB128 varints (file-local, as in trace/format.cc) ----------------

void
putVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

std::uint64_t
getVarint(std::istream &is)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int byte = is.get();
        if (byte == std::istream::traits_type::eof())
            SYNCRON_FATAL("persisted image truncated inside a varint");
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
    }
    SYNCRON_FATAL("persisted-image varint longer than 64 bits "
                  "(corrupt stream)");
}

/** Bounds-checks an enum read from the wire. */
template <typename Enum>
Enum
checkedEnum(std::uint64_t raw, std::uint64_t last, const char *what)
{
    if (raw > last)
        SYNCRON_FATAL("persisted image contains out-of-range "
                      << what << " value " << raw);
    return static_cast<Enum>(raw);
}

/** Cap for size-driven reserve() so a corrupt count cannot OOM us. */
constexpr std::size_t kReserveCap = 1 << 16;

} // namespace

void
writeImage(std::ostream &os, const PersistedImage &img)
{
    os.write(kImageMagic, sizeof(kImageMagic));
    putVarint(os, kImageVersion);

    putVarint(os, img.numUnits);
    putVarint(os, img.clientCoresPerUnit);
    putVarint(os, static_cast<std::uint64_t>(img.mode));
    putVarint(os, img.epochOps);
    putVarint(os, img.crashTick);
    SYNCRON_ASSERT(img.appended >= img.records.size(),
                   "image appended count " << img.appended
                                           << " below durable count "
                                           << img.records.size());
    putVarint(os, img.appended);

    putVarint(os, img.primitives.size());
    for (const trace::TracePrimitive &p : img.primitives) {
        putVarint(os, static_cast<std::uint64_t>(p.kind));
        putVarint(os, p.home);
        putVarint(os, p.param);
        putVarint(os, static_cast<std::uint64_t>(p.scope));
    }

    putVarint(os, img.records.size());
    for (const trace::TraceRecord &r : img.records) {
        if (r.assocPrim != 0 && r.kind != sync::OpKind::CondWait)
            SYNCRON_FATAL("image record carries an associated primitive "
                          "but is not a cond_wait");
        putVarint(os, r.issued);
        SYNCRON_ASSERT(r.completed >= r.issued,
                       "image record completes before it issues");
        putVarint(os, r.completed - r.issued);
        putVarint(os, r.core);
        putVarint(os, static_cast<std::uint64_t>(r.kind));
        putVarint(os, r.prim);
        putVarint(os, r.assocPrim);
    }

    if (!os)
        SYNCRON_FATAL("stream error while writing persisted image");
}

PersistedImage
readImage(std::istream &is)
{
    char magic[sizeof(kImageMagic)];
    is.read(magic, sizeof(magic));
    if (!is || !std::equal(magic, magic + sizeof(magic), kImageMagic))
        SYNCRON_FATAL("not a SynCron persisted image (bad magic)");

    const std::uint64_t version = getVarint(is);
    if (version != kImageVersion) {
        SYNCRON_FATAL("unsupported persisted-image version "
                      << version << " (this build reads version "
                      << kImageVersion << ")");
    }

    PersistedImage img;
    img.numUnits = static_cast<std::uint32_t>(getVarint(is));
    img.clientCoresPerUnit = static_cast<std::uint32_t>(getVarint(is));
    img.mode = checkedEnum<PersistMode>(
        getVarint(is), static_cast<std::uint64_t>(PersistMode::Epoch),
        "persist mode");
    img.epochOps = static_cast<std::uint32_t>(getVarint(is));
    img.crashTick = getVarint(is);
    img.appended = getVarint(is);

    const std::uint64_t cores =
        std::uint64_t{img.numUnits} * img.clientCoresPerUnit;

    const std::uint64_t numPrims = getVarint(is);
    img.primitives.reserve(
        std::min<std::uint64_t>(numPrims, kReserveCap));
    for (std::uint64_t i = 0; i < numPrims; ++i) {
        trace::TracePrimitive p;
        p.kind = checkedEnum<trace::PrimKind>(
            getVarint(is),
            static_cast<std::uint64_t>(trace::PrimKind::CondVar),
            "primitive kind");
        p.home = static_cast<UnitId>(getVarint(is));
        if (img.numUnits != 0 && p.home >= img.numUnits) {
            SYNCRON_FATAL("image primitive " << i << " homed in unit "
                                             << p.home << " of a "
                                             << img.numUnits
                                             << "-unit machine");
        }
        p.param = static_cast<std::uint32_t>(getVarint(is));
        p.scope = checkedEnum<sync::BarrierScope>(
            getVarint(is),
            static_cast<std::uint64_t>(sync::BarrierScope::AcrossUnits),
            "barrier scope");
        img.primitives.push_back(p);
    }

    const std::uint64_t numRecords = getVarint(is);
    if (img.appended < numRecords)
        SYNCRON_FATAL("image appended count " << img.appended
                                              << " below durable count "
                                              << numRecords);
    img.records.reserve(
        std::min<std::uint64_t>(numRecords, kReserveCap));
    for (std::uint64_t i = 0; i < numRecords; ++i) {
        trace::TraceRecord r;
        r.issued = getVarint(is);
        r.completed = r.issued + getVarint(is);
        r.core = static_cast<std::uint32_t>(getVarint(is));
        if (r.core >= cores) {
            SYNCRON_FATAL("image record " << i << " issued by core "
                                          << r.core << " of a "
                                          << cores << "-core machine");
        }
        r.kind = checkedEnum<sync::OpKind>(
            getVarint(is),
            static_cast<std::uint64_t>(sync::OpKind::CondBroadcast),
            "op kind");
        r.prim = static_cast<std::uint32_t>(getVarint(is));
        if (r.prim >= img.primitives.size()) {
            SYNCRON_FATAL("image record " << i
                                          << " references primitive "
                                          << r.prim
                                          << " past the table");
        }
        r.assocPrim = static_cast<std::uint32_t>(getVarint(is));
        if (r.kind == sync::OpKind::CondWait) {
            if (r.assocPrim >= img.primitives.size()) {
                SYNCRON_FATAL("image cond_wait record "
                              << i << " with dangling associated lock "
                              << r.assocPrim);
            }
        } else if (r.assocPrim != 0) {
            SYNCRON_FATAL("image record " << i
                                          << " carries an associated "
                                             "primitive but is not a "
                                             "cond_wait");
        }
        img.records.push_back(r);
    }

    if (is.peek() != std::istream::traits_type::eof())
        SYNCRON_FATAL("trailing bytes after the last image record");
    return img;
}

void
writeImageFile(const std::string &path, const PersistedImage &img)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        SYNCRON_FATAL("cannot write persisted image '" << path << "'");
    writeImage(os, img);
}

PersistedImage
readImageFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        SYNCRON_FATAL("cannot read persisted image '" << path << "'");
    return readImage(is);
}

} // namespace syncron::durability
