#include "durability/recovery.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/log.hh"

namespace syncron::durability {

namespace {

bool
isBarrierWait(sync::OpKind k)
{
    return k == sync::OpKind::BarrierWaitWithinUnit
           || k == sync::OpKind::BarrierWaitAcrossUnits;
}

bool
isCondFamily(sync::OpKind k)
{
    return k == sync::OpKind::CondWait || k == sync::OpKind::CondSignal
           || k == sync::OpKind::CondBroadcast;
}

/**
 * Largest j <= limit such that after the core's first j ops it holds
 * no lock and every semaphore it waited on has been re-posted — the
 * per-core quiescent points a rollback cut may land on.
 */
std::uint64_t
lastQuiescent(const trace::Trace &ref,
              const std::vector<std::uint32_t> &ops, std::uint64_t limit)
{
    std::map<std::uint32_t, std::int64_t> held; // lock/sem imbalance
    std::size_t nonZero = 0;
    auto adjust = [&](std::uint32_t prim, std::int64_t delta) {
        std::int64_t &v = held[prim];
        if (v != 0)
            --nonZero;
        v += delta;
        if (v != 0)
            ++nonZero;
    };

    std::uint64_t last = 0;
    for (std::uint64_t j = 0; j < limit; ++j) {
        const trace::TraceRecord &r = ref.records[ops[j]];
        switch (r.kind) {
          case sync::OpKind::LockAcquire: adjust(r.prim, 1); break;
          case sync::OpKind::LockRelease: adjust(r.prim, -1); break;
          case sync::OpKind::SemWait: adjust(r.prim, 1); break;
          case sync::OpKind::SemPost: adjust(r.prim, -1); break;
          default: break;
        }
        if (nonZero == 0)
            last = j + 1;
    }
    return last;
}

} // namespace

RecoveryResult
RecoveryEngine::recover() const
{
    RecoveryResult out;
    auto fail = [&out](std::string msg) {
        out.violations.push_back(std::move(msg));
    };

    // ---- 1. Validate the image against the reference log -------------
    if (image_.numUnits != ref_.numUnits
        || image_.clientCoresPerUnit != ref_.clientCoresPerUnit) {
        fail("machine shape mismatch between image and reference log");
        return out;
    }
    if (image_.primitives.size() > ref_.primitives.size()) {
        fail("image primitive table larger than the reference's");
        return out;
    }
    for (std::size_t i = 0; i < image_.primitives.size(); ++i) {
        if (!(image_.primitives[i] == ref_.primitives[i])) {
            std::ostringstream os;
            os << "image primitive " << i
               << " diverges from the reference table";
            fail(os.str());
            return out;
        }
    }
    if (image_.records.size() > ref_.records.size()) {
        fail("durable log longer than the reference log");
        return out;
    }
    for (std::size_t i = 0; i < image_.records.size(); ++i) {
        if (!(image_.records[i] == ref_.records[i])) {
            std::ostringstream os;
            os << "durable record " << i
               << " is not a prefix of the reference log "
                  "(non-deterministic capture or torn WAL)";
            fail(os.str());
            return out;
        }
    }
    for (const trace::TraceRecord &r : ref_.records) {
        if (isCondFamily(r.kind)) {
            fail("cond-family records are outside recovery's scope");
            return out;
        }
    }

    const std::uint32_t cores = ref_.numClientCores();
    out.durableRecords = image_.records.size();

    // ---- 2. Rebuild the recovered state and check invariants ---------
    out.recovered = ShadowOracle(ref_.primitives);
    for (const trace::TraceRecord &r : image_.records)
        out.recovered.apply(r);
    out.recovered.checkInvariants(cores);
    for (const std::string &v : out.recovered.violations())
        fail("recovered state: " + v);

    // ---- 3. Consistent rollback cut ----------------------------------
    // Per-core program order: the per-core subsequence of the (global,
    // completion-ordered) reference log. The durable set of a core is
    // a program-order prefix of it (a prefix of the global stream
    // restricted to one core is a prefix of that core's subsequence).
    std::vector<std::vector<std::uint32_t>> ops(cores);
    for (std::uint32_t i = 0; i < ref_.records.size(); ++i)
        ops[ref_.records[i].core].push_back(i);
    std::vector<std::uint64_t> durable(cores, 0);
    for (const trace::TraceRecord &r : image_.records)
        ++durable[r.core];

    // Barrier rounds: the k-th wait of each participant on one barrier
    // forms round k; a cut must re-run a round with all of its
    // participants or with none (arity is all-or-nothing).
    using RoundKey = std::pair<std::uint32_t, std::uint64_t>;
    std::map<RoundKey, std::vector<std::pair<std::uint32_t,
                                             std::uint64_t>>>
        rounds; // (prim, round) -> [(core, per-core index)]
    for (std::uint32_t c = 0; c < cores; ++c) {
        std::map<std::uint32_t, std::uint64_t> waitCount;
        for (std::uint64_t j = 0; j < ops[c].size(); ++j) {
            const trace::TraceRecord &r = ref_.records[ops[c][j]];
            if (isBarrierWait(r.kind))
                rounds[{r.prim, waitCount[r.prim]++}].emplace_back(c, j);
        }
    }

    std::set<RoundKey> forced; // rounds that must fully re-run
    for (const auto &[key, members] : rounds) {
        for (const auto &[c, j] : members) {
            if (j >= durable[c]) {
                forced.insert(key);
                break;
            }
        }
    }

    std::vector<std::uint64_t> cut(cores, 0);
    for (bool changed = true; changed;) {
        std::vector<std::uint64_t> cap(cores);
        for (std::uint32_t c = 0; c < cores; ++c)
            cap[c] = ops[c].size();
        for (const RoundKey &key : forced) {
            for (const auto &[c, j] : rounds.at(key))
                cap[c] = std::min(cap[c], j);
        }
        for (std::uint32_t c = 0; c < cores; ++c) {
            cut[c] = lastQuiescent(ref_, ops[c],
                                   std::min(durable[c], cap[c]));
        }
        changed = false;
        for (const auto &[key, members] : rounds) {
            if (forced.count(key) != 0)
                continue;
            for (const auto &[c, j] : members) {
                if (j >= cut[c]) {
                    // One participant re-waits this round; all must.
                    forced.insert(key);
                    changed = true;
                    break;
                }
            }
        }
    }

    for (std::uint32_t c = 0; c < cores; ++c)
        out.rolledBack += durable[c] - cut[c];

    // ---- 4. Split the reference log at the cut -----------------------
    out.prefix.numUnits = out.resume.numUnits = ref_.numUnits;
    out.prefix.clientCoresPerUnit = out.resume.clientCoresPerUnit =
        ref_.clientCoresPerUnit;
    out.prefix.primitives = out.resume.primitives = ref_.primitives;
    std::vector<std::uint64_t> cursor(cores, 0);
    for (const trace::TraceRecord &r : ref_.records) {
        if (cursor[r.core]++ < cut[r.core])
            out.prefix.records.push_back(r);
        else
            out.resume.records.push_back(r);
    }
    return out;
}

} // namespace syncron::durability
