#include "durability/manager.hh"

#include "common/log.hh"
#include "system/machine.hh"

namespace syncron::durability {

DurabilityManager::DurabilityManager(Machine &machine)
    : machine_(machine),
      mode_(machine.config().persistMode),
      epochOps_(machine.config().persistEpochOps),
      capture_(machine.config())
{
    SYNCRON_ASSERT(mode_ != PersistMode::Off,
                   "DurabilityManager built with durability off");
}

void
DurabilityManager::onComplete(CoreId core, const sync::SyncRequest &req,
                              Tick issued, Tick completed)
{
    capture_.record(core, req, issued, completed);
    ++appended_;
    if (mode_ == PersistMode::Eager) {
        durable_ = appended_;
        ++machine_.stats().pmWrites;
        machine_.stats().pmBitsWritten += kWalRecordBits;
        return;
    }
    if (++staged_ >= epochOps_)
        flushStaged();
}

void
DurabilityManager::onDestroy(Addr addr)
{
    capture_.recordDestroy(addr);
}

void
DurabilityManager::flushStaged()
{
    if (staged_ == 0)
        return;
    ++machine_.stats().pmFlushes;
    ++machine_.stats().pmWrites;
    machine_.stats().pmBitsWritten += staged_ * kWalRecordBits;
    durable_ = appended_;
    staged_ = 0;
}

Tick
DurabilityManager::persistStation(UnitId, Addr, std::uint64_t,
                                  Tick done)
{
    // The WAL record itself is charged by onComplete(); the station
    // call is the correlation point (walSeq) and is counted for tests.
    ++stationPersists_;
    return done;
}

void
DurabilityManager::persistTableEntry(UnitId, Addr, bool)
{
    if (mode_ != PersistMode::Eager)
        return; // epoch flushes subsume the per-transition images
    ++machine_.stats().pmWrites;
    machine_.stats().pmBitsWritten += kStEntryBits;
}

void
DurabilityManager::persistCounter(UnitId, Addr)
{
    if (mode_ != PersistMode::Eager)
        return;
    ++machine_.stats().pmWrites;
    machine_.stats().pmBitsWritten += kCounterBits;
}

void
DurabilityManager::persistMemVar(UnitId, Addr)
{
    if (mode_ != PersistMode::Eager)
        return;
    ++machine_.stats().pmWrites;
    machine_.stats().pmBitsWritten += kMemVarBits;
}

PersistedImage
DurabilityManager::snapshot() const
{
    const trace::Trace &wal = capture_.trace();
    SYNCRON_ASSERT(durable_ <= wal.records.size(),
                   "durable count " << durable_
                                    << " past the WAL's "
                                    << wal.records.size()
                                    << " records");
    PersistedImage img;
    img.numUnits = machine_.config().numUnits;
    img.clientCoresPerUnit = machine_.config().clientCoresPerUnit;
    img.mode = mode_;
    img.epochOps = epochOps_;
    img.crashTick = crashTick_;
    img.appended = appended_;
    // Primitive metadata is tiny and persisted eagerly at mint in
    // every mode, so the whole table survives; only record durability
    // depends on the mode.
    img.primitives = wal.primitives;
    img.records.assign(wal.records.begin(),
                       wal.records.begin()
                           + static_cast<std::ptrdiff_t>(durable_));
    return img;
}

} // namespace syncron::durability
