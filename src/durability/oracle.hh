/**
 * @file
 * The shadow oracle: a logical model of synchronization state derived
 * purely from a completion-record stream, against which recovered SE
 * state is checked.
 *
 * The oracle applies TraceRecords in stream (completion) order and
 * maintains, per primitive:
 *   - locks: current owner plus the displaced-owner pending-release
 *     model from src/analysis/ (a fire-and-forget release commits
 *     SE-side at issue but may be recorded after the next owner's
 *     acquire; the displaced owner's late record must match, not
 *     flag);
 *   - barriers: per-core arrival counts — conservation means the
 *     spread between the most- and least-arrived core is at most one
 *     round (a crash can split one round's records, never two);
 *   - semaphores: per-core wait/post balances plus a tick-ordered
 *     wait/post merge proving no wait was granted without an
 *     available resource (no lost or invented wakeups).
 *
 * Violations accumulate as strings; a correct durable WAL prefix
 * produces none at any crash point. Cond-family records are outside
 * the oracle's scope (the replication family that drives crash testing
 * has none) and are ignored.
 */

#ifndef SYNCRON_DURABILITY_ORACLE_HH
#define SYNCRON_DURABILITY_ORACLE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/format.hh"

namespace syncron::durability {

/** Logical sync-state model over a record stream (see file comment). */
class ShadowOracle
{
  public:
    /** An empty oracle (no primitives; assignable target). */
    ShadowOracle() = default;

    explicit ShadowOracle(
        const std::vector<trace::TracePrimitive> &prims);

    /** Applies one completion record (stream order). */
    void apply(const trace::TraceRecord &r);

    /**
     * Runs the end-of-stream conservation checks over @p totalCores:
     * barrier arrival spread and the semaphore wait/post merge.
     * Idempotent; appends to violations().
     */
    void checkInvariants(std::uint32_t totalCores);

    /** Everything found so far. */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** No lock owned, no pending release, every semaphore restored. */
    bool idle() const;

    /**
     * Logical-state equality: lock ownership, semaphore balances, and
     * barrier arrival counts (record ticks are deliberately excluded —
     * a resumed run reaches the same state on a different clock).
     */
    bool sameStateAs(const ShadowOracle &other) const;

  private:
    struct LockSt
    {
        bool owned = false;
        std::uint32_t owner = 0;
        /** Displaced former owners with a release record in flight. */
        std::map<std::uint32_t, unsigned> pendingReleases;
        std::uint64_t acquires = 0;
        std::uint64_t releases = 0;
    };

    struct BarSt
    {
        std::map<std::uint32_t, std::uint64_t> arrivals; ///< per core
    };

    struct SemSt
    {
        std::uint32_t initial = 0;
        std::int64_t avail = 0; ///< initial - waits + posts
        std::map<std::uint32_t, std::int64_t> balance; ///< per core
        std::vector<Tick> postTicks;  ///< post issue ticks
        std::vector<Tick> grantTicks; ///< wait completion ticks
    };

    void violation(std::string msg);

    std::vector<trace::TracePrimitive> prims_;
    std::map<std::uint32_t, LockSt> locks_;
    std::map<std::uint32_t, BarSt> barriers_;
    std::map<std::uint32_t, SemSt> sems_;
    std::vector<std::string> violations_;
};

} // namespace syncron::durability

#endif // SYNCRON_DURABILITY_ORACLE_HH
