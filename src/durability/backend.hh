/**
 * @file
 * PersistingBackend: the write-ahead PM latency on the request path.
 *
 * A decorator over any registered sync backend (SynCron, Central, …),
 * installed by NdpSystem in PersistMode::Eager only. Every operation
 * is stamped with a WAL intent sequence; acquire-type operations are
 * then held for PmParams::writeTicks — the modeled time for the intent
 * record to reach the PM durability domain — before being admitted to
 * the inner backend. Release-type operations are forwarded
 * immediately: req_async semantics commit at issue (SyncApi asserts
 * the gate opened synchronously), and their WAL append is charged on
 * the completion path by DurabilityManager.
 *
 * Epoch mode installs no decorator: staging is volatile and free; the
 * cost moves to the batched flush (and to the data lost at a crash).
 */

#ifndef SYNCRON_DURABILITY_BACKEND_HH
#define SYNCRON_DURABILITY_BACKEND_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sync/backend.hh"

namespace syncron {
class Machine;
} // namespace syncron

namespace syncron::durability {

class DurabilityManager;

/** Eager-persist request decorator; see the file comment. */
class PersistingBackend final : public sync::SyncBackend
{
  public:
    PersistingBackend(std::unique_ptr<sync::SyncBackend> inner,
                      Machine &machine, DurabilityManager &durability);

    void request(core::Core &requester, const sync::SyncRequest &req,
                 sim::Gate *gate) override;

    // requestBatch() deliberately inherits the per-op loop: in eager
    // mode every member carries its own write-ahead persist, so there
    // is no shared message to coalesce around.

    bool idleVar(Addr var) const override;
    void releaseVar(Addr var) override;
    const char *name() const override { return inner_->name(); }

    /** The wrapped backend (engine-specific wiring needs it). */
    sync::SyncBackend &inner() { return *inner_; }

  private:
    std::unique_ptr<sync::SyncBackend> inner_;
    Machine &machine_;
    DurabilityManager &durability_;
    /** Per-variable count of requests inside their persist delay. */
    std::unordered_map<Addr, std::uint32_t> pending_;
};

} // namespace syncron::durability

#endif // SYNCRON_DURABILITY_BACKEND_HH
