/**
 * @file
 * Graph substrate for the paper's real-application workloads (Table 6):
 * CSR storage, synthetic generators standing in for the four real
 * inputs, vertex partitioning across NDP units, and the placed graph
 * (simulated addresses + per-vertex locks) the kernels run against.
 *
 * Input substitution (see DESIGN.md): the paper uses wikipedia-20051105
 * (wk), soc-LiveJournal1 (sl), sx-stackoverflow (sx), and com-Orkut
 * (co). We generate synthetic proxies with matching structure classes —
 * skewed power-law graphs for wk/sl/sx and a denser, more uniform graph
 * for co — at simulation-tractable sizes. Contention behaviour depends
 * on degree skew, size, and partition locality, which the generators
 * control; scheme orderings are preserved.
 */

#ifndef SYNCRON_WORKLOADS_GRAPH_CSR_HH
#define SYNCRON_WORKLOADS_GRAPH_CSR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/datastructures/node_heap.hh"

namespace syncron::workloads {

/** Host-side CSR graph (undirected: both edge directions stored). */
struct Graph
{
    std::uint32_t numVertices = 0;
    std::vector<std::uint32_t> rowPtr; ///< size numVertices + 1
    std::vector<std::uint32_t> colIdx;

    std::uint32_t numEdges() const
    {
        return static_cast<std::uint32_t>(colIdx.size());
    }

    std::uint32_t degree(std::uint32_t v) const
    {
        return rowPtr[v + 1] - rowPtr[v];
    }
};

/** Power-law (skewed) graph: proxy for wk / sl / sx. */
Graph generatePowerLaw(std::uint32_t numVertices, std::uint32_t avgDegree,
                       std::uint64_t seed);

/** Near-uniform denser graph: proxy for com-Orkut. */
Graph generateUniform(std::uint32_t numVertices, std::uint32_t avgDegree,
                      std::uint64_t seed);

/** The four named proxy inputs at a size scale (1.0 = bench default). */
Graph makeProxyInput(const std::string &name, double scale = 1.0);

/** Static range partition: contiguous vertex blocks per unit. */
std::vector<UnitId> rangePartition(const Graph &g, unsigned numUnits);

/**
 * Greedy BFS-grown min-edge-cut partition — the METIS stand-in for
 * Fig. 19. Grows one region per unit from high-degree seeds, absorbing
 * the frontier vertex with the most already-absorbed neighbors.
 */
std::vector<UnitId> greedyPartition(const Graph &g, unsigned numUnits);

/** Number of edges whose endpoints land in different units. */
std::uint64_t crossingEdges(const Graph &g,
                            const std::vector<UnitId> &part);

/**
 * A graph placed into simulated memory: per-vertex output data homed in
 * the owning unit (shared read-write, uncacheable), adjacency lists
 * homed with the vertex (shared read-only, cacheable), and one
 * fine-grained lock per vertex homed with its data.
 */
class PlacedGraph
{
  public:
    PlacedGraph(NdpSystem &sys, Graph graph, std::vector<UnitId> part);

    const Graph &graph() const { return graph_; }
    UnitId unitOf(std::uint32_t v) const { return part_[v]; }

    /** Address of vertex @p v 's output element (8 B). */
    Addr vertexData(std::uint32_t v) const { return dataAddr_[v]; }

    /** Address of vertex @p v 's adjacency list (4 B per neighbor). */
    Addr adjBase(std::uint32_t v) const { return adjAddr_[v]; }

    /** Per-vertex lock. */
    const sync::Lock &vertexLock(std::uint32_t v) const
    {
        return locks_[v];
    }

    /**
     * Vertices owned by client @p clientIdx of @p totalClients: the
     * vertices of the client's unit, split evenly among that unit's
     * clients (Section 5: vertex data equally distributed across cores).
     */
    std::vector<std::uint32_t> ownedBy(unsigned clientIdx,
                                       unsigned totalClients,
                                       unsigned clientsPerUnit) const;

  private:
    Graph graph_;
    std::vector<UnitId> part_;
    std::vector<Addr> dataAddr_;
    std::vector<Addr> adjAddr_;
    sync::LockSet locks_;
};

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_GRAPH_CSR_HH
