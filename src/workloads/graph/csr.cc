#include "workloads/graph/csr.hh"

#include "common/log.hh"

namespace syncron::workloads {

std::vector<UnitId>
rangePartition(const Graph &g, unsigned numUnits)
{
    std::vector<UnitId> part(g.numVertices, 0);
    const std::uint32_t perUnit =
        (g.numVertices + numUnits - 1) / numUnits;
    for (std::uint32_t v = 0; v < g.numVertices; ++v)
        part[v] = std::min<UnitId>(v / perUnit, numUnits - 1);
    return part;
}

std::uint64_t
crossingEdges(const Graph &g, const std::vector<UnitId> &part)
{
    std::uint64_t crossing = 0;
    for (std::uint32_t v = 0; v < g.numVertices; ++v) {
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            if (part[v] != part[g.colIdx[e]])
                ++crossing;
        }
    }
    return crossing / 2; // each undirected edge stored twice
}

PlacedGraph::PlacedGraph(NdpSystem &sys, Graph graph,
                         std::vector<UnitId> part)
    : graph_(std::move(graph)), part_(std::move(part))
{
    SYNCRON_ASSERT(part_.size() == graph_.numVertices,
                   "partition size mismatch");
    mem::AddressSpace &space = sys.machine().addrSpace();

    dataAddr_.resize(graph_.numVertices);
    adjAddr_.resize(graph_.numVertices);
    for (std::uint32_t v = 0; v < graph_.numVertices; ++v) {
        dataAddr_[v] = space.allocIn(part_[v], 8, 8);
        const std::uint64_t adjBytes =
            std::max<std::uint64_t>(4, graph_.degree(v) * 4ULL);
        adjAddr_[v] = space.allocIn(part_[v], adjBytes, 4);
    }
    // One fine-grained lock per vertex, homed with the vertex's data.
    locks_ = sys.api().createLockSetByAddr(dataAddr_);
}

std::vector<std::uint32_t>
PlacedGraph::ownedBy(unsigned clientIdx, unsigned totalClients,
                     unsigned clientsPerUnit) const
{
    SYNCRON_ASSERT(clientIdx < totalClients, "bad client index");
    const UnitId unit = clientIdx / clientsPerUnit;
    const unsigned slot = clientIdx % clientsPerUnit;
    std::vector<std::uint32_t> owned;
    unsigned seen = 0;
    for (std::uint32_t v = 0; v < graph_.numVertices; ++v) {
        if (part_[v] != unit)
            continue;
        if (seen % clientsPerUnit == slot)
            owned.push_back(v);
        ++seen;
    }
    return owned;
}

} // namespace syncron::workloads
