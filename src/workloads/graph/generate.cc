#include "workloads/graph/csr.hh"

#include <algorithm>
#include <set>

#include "common/log.hh"
#include "common/rng.hh"

namespace syncron::workloads {

namespace {

/** Builds a CSR graph from an undirected edge list (deduplicated). */
Graph
fromEdges(std::uint32_t n,
          const std::set<std::pair<std::uint32_t, std::uint32_t>> &edges)
{
    Graph g;
    g.numVertices = n;
    std::vector<std::uint32_t> degree(n, 0);
    for (const auto &[a, b] : edges) {
        ++degree[a];
        ++degree[b];
    }
    g.rowPtr.resize(n + 1, 0);
    for (std::uint32_t v = 0; v < n; ++v)
        g.rowPtr[v + 1] = g.rowPtr[v] + degree[v];
    g.colIdx.resize(g.rowPtr[n]);
    std::vector<std::uint32_t> cursor(g.rowPtr.begin(),
                                      g.rowPtr.end() - 1);
    for (const auto &[a, b] : edges) {
        g.colIdx[cursor[a]++] = b;
        g.colIdx[cursor[b]++] = a;
    }
    return g;
}

} // namespace

Graph
generatePowerLaw(std::uint32_t numVertices, std::uint32_t avgDegree,
                 std::uint64_t seed)
{
    // Preferential attachment: each new vertex connects to
    // avgDegree / 2 targets biased toward earlier (high-degree)
    // vertices, giving the heavy-tailed degree distribution of the
    // paper's web/social graphs.
    SYNCRON_ASSERT(numVertices >= 4, "graph too small");
    Rng rng(seed);
    std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
    std::vector<std::uint32_t> targets; // vertices repeated by degree
    targets.reserve(static_cast<std::size_t>(numVertices) * avgDegree);

    const std::uint32_t m = std::max(1u, avgDegree / 2);
    // Small seed clique.
    for (std::uint32_t v = 1; v <= m && v < numVertices; ++v) {
        edges.emplace(0, v);
        targets.push_back(0);
        targets.push_back(v);
    }
    for (std::uint32_t v = m + 1; v < numVertices; ++v) {
        for (std::uint32_t k = 0; k < m; ++k) {
            std::uint32_t u;
            if (!targets.empty() && rng.chance(0.9)) {
                u = targets[rng.below(targets.size())];
            } else {
                u = static_cast<std::uint32_t>(rng.below(v));
            }
            if (u == v)
                u = (u + 1) % v;
            const std::uint32_t lo = std::min(u, v);
            const std::uint32_t hi = std::max(u, v);
            if (edges.emplace(lo, hi).second) {
                targets.push_back(u);
                targets.push_back(v);
            }
        }
    }
    return fromEdges(numVertices, edges);
}

Graph
generateUniform(std::uint32_t numVertices, std::uint32_t avgDegree,
                std::uint64_t seed)
{
    SYNCRON_ASSERT(numVertices >= 4, "graph too small");
    Rng rng(seed);
    std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
    const std::uint64_t wanted =
        static_cast<std::uint64_t>(numVertices) * avgDegree / 2;
    // Ring backbone keeps the graph connected.
    for (std::uint32_t v = 0; v < numVertices; ++v) {
        const std::uint32_t w = (v + 1) % numVertices;
        edges.emplace(std::min(v, w), std::max(v, w));
    }
    while (edges.size() < wanted) {
        const auto a = static_cast<std::uint32_t>(rng.below(numVertices));
        const auto b = static_cast<std::uint32_t>(rng.below(numVertices));
        if (a == b)
            continue;
        edges.emplace(std::min(a, b), std::max(a, b));
    }
    return fromEdges(numVertices, edges);
}

Graph
makeProxyInput(const std::string &name, double scale)
{
    const auto sz = [scale](std::uint32_t base) {
        return std::max<std::uint32_t>(
            64, static_cast<std::uint32_t>(base * scale));
    };
    // Size classes mirror the relative scale and skew of the paper's
    // inputs at simulation-tractable sizes.
    if (name == "wk")
        return generatePowerLaw(sz(2400), 8, 101);  // web: skewed
    if (name == "sl")
        return generatePowerLaw(sz(3600), 12, 202); // social: larger
    if (name == "sx")
        return generatePowerLaw(sz(3000), 10, 303); // Q&A: skewed
    if (name == "co")
        return generateUniform(sz(1800), 24, 404);  // Orkut: denser
    SYNCRON_FATAL("unknown graph input '" << name
                                          << "' (wk/sl/sx/co)");
}

std::vector<UnitId>
greedyPartition(const Graph &g, unsigned numUnits)
{
    const std::uint32_t n = g.numVertices;
    std::vector<UnitId> part(n, kInvalidUnit);
    const std::uint32_t target = (n + numUnits - 1) / numUnits;

    // Seeds: spread by vertex id; grow each region greedily by absorbing
    // the unassigned neighbor with the strongest connection to the
    // region (BFS-flavored min-cut growth).
    std::uint32_t nextSeed = 0;
    for (unsigned u = 0; u < numUnits; ++u) {
        while (nextSeed < n && part[nextSeed] != kInvalidUnit)
            ++nextSeed;
        if (nextSeed >= n)
            break;
        std::vector<std::uint32_t> frontier{nextSeed};
        part[nextSeed] = u;
        std::uint32_t size = 1;
        std::size_t cursor = 0;
        while (size < target && cursor < frontier.size()) {
            const std::uint32_t v = frontier[cursor++];
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                 ++e) {
                const std::uint32_t w = g.colIdx[e];
                if (part[w] == kInvalidUnit) {
                    part[w] = u;
                    frontier.push_back(w);
                    if (++size >= target)
                        break;
                }
            }
        }
    }
    // Any unreached vertices round-robin to the smallest regions.
    std::vector<std::uint32_t> sizes(numUnits, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
        if (part[v] != kInvalidUnit)
            ++sizes[part[v]];
    }
    for (std::uint32_t v = 0; v < n; ++v) {
        if (part[v] == kInvalidUnit) {
            const auto smallest = static_cast<UnitId>(
                std::min_element(sizes.begin(), sizes.end())
                - sizes.begin());
            part[v] = smallest;
            ++sizes[smallest];
        }
    }
    return part;
}

} // namespace syncron::workloads
