#include "workloads/graph/kernels.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>

#include "common/log.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
constexpr unsigned kMaxIterations = 128;
constexpr std::int64_t kPrScale = 1'000'000;

/** Shared state of one application run. */
struct Ctx
{
    NdpSystem &sys;
    PlacedGraph &placed;
    sync::Barrier bar;
    // Convergence flags: iteration i sets and reads slot i % 3.
    // Termination uses a double barrier: set -> barrier A -> read ->
    // (worker 0 resets slot (i+1) % 3) -> barrier B -> decide. Barrier A
    // fences all sets before any read; barrier B fences the reset away
    // from both iteration i+1's setters and its readers.
    Addr flagAddr[3] = {0, 0, 0};
    // Set-once per iteration by any worker (a commutative OR), read
    // only after the fencing barrier: atomic so concurrent setters on
    // different shards stay well-defined on the host.
    std::atomic<bool> hostFlag[3] = {false, false, false};
    std::vector<std::int64_t> value;
    std::vector<std::int64_t> aux;
    /// Iteration-start copy of value for the iterative apps' unlocked
    /// "worth locking?" checks. Reading the LIVE value outside a vertex
    /// lock would expose same-iteration writes from other shards in
    /// host-interleaving order; the snapshot (refreshed by worker 0
    /// inside the double-barrier window) keeps the lock-request stream
    /// identical at every --sim-shards count. Classic Jacobi-style
    /// stale reads — the locked section re-checks the live value.
    std::vector<std::int64_t> snap;
    /// Bumped under per-VERTEX locks, so increments from different
    /// shards interleave on the host: atomic, sum is commutative,
    /// only read at quiescence.
    std::atomic<std::uint64_t> updates{0};
    unsigned iterations = 0;
    unsigned total = 0;
    unsigned clientsPerUnit = 0;
    unsigned prIterations = 3;
    std::uint32_t src = 0;

    Ctx(NdpSystem &s, PlacedGraph &p) : sys(s), placed(p) {}
};

/** Number of 64 B lines covering @p vertexDegree 4 B neighbor ids. */
std::uint32_t
adjLines(std::uint32_t vertexDegree)
{
    return (vertexDegree * 4 + kCacheLineBytes - 1) / kCacheLineBytes;
}

// The per-iteration skeleton shared by the iterative apps: process owned
// vertices, publish the changed flag, barrier, read the flag. Worker 0
// resets the *next* iteration's flag before the barrier, so one barrier
// per iteration suffices (CRONO's alternating-flag pattern).

sim::Process
bfsWorker(Core &c, Ctx &ctx, unsigned idx)
{
    sync::SyncApi &api = ctx.sys.api();
    const Graph &g = ctx.placed.graph();
    const auto owned =
        ctx.placed.ownedBy(idx, ctx.total, ctx.clientsPerUnit);

    for (unsigned iter = 0; iter < kMaxIterations; ++iter) {
        bool changed = false;
        for (std::uint32_t v : owned) {
            if (ctx.snap[v] != static_cast<std::int64_t>(iter))
                continue;
            co_await c.load(ctx.placed.vertexData(v), 8,
                            MemKind::SharedRW);
            for (std::uint32_t l = 0; l < adjLines(g.degree(v)); ++l) {
                co_await c.load(ctx.placed.adjBase(v)
                                    + l * kCacheLineBytes,
                                kCacheLineBytes, MemKind::SharedRO);
            }
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                 ++e) {
                const std::uint32_t u = g.colIdx[e];
                if (ctx.snap[u] != -1) // stale filter (see Ctx::snap)
                    continue;
                co_await api.acquire(c, ctx.placed.vertexLock(u));
                if (ctx.value[u] == -1) { // re-check under the lock
                    ctx.value[u] = static_cast<std::int64_t>(iter) + 1;
                    co_await c.store(ctx.placed.vertexData(u), 8,
                                     MemKind::SharedRW);
                    ctx.updates.fetch_add(1, std::memory_order_relaxed);
                    changed = true;
                }
                co_await api.release(c, ctx.placed.vertexLock(u));
            }
        }
        // Every changed worker publishes the flag: gating the store on
        // a live read of hostFlag would make WHICH worker stores (a
        // simulated event) depend on host interleaving across shards.
        if (changed) {
            ctx.hostFlag[iter % 3].store(true);
            co_await c.store(ctx.flagAddr[iter % 3], 8,
                             MemKind::SharedRW);
        }
        co_await api.wait(c, ctx.bar);
        co_await c.load(ctx.flagAddr[iter % 3], 8, MemKind::SharedRW);
        const bool any = ctx.hostFlag[iter % 3].load();
        if (idx == 0) {
            ctx.hostFlag[(iter + 1) % 3].store(false);
            co_await c.store(ctx.flagAddr[(iter + 1) % 3], 8,
                             MemKind::SharedRW);
            ctx.snap = ctx.value; // fenced by the two barriers
            ctx.iterations = iter + 1;
        }
        co_await api.wait(c, ctx.bar);
        if (!any)
            break;
    }
}

sim::Process
propagateWorker(Core &c, Ctx &ctx, unsigned idx, bool weighted)
{
    // cc (min-label propagation) and sssp (Bellman-Ford relaxation)
    // share the same push skeleton.
    sync::SyncApi &api = ctx.sys.api();
    const Graph &g = ctx.placed.graph();
    const auto owned =
        ctx.placed.ownedBy(idx, ctx.total, ctx.clientsPerUnit);

    for (unsigned iter = 0; iter < kMaxIterations; ++iter) {
        bool changed = false;
        for (std::uint32_t v : owned) {
            if (ctx.snap[v] >= kInf)
                continue;
            co_await c.load(ctx.placed.vertexData(v), 8,
                            MemKind::SharedRW);
            for (std::uint32_t l = 0; l < adjLines(g.degree(v)); ++l) {
                co_await c.load(ctx.placed.adjBase(v)
                                    + l * kCacheLineBytes,
                                kCacheLineBytes, MemKind::SharedRO);
            }
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                 ++e) {
                const std::uint32_t u = g.colIdx[e];
                // Relax from the iteration-start snapshot (Jacobi
                // style); the locked section re-checks the live value.
                const std::int64_t cand =
                    weighted ? ctx.snap[v] + ssspWeight(v, u)
                             : ctx.snap[v];
                if (ctx.snap[u] <= cand)
                    continue;
                co_await api.acquire(c, ctx.placed.vertexLock(u));
                if (ctx.value[u] > cand) {
                    ctx.value[u] = cand;
                    co_await c.store(ctx.placed.vertexData(u), 8,
                                     MemKind::SharedRW);
                    ctx.updates.fetch_add(1, std::memory_order_relaxed);
                    changed = true;
                }
                co_await api.release(c, ctx.placed.vertexLock(u));
            }
        }
        // See bfsWorker: unconditional publish keeps the event stream
        // independent of host interleaving.
        if (changed) {
            ctx.hostFlag[iter % 3].store(true);
            co_await c.store(ctx.flagAddr[iter % 3], 8,
                             MemKind::SharedRW);
        }
        co_await api.wait(c, ctx.bar);
        co_await c.load(ctx.flagAddr[iter % 3], 8, MemKind::SharedRW);
        const bool any = ctx.hostFlag[iter % 3].load();
        if (idx == 0) {
            ctx.hostFlag[(iter + 1) % 3].store(false);
            co_await c.store(ctx.flagAddr[(iter + 1) % 3], 8,
                             MemKind::SharedRW);
            ctx.snap = ctx.value; // fenced by the two barriers
            ctx.iterations = iter + 1;
        }
        co_await api.wait(c, ctx.bar);
        if (!any)
            break;
    }
}

sim::Process
prWorker(Core &c, Ctx &ctx, unsigned idx)
{
    sync::SyncApi &api = ctx.sys.api();
    const Graph &g = ctx.placed.graph();
    const auto owned =
        ctx.placed.ownedBy(idx, ctx.total, ctx.clientsPerUnit);

    for (unsigned iter = 0; iter < ctx.prIterations; ++iter) {
        // Push phase: scatter rank contributions to neighbors.
        for (std::uint32_t v : owned) {
            const std::uint32_t deg = g.degree(v);
            if (deg == 0)
                continue;
            co_await c.load(ctx.placed.vertexData(v), 8,
                            MemKind::SharedRW);
            const std::int64_t contrib = ctx.value[v] / deg;
            for (std::uint32_t l = 0; l < adjLines(deg); ++l) {
                co_await c.load(ctx.placed.adjBase(v)
                                    + l * kCacheLineBytes,
                                kCacheLineBytes, MemKind::SharedRO);
            }
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                 ++e) {
                const std::uint32_t u = g.colIdx[e];
                co_await api.acquire(c, ctx.placed.vertexLock(u));
                co_await c.load(ctx.placed.vertexData(u), 8,
                                MemKind::SharedRW);
                ctx.aux[u] += contrib;
                co_await c.store(ctx.placed.vertexData(u), 8,
                                 MemKind::SharedRW);
                ctx.updates.fetch_add(1, std::memory_order_relaxed);
                co_await api.release(c, ctx.placed.vertexLock(u));
            }
        }
        co_await api.wait(c, ctx.bar);

        // Gather phase: fold accumulators into ranks (owned data only).
        for (std::uint32_t v : owned) {
            ctx.value[v] = kPrScale * 15 / 100
                               / static_cast<std::int64_t>(
                                     g.numVertices ? g.numVertices : 1)
                           + ctx.aux[v] * 85 / 100;
            ctx.aux[v] = 0;
            co_await c.store(ctx.placed.vertexData(v), 8,
                             MemKind::SharedRW);
        }
        co_await api.wait(c, ctx.bar);
        if (idx == 0)
            ctx.iterations = iter + 1;
    }
}

sim::Process
tfWorker(Core &c, Ctx &ctx, unsigned idx)
{
    // Teenage followers: one pass, locks only (Table 6: no barrier).
    sync::SyncApi &api = ctx.sys.api();
    const Graph &g = ctx.placed.graph();
    const auto owned =
        ctx.placed.ownedBy(idx, ctx.total, ctx.clientsPerUnit);

    for (std::uint32_t v : owned) {
        if (tfAge(v) >= 20)
            continue;
        for (std::uint32_t l = 0; l < adjLines(g.degree(v)); ++l) {
            co_await c.load(ctx.placed.adjBase(v) + l * kCacheLineBytes,
                            kCacheLineBytes, MemKind::SharedRO);
        }
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.colIdx[e];
            co_await api.acquire(c, ctx.placed.vertexLock(u));
            co_await c.load(ctx.placed.vertexData(u), 8,
                            MemKind::SharedRW);
            ++ctx.value[u];
            co_await c.store(ctx.placed.vertexData(u), 8,
                             MemKind::SharedRW);
            ctx.updates.fetch_add(1, std::memory_order_relaxed);
            co_await api.release(c, ctx.placed.vertexLock(u));
        }
    }
    if (idx == 0)
        ctx.iterations = 1;
}

sim::Process
tcWorker(Core &c, Ctx &ctx, unsigned idx)
{
    sync::SyncApi &api = ctx.sys.api();
    const Graph &g = ctx.placed.graph();
    const auto owned =
        ctx.placed.ownedBy(idx, ctx.total, ctx.clientsPerUnit);

    for (std::uint32_t v : owned) {
        for (std::uint32_t l = 0; l < adjLines(g.degree(v)); ++l) {
            co_await c.load(ctx.placed.adjBase(v) + l * kCacheLineBytes,
                            kCacheLineBytes, MemKind::SharedRO);
        }
        std::int64_t triangles = 0;
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.colIdx[e];
            if (u <= v)
                continue;
            for (std::uint32_t l = 0; l < adjLines(g.degree(u)); ++l) {
                co_await c.load(ctx.placed.adjBase(u)
                                    + l * kCacheLineBytes,
                                kCacheLineBytes, MemKind::SharedRO);
            }
            // Sorted-list intersection of adj(v) and adj(u), counting
            // common neighbors w > u (each triangle counted once).
            std::uint32_t i = g.rowPtr[v], j = g.rowPtr[u];
            std::int64_t common = 0;
            while (i < g.rowPtr[v + 1] && j < g.rowPtr[u + 1]) {
                const std::uint32_t a = g.colIdx[i], b = g.colIdx[j];
                if (a < b) {
                    ++i;
                } else if (b < a) {
                    ++j;
                } else {
                    if (a > u)
                        ++common;
                    ++i;
                    ++j;
                }
            }
            co_await c.compute(
                std::min<std::uint32_t>(g.degree(v) + g.degree(u), 128));
            triangles += common;
        }
        if (triangles != 0) {
            co_await api.acquire(c, ctx.placed.vertexLock(v));
            co_await c.load(ctx.placed.vertexData(v), 8,
                            MemKind::SharedRW);
            ctx.value[v] += triangles;
            co_await c.store(ctx.placed.vertexData(v), 8,
                             MemKind::SharedRW);
            ctx.updates.fetch_add(1, std::memory_order_relaxed);
            co_await api.release(c, ctx.placed.vertexLock(v));
        }
    }
    co_await api.wait(c, ctx.bar);
    if (idx == 0)
        ctx.iterations = 1;
}

} // namespace

const char *
graphAppName(GraphApp app)
{
    switch (app) {
      case GraphApp::Bfs: return "bfs";
      case GraphApp::Cc: return "cc";
      case GraphApp::Sssp: return "sssp";
      case GraphApp::Pr: return "pr";
      case GraphApp::Tf: return "tf";
      case GraphApp::Tc: return "tc";
    }
    return "?";
}

GraphApp
graphAppFromName(const std::string &name)
{
    for (GraphApp app : kAllGraphApps) {
        if (name == graphAppName(app))
            return app;
    }
    SYNCRON_FATAL("unknown graph app '" << name << "'");
}

std::uint32_t
ssspWeight(std::uint32_t u, std::uint32_t v)
{
    return ((u ^ v) % 15) + 1;
}

std::uint32_t
tfAge(std::uint32_t v)
{
    return (v * 2654435761u) % 30;
}

GraphRunResult
runGraphApp(NdpSystem &sys, PlacedGraph &placed, GraphApp app,
            unsigned prIterations)
{
    Ctx ctx(sys, placed);
    const Graph &g = placed.graph();
    ctx.total = sys.numClientCores();
    ctx.clientsPerUnit = sys.config().clientCoresPerUnit;
    ctx.prIterations = prIterations;
    ctx.bar = sys.api().createBarrier(0, ctx.total);
    for (Addr &flag : ctx.flagAddr)
        flag = sys.machine().addrSpace().allocIn(0, 8, 8);

    // Source: the highest-degree vertex (a meaningful frontier seed).
    std::uint32_t src = 0;
    for (std::uint32_t v = 0; v < g.numVertices; ++v) {
        if (g.degree(v) > g.degree(src))
            src = v;
    }
    ctx.src = src;

    switch (app) {
      case GraphApp::Bfs:
        ctx.value.assign(g.numVertices, -1);
        ctx.value[src] = 0;
        break;
      case GraphApp::Cc:
        ctx.value.resize(g.numVertices);
        for (std::uint32_t v = 0; v < g.numVertices; ++v)
            ctx.value[v] = v;
        break;
      case GraphApp::Sssp:
        ctx.value.assign(g.numVertices, kInf);
        ctx.value[src] = 0;
        break;
      case GraphApp::Pr:
        ctx.value.assign(g.numVertices,
                         kPrScale / std::max(1u, g.numVertices));
        ctx.aux.assign(g.numVertices, 0);
        break;
      case GraphApp::Tf:
      case GraphApp::Tc:
        ctx.value.assign(g.numVertices, 0);
        break;
    }
    ctx.snap = ctx.value;

    const Tick startTime = sys.elapsed();
    for (unsigned i = 0; i < ctx.total; ++i) {
        core::Core &c = sys.clientCore(i);
        switch (app) {
          case GraphApp::Bfs: sys.spawn(bfsWorker(c, ctx, i), c); break;
          case GraphApp::Cc:
            sys.spawn(propagateWorker(c, ctx, i, false), c);
            break;
          case GraphApp::Sssp:
            sys.spawn(propagateWorker(c, ctx, i, true), c);
            break;
          case GraphApp::Pr: sys.spawn(prWorker(c, ctx, i), c); break;
          case GraphApp::Tf: sys.spawn(tfWorker(c, ctx, i), c); break;
          case GraphApp::Tc: sys.spawn(tcWorker(c, ctx, i), c); break;
        }
    }
    sys.run();

    GraphRunResult result;
    result.time = sys.elapsed() - startTime;
    result.updates = ctx.updates.load();
    result.iterations = ctx.iterations;
    result.values = std::move(ctx.value);
    return result;
}

// -- Host references ---------------------------------------------------

std::vector<std::int64_t>
hostBfs(const Graph &g, std::uint32_t src)
{
    std::vector<std::int64_t> level(g.numVertices, -1);
    std::deque<std::uint32_t> queue{src};
    level[src] = 0;
    while (!queue.empty()) {
        const std::uint32_t v = queue.front();
        queue.pop_front();
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.colIdx[e];
            if (level[u] == -1) {
                level[u] = level[v] + 1;
                queue.push_back(u);
            }
        }
    }
    return level;
}

std::vector<std::int64_t>
hostCc(const Graph &g)
{
    std::vector<std::int64_t> label(g.numVertices);
    for (std::uint32_t v = 0; v < g.numVertices; ++v)
        label[v] = v;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t v = 0; v < g.numVertices; ++v) {
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                 ++e) {
                const std::uint32_t u = g.colIdx[e];
                if (label[u] < label[v]) {
                    label[v] = label[u];
                    changed = true;
                }
            }
        }
    }
    return label;
}

std::vector<std::int64_t>
hostSssp(const Graph &g, std::uint32_t src)
{
    std::vector<std::int64_t> dist(g.numVertices, kInf);
    dist[src] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t v = 0; v < g.numVertices; ++v) {
            if (dist[v] >= kInf)
                continue;
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1];
                 ++e) {
                const std::uint32_t u = g.colIdx[e];
                const std::int64_t cand = dist[v] + ssspWeight(v, u);
                if (cand < dist[u]) {
                    dist[u] = cand;
                    changed = true;
                }
            }
        }
    }
    return dist;
}

std::vector<std::int64_t>
hostTf(const Graph &g)
{
    std::vector<std::int64_t> count(g.numVertices, 0);
    for (std::uint32_t v = 0; v < g.numVertices; ++v) {
        if (tfAge(v) >= 20)
            continue;
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e)
            ++count[g.colIdx[e]];
    }
    return count;
}

} // namespace syncron::workloads
