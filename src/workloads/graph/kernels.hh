/**
 * @file
 * The six graph applications of the paper's Table 6 (CRONO-style push
 * implementations with fine-grained per-vertex locks and inter-iteration
 * barriers):
 *
 *   bfs  — breadth-first search        (locks + barriers)
 *   cc   — connected components        (locks + barriers)
 *   sssp — single-source shortest path (locks + barriers)
 *   pr   — pagerank                    (locks + barriers)
 *   tf   — teenage followers           (locks only)
 *   tc   — triangle counting           (locks + barriers)
 *
 * Each app runs one worker coroutine per client core over the vertices
 * its core owns; updates to another vertex's output element take that
 * vertex's lock (the output array is shared read-write and uncacheable;
 * adjacency lists are shared read-only and cacheable). Convergence uses
 * CRONO's pattern: a global changed-flag in memory plus one barrier per
 * iteration.
 *
 * Host-side reference implementations (hostBfs etc.) verify results.
 */

#ifndef SYNCRON_WORKLOADS_GRAPH_KERNELS_HH
#define SYNCRON_WORKLOADS_GRAPH_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/graph/csr.hh"

namespace syncron::workloads {

/** The six applications. */
enum class GraphApp { Bfs, Cc, Sssp, Pr, Tf, Tc };

/** Short name ("bfs", ...). */
const char *graphAppName(GraphApp app);

/** Parses a short name; fatal() on unknown. */
GraphApp graphAppFromName(const std::string &name);

/** All six apps, in the paper's order. */
inline constexpr GraphApp kAllGraphApps[] = {
    GraphApp::Bfs, GraphApp::Cc, GraphApp::Sssp,
    GraphApp::Pr,  GraphApp::Tf, GraphApp::Tc,
};

/** Outcome of a full application run. */
struct GraphRunResult
{
    Tick time = 0;              ///< simulated execution time
    std::uint64_t updates = 0;  ///< locked output updates performed
    unsigned iterations = 0;    ///< outer iterations executed
    std::vector<std::int64_t> values; ///< final per-vertex output
};

/**
 * Runs @p app on @p placed using every client core of @p sys;
 * blocks until completion (drives sys.run()).
 *
 * @param prIterations fixed iteration count for pagerank
 */
GraphRunResult runGraphApp(NdpSystem &sys, PlacedGraph &placed,
                           GraphApp app, unsigned prIterations = 3);

/** Edge weight used by sssp (deterministic in the endpoints). */
std::uint32_t ssspWeight(std::uint32_t u, std::uint32_t v);

/** Vertex age used by tf (deterministic). */
std::uint32_t tfAge(std::uint32_t v);

// -- Host-side references for verification ---------------------------
std::vector<std::int64_t> hostBfs(const Graph &g, std::uint32_t src);
std::vector<std::int64_t> hostCc(const Graph &g);
std::vector<std::int64_t> hostSssp(const Graph &g, std::uint32_t src);
std::vector<std::int64_t> hostTf(const Graph &g);

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_GRAPH_KERNELS_HH
