/**
 * @file
 * Time-series analysis workload (paper Table 6: SCRIMP matrix profile,
 * "ts"). The input series is replicated in each NDP unit (shared
 * read-only, cacheable); the output matrix profile is partitioned across
 * units (shared read-write, uncacheable) with one fine-grained lock per
 * profile element. Worker cores process diagonals of the distance
 * matrix; every cell updates profile[i] and profile[j] under their
 * locks — two lock episodes per cell, which is why ts has the highest
 * synchronization intensity and ST occupancy of all workloads
 * (Table 7: ~44% average occupancy).
 *
 * Input substitution: synthetic series (sinusoid + noise + planted
 * motifs) stand in for the paper's air-quality (air) and energy/power
 * (pow) datasets; SCRIMP's synchronization pattern is data-independent.
 */

#ifndef SYNCRON_WORKLOADS_TIMESERIES_SCRIMP_HH
#define SYNCRON_WORKLOADS_TIMESERIES_SCRIMP_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "workloads/datastructures/node_heap.hh"

namespace syncron::workloads {

/**
 * A generated proxy time series. Benches that sweep a grid generate the
 * series once with makeProxySeries() and pass it by const-ref into every
 * grid cell instead of regenerating it per cell.
 */
struct ProxySeries
{
    std::string name;           ///< "air" or "pow"
    std::vector<double> values; ///< the series samples
    unsigned window = 0;        ///< subsequence window length
};

/** Generates the named dataset proxy ("air"/"pow") at @p scale. */
ProxySeries makeProxySeries(const std::string &name, double scale = 1.0);

/** One SCRIMP run over a synthetic series. */
class ScrimpWorkload
{
  public:
    /** Runs over a pre-generated (possibly shared) series. */
    ScrimpWorkload(NdpSystem &sys, const ProxySeries &input);

    /**
     * Convenience: generates the named proxy and runs over it.
     *
     * @param sys       owning system
     * @param name      dataset proxy: "air" or "pow" (sizes/windows
     *                  differ)
     * @param scale     size multiplier (1.0 = bench default)
     */
    ScrimpWorkload(NdpSystem &sys, const std::string &name,
                   double scale = 1.0);

    /** Worker coroutine for client @p idx of @p total. */
    sim::Process worker(core::Core &c, unsigned idx, unsigned total);

    /** Spawns all workers and runs to completion. */
    Tick run();

    /** Final matrix profile (squared-distance surrogate). */
    const std::vector<double> &profile() const { return profile_; }

    /** Profile length (series length - window + 1). */
    std::size_t profileLen() const { return profile_.size(); }

    /** Host-side reference profile for verification. */
    std::vector<double> hostProfile() const;

    std::uint64_t updates() const { return updates_.load(); }

  private:
    double cellValue(std::size_t i, std::size_t j) const;

    NdpSystem &sys_;
    std::vector<double> series_;
    unsigned window_;
    std::vector<double> profile_;
    std::vector<Addr> profileAddr_;
    std::vector<Addr> seriesAddr_; ///< per-unit replica base
    sync::LockSet locks_;
    sync::Barrier bar_;
    /// Profile improvements. Bumped under per-ELEMENT locks, so
    /// increments from different shards interleave on the host: atomic
    /// because the sum is commutative and only read at quiescence.
    std::atomic<std::uint64_t> updates_{0};
};

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_TIMESERIES_SCRIMP_HH
