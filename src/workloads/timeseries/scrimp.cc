#include "workloads/timeseries/scrimp.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "common/rng.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

ProxySeries
makeProxySeries(const std::string &name, double scale)
{
    unsigned len;
    unsigned window;
    std::uint64_t seed;
    double freq;
    if (name == "air") {
        len = 288;
        window = 16;
        seed = 11;
        freq = 0.13;
    } else if (name == "pow") {
        len = 352;
        window = 24;
        seed = 22;
        freq = 0.07;
    } else {
        SYNCRON_FATAL("unknown time series input '" << name
                                                    << "' (air/pow)");
    }
    len = std::max<unsigned>(
        4 * window, static_cast<unsigned>(len * scale));

    // Sinusoid + noise + two planted motifs.
    ProxySeries out;
    out.name = name;
    out.window = window;
    Rng rng(seed);
    out.values.resize(len);
    for (unsigned t = 0; t < len; ++t) {
        out.values[t] =
            std::sin(freq * t) + 0.25 * (rng.uniform() - 0.5);
    }
    for (unsigned t = 0; t + window < len / 4; ++t)
        out.values[len / 2 + t] = out.values[t]; // motif copy
    return out;
}

ScrimpWorkload::ScrimpWorkload(NdpSystem &sys, const ProxySeries &input)
    : sys_(sys), series_(input.values), window_(input.window)
{
    SYNCRON_ASSERT(window_ >= 1 && series_.size() >= 4 * window_,
                   "time series shorter than four windows");
    const std::size_t np = series_.size() - window_ + 1;
    profile_.assign(np, std::numeric_limits<double>::infinity());

    mem::AddressSpace &space = sys.machine().addrSpace();
    const unsigned units = sys.config().numUnits;

    // Output profile partitioned across units; per-element locks homed
    // with their element (distribute-by-address).
    profileAddr_.resize(np);
    for (std::size_t i = 0; i < np; ++i) {
        profileAddr_[i] =
            space.allocIn(static_cast<UnitId>(i * units / np), 8, 8);
    }
    locks_ = sys.api().createLockSetByAddr(profileAddr_);

    // Input series replicated in each unit (Section 5).
    seriesAddr_.resize(units);
    for (unsigned u = 0; u < units; ++u)
        seriesAddr_[u] = space.allocIn(u, series_.size() * 8ULL, 8);

    bar_ = sys.api().createBarrier(0, sys.numClientCores());
}

ScrimpWorkload::ScrimpWorkload(NdpSystem &sys, const std::string &name,
                               double scale)
    : ScrimpWorkload(sys, makeProxySeries(name, scale))
{}

double
ScrimpWorkload::cellValue(std::size_t i, std::size_t j) const
{
    // Squared z-norm-free distance surrogate: enough to make profile
    // values data-dependent and verifiable; the access/sync pattern is
    // identical to full SCRIMP.
    double d = 0.0;
    for (unsigned t = 0; t < window_; ++t) {
        const double diff = series_[i + t] - series_[j + t];
        d += diff * diff;
    }
    return d;
}

sim::Process
ScrimpWorkload::worker(Core &c, unsigned idx, unsigned total)
{
    sync::SyncApi &api = sys_.api();
    const std::size_t np = profile_.size();
    const Addr seriesBase = seriesAddr_[c.unit()];

    // Per-worker upper bound on each profile element: the unlocked
    // "worth locking?" filter reads only this private copy, never the
    // shared profile mid-run, so the lock-request stream is identical
    // at every --sim-shards count. The bound is tightened to the true
    // profile value inside each locked section.
    std::vector<double> bound(np,
                              std::numeric_limits<double>::infinity());

    // Diagonals are distributed round-robin across the cores (SCRIMP's
    // standard parallelization).
    for (std::size_t k = window_ / 4 + 1 + idx; k < np; k += total) {
        // First cell of the diagonal: full dot product.
        for (unsigned l = 0; l < (window_ * 8) / kCacheLineBytes + 1;
             ++l) {
            co_await c.load(seriesBase + l * kCacheLineBytes,
                            kCacheLineBytes, MemKind::SharedRO);
        }
        co_await c.compute(2 * window_);

        for (std::size_t i = 0; i + k < np; ++i) {
            const std::size_t j = i + k;
            // Incremental update: two series loads + O(1) arithmetic.
            co_await c.load(seriesBase + (i + window_) * 8, 8,
                            MemKind::SharedRO);
            co_await c.load(seriesBase + (j + window_) * 8, 8,
                            MemKind::SharedRO);
            co_await c.compute(8);
            const double d = cellValue(i, j);

            // profile[i] = min(profile[i], d) under its lock.
            if (d < bound[i]) {
                co_await api.acquire(c, locks_[i]);
                co_await c.load(profileAddr_[i], 8, MemKind::SharedRW);
                if (d < profile_[i]) {
                    profile_[i] = d;
                    co_await c.store(profileAddr_[i], 8,
                                     MemKind::SharedRW);
                    updates_.fetch_add(1, std::memory_order_relaxed);
                }
                bound[i] = profile_[i];
                co_await api.release(c, locks_[i]);
            }
            // Symmetric update of profile[j].
            if (d < bound[j]) {
                co_await api.acquire(c, locks_[j]);
                co_await c.load(profileAddr_[j], 8, MemKind::SharedRW);
                if (d < profile_[j]) {
                    profile_[j] = d;
                    co_await c.store(profileAddr_[j], 8,
                                     MemKind::SharedRW);
                    updates_.fetch_add(1, std::memory_order_relaxed);
                }
                bound[j] = profile_[j];
                co_await api.release(c, locks_[j]);
            }
        }
    }
    co_await api.wait(c, bar_);
}

Tick
ScrimpWorkload::run()
{
    const unsigned total = sys_.numClientCores();
    const Tick start = sys_.elapsed();
    for (unsigned i = 0; i < total; ++i)
        sys_.spawn(worker(sys_.clientCore(i), i, total),
                   sys_.clientCore(i));
    sys_.run();
    return sys_.elapsed() - start;
}

std::vector<double>
ScrimpWorkload::hostProfile() const
{
    const std::size_t np = profile_.size();
    std::vector<double> ref(np, std::numeric_limits<double>::infinity());
    for (std::size_t k = window_ / 4 + 1; k < np; ++k) {
        for (std::size_t i = 0; i + k < np; ++i) {
            const double d = cellValue(i, i + k);
            ref[i] = std::min(ref[i], d);
            ref[i + k] = std::min(ref[i + k], d);
        }
    }
    return ref;
}

} // namespace syncron::workloads
