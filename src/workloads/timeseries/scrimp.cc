#include "workloads/timeseries/scrimp.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "common/rng.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

ScrimpWorkload::ScrimpWorkload(NdpSystem &sys, const std::string &name,
                               double scale)
    : sys_(sys)
{
    unsigned len;
    std::uint64_t seed;
    double freq;
    if (name == "air") {
        len = 288;
        window_ = 16;
        seed = 11;
        freq = 0.13;
    } else if (name == "pow") {
        len = 352;
        window_ = 24;
        seed = 22;
        freq = 0.07;
    } else {
        SYNCRON_FATAL("unknown time series input '" << name
                                                    << "' (air/pow)");
    }
    len = std::max<unsigned>(
        4 * window_, static_cast<unsigned>(len * scale));

    // Sinusoid + noise + two planted motifs.
    Rng rng(seed);
    series_.resize(len);
    for (unsigned t = 0; t < len; ++t) {
        series_[t] = std::sin(freq * t) + 0.25 * (rng.uniform() - 0.5);
    }
    for (unsigned t = 0; t + window_ < len / 4; ++t)
        series_[len / 2 + t] = series_[t]; // motif copy

    const std::size_t np = len - window_ + 1;
    profile_.assign(np, std::numeric_limits<double>::infinity());

    mem::AddressSpace &space = sys.machine().addrSpace();
    const unsigned units = sys.config().numUnits;

    // Output profile partitioned across units; per-element locks.
    profileAddr_.resize(np);
    std::vector<UnitId> homes(np);
    for (std::size_t i = 0; i < np; ++i) {
        homes[i] = static_cast<UnitId>(i * units / np);
        profileAddr_[i] = space.allocIn(homes[i], 8, 8);
    }
    locks_ = std::make_unique<FineLocks>(sys, np, homes);

    // Input series replicated in each unit (Section 5).
    seriesAddr_.resize(units);
    for (unsigned u = 0; u < units; ++u)
        seriesAddr_[u] = space.allocIn(u, len * 8ULL, 8);

    bar_ = sys.api().createSyncVar(0);
}

double
ScrimpWorkload::cellValue(std::size_t i, std::size_t j) const
{
    // Squared z-norm-free distance surrogate: enough to make profile
    // values data-dependent and verifiable; the access/sync pattern is
    // identical to full SCRIMP.
    double d = 0.0;
    for (unsigned t = 0; t < window_; ++t) {
        const double diff = series_[i + t] - series_[j + t];
        d += diff * diff;
    }
    return d;
}

sim::Process
ScrimpWorkload::worker(Core &c, unsigned idx, unsigned total)
{
    sync::SyncApi &api = sys_.api();
    const std::size_t np = profile_.size();
    const Addr seriesBase = seriesAddr_[c.unit()];

    // Diagonals are distributed round-robin across the cores (SCRIMP's
    // standard parallelization).
    for (std::size_t k = window_ / 4 + 1 + idx; k < np; k += total) {
        // First cell of the diagonal: full dot product.
        for (unsigned l = 0; l < (window_ * 8) / kCacheLineBytes + 1;
             ++l) {
            co_await c.load(seriesBase + l * kCacheLineBytes,
                            kCacheLineBytes, MemKind::SharedRO);
        }
        co_await c.compute(2 * window_);

        for (std::size_t i = 0; i + k < np; ++i) {
            const std::size_t j = i + k;
            // Incremental update: two series loads + O(1) arithmetic.
            co_await c.load(seriesBase + (i + window_) * 8, 8,
                            MemKind::SharedRO);
            co_await c.load(seriesBase + (j + window_) * 8, 8,
                            MemKind::SharedRO);
            co_await c.compute(8);
            const double d = cellValue(i, j);

            // profile[i] = min(profile[i], d) under its lock.
            if (d < profile_[i]) {
                co_await api.lockAcquire(c, locks_->lock(i));
                co_await c.load(profileAddr_[i], 8, MemKind::SharedRW);
                if (d < profile_[i]) {
                    profile_[i] = d;
                    co_await c.store(profileAddr_[i], 8,
                                     MemKind::SharedRW);
                    ++updates_;
                }
                co_await api.lockRelease(c, locks_->lock(i));
            }
            // Symmetric update of profile[j].
            if (d < profile_[j]) {
                co_await api.lockAcquire(c, locks_->lock(j));
                co_await c.load(profileAddr_[j], 8, MemKind::SharedRW);
                if (d < profile_[j]) {
                    profile_[j] = d;
                    co_await c.store(profileAddr_[j], 8,
                                     MemKind::SharedRW);
                    ++updates_;
                }
                co_await api.lockRelease(c, locks_->lock(j));
            }
        }
    }
    co_await api.barrierWaitAcrossUnits(c, bar_, total);
}

Tick
ScrimpWorkload::run()
{
    const unsigned total = sys_.numClientCores();
    const Tick start = sys_.elapsed();
    for (unsigned i = 0; i < total; ++i)
        sys_.spawn(worker(sys_.clientCore(i), i, total));
    sys_.run();
    return sys_.elapsed() - start;
}

std::vector<double>
ScrimpWorkload::hostProfile() const
{
    const std::size_t np = profile_.size();
    std::vector<double> ref(np, std::numeric_limits<double>::infinity());
    for (std::size_t k = window_ / 4 + 1; k < np; ++k) {
        for (std::size_t i = 0; i + k < np; ++i) {
            const double d = cellValue(i, i + k);
            ref[i] = std::min(ref[i], d);
            ref[i + k] = std::min(ref[i + k], d);
        }
    }
    return ref;
}

} // namespace syncron::workloads
