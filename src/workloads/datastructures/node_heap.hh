/**
 * @file
 * Support for pointer-chasing data-structure workloads (paper Table 6:
 * nine lock-based concurrent data structures from ASCYLIB and
 * RCU-HTM/BST-FG, used as key-value sets).
 *
 * The structures are modeled at the level the evaluation depends on:
 * every operation issues the same simulated-memory access skeleton
 * (dependent loads for traversals, stores for mutations) and the same
 * lock acquire/release pattern as the original implementation, against
 * nodes placed in NDP-unit memory by a NodeHeap. Host-side shadow state
 * keeps the structures semantically correct so tests can verify results.
 */

#ifndef SYNCRON_WORKLOADS_DATASTRUCTURES_NODE_HEAP_HH
#define SYNCRON_WORKLOADS_DATASTRUCTURES_NODE_HEAP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sync/api.hh"
#include "system/system.hh"

namespace syncron::workloads {

/**
 * Allocates fixed-size nodes in simulated memory, either statically
 * partitioned across NDP units (most structures) or distributed randomly
 * (the BSTs), with a free list for deletions.
 */
class NodeHeap
{
  public:
    /**
     * @param sys       owning system
     * @param nodeBytes size of one node
     * @param random    true: nodes spread round-robin over all units
     *                  (the paper's "distributed randomly" placement);
     *                  false: caller chooses the unit per allocation
     */
    NodeHeap(NdpSystem &sys, std::uint32_t nodeBytes, bool random);

    /** Allocates a node (in @p unit when placement is not random). */
    Addr alloc(UnitId unit = 0);

    /** Returns a node to the free list. */
    void free(Addr node);

    std::uint32_t nodeBytes() const { return nodeBytes_; }

  private:
    NdpSystem &sys_;
    std::uint32_t nodeBytes_;
    bool random_;
    unsigned rr_ = 0;
    std::vector<Addr> freeList_;
};

/** Throughput result of a data-structure run. */
struct DsResult
{
    std::uint64_t ops = 0;
    Tick time = 0;

    /** Operations per millisecond of simulated time (Fig. 11 metric). */
    double
    opsPerMs() const
    {
        if (time == 0)
            return 0.0;
        return static_cast<double>(ops)
               / (static_cast<double>(time) / 1e9);
    }
};

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_DATASTRUCTURES_NODE_HEAP_HH
