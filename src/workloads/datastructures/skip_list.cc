#include "workloads/datastructures/structures.hh"

#include <algorithm>
#include <bit>

#include "common/bits.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimSkipList::SimSkipList(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 64, false)
{
    maxLevel_ = std::max(2u, log2Exact(std::bit_ceil(
                                  std::uint64_t{initialSize} + 1)));
    Rng rng(sys.config().seed * 31 + 7);
    std::map<std::uint64_t, unsigned> levels; ///< key -> tower height
    while (levels.size() < initialSize) {
        const std::uint64_t key = rng.next() >> 8;
        if (levels.count(key))
            continue;
        unsigned level = 1;
        while (level < maxLevel_ && rng.chance(0.5))
            ++level;
        levels.emplace(key, level);
    }

    // Nodes are partitioned by key; the per-node locks are created as
    // one set homed with each node's memory (distribute-by-address).
    std::vector<Addr> addrs;
    addrs.reserve(levels.size());
    for (const auto &[key, level] : levels) {
        addrs.push_back(heap_.alloc(
            static_cast<UnitId>(key % sys.config().numUnits)));
    }
    const sync::LockSet locks = sys.api().createLockSetByAddr(addrs);
    std::size_t i = 0;
    for (const auto &[key, level] : levels) {
        nodes_.emplace(key, Node{addrs[i], locks[i], level});
        ++i;
    }
}

std::size_t
SimSkipList::size() const
{
    std::lock_guard<std::mutex> lock(deletedMu_);
    return nodes_.size() - deleted_.size();
}

sim::Process
SimSkipList::worker(Core &c, unsigned ops)
{
    // Victim choice uses only this worker's rng stream, the
    // run-immutable node map, and this worker's own past unlinks —
    // never the instantaneous shared state — so the operation stream is
    // identical at every --sim-shards count. Other cores' concurrent
    // deletions stay invisible until the locked section, matching an
    // optimistic traversal over not-yet-reclaimed nodes.
    sync::SyncApi &api = sys_.api();
    std::set<std::uint64_t> mine; ///< keys this worker has unlinked
    for (unsigned i = 0; i < ops; ++i) {
        if (mine.size() >= nodes_.size())
            break;
        // Pick a random key this worker still considers present
        // (deterministic per-core stream); snapshot everything before
        // the first suspension.
        auto it = nodes_.lower_bound(c.rng().next() >> 8);
        if (it == nodes_.end())
            it = std::prev(nodes_.end());
        while (mine.count(it->first) != 0) {
            ++it;
            if (it == nodes_.end())
                it = nodes_.begin();
        }
        const std::uint64_t key = it->first;
        const Node victim = it->second;
        auto predIt = it == nodes_.begin() ? it : std::prev(it);
        const Node pred = predIt->second;
        const bool havePred = predIt != it;
        std::vector<Addr> path;
        path.reserve(maxLevel_);
        for (auto walk = it;; --walk) {
            path.push_back(walk->second.addr);
            if (path.size() >= maxLevel_ || walk == nodes_.begin())
                break;
        }

        // Optimistic search: one dependent node load per level, walking
        // the predecessor towers (medium contention: different cores
        // traverse different regions). Lock-free by design — the locked
        // section re-validates — so these loads carry no access hints.
        for (Addr hop : path) {
            co_await c.load(hop, 16, MemKind::SharedRW);
            co_await c.compute(3);
        }

        // Locked deletion: predecessor + victim, then per-level unlink.
        if (havePred)
            co_await api.acquire(c, pred.lock);
        co_await api.acquire(c, victim.lock);

        // Unlink under the locks. A concurrent deleter of the same key
        // redoes the (idempotent) pointer writes — the optimistic
        // algorithm's retry cost, paid in full.
        for (unsigned lvl = 0; lvl < victim.level; ++lvl) {
            if (havePred) {
                api.accessHint(c, pred.addr + lvl * 8, true);
                co_await c.store(pred.addr + lvl * 8, 8,
                                 MemKind::SharedRW);
            }
            api.accessHint(c, victim.addr + lvl * 8, false);
            co_await c.load(victim.addr + lvl * 8, 8,
                            MemKind::SharedRW);
        }
        mine.insert(key);
        {
            std::lock_guard<std::mutex> lock(deletedMu_);
            deleted_.insert(key);
        }

        co_await api.release(c, victim.lock);
        if (havePred)
            co_await api.release(c, pred.lock);
        // Neither the victim's memory nor its lock variable is recycled
        // here: another core may still be traversing or queued on it —
        // the same reason ASCYLIB defers reclamation.
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
