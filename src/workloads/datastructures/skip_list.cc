#include "workloads/datastructures/structures.hh"

#include <algorithm>
#include <bit>

#include "common/bits.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimSkipList::SimSkipList(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 64, false)
{
    maxLevel_ = std::max(2u, log2Exact(std::bit_ceil(
                                  std::uint64_t{initialSize} + 1)));
    Rng rng(sys.config().seed * 31 + 7);
    std::map<std::uint64_t, unsigned> levels; ///< key -> tower height
    while (levels.size() < initialSize) {
        const std::uint64_t key = rng.next() >> 8;
        if (levels.count(key))
            continue;
        unsigned level = 1;
        while (level < maxLevel_ && rng.chance(0.5))
            ++level;
        levels.emplace(key, level);
    }

    // Nodes are partitioned by key; the per-node locks are created as
    // one set homed with each node's memory (distribute-by-address).
    std::vector<Addr> addrs;
    addrs.reserve(levels.size());
    for (const auto &[key, level] : levels) {
        addrs.push_back(heap_.alloc(
            static_cast<UnitId>(key % sys.config().numUnits)));
    }
    const sync::LockSet locks = sys.api().createLockSetByAddr(addrs);
    std::size_t i = 0;
    for (const auto &[key, level] : levels) {
        nodes_.emplace(key, Node{addrs[i], locks[i], level});
        ++i;
    }
}

sim::Process
SimSkipList::worker(Core &c, unsigned ops)
{
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        if (nodes_.empty())
            break;
        // Pick a random present key (deterministic per-core stream).
        // Snapshot everything BEFORE the first suspension: other worker
        // coroutines may erase nodes while this one is suspended, which
        // would invalidate any held iterator.
        auto it = nodes_.lower_bound(c.rng().next() >> 8);
        if (it == nodes_.end())
            it = std::prev(nodes_.end());
        const std::uint64_t key = it->first;
        const Node victim = it->second;
        auto predIt = it == nodes_.begin() ? it : std::prev(it);
        const Node pred = predIt->second;
        const bool havePred = predIt != it;
        std::vector<Addr> path;
        path.reserve(maxLevel_);
        for (auto walk = it;; --walk) {
            path.push_back(walk->second.addr);
            if (path.size() >= maxLevel_ || walk == nodes_.begin())
                break;
        }

        // Optimistic search: one dependent node load per level, walking
        // the predecessor towers (medium contention: different cores
        // traverse different regions). Lock-free by design — the locked
        // section re-validates — so these loads carry no access hints.
        for (Addr hop : path) {
            co_await c.load(hop, 16, MemKind::SharedRW);
            co_await c.compute(3);
        }

        // Locked deletion: predecessor + victim, then per-level unlink.
        if (havePred)
            co_await api.acquire(c, pred.lock);
        co_await api.acquire(c, victim.lock);

        // Re-validate and unlink under the locks.
        auto found = nodes_.find(key);
        const bool stillThere =
            found != nodes_.end() && found->second.addr == victim.addr;
        if (stillThere) {
            for (unsigned lvl = 0; lvl < victim.level; ++lvl) {
                if (havePred) {
                    api.accessHint(c, pred.addr + lvl * 8, true);
                    co_await c.store(pred.addr + lvl * 8, 8,
                                     MemKind::SharedRW);
                }
                api.accessHint(c, victim.addr + lvl * 8, false);
                co_await c.load(victim.addr + lvl * 8, 8,
                                MemKind::SharedRW);
            }
            nodes_.erase(found);
            heap_.free(victim.addr);
        }

        co_await api.release(c, victim.lock);
        if (havePred)
            co_await api.release(c, pred.lock);
        // The victim's lock variable is not recycled here: another core
        // may still be queued on it (its retry then revalidates and
        // backs off) — the same reason ASCYLIB defers reclamation.
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
