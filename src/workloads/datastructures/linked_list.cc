#include "workloads/datastructures/structures.hh"

#include <algorithm>

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimLinkedList::SimLinkedList(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 24, false)
{
    Rng rng(sys.config().seed * 17 + 11);
    std::vector<std::uint64_t> keys;
    keys.reserve(initialSize);
    for (unsigned i = 0; i < initialSize; ++i)
        keys.push_back(rng.next() >> 8);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    // Contiguous key ranges per unit; the per-node locks are one set
    // homed with each node's memory (distribute-by-address).
    std::vector<Addr> addrs;
    addrs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const UnitId unit = static_cast<UnitId>(
            (i * sys.config().numUnits) / keys.size());
        addrs.push_back(heap_.alloc(unit));
    }
    const sync::LockSet locks = sys.api().createLockSetByAddr(addrs);
    nodes_.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        nodes_.push_back(Node{keys[i], addrs[i], locks[i]});
}

sim::Process
SimLinkedList::worker(Core &c, unsigned ops)
{
    // Hand-over-hand (lock-coupling) lookup as a ScopedLock chain: the
    // guard of the next node is acquired before the held guard is
    // released — so every core holds up to two locks concurrently,
    // which is what overflows small STs (Section 6.7.3).
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        if (nodes_.empty())
            break;
        const std::size_t target = c.rng().below(nodes_.size());

        sync::ScopedLock held = co_await api.scoped(c, nodes_[0].lock);
        co_await c.load(nodes_[0].addr, 16, MemKind::SharedRW);
        for (std::size_t pos = 1; pos <= target; ++pos) {
            sync::ScopedLock next =
                co_await api.scoped(c, nodes_[pos].lock);
            co_await held.unlock();
            held = std::move(next);
            co_await c.load(nodes_[pos].addr, 16, MemKind::SharedRW);
            co_await c.compute(2);
        }
        co_await held.unlock();
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
