#include "workloads/datastructures/structures.hh"

#include <algorithm>

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimLinkedList::SimLinkedList(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 24, false)
{
    Rng rng(sys.config().seed * 17 + 11);
    std::vector<std::uint64_t> keys;
    keys.reserve(initialSize);
    for (unsigned i = 0; i < initialSize; ++i)
        keys.push_back(rng.next() >> 8);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    // Contiguous key ranges per unit; the per-node locks are one set
    // homed with each node's memory (distribute-by-address).
    std::vector<Addr> addrs;
    addrs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const UnitId unit = static_cast<UnitId>(
            (i * sys.config().numUnits) / keys.size());
        addrs.push_back(heap_.alloc(unit));
    }
    const sync::LockSet locks = sys.api().createLockSetByAddr(addrs);
    nodes_.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        nodes_.push_back(Node{keys[i], addrs[i], locks[i]});
}

sim::Process
SimLinkedList::worker(Core &c, unsigned ops)
{
    // Hand-over-hand (lock-coupling) lookup in the pipelined prefetch
    // idiom: the next node's acquire is submitted as a SyncFuture and
    // stays in flight while the current node's payload is read, then
    // awaited before the held lock is released — so every core still
    // holds up to two locks concurrently (which is what overflows small
    // STs, Section 6.7.3), but the acquire latency overlaps the data
    // access instead of serializing behind it. Acquisition order along
    // the list is unchanged, so the traversal stays deadlock-free.
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        if (nodes_.empty())
            break;
        const std::size_t target = c.rng().below(nodes_.size());

        co_await api.acquire(c, nodes_[0].lock);
        std::size_t held = 0;
        for (std::size_t pos = 1; pos <= target; ++pos) {
            sync::SyncFuture next = api.submitAcquire(c, nodes_[pos].lock);
            api.accessHint(c, nodes_[held].addr, false);
            co_await c.load(nodes_[held].addr, 16, MemKind::SharedRW);
            co_await c.compute(2);
            co_await next;
            // Release the previous hop fire-and-forget (req_async
            // commits at issue; the resolved future's drop records it).
            api.submitRelease(c, nodes_[held].lock);
            held = pos;
        }
        api.accessHint(c, nodes_[held].addr, false);
        co_await c.load(nodes_[held].addr, 16, MemKind::SharedRW);
        co_await api.release(c, nodes_[held].lock);
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
