#include "workloads/datastructures/structures.hh"

#include <algorithm>

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimLinkedList::SimLinkedList(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 24, false)
{
    Rng rng(sys.config().seed * 17 + 11);
    std::vector<std::uint64_t> keys;
    keys.reserve(initialSize);
    for (unsigned i = 0; i < initialSize; ++i)
        keys.push_back(rng.next() >> 8);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    nodes_.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const UnitId unit = static_cast<UnitId>(
            (i * sys.config().numUnits) / keys.size());
        nodes_.push_back(Node{keys[i], heap_.alloc(unit),
                              sys.api().createSyncVar(unit)});
    }
}

sim::Process
SimLinkedList::worker(Core &c, unsigned ops)
{
    // Hand-over-hand (lock-coupling) lookup: at any time the core holds
    // the lock of the node it reads and acquires the next one before
    // releasing it — so every core holds up to two locks concurrently,
    // which is what overflows small STs (Section 6.7.3).
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        if (nodes_.empty())
            break;
        const std::size_t target = c.rng().below(nodes_.size());

        co_await api.lockAcquire(c, nodes_[0].lock);
        co_await c.load(nodes_[0].addr, 16, MemKind::SharedRW);
        for (std::size_t pos = 1; pos <= target; ++pos) {
            co_await api.lockAcquire(c, nodes_[pos].lock);
            co_await api.lockRelease(c, nodes_[pos - 1].lock);
            co_await c.load(nodes_[pos].addr, 16, MemKind::SharedRW);
            co_await c.compute(2);
        }
        co_await api.lockRelease(c, nodes_[target].lock);
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
