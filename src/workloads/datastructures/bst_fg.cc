#include "workloads/datastructures/structures.hh"

#include <algorithm>

namespace syncron::workloads {

using core::Core;
using core::MemKind;

int
SimBstFg::insertShadow(std::uint64_t key, Addr addr, sync::Lock lock)
{
    nodes_.push_back(Node{key, addr, lock, -1, -1});
    const int idx = static_cast<int>(nodes_.size()) - 1;
    if (root_ == -1) {
        root_ = idx;
        return idx;
    }
    int cur = root_;
    for (;;) {
        Node &n = nodes_[cur];
        if (key < n.key) {
            if (n.left == -1) {
                n.left = idx;
                return idx;
            }
            cur = n.left;
        } else {
            if (n.right == -1) {
                n.right = idx;
                return idx;
            }
            cur = n.right;
        }
    }
}

SimBstFg::SimBstFg(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 40, true) // BSTs are distributed randomly
{
    // Shuffled insertion order gives the expected ~1.39 log2(n) depth.
    Rng rng(sys.config().seed * 23 + 1);
    std::vector<std::uint64_t> keys;
    keys.reserve(initialSize);
    for (unsigned i = 0; i < initialSize; ++i)
        keys.push_back(rng.next() >> 8);

    // Per-node locks created as one set homed with each node's memory.
    std::vector<Addr> addrs;
    addrs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        addrs.push_back(heap_.alloc());
    const sync::LockSet locks = sys.api().createLockSetByAddr(addrs);
    for (std::size_t i = 0; i < keys.size(); ++i)
        insertShadow(keys[i], addrs[i], locks[i]);
}

unsigned
SimBstFg::depth() const
{
    unsigned maxDepth = 0;
    // Iterative DFS to avoid recursion on a possibly deep tree.
    std::vector<std::pair<int, unsigned>> stack;
    if (root_ != -1)
        stack.emplace_back(root_, 1);
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        maxDepth = std::max(maxDepth, d);
        if (nodes_[idx].left != -1)
            stack.emplace_back(nodes_[idx].left, d + 1);
        if (nodes_[idx].right != -1)
            stack.emplace_back(nodes_[idx].right, d + 1);
    }
    return maxDepth;
}

sim::Process
SimBstFg::worker(Core &c, unsigned ops)
{
    // Fine-grained lookup with lock coupling down the search path as a
    // ScopedLock chain: the core always holds the guard of the node it
    // inspects, acquiring the child's guard before releasing the
    // parent's. Two locks are held at every step, so with many cores the
    // active-lock working set exceeds small STs — the Fig. 23 overflow
    // workload.
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        if (root_ == -1)
            break;
        const std::uint64_t key = c.rng().next() >> 8;

        int cur = root_;
        sync::ScopedLock held = co_await api.scoped(c, nodes_[cur].lock);
        api.accessHint(c, nodes_[cur].addr, false);
        co_await c.load(nodes_[cur].addr, 24, MemKind::SharedRW);
        for (;;) {
            Node &n = nodes_[cur];
            int next = key < n.key ? n.left : n.right;
            co_await c.compute(3);
            if (next == -1 || n.key == key)
                break;
            sync::ScopedLock child =
                co_await api.scoped(c, nodes_[next].lock);
            co_await held.unlock();
            held = std::move(child);
            api.accessHint(c, nodes_[next].addr, false);
            co_await c.load(nodes_[next].addr, 24, MemKind::SharedRW);
            cur = next;
        }
        co_await held.unlock();
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
