#include "workloads/datastructures/structures.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimHashTable::SimHashTable(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 32, false), keyRange_(initialSize * 2)
{
    // One bucket per ~4 elements, per-bucket locks homed with the bucket.
    const std::size_t numBuckets = std::max<std::size_t>(
        4, initialSize / 4);
    buckets_.resize(numBuckets);
    std::vector<UnitId> homes;
    homes.reserve(numBuckets);
    for (std::size_t b = 0; b < numBuckets; ++b)
        homes.push_back(static_cast<UnitId>(b % sys.config().numUnits));
    bucketLocks_ = sys.api().createLockSet(numBuckets, homes);

    Rng rng(sys.config().seed * 13 + 3);
    for (unsigned i = 0; i < initialSize; ++i) {
        const std::uint64_t key = rng.below(keyRange_);
        const std::size_t b = key % numBuckets;
        buckets_[b].emplace_back(
            key, heap_.alloc(static_cast<UnitId>(
                     b % sys.config().numUnits)));
    }
}

sim::Process
SimHashTable::worker(Core &c, unsigned ops)
{
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        // 100% lookup: hash, lock the bucket, chase the chain.
        const std::uint64_t key = c.rng().below(keyRange_);
        const std::size_t b = key % buckets_.size();
        sync::ScopedLock guard = co_await api.scoped(c, bucketLocks_[b]);
        bool found = false;
        for (const auto &[k, addr] : buckets_[b]) {
            api.accessHint(c, addr, false);
            co_await c.load(addr, 16, MemKind::SharedRW);
            co_await c.compute(2);
            if (k == key) {
                found = true;
                break;
            }
        }
        if (found)
            hits_.fetch_add(1, std::memory_order_relaxed);
        co_await guard.unlock();
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
