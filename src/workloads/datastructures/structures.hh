/**
 * @file
 * The nine lock-based concurrent data structures of the paper's Table 6,
 * reimplemented against the simulated-core API with the same lock
 * pattern and memory-access skeleton as their originals:
 *
 *   Structure        | Config (paper)     | Contention | Locking
 *   -----------------|--------------------|------------|------------------
 *   Stack            | 100 K, 100% push   | high       | one coarse Lock
 *   Queue            | 100 K, 100% pop    | high       | head/tail Locks
 *   Array Map        | 10, 100% lookup    | high       | coarse, larger CS
 *   Priority Queue   | 20 K, deleteMin    | high       | coarse (heap)
 *   Skip List        | 5 K, deletion      | medium     | per-node LockSet
 *   Hash Table       | 1 K, 100% lookup   | medium     | per-bucket LockSet
 *   Linked List      | 20 K, lookup       | low        | ScopedLock chain
 *   BST_FG           | 20 K, lookup       | low        | ScopedLock chain
 *   BST_Drachsler    | 10 K, deletion     | very low   | 2 locks/delete
 *
 * All locking goes through the typed handles: coarse structures hold one
 * sync::Lock, fine-grained structures create their whole per-node /
 * per-bucket population in one SyncApi::createLockSet[ByAddr]() call
 * (locks homed with the data they protect), and the hand-over-hand
 * traversals (linked list, BST_FG) are sync::ScopedLock chains — the
 * guard of the next node is acquired before the previous guard is
 * released.
 *
 * Every structure exposes worker(core, ops): a coroutine performing the
 * Table 6 operation mix, plus host-side shadow state for verification.
 * Data is statically partitioned across NDP units (nodes of the BSTs are
 * distributed randomly), mirroring Section 5.
 */

#ifndef SYNCRON_WORKLOADS_DATASTRUCTURES_STRUCTURES_HH
#define SYNCRON_WORKLOADS_DATASTRUCTURES_STRUCTURES_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "workloads/datastructures/node_heap.hh"

namespace syncron::workloads {

/** Treiber-style stack protected by one coarse-grained lock. */
class SimStack
{
  public:
    SimStack(NdpSystem &sys, unsigned initialSize);
    /** 100% push. */
    sim::Process worker(core::Core &c, unsigned ops);
    std::size_t size() const { return shadow_.size(); }

  private:
    NdpSystem &sys_;
    NodeHeap heap_;
    sync::Lock lock_;
    Addr topAddr_;
    std::vector<Addr> shadow_;
};

/** Michael-Scott two-lock queue. */
class SimQueue
{
  public:
    SimQueue(NdpSystem &sys, unsigned initialSize);
    /** 100% pop (dequeue). */
    sim::Process worker(core::Core &c, unsigned ops);
    std::size_t size() const { return shadow_.size(); }
    std::uint64_t emptyPops() const { return emptyPops_; }

  private:
    NdpSystem &sys_;
    NodeHeap heap_;
    sync::Lock headLock_;
    sync::Lock tailLock_;
    Addr headAddr_;
    std::vector<Addr> shadow_; ///< front = head
    std::size_t headIdx_ = 0;
    std::uint64_t emptyPops_ = 0;
};

/** Small array map with one coarse lock and a larger critical section. */
class SimArrayMap
{
  public:
    SimArrayMap(NdpSystem &sys, unsigned entries = 10);
    /** 100% lookup (scans the whole array under the lock). */
    sim::Process worker(core::Core &c, unsigned ops);

  private:
    NdpSystem &sys_;
    sync::Lock lock_;
    Addr baseAddr_;
    unsigned entries_;
};

/** Binary min-heap priority queue under one coarse lock. */
class SimPriorityQueue
{
  public:
    SimPriorityQueue(NdpSystem &sys, unsigned initialSize);
    /** 100% deleteMin. */
    sim::Process worker(core::Core &c, unsigned ops);
    std::size_t size() const { return heapShadow_.size(); }
    bool popsWereOrdered() const { return ordered_; }

  private:
    NdpSystem &sys_;
    sync::Lock lock_;
    Addr baseAddr_;
    std::vector<std::uint64_t> heapShadow_;
    std::uint64_t lastPopped_ = 0;
    bool ordered_ = true;
};

/**
 * Skip list with per-node locks (optimistic search, locked delete).
 *
 * Sharded-simulation discipline: the node map is immutable during the
 * run and each worker tracks its own unlinks privately, so a worker
 * traverses a stale-but-deterministic view of the list (it cannot see
 * other cores' deletions — the optimistic-search behavior over
 * not-yet-reclaimed nodes). Physical reclamation is deferred to
 * teardown, the same reason ASCYLIB defers it.
 */
class SimSkipList
{
  public:
    SimSkipList(NdpSystem &sys, unsigned initialSize);
    /** 100% deletion. */
    sim::Process worker(core::Core &c, unsigned ops);
    /** Nodes still logically present (valid at quiescence only). */
    std::size_t size() const;

  private:
    struct Node
    {
        Addr addr;
        sync::Lock lock;
        unsigned level;
    };

    NdpSystem &sys_;
    NodeHeap heap_;
    std::map<std::uint64_t, Node> nodes_; ///< key -> node; run-immutable
    unsigned maxLevel_;
    /// Keys unlinked by any worker — host bookkeeping for size() only,
    /// never read during the run (a set union is commutative, so the
    /// quiescent contents do not depend on host thread interleaving).
    std::set<std::uint64_t> deleted_;
    mutable std::mutex deletedMu_;
};

/** Chained hash table with per-bucket locks. */
class SimHashTable
{
  public:
    SimHashTable(NdpSystem &sys, unsigned initialSize);
    /** 100% lookup. */
    sim::Process worker(core::Core &c, unsigned ops);
    std::uint64_t hits() const { return hits_.load(); }

  private:
    NdpSystem &sys_;
    NodeHeap heap_;
    sync::LockSet bucketLocks_;
    std::vector<std::vector<std::pair<std::uint64_t, Addr>>> buckets_;
    std::uint64_t keyRange_;
    /// Successful lookups. Bumped under per-BUCKET locks, so increments
    /// from different shards interleave on the host: atomic because the
    /// sum is commutative and only read at quiescence.
    std::atomic<std::uint64_t> hits_{0};
};

/** Sorted singly-linked list with hand-over-hand (coupling) locking. */
class SimLinkedList
{
  public:
    SimLinkedList(NdpSystem &sys, unsigned initialSize);
    /** 100% lookup. */
    sim::Process worker(core::Core &c, unsigned ops);
    std::size_t size() const { return nodes_.size(); }

  private:
    struct Node
    {
        std::uint64_t key;
        Addr addr;
        sync::Lock lock;
    };

    NdpSystem &sys_;
    NodeHeap heap_;
    std::vector<Node> nodes_; ///< sorted by key; index = position
};

/** Internal BST with fine-grained hand-over-hand locking (BST_FG). */
class SimBstFg
{
  public:
    SimBstFg(NdpSystem &sys, unsigned initialSize);
    /** 100% lookup. */
    sim::Process worker(core::Core &c, unsigned ops);
    std::size_t size() const { return nodes_.size(); }
    unsigned depth() const;

  private:
    struct Node
    {
        std::uint64_t key;
        Addr addr;
        sync::Lock lock;
        int left = -1;
        int right = -1;
    };

    int insertShadow(std::uint64_t key, Addr addr, sync::Lock lock);

    NdpSystem &sys_;
    NodeHeap heap_;
    std::vector<Node> nodes_;
    int root_ = -1;
};

/**
 * Drachsler-style BST with logical ordering: lookups/searches are
 * lock-free; a deletion locks only the victim and its predecessor
 * (lock requests are ~0.1% of memory requests).
 *
 * Follows the same sharded-simulation discipline as SimSkipList: the
 * node map is run-immutable, deletions are tracked per worker, and
 * reclamation is deferred to teardown.
 */
class SimBstDrachsler
{
  public:
    SimBstDrachsler(NdpSystem &sys, unsigned initialSize);
    /** 100% deletion. */
    sim::Process worker(core::Core &c, unsigned ops);
    /** Nodes still logically present (valid at quiescence only). */
    std::size_t size() const;

  private:
    struct Node
    {
        Addr addr;
        sync::Lock lock;
    };

    NdpSystem &sys_;
    NodeHeap heap_;
    std::map<std::uint64_t, Node> nodes_; ///< run-immutable
    /// Unlinked keys — host bookkeeping for size(), quiescence only.
    std::set<std::uint64_t> deleted_;
    mutable std::mutex deletedMu_;
};

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_DATASTRUCTURES_STRUCTURES_HH
