#include "workloads/datastructures/structures.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimQueue::SimQueue(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 16, false),
      headLock_(sys.api().createLock(0)),
      tailLock_(sys.api().createLock(0)),
      headAddr_(sys.machine().addrSpace().allocIn(0, 16, 8))
{
    for (unsigned i = 0; i < initialSize; ++i)
        shadow_.push_back(heap_.alloc(i % sys.config().numUnits));
}

sim::Process
SimQueue::worker(Core &c, unsigned ops)
{
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        // 100% pop = dequeue through the head lock (Michael-Scott
        // two-lock queue [104]).
        sync::ScopedLock guard = co_await api.scoped(c, headLock_);
        api.accessHint(c, headAddr_, false);
        co_await c.load(headAddr_, 8, MemKind::SharedRW); // head pointer
        if (headIdx_ < shadow_.size()) {
            const Addr node = shadow_[headIdx_];
            ++headIdx_;
            // Node memory recycles through the heap, so it gets no
            // access hint: the next owner's private writes would look
            // like races on the reused address.
            co_await c.load(node, 8, MemKind::SharedRW); // node->next
            api.accessHint(c, headAddr_, true);
            co_await c.store(headAddr_, 8, MemKind::SharedRW);
            heap_.free(node);
        } else {
            ++emptyPops_;
        }
        co_await guard.unlock();
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
