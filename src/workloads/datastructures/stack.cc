#include "workloads/datastructures/structures.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimStack::SimStack(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 16, false), lock_(sys.api().createLock(0)),
      topAddr_(sys.machine().addrSpace().allocIn(0, 8, 8))
{
    // Pre-populated nodes are statically partitioned across units.
    for (unsigned i = 0; i < initialSize; ++i)
        shadow_.push_back(heap_.alloc(i % sys.config().numUnits));
}

sim::Process
SimStack::worker(Core &c, unsigned ops)
{
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        // 100% push (Table 6).
        const Addr node = heap_.alloc(c.unit());
        co_await c.compute(6); // key/value preparation
        {
            sync::ScopedLock guard = co_await api.scoped(c, lock_);
            api.accessHint(c, topAddr_, false);
            co_await c.load(topAddr_, 8, MemKind::SharedRW);
            // The fresh node is core-private until top points at it, so
            // its initializing store carries no access hint.
            co_await c.store(node, 8, MemKind::SharedRW); // node->next = top
            api.accessHint(c, topAddr_, true);
            co_await c.store(topAddr_, 8, MemKind::SharedRW); // top = node
            shadow_.push_back(node);
            co_await guard.unlock();
        }
        co_await c.compute(10); // caller-side work between operations
    }
}

} // namespace syncron::workloads
