#include "workloads/datastructures/structures.hh"

#include <algorithm>
#include <functional>

#include "common/bits.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimPriorityQueue::SimPriorityQueue(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), lock_(sys.api().createLock(0)),
      baseAddr_(sys.machine().addrSpace().allocIn(
          0, static_cast<std::uint64_t>(initialSize + 1) * 8, 8))
{
    // A pre-filled binary min-heap of random keys.
    Rng rng(sys.config().seed * 77 + 5);
    heapShadow_.reserve(initialSize);
    for (unsigned i = 0; i < initialSize; ++i)
        heapShadow_.push_back(rng.next() >> 16);
    std::make_heap(heapShadow_.begin(), heapShadow_.end(),
                   std::greater<>());
}

sim::Process
SimPriorityQueue::worker(Core &c, unsigned ops)
{
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        // 100% deleteMin: root removal + sift-down under the coarse
        // lock; every level of the sift is a parent/children access.
        sync::ScopedLock guard = co_await api.scoped(c, lock_);
        if (!heapShadow_.empty()) {
            const std::uint64_t min = heapShadow_.front();
            if (min < lastPopped_)
                ordered_ = false; // heap order violated => lock broken
            std::pop_heap(heapShadow_.begin(), heapShadow_.end(),
                          std::greater<>());
            heapShadow_.pop_back();
            lastPopped_ = min;

            api.accessHint(c, baseAddr_, false);
            co_await c.load(baseAddr_, 8, MemKind::SharedRW); // root
            const std::size_t n = heapShadow_.size();
            api.accessHint(c, baseAddr_, true);
            co_await c.store(baseAddr_, 8, MemKind::SharedRW);
            // Sift-down path: two child loads + one store per level.
            std::size_t idx = 0;
            while (2 * idx + 1 < n) {
                const Addr child = baseAddr_ + (2 * idx + 1) * 8;
                api.accessHint(c, child, false);
                co_await c.load(child, 16, MemKind::SharedRW);
                api.accessHint(c, baseAddr_ + idx * 8, true);
                co_await c.store(baseAddr_ + idx * 8, 8,
                                 MemKind::SharedRW);
                idx = 2 * idx + 1;
            }
        }
        co_await guard.unlock();
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
