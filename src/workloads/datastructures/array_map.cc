#include "workloads/datastructures/structures.hh"

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimArrayMap::SimArrayMap(NdpSystem &sys, unsigned entries)
    : sys_(sys), lock_(sys.api().createLock(0)),
      baseAddr_(sys.machine().addrSpace().allocIn(0, entries * 16ULL, 8)),
      entries_(entries)
{}

sim::Process
SimArrayMap::worker(Core &c, unsigned ops)
{
    sync::SyncApi &api = sys_.api();
    for (unsigned i = 0; i < ops; ++i) {
        // 100% lookup: the whole (small) array is scanned under the
        // coarse lock — the largest critical section of the set, which
        // is why the array map scales worst (Section 6.1.2).
        const std::uint64_t key = c.rng().below(entries_);
        sync::ScopedLock guard = co_await api.scoped(c, lock_);
        for (unsigned e = 0; e < entries_; ++e) {
            api.accessHint(c, baseAddr_ + e * 16ULL, false);
            co_await c.load(baseAddr_ + e * 16ULL, 16, MemKind::SharedRW);
            co_await c.compute(2); // key compare
            if (e == key)
                break;
        }
        co_await guard.unlock();
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
