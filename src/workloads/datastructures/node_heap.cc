#include "workloads/datastructures/node_heap.hh"

#include "common/log.hh"

namespace syncron::workloads {

NodeHeap::NodeHeap(NdpSystem &sys, std::uint32_t nodeBytes, bool random)
    : sys_(sys), nodeBytes_(nodeBytes), random_(random)
{
    SYNCRON_ASSERT(nodeBytes_ >= 8, "nodes need at least one word");
}

Addr
NodeHeap::alloc(UnitId unit)
{
    if (!freeList_.empty()) {
        Addr a = freeList_.back();
        freeList_.pop_back();
        return a;
    }
    UnitId target = unit;
    if (random_) {
        target = rr_;
        rr_ = (rr_ + 1) % sys_.config().numUnits;
    }
    return sys_.machine().addrSpace().allocIn(target, nodeBytes_, 8);
}

void
NodeHeap::free(Addr node)
{
    freeList_.push_back(node);
}

} // namespace syncron::workloads
