#include "workloads/datastructures/structures.hh"

#include <bit>
#include <set>

namespace syncron::workloads {

using core::Core;
using core::MemKind;

SimBstDrachsler::SimBstDrachsler(NdpSystem &sys, unsigned initialSize)
    : sys_(sys), heap_(sys, 64, true) // distributed randomly
{
    Rng rng(sys.config().seed * 41 + 9);
    std::set<std::uint64_t> keys;
    while (keys.size() < initialSize)
        keys.insert(rng.next() >> 8);

    // Nodes distributed randomly; each node's lock homed with it.
    std::vector<Addr> addrs;
    addrs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        addrs.push_back(heap_.alloc());
    const sync::LockSet locks = sys.api().createLockSetByAddr(addrs);
    std::size_t i = 0;
    for (std::uint64_t key : keys) {
        nodes_.emplace(key, Node{addrs[i], locks[i]});
        ++i;
    }
}

std::size_t
SimBstDrachsler::size() const
{
    std::lock_guard<std::mutex> lock(deletedMu_);
    return nodes_.size() - deleted_.size();
}

sim::Process
SimBstDrachsler::worker(Core &c, unsigned ops)
{
    // Drachsler-style deletion: the search descends the tree lock-free
    // (logical ordering), reads the node's payload, and only then locks
    // the victim and its predecessor for the physical unlink. Lock
    // traffic is a tiny fraction of the memory traffic, so all
    // synchronization schemes perform similarly here (Section 6.1.2).
    //
    // Victim choice depends only on this worker's rng stream, the
    // run-immutable node map, and its own past unlinks, keeping the
    // operation stream identical at every --sim-shards count (see
    // SimSkipList).
    sync::SyncApi &api = sys_.api();
    std::set<std::uint64_t> mine; ///< keys this worker has unlinked
    for (unsigned i = 0; i < ops; ++i) {
        if (mine.size() + 2 > nodes_.size())
            break;
        // Snapshot key/victim/pred/path before the first suspension.
        auto it = nodes_.lower_bound(c.rng().next() >> 8);
        if (it == nodes_.end())
            it = std::prev(nodes_.end());
        while (mine.count(it->first) != 0) {
            ++it;
            if (it == nodes_.end())
                it = nodes_.begin();
        }
        const std::uint64_t key = it->first;
        const Node victim = it->second;
        auto predIt = it == nodes_.begin() ? it : std::prev(it);
        const bool havePred = predIt != it;
        const Node pred = predIt->second;
        const std::size_t pathLen =
            3 * (63 - std::countl_zero(nodes_.size() | 1));
        std::vector<Addr> path;
        path.reserve(pathLen);
        for (auto walk = it;; --walk) {
            path.push_back(walk->second.addr);
            if (path.size() >= pathLen || walk == nodes_.begin())
                break;
        }

        // Lock-free search: ~3 * log2(n) dependent reads (search +
        // logical-ordering validation), then the 64 B payload. These
        // reads are lock-free by design (the locked section
        // re-validates), so they carry no access hints.
        for (Addr hop : path)
            co_await c.load(hop, 16, MemKind::SharedRW);
        co_await c.load(victim.addr, 64, MemKind::SharedRW);
        co_await c.compute(60); // value processing

        if (havePred)
            co_await api.acquire(c, pred.lock);
        co_await api.acquire(c, victim.lock);
        // Unlink under the locks; a concurrent deleter of the same key
        // redoes the idempotent pointer writes (optimistic retry cost).
        // Reclamation is deferred to teardown.
        api.accessHint(c, victim.addr, true);
        co_await c.store(victim.addr, 16, MemKind::SharedRW);
        if (havePred) {
            api.accessHint(c, pred.addr, true);
            co_await c.store(pred.addr, 16, MemKind::SharedRW);
        }
        mine.insert(key);
        {
            std::lock_guard<std::mutex> lock(deletedMu_);
            deleted_.insert(key);
        }
        co_await api.release(c, victim.lock);
        if (havePred)
            co_await api.release(c, pred.lock);
        co_await c.compute(10);
    }
}

} // namespace syncron::workloads
