/**
 * @file
 * Primitive microbenchmarks (paper Fig. 10): cores repeatedly request a
 * single synchronization variable, with a configurable number of compute
 * instructions between synchronization points.
 *
 *   Lock:      empty critical section, all cores contend on one lock.
 *   Barrier:   all cores synchronize repeatedly on one barrier.
 *   Semaphore: half the cores sem_wait, the other half sem_post.
 *   CondVar:   half cond_wait, half cond_signal (with the associated
 *              lock — the highest synchronization intensity).
 */

#ifndef SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH
#define SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sync/primitives.hh"
#include "system/config.hh"

namespace syncron {
class NdpSystem;
} // namespace syncron

namespace syncron::workloads {

/** The four primitives of Fig. 10. */
enum class Primitive { Lock, Barrier, Semaphore, CondVar };

/** Printable name. */
const char *primitiveName(Primitive p);

/**
 * The Fig. 10 microbenchmark on an externally-built system: creates the
 * synchronization variables and spawns one worker per client core. The
 * object must outlive the run (it owns shared workload state).
 *
 *   NdpSystem sys(cfg);
 *   PrimitiveWorkload w(sys, Primitive::Lock, 200, 16);
 *   sys.run();
 */
class PrimitiveWorkload
{
  public:
    PrimitiveWorkload(NdpSystem &sys, Primitive primitive,
                      unsigned interval, unsigned opsPerCore);

    PrimitiveWorkload(const PrimitiveWorkload &) = delete;
    PrimitiveWorkload &operator=(const PrimitiveWorkload &) = delete;

  private:
    std::int64_t condTokens_ = 0; ///< CondVar producer/consumer balance
};

/** Result of one microbenchmark run. */
struct MicroResult
{
    Tick time = 0;
    std::uint64_t syncOps = 0;
};

/**
 * Semaphore fan-out microbenchmark for the asynchronous/batched api
 * (bench fig23_async_batching): each round, every core posts a set of
 * @p width semaphores in one SyncBatch (the fan-out), computes while
 * the posts are in flight, then waits on all of them in a second batch.
 *
 * Contention regimes:
 *   - uncontended: each core owns a private semaphore set homed in its
 *     own unit — every message stays core <-> local SE, so batching's
 *     message saving is directly visible in messages/op.
 *   - contended: all cores share one set homed in unit 0, so posts and
 *     waits race across units through the hierarchical protocol.
 *
 * width == 1 degrades to unbatched issue (a 1-op batch is a plain
 * message), which is the baseline the batching sweep compares against.
 * The object must outlive the run (it owns the semaphore sets).
 */
class SemFanoutWorkload
{
  public:
    SemFanoutWorkload(NdpSystem &sys, unsigned width, unsigned rounds,
                      bool contended);

    SemFanoutWorkload(const SemFanoutWorkload &) = delete;
    SemFanoutWorkload &operator=(const SemFanoutWorkload &) = delete;

  private:
    /// One semaphore set per core (uncontended) or a single shared set
    /// (contended); referenced by the spawned coroutines.
    std::vector<std::vector<sync::Semaphore>> sets_;
};

/**
 * Convenience wrapper: builds the system for @p scheme, runs the
 * microbenchmark, and reports simulated time. Prefer
 * harness::runPrimitive() in benches (full RunOutput, backend
 * selection).
 */
MicroResult runPrimitiveBench(Scheme scheme, Primitive primitive,
                              unsigned interval, unsigned opsPerCore,
                              unsigned numUnits = 4,
                              unsigned clientsPerUnit = 15);

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH
