/**
 * @file
 * Primitive microbenchmarks (paper Fig. 10): cores repeatedly request a
 * single synchronization variable, with a configurable number of compute
 * instructions between synchronization points.
 *
 *   Lock:      empty critical section, all cores contend on one lock.
 *   Barrier:   all cores synchronize repeatedly on one barrier.
 *   Semaphore: half the cores sem_wait, the other half sem_post.
 *   CondVar:   half cond_wait, half cond_signal (with the associated
 *              lock — the highest synchronization intensity).
 */

#ifndef SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH
#define SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH

#include <cstdint>

#include "common/types.hh"
#include "system/config.hh"

namespace syncron {
class NdpSystem;
} // namespace syncron

namespace syncron::workloads {

/** The four primitives of Fig. 10. */
enum class Primitive { Lock, Barrier, Semaphore, CondVar };

/** Printable name. */
const char *primitiveName(Primitive p);

/**
 * The Fig. 10 microbenchmark on an externally-built system: creates the
 * synchronization variables and spawns one worker per client core. The
 * object must outlive the run (it owns shared workload state).
 *
 *   NdpSystem sys(cfg);
 *   PrimitiveWorkload w(sys, Primitive::Lock, 200, 16);
 *   sys.run();
 */
class PrimitiveWorkload
{
  public:
    PrimitiveWorkload(NdpSystem &sys, Primitive primitive,
                      unsigned interval, unsigned opsPerCore);

    PrimitiveWorkload(const PrimitiveWorkload &) = delete;
    PrimitiveWorkload &operator=(const PrimitiveWorkload &) = delete;

  private:
    std::int64_t condTokens_ = 0; ///< CondVar producer/consumer balance
};

/** Result of one microbenchmark run. */
struct MicroResult
{
    Tick time = 0;
    std::uint64_t syncOps = 0;
};

/**
 * Convenience wrapper: builds the system for @p scheme, runs the
 * microbenchmark, and reports simulated time. Prefer
 * harness::runPrimitive() in benches (full RunOutput, backend
 * selection).
 */
MicroResult runPrimitiveBench(Scheme scheme, Primitive primitive,
                              unsigned interval, unsigned opsPerCore,
                              unsigned numUnits = 4,
                              unsigned clientsPerUnit = 15);

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH
