/**
 * @file
 * Primitive microbenchmarks (paper Fig. 10): cores repeatedly request a
 * single synchronization variable, with a configurable number of compute
 * instructions between synchronization points.
 *
 *   Lock:      empty critical section, all cores contend on one lock.
 *   Barrier:   all cores synchronize repeatedly on one barrier.
 *   Semaphore: half the cores sem_wait, the other half sem_post.
 *   CondVar:   half cond_wait, half cond_signal (with the associated
 *              lock — the highest synchronization intensity).
 */

#ifndef SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH
#define SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH

#include <cstdint>

#include "system/config.hh"
#include "common/types.hh"

namespace syncron::workloads {

/** The four primitives of Fig. 10. */
enum class Primitive { Lock, Barrier, Semaphore, CondVar };

/** Printable name. */
const char *primitiveName(Primitive p);

/** Result of one microbenchmark run. */
struct MicroResult
{
    Tick time = 0;
    std::uint64_t syncOps = 0;
};

/**
 * Runs the Fig. 10 microbenchmark.
 *
 * @param scheme      synchronization scheme under test
 * @param primitive   which primitive
 * @param interval    compute instructions between synchronization points
 * @param opsPerCore  synchronization episodes per core
 * @param numUnits    NDP units (default: paper's 4)
 * @param clientsPerUnit client cores per unit (default: paper's 15)
 */
MicroResult runPrimitiveBench(Scheme scheme, Primitive primitive,
                              unsigned interval, unsigned opsPerCore,
                              unsigned numUnits = 4,
                              unsigned clientsPerUnit = 15);

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_MICRO_PRIMITIVES_HH
